//! The replicated store node and its shard-routing client.
//!
//! A [`StoreNode`] hosts one durable [`KvMachine`] for the shards it
//! primaries, plus one **replica stream** — a separate durable log —
//! per remote primary it replicates for. Streams are per-source because
//! LSNs are per-log: interleaving two primaries' records into one log
//! would break the `local lsn == source lsn` shipping invariant and
//! silently drop whichever stream is behind.
//!
//! Writes land on the key's **primary** (per the installed
//! [`ShardMap`]) and are pushed synchronously to the replica owners via
//! log shipping; reads merge the node's own state with its replica
//! streams and are version-gated: the node either proves the key's
//! authoritative stream has caught up to the reader's floor or refuses
//! with `behind`.
//!
//! A [`StoreClient`] routes by the same map: writes go to the primary
//! (retrying once on a stale-map `not_primary` hint), reads prefer the
//! furthest replica and fall back owner-by-owner toward the primary —
//! the read-your-writes schedule, since the client remembers the
//! version each of its own writes was assigned and demands at least
//! that from whichever owner answers.
//!
//! ## Routes
//!
//! | Route | Meaning |
//! |---|---|
//! | `PUT /store/{key}` | primary write; body is the JSON value |
//! | `DELETE /store/{key}` | primary delete |
//! | `GET /store/{key}?min_version=N` | version-gated read |
//! | `POST /store/replicate` | apply shipped records (replica side) |
//! | `GET /store/ship?after=N` | serve records for replica catch-up |
//! | `GET /store/status` | applied/durable LSNs, map version, key count |

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use soc_http::mem::Transport;
use soc_http::url::{percent_decode, percent_encode};
use soc_http::{Response, Status};
use soc_json::Value;
use soc_rest::{PathParams, RestClient, RestError, Router};

use crate::kv::KvMachine;
use crate::shard::ShardMap;
use crate::state::Durable;
use crate::wal::{Lsn, WalConfig};
use crate::{StoreError, StoreResult};

/// Identity and tuning for one [`StoreNode`].
#[derive(Debug, Clone)]
pub struct StoreNodeConfig {
    /// Stable node id — must match the node's lease id in the registry,
    /// since that is what the [`ShardMap`] ring is keyed on.
    pub id: String,
    /// WAL knobs for the node's durable machines (own log and every
    /// replica stream).
    pub wal: WalConfig,
}

impl StoreNodeConfig {
    /// Default WAL config under `id`.
    pub fn new(id: &str) -> StoreNodeConfig {
        StoreNodeConfig { id: id.to_string(), wal: WalConfig::default() }
    }
}

struct NodeInner {
    id: String,
    dir: PathBuf,
    wal_cfg: WalConfig,
    /// Shards this node primaries: its own log, its own LSNs.
    store: Durable<KvMachine>,
    /// One durable stream per remote primary, keyed by source node id.
    replicas: RwLock<HashMap<String, Arc<Durable<KvMachine>>>>,
    map: RwLock<Arc<ShardMap>>,
    peers: RestClient,
    pushes: soc_observe::Counter,
    push_failures: soc_observe::Counter,
}

/// One replicated store node. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct StoreNode {
    inner: Arc<NodeInner>,
}

impl StoreNode {
    /// Open (or recover) the node's durable machines in `dir` — the own
    /// log at the top level plus any `replica-of-*` streams a previous
    /// incarnation left behind. `transport` carries replication pushes
    /// to peer endpoints.
    pub fn open(
        cfg: StoreNodeConfig,
        dir: impl AsRef<std::path::Path>,
        transport: Arc<dyn Transport>,
    ) -> StoreResult<StoreNode> {
        let dir = dir.as_ref().to_path_buf();
        let store = Durable::open(dir.join("own"), cfg.wal.clone(), KvMachine::new())?;
        let mut replicas = HashMap::new();
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some(enc) = name.strip_prefix("replica-of-") {
                    let source = percent_decode(enc);
                    let d = Durable::open(entry.path(), cfg.wal.clone(), KvMachine::new())?;
                    replicas.insert(source, Arc::new(d));
                }
            }
        }
        let metrics = soc_observe::metrics();
        Ok(StoreNode {
            inner: Arc::new(NodeInner {
                id: cfg.id,
                dir,
                wal_cfg: cfg.wal,
                store,
                replicas: RwLock::new(replicas),
                map: RwLock::new(Arc::new(ShardMap::build(0, Vec::new(), 1))),
                peers: RestClient::new(transport),
                pushes: metrics.counter("soc_store_replication_pushes_total", &[]),
                push_failures: metrics.counter("soc_store_replication_failures_total", &[]),
            }),
        })
    }

    /// This node's id.
    pub fn id(&self) -> &str {
        &self.inner.id
    }

    /// Install a new shard map (typically rebuilt from a fresh lease
    /// snapshot). Consumers see it atomically.
    pub fn set_map(&self, map: Arc<ShardMap>) {
        *self.inner.map.write() = map;
    }

    /// The currently installed shard map.
    pub fn map(&self) -> Arc<ShardMap> {
        self.inner.map.read().clone()
    }

    /// The node's own durable machine (primary shards only; replicated
    /// state lives in per-source streams).
    pub fn store(&self) -> &Durable<KvMachine> {
        &self.inner.store
    }

    /// The replica stream for `source`, opened on first use.
    fn replica_for(&self, source: &str) -> StoreResult<Arc<Durable<KvMachine>>> {
        if let Some(d) = self.inner.replicas.read().get(source) {
            return Ok(d.clone());
        }
        let mut replicas = self.inner.replicas.write();
        if let Some(d) = replicas.get(source) {
            return Ok(d.clone());
        }
        let dir = self.inner.dir.join(format!("replica-of-{}", percent_encode(source)));
        let d = Arc::new(Durable::open(dir, self.inner.wal_cfg.clone(), KvMachine::new())?);
        replicas.insert(source.to_string(), d.clone());
        Ok(d)
    }

    /// Highest LSN applied from `source`'s shipped stream.
    pub fn replica_applied(&self, source: &str) -> Lsn {
        self.inner.replicas.read().get(source).map(|d| d.applied_lsn()).unwrap_or(0)
    }

    /// Refuse unless this node is `key`'s primary (an empty map means
    /// standalone mode: every key is local).
    fn check_primary(&self, key: &str) -> StoreResult<()> {
        let map = self.map();
        if map.is_empty() {
            return Ok(());
        }
        match map.primary(key) {
            Some(p) if p.id == self.inner.id => Ok(()),
            p => Err(StoreError::NotPrimary {
                key: key.to_string(),
                primary: p.map(|n| n.endpoint.clone()),
            }),
        }
    }

    /// Write `value` under `key` (primary only). Returns the version.
    pub fn put(&self, key: &str, value: &Value) -> StoreResult<Lsn> {
        self.check_primary(key)?;
        let cmd = KvMachine::put_command(key, value);
        self.inner.store.execute(&cmd)?;
        // The stored version can exceed the LSN after a promotion
        // re-log (versions never regress per key), so read it back.
        let version = self.inner.store.query(|m| m.get(key).map(|(_, l)| l)).unwrap_or_default();
        self.replicate(key, version.max(1), &cmd);
        Ok(version)
    }

    /// Delete `key` (primary only). Returns the tombstone's version.
    pub fn delete(&self, key: &str) -> StoreResult<Lsn> {
        self.check_primary(key)?;
        let cmd = KvMachine::del_command(key);
        let lsn = self.inner.store.execute(&cmd)?;
        self.replicate(key, lsn, &cmd);
        Ok(lsn)
    }

    /// Version-gated merged read. The value is the newest copy across
    /// the node's own state and its replica streams; the gate compares
    /// the reader's floor against the *key's authoritative stream* —
    /// our own log when we primary the key, otherwise the stream
    /// shipped from the key's primary.
    pub fn get(&self, key: &str, min_version: Lsn) -> StoreResult<Option<(Value, Lsn)>> {
        let map = self.map();
        let mut best: Option<(Value, Lsn)> =
            self.inner.store.query(|m| m.get(key).map(|(v, l)| (v.clone(), l)));
        let mut max_watermark = self.inner.store.applied_lsn();
        let replicas = self.inner.replicas.read();
        for d in replicas.values() {
            max_watermark = max_watermark.max(d.applied_lsn());
            if let Some((v, l)) = d.query(|m| m.get(key).map(|(v, l)| (v.clone(), l))) {
                if best.as_ref().map(|(_, bl)| l > *bl).unwrap_or(true) {
                    best = Some((v, l));
                }
            }
        }
        let watermark = match map.primary(key) {
            Some(p) if p.id != self.inner.id => {
                replicas.get(&p.id).map(|d| d.applied_lsn()).unwrap_or(0)
            }
            // We primary the key — or the map is empty and the best
            // cross-stream watermark is the honest answer.
            Some(_) => self.inner.store.applied_lsn(),
            None => max_watermark,
        };
        drop(replicas);
        match best {
            Some((v, l)) if l >= min_version => Ok(Some((v, l))),
            Some((_, l)) => Err(StoreError::Behind { have: l, want: min_version }),
            None if watermark >= min_version => Ok(None),
            None => Err(StoreError::Behind { have: watermark, want: min_version }),
        }
    }

    /// Push `lsn` to every replica owner of `key`. Best-effort: an
    /// unreachable replica is counted and skipped (it catches up later
    /// via [`StoreNode::sync_from`] or the next push's `behind` dance);
    /// a *behind* replica is caught up inline from this node's log.
    fn replicate(&self, key: &str, lsn: Lsn, cmd: &[u8]) {
        let map = self.map();
        for owner in map.owners(key).iter().skip(1) {
            if owner.id == self.inner.id {
                continue;
            }
            let records = vec![(lsn, cmd.to_vec())];
            match self.push_records(&owner.endpoint, &records) {
                Ok(()) => self.inner.pushes.inc(),
                Err(StoreError::Behind { have, .. }) => {
                    // Ship everything the replica is missing.
                    match self
                        .inner
                        .store
                        .wal()
                        .records_after(have)
                        .and_then(|recs| self.push_records(&owner.endpoint, &recs))
                    {
                        Ok(()) => self.inner.pushes.inc(),
                        Err(_) => self.inner.push_failures.inc(),
                    }
                }
                Err(_) => self.inner.push_failures.inc(),
            }
        }
    }

    /// POST a batch of our records to a peer's `/store/replicate`.
    fn push_records(&self, endpoint: &str, records: &[(Lsn, Vec<u8>)]) -> StoreResult<()> {
        let body = records_to_json(&self.inner.id, records);
        match self.inner.peers.post(&format!("{endpoint}/store/replicate"), &body) {
            Ok(_) => Ok(()),
            Err(e) => Err(rest_to_store(e)),
        }
    }

    /// Apply records shipped from primary `source` into its replica
    /// stream. Returns the stream's applied LSN. Gaps surface as
    /// [`StoreError::Behind`] so the shipper knows where to resume.
    pub fn apply_shipped(&self, source: &str, records: &[(Lsn, Vec<u8>)]) -> StoreResult<Lsn> {
        let stream = self.replica_for(source)?;
        if records.is_empty() {
            return Ok(stream.applied_lsn());
        }
        // One group commit for the whole shipment: catch-up cost is a
        // single fsync, not one per record.
        stream.execute_shipped_batch(records)
    }

    /// Pull-side catch-up: ask the peer who it is, fetch its records
    /// after our stream watermark, and apply them. Returns how many
    /// records were applied.
    pub fn sync_from(&self, endpoint: &str) -> StoreResult<usize> {
        let status =
            self.inner.peers.get(&format!("{endpoint}/store/status")).map_err(rest_to_store)?;
        let source = status
            .get("id")
            .and_then(Value::as_str)
            .ok_or(StoreError::Remote("peer status missing id".into()))?
            .to_string();
        if source == self.inner.id {
            return Err(StoreError::Remote("refusing to sync from self".into()));
        }
        let after = self.replica_applied(&source);
        let resp = self
            .inner
            .peers
            .get(&format!("{endpoint}/store/ship?after={after}"))
            .map_err(rest_to_store)?;
        let records = records_from_json(&resp)?;
        let n = records.len();
        self.apply_shipped(&source, &records)?;
        Ok(n)
    }

    /// Failover promotion: re-log `source`'s replicated state into our
    /// own log so we can primary its shards. Versions are carried over
    /// verbatim (they never regress per key), and keys we already hold
    /// at an equal-or-newer version are skipped. Returns how many keys
    /// were adopted.
    pub fn promote(&self, source: &str) -> StoreResult<usize> {
        let Some(stream) = self.inner.replicas.read().get(source).cloned() else {
            return Ok(0);
        };
        let entries: Vec<(String, Value, Lsn)> = stream.query(|m| {
            m.keys().into_iter().filter_map(|k| m.get(&k).map(|(v, l)| (k, v.clone(), l))).collect()
        });
        let mut adopted = 0;
        for (key, value, version) in entries {
            let have = self.inner.store.query(|m| m.get(&key).map(|(_, l)| l)).unwrap_or(0);
            if have >= version {
                continue;
            }
            let cmd = KvMachine::put_versioned_command(&key, &value, version);
            self.inner.store.execute(&cmd)?;
            adopted += 1;
        }
        Ok(adopted)
    }

    /// REST routes exposing this node.
    pub fn router(&self) -> Router {
        let mut r = Router::new();
        let node = self.clone();
        r.put("/store/{key}", move |req, p: PathParams| {
            let key = p.get("key").unwrap_or_default();
            let value = match req.text().ok().and_then(|t| Value::parse(t).ok()) {
                Some(v) => v,
                None => return Response::error(Status::BAD_REQUEST, "body must be JSON"),
            };
            match node.put(key, &value) {
                Ok(lsn) => version_response(lsn),
                Err(e) => store_error_response(e),
            }
        });
        let node = self.clone();
        r.delete("/store/{key}", move |_req, p: PathParams| {
            match node.delete(p.get("key").unwrap_or_default()) {
                Ok(lsn) => version_response(lsn),
                Err(e) => store_error_response(e),
            }
        });
        let node = self.clone();
        r.get("/store/ship", move |req, _p| {
            let after = req.query("after").and_then(|v| v.parse().ok()).unwrap_or(0);
            match node.inner.store.wal().records_after(after) {
                Ok(records) => {
                    Response::json_owned(records_to_json(&node.inner.id, &records).to_compact())
                }
                Err(e) => store_error_response(e),
            }
        });
        let node = self.clone();
        r.get("/store/status", move |_req, _p| {
            let mut status = Value::object();
            status.set("id", node.inner.id.as_str());
            status.set("applied", node.inner.store.applied_lsn() as i64);
            status.set("durable", node.inner.store.wal().durable_lsn() as i64);
            status.set("map_version", node.map().version() as i64);
            status.set("keys", node.inner.store.query(|m| m.len()) as i64);
            let mut streams = Value::object();
            for (source, d) in node.inner.replicas.read().iter() {
                streams.set(source.as_str(), d.applied_lsn() as i64);
            }
            status.set("replica_streams", streams);
            Response::json_owned(status.to_compact())
        });
        let node = self.clone();
        r.post("/store/replicate", move |req, _p| {
            let body = match req.text().ok().and_then(|t| Value::parse(t).ok()) {
                Some(v) => v,
                None => return Response::error(Status::BAD_REQUEST, "body must be JSON"),
            };
            let Some(source) = body.get("source").and_then(Value::as_str).map(str::to_string)
            else {
                return Response::error(Status::BAD_REQUEST, "replicate body missing source");
            };
            let records = match records_from_json(&body) {
                Ok(r) => r,
                Err(_) => return Response::error(Status::BAD_REQUEST, "body must be records"),
            };
            match node.apply_shipped(&source, &records) {
                Ok(applied) => {
                    let mut ok = Value::object();
                    ok.set("applied", applied as i64);
                    Response::json_owned(ok.to_compact())
                }
                Err(e) => store_error_response(e),
            }
        });
        let node = self.clone();
        r.post("/store/map", move |req, _p| {
            let body = match req.text().ok().and_then(|t| Value::parse(t).ok()) {
                Some(v) => v,
                None => return Response::error(Status::BAD_REQUEST, "body must be JSON"),
            };
            match ShardMap::from_json(&body) {
                Ok(map) => {
                    let version = map.version();
                    node.set_map(Arc::new(map));
                    let mut ok = Value::object();
                    ok.set("map_version", version as i64);
                    Response::json_owned(ok.to_compact())
                }
                Err(e) => Response::error(Status::BAD_REQUEST, &format!("bad shard map: {e}")),
            }
        });
        let node = self.clone();
        r.get("/store/{key}", move |req, p: PathParams| {
            let key = p.get("key").unwrap_or_default();
            let min = req.query("min_version").and_then(|v| v.parse().ok()).unwrap_or(0);
            match node.get(key, min) {
                Ok(Some((value, version))) => {
                    let mut body = Value::object();
                    body.set("key", key);
                    body.set("value", value);
                    body.set("version", version as i64);
                    Response::json_owned(body.to_compact())
                }
                Ok(None) => Response::error(Status::NOT_FOUND, &format!("no key {key:?}")),
                Err(e) => store_error_response(e),
            }
        });
        r
    }
}

/// `{"source":"...","records":[{"lsn":N,"command":"..."}]}` — commands
/// are the KV machine's JSON command strings, so they embed as text.
fn records_to_json(source: &str, records: &[(Lsn, Vec<u8>)]) -> Value {
    let items: Vec<Value> = records
        .iter()
        .map(|(lsn, cmd)| {
            let mut item = Value::object();
            item.set("lsn", *lsn as i64);
            item.set("command", String::from_utf8_lossy(cmd).into_owned());
            item
        })
        .collect();
    let mut body = Value::object();
    body.set("source", source);
    body.set("records", Value::Array(items));
    body
}

fn records_from_json(body: &Value) -> StoreResult<Vec<(Lsn, Vec<u8>)>> {
    let items = body
        .get("records")
        .and_then(Value::as_array)
        .ok_or(StoreError::Remote("replicate body missing records".into()))?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let lsn = item
            .get("lsn")
            .and_then(Value::as_i64)
            .ok_or(StoreError::Remote("record missing lsn".into()))? as Lsn;
        let cmd = item
            .get("command")
            .and_then(Value::as_str)
            .ok_or(StoreError::Remote("record missing command".into()))?;
        out.push((lsn, cmd.as_bytes().to_vec()));
    }
    Ok(out)
}

fn version_response(lsn: Lsn) -> Response {
    let mut body = Value::object();
    body.set("version", lsn as i64);
    Response::json_owned(body.to_compact())
}

/// Map store errors onto the wire: routing and staleness conditions are
/// `409` with a machine-readable body; everything else is `500`.
fn store_error_response(e: StoreError) -> Response {
    match e {
        StoreError::NotPrimary { key, primary } => {
            let mut body = Value::object();
            body.set("error", "not_primary");
            body.set("key", key.as_str());
            match primary {
                Some(p) => body.set("primary", p.as_str()),
                None => body.set("primary", Value::Null),
            }
            Response::new(Status::CONFLICT).with_text("application/json", &body.to_compact())
        }
        StoreError::Behind { have, want } => {
            let mut body = Value::object();
            body.set("error", "behind");
            body.set("have", have as i64);
            body.set("want", want as i64);
            Response::new(Status::CONFLICT).with_text("application/json", &body.to_compact())
        }
        other => Response::error(Status::INTERNAL_SERVER_ERROR, &other.to_string()),
    }
}

fn rest_to_store(e: RestError) -> StoreError {
    if let RestError::Status { status, body } = &e {
        if *status == Status::CONFLICT {
            if let Ok(v) = Value::parse(body) {
                match v.get("error").and_then(Value::as_str) {
                    Some("behind") => {
                        return StoreError::Behind {
                            have: v.get("have").and_then(Value::as_i64).unwrap_or(0) as Lsn,
                            want: v.get("want").and_then(Value::as_i64).unwrap_or(0) as Lsn,
                        }
                    }
                    Some("not_primary") => {
                        return StoreError::NotPrimary {
                            key: v
                                .get("key")
                                .and_then(Value::as_str)
                                .unwrap_or_default()
                                .to_string(),
                            primary: v.get("primary").and_then(Value::as_str).map(str::to_string),
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    StoreError::Remote(e.to_string())
}

/// A shard-aware store client with read-your-writes sessions.
pub struct StoreClient {
    rest: RestClient,
    map: RwLock<Arc<ShardMap>>,
    /// Per-key version floor: the LSN each of this client's writes was
    /// assigned, demanded back on every later read of the same key.
    sessions: Mutex<HashMap<String, Lsn>>,
}

impl StoreClient {
    /// Client over `transport`, with an empty map until
    /// [`StoreClient::set_map`] installs one.
    pub fn new(transport: Arc<dyn Transport>) -> StoreClient {
        StoreClient {
            rest: RestClient::new(transport),
            map: RwLock::new(Arc::new(ShardMap::build(0, Vec::new(), 1))),
            sessions: Mutex::new(HashMap::new()),
        }
    }

    /// Install the shard map the client routes by.
    pub fn set_map(&self, map: Arc<ShardMap>) {
        *self.map.write() = map;
    }

    /// The installed map.
    pub fn map(&self) -> Arc<ShardMap> {
        self.map.read().clone()
    }

    /// The session's version floor for `key` (0 = never written).
    pub fn session_version(&self, key: &str) -> Lsn {
        self.sessions.lock().get(key).copied().unwrap_or(0)
    }

    /// Write `value` under `key` through the key's primary.
    pub fn put(&self, key: &str, value: &Value) -> StoreResult<Lsn> {
        self.write(key, Some(value))
    }

    /// Delete `key` through its primary.
    pub fn delete(&self, key: &str) -> StoreResult<Lsn> {
        self.write(key, None)
    }

    fn write(&self, key: &str, value: Option<&Value>) -> StoreResult<Lsn> {
        let map = self.map();
        let primary = map
            .primary(key)
            .ok_or(StoreError::Remote("shard map has no nodes".into()))?
            .endpoint
            .clone();
        match self.write_at(&primary, key, value) {
            // A stale client map routed to the wrong node; follow the
            // authoritative hint once.
            Err(StoreError::NotPrimary { primary: Some(hint), .. }) if hint != primary => {
                self.write_at(&hint, key, value)
            }
            other => other,
        }
    }

    fn write_at(&self, endpoint: &str, key: &str, value: Option<&Value>) -> StoreResult<Lsn> {
        let url = format!("{endpoint}/store/{}", percent_encode(key));
        let resp = match value {
            Some(v) => self.rest.put(&url, v),
            None => self.rest.delete(&url),
        }
        .map_err(rest_to_store)?;
        let version = resp
            .get("version")
            .and_then(Value::as_i64)
            .ok_or(StoreError::Remote("write response missing version".into()))?
            as Lsn;
        self.sessions.lock().insert(key.to_string(), version);
        Ok(version)
    }

    /// Read `key`, demanding at least this session's last written
    /// version. Owners are tried replica-first (the cheapest copy that
    /// can prove freshness wins) and the primary is the last resort —
    /// a behind or unreachable replica silently falls through.
    pub fn get(&self, key: &str) -> StoreResult<Option<(Value, Lsn)>> {
        let floor = self.session_version(key);
        let map = self.map();
        let owners = map.owners(key);
        if owners.is_empty() {
            return Err(StoreError::Remote("shard map has no nodes".into()));
        }
        let mut last_err = None;
        for owner in owners.iter().rev() {
            let url =
                format!("{}/store/{}?min_version={floor}", owner.endpoint, percent_encode(key));
            match self.rest.get(&url) {
                Ok(resp) => {
                    let value = resp.get("value").cloned().unwrap_or(Value::Null);
                    let version = resp.get("version").and_then(Value::as_i64).unwrap_or(0) as Lsn;
                    return Ok(Some((value, version)));
                }
                Err(RestError::Status { status, .. }) if status == Status::NOT_FOUND => {
                    return Ok(None)
                }
                Err(e) => last_err = Some(rest_to_store(e)),
            }
        }
        Err(last_err.unwrap_or(StoreError::Remote("no owner answered".into())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TempDir;
    use soc_http::MemNetwork;
    use soc_json::json;

    struct Cluster {
        net: Arc<MemNetwork>,
        nodes: Vec<StoreNode>,
        _dirs: Vec<TempDir>,
    }

    /// `n` nodes hosted as `mem://s{i}` sharing one map.
    fn cluster(n: usize, replication: usize) -> Cluster {
        let net = Arc::new(MemNetwork::new());
        let shard_nodes: Vec<crate::shard::ShardNode> = (0..n)
            .map(|i| crate::shard::ShardNode {
                id: format!("s{i}"),
                endpoint: format!("mem://s{i}"),
            })
            .collect();
        let map = Arc::new(ShardMap::build(1, shard_nodes, replication));
        let mut nodes = Vec::new();
        let mut dirs = Vec::new();
        for i in 0..n {
            let dir = TempDir::new(&format!("node-{i}"));
            let node = StoreNode::open(
                StoreNodeConfig::new(&format!("s{i}")),
                dir.path(),
                net.clone() as Arc<dyn Transport>,
            )
            .unwrap();
            node.set_map(map.clone());
            net.host(&format!("s{i}"), node.router());
            nodes.push(node);
            dirs.push(dir);
        }
        Cluster { net, nodes, _dirs: dirs }
    }

    fn client(c: &Cluster) -> StoreClient {
        let client = StoreClient::new(c.net.clone() as Arc<dyn Transport>);
        client.set_map(c.nodes[0].map());
        client
    }

    #[test]
    fn writes_route_to_primary_and_replicate() {
        let c = cluster(3, 2);
        let cl = client(&c);
        for i in 0..20 {
            cl.put(&format!("key-{i}"), &json!({ "n": i })).unwrap();
        }
        // Every owner of every key holds the write — the primary in its
        // own log, replicas in the primary's shipped stream.
        let map = c.nodes[0].map();
        for i in 0..20 {
            let key = format!("key-{i}");
            for owner in map.owners(&key) {
                let idx: usize = owner.id[1..].parse().unwrap();
                let got = c.nodes[idx].get(&key, 0).unwrap();
                assert!(got.is_some(), "owner {} missing {key}", owner.id);
            }
        }
    }

    #[test]
    fn read_your_writes_falls_back_to_primary_when_replica_is_behind() {
        let c = cluster(3, 2);
        let cl = client(&c);
        let v = cl.put("wanted", &json!("fresh")).unwrap();
        // Write directly on the primary's store without replication
        // (simulates a replica that lost the push), then bump the
        // session floor past what replicas have: a replica read must
        // refuse and the client must fall back to the primary.
        let primary_id = c.nodes[0].map().primary("wanted").unwrap().id.clone();
        let primary_idx: usize = primary_id[1..].parse().unwrap();
        let cmd = KvMachine::put_command("wanted", &json!("fresher"));
        c.nodes[primary_idx].store().execute(&cmd).unwrap();
        let v2 = c.nodes[primary_idx].store().applied_lsn();
        assert!(v2 > v);
        cl.sessions.lock().insert("wanted".into(), v2);
        let (value, version) = cl.get("wanted").unwrap().expect("value");
        assert_eq!(value, json!("fresher"));
        assert_eq!(version, v2);
    }

    #[test]
    fn stale_client_map_is_corrected_by_not_primary_hint() {
        let c = cluster(3, 2);
        let cl = client(&c);
        // Find a key s0 does not own at all (else replication would
        // legitimately hand it a copy), then give the client a one-node
        // map that routes everything to s0.
        let map = c.nodes[0].map();
        let key = (0..200)
            .map(|i| format!("k-{i}"))
            .find(|k| !map.owns("s0", k))
            .expect("some key lands entirely off s0");
        cl.set_map(Arc::new(ShardMap::build(
            99,
            vec![crate::shard::ShardNode { id: "s0".into(), endpoint: "mem://s0".into() }],
            1,
        )));
        let v = cl.put(&key, &json!(1)).unwrap();
        assert!(v >= 1);
        // The hint routed the write to the true primary.
        let primary_idx: usize = map.primary(&key).unwrap().id[1..].parse().unwrap();
        assert!(c.nodes[primary_idx].get(&key, 0).unwrap().is_some());
        // s0 never stored it.
        assert!(c.nodes[0].get(&key, 0).unwrap().is_none());
    }

    #[test]
    fn late_replica_catches_up_via_log_shipping() {
        let net = Arc::new(MemNetwork::new());
        let dir_a = TempDir::new("ship-a");
        let dir_b = TempDir::new("ship-b");
        let a = StoreNode::open(
            StoreNodeConfig::new("a"),
            dir_a.path(),
            net.clone() as Arc<dyn Transport>,
        )
        .unwrap();
        net.host("a", a.router());
        for i in 0..30 {
            a.put(&format!("k{i}"), &json!(i)).unwrap();
        }
        // A replica that joins after the fact pulls the whole log.
        let b = StoreNode::open(
            StoreNodeConfig::new("b"),
            dir_b.path(),
            net.clone() as Arc<dyn Transport>,
        )
        .unwrap();
        assert_eq!(b.sync_from("mem://a").unwrap(), 30);
        assert_eq!(b.replica_applied("a"), a.store().applied_lsn());
        assert_eq!(b.get("k29", 30).unwrap().unwrap().0, json!(29));
        // Idempotent: a second sync ships nothing.
        assert_eq!(b.sync_from("mem://a").unwrap(), 0);
    }

    #[test]
    fn promotion_adopts_replicated_state_with_versions() {
        let c = cluster(2, 2);
        let cl = client(&c);
        let mut versions = HashMap::new();
        for i in 0..12 {
            let key = format!("key-{i}");
            let v = cl.put(&key, &json!(i)).unwrap();
            versions.insert(key, v);
        }
        // s0 dies; s1 promotes s0's stream and becomes sole owner.
        let survivor = c.nodes[1].clone();
        let adopted = survivor.promote("s0").unwrap();
        assert!(adopted > 0, "survivor adopts the dead primary's keys");
        let solo = Arc::new(ShardMap::build(
            2,
            vec![crate::shard::ShardNode { id: "s1".into(), endpoint: "mem://s1".into() }],
            2,
        ));
        survivor.set_map(solo.clone());
        cl.set_map(solo);
        // Every key is readable at (at least) its original version —
        // the old session floors still hold.
        for (key, v) in &versions {
            let (_, got) = cl.get(key).unwrap().expect("promoted key");
            assert!(got >= *v, "{key}: {got} < {v}");
        }
        // New writes never regress a promoted key's version.
        for (key, v) in &versions {
            let nv = cl.put(key, &json!("new")).unwrap();
            assert!(nv > *v, "{key}: new version {nv} <= old {v}");
        }
    }

    #[test]
    fn status_route_reports_progress() {
        let c = cluster(1, 1);
        let cl = client(&c);
        cl.put("x", &json!(1)).unwrap();
        let rest = RestClient::new(c.net.clone() as Arc<dyn Transport>);
        let status = rest.get("mem://s0/store/status").unwrap();
        assert_eq!(status.get("id").and_then(Value::as_str), Some("s0"));
        assert_eq!(status.get("applied").and_then(Value::as_i64), Some(1));
        assert_eq!(status.get("keys").and_then(Value::as_i64), Some(1));
    }

    #[test]
    fn node_restart_recovers_own_and_replicated_state() {
        let net = Arc::new(MemNetwork::new());
        let dir = TempDir::new("restart");
        {
            let node = StoreNode::open(
                StoreNodeConfig::new("solo"),
                dir.path(),
                net.clone() as Arc<dyn Transport>,
            )
            .unwrap();
            node.put("persist", &json!({ "v": 7 })).unwrap();
            node.put("doomed", &json!(0)).unwrap();
            node.delete("doomed").unwrap();
            // Also feed a replica stream from a fictional peer.
            node.apply_shipped("peer#1", &[(1, KvMachine::put_command("shipped", &json!(9)))])
                .unwrap();
        }
        let node = StoreNode::open(
            StoreNodeConfig::new("solo"),
            dir.path(),
            net.clone() as Arc<dyn Transport>,
        )
        .unwrap();
        let (v, ver) = node.get("persist", 1).unwrap().unwrap();
        assert_eq!(v, json!({ "v": 7 }));
        assert_eq!(ver, 1);
        assert!(node.get("doomed", 0).unwrap().is_none());
        // The replica stream reopened too (percent-encoded dir name).
        assert_eq!(node.replica_applied("peer#1"), 1);
        assert_eq!(node.get("shipped", 0).unwrap().unwrap().0, json!(9));
    }
}
