//! # soc-observe — distributed tracing + unified metrics plane
//!
//! The dependability layer of the stack (the paper's unit 6): you
//! cannot fix what you cannot see. This crate provides
//!
//! - a **tracing core** — [`TraceId`]/[`SpanId`], [`Span`] guards with
//!   timed start/stop, status and key/value attributes, recorded into a
//!   sharded ring-buffer [`SpanStore`] with head-based probabilistic
//!   sampling and optional tail sampling that keeps error traces even
//!   when head sampling dropped them ([`set_tail_keep_errors`]);
//! - **context propagation** — a W3C-`traceparent`-style header
//!   ([`TraceContext::to_traceparent`] /
//!   [`TraceContext::parse_traceparent`]) plus a thread-local current
//!   context that transports inject and servers extract, so a request
//!   crossing gateway → SOAP/REST dispatch → workflow activities yields
//!   one coherent trace tree;
//! - a **unified [`MetricsRegistry`]** — counters / gauges /
//!   fixed-bucket histograms registered by name + labels and rendered
//!   as Prometheus-style text.
//!
//! Everything hangs off one process-wide [`global`] instance so any
//! crate can record without plumbing handles; `soc-http` mounts the
//! `/observe/metrics` and `/observe/traces/{id}` endpoints over it.
//! Unsampled spans cost well under a microsecond (no allocation, no
//! store write) — budgeted by the `observe` bench.

pub mod context;
pub mod metrics;
pub mod otlp;
pub mod span;
pub mod store;
pub mod tail;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

pub use context::{ContextGuard, SpanId, TraceContext, TraceId, TRACEPARENT};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, LATENCY_BUCKETS_US};
pub use otlp::OtlpExporter;
pub use span::{child_span, root_span, span, Span, SpanKind, SpanRecord, SpanStatus};
pub use store::SpanStore;

/// The process-wide observability plane: span store + metrics registry
/// + the head-based sampling rate.
pub struct Observability {
    store: SpanStore,
    metrics: MetricsRegistry,
    /// f64 bits of the sampling probability in `[0, 1]`.
    sample_rate: AtomicU64,
    /// Tail sampling: when set, error traces are kept even if head
    /// sampling dropped them (see [`crate::tail`]).
    tail_keep_errors: AtomicBool,
    pub(crate) tail: tail::TailBuffer,
}

impl Observability {
    /// A fresh plane sampling every trace (rate 1.0).
    pub fn new() -> Observability {
        Observability {
            store: SpanStore::default(),
            metrics: MetricsRegistry::new(),
            sample_rate: AtomicU64::new(1.0f64.to_bits()),
            tail_keep_errors: AtomicBool::new(false),
            tail: tail::TailBuffer::default(),
        }
    }

    /// The span store.
    pub fn store(&self) -> &SpanStore {
        &self.store
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Set the head-based sampling probability (clamped to `[0, 1]`;
    /// applies to new trace roots only — in-flight traces keep their
    /// decision).
    pub fn set_sample_rate(&self, rate: f64) {
        self.sample_rate.store(rate.clamp(0.0, 1.0).to_bits(), Ordering::Relaxed);
    }

    /// The current head-based sampling probability.
    pub fn sample_rate(&self) -> f64 {
        f64::from_bits(self.sample_rate.load(Ordering::Relaxed))
    }

    /// Enable/disable tail sampling: when on, spans of head-unsampled
    /// traces are buffered and the whole trace is retained if any of
    /// its spans errors (see [`crate::tail`]). Off by default — the
    /// unsampled fast path stays allocation-free when off.
    pub fn set_tail_keep_errors(&self, enabled: bool) {
        self.tail_keep_errors.store(enabled, Ordering::Relaxed);
    }

    /// Whether tail sampling is on.
    pub fn tail_keep_errors(&self) -> bool {
        self.tail_keep_errors.load(Ordering::Relaxed)
    }

    /// One head-based sampling decision.
    pub(crate) fn sample(&self) -> bool {
        let rate = self.sample_rate();
        if rate >= 1.0 {
            true
        } else if rate <= 0.0 {
            false
        } else {
            // 53 uniform mantissa bits → [0, 1).
            let u = (context::next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            u < rate
        }
    }
}

impl Default for Observability {
    fn default() -> Self {
        Observability::new()
    }
}

/// The process-wide observability plane.
pub fn global() -> &'static Observability {
    static GLOBAL: OnceLock<Observability> = OnceLock::new();
    GLOBAL.get_or_init(Observability::new)
}

/// Shorthand for [`global`]`().metrics()`.
pub fn metrics() -> &'static MetricsRegistry {
    global().metrics()
}

/// Shorthand for [`global`]`().store()`.
pub fn store() -> &'static SpanStore {
    global().store()
}

/// Set the global head-based sampling rate (see
/// [`Observability::set_sample_rate`]).
pub fn set_sample_rate(rate: f64) {
    global().set_sample_rate(rate);
}

/// Enable/disable global tail sampling (see
/// [`Observability::set_tail_keep_errors`]).
pub fn set_tail_keep_errors(enabled: bool) {
    global().set_tail_keep_errors(enabled);
}

/// The JSON tree served on `/observe/traces/{trace_id}`: the trace id,
/// its span count, and every retained span (start-ordered, with
/// `parent_span_id` links).
pub fn trace_json(trace_id: TraceId) -> Option<soc_json::Value> {
    let spans = store().trace(trace_id);
    if spans.is_empty() {
        return None;
    }
    let mut root = soc_json::Value::Object(vec![]);
    root.set("trace_id", trace_id.to_hex());
    root.set("span_count", spans.len() as i64);
    root.set("spans", soc_json::Value::Array(spans.iter().map(SpanRecord::to_json).collect()));
    Some(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_rate_clamps_and_round_trips() {
        let obs = Observability::new();
        assert!((obs.sample_rate() - 1.0).abs() < f64::EPSILON);
        obs.set_sample_rate(2.5);
        assert!((obs.sample_rate() - 1.0).abs() < f64::EPSILON);
        obs.set_sample_rate(-1.0);
        assert!(obs.sample_rate().abs() < f64::EPSILON);
        assert!(!obs.sample());
        obs.set_sample_rate(0.25);
        let hits = (0..4096).filter(|_| obs.sample()).count();
        // 4σ ≈ ±110 around the 1024 expectation.
        assert!((900..1150).contains(&hits), "sampler badly biased: {hits}/4096");
    }

    #[test]
    fn trace_json_shape() {
        let mut s = root_span("test.json", SpanKind::Server);
        s.set_attr("svc", "quotes");
        let trace = s.context().trace_id;
        {
            let _g = s.activate();
            span("test.json.child", SpanKind::Internal).finish();
        }
        drop(s);
        let v = trace_json(trace).unwrap();
        assert_eq!(
            v.pointer("/trace_id").and_then(soc_json::Value::as_str),
            Some(trace.to_hex()).as_deref()
        );
        assert_eq!(v.pointer("/span_count").and_then(soc_json::Value::as_i64), Some(2));
        let spans = v.pointer("/spans").unwrap();
        let names: Vec<&str> = (0..2)
            .map(|i| {
                spans.pointer(&format!("/{i}/name")).and_then(soc_json::Value::as_str).unwrap()
            })
            .collect();
        assert!(names.contains(&"test.json"));
        assert!(names.contains(&"test.json.child"));
        assert!(trace_json(TraceId(0xdead)).is_none());
    }
}
