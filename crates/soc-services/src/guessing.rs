//! The random-number guessing game service — the repository's "hello
//! world" of stateful services.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Feedback for one guess.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feedback {
    /// Guess is below the secret.
    Higher,
    /// Guess is above the secret.
    Lower,
    /// Guess is the secret; the game is over.
    Correct {
        /// Guesses used, including this one.
        attempts: u32,
    },
    /// The game already finished.
    GameOver,
}

struct Game {
    secret: u32,
    max: u32,
    attempts: u32,
    finished: bool,
}

/// The guessing-game service: many concurrent games, each identified by
/// the id returned from [`GuessingGame::start`].
pub struct GuessingGame {
    games: Mutex<HashMap<u64, Game>>,
    next_id: AtomicU64,
    seed: AtomicU64,
}

impl GuessingGame {
    /// Service seeded for reproducible secrets.
    pub fn new(seed: u64) -> Self {
        GuessingGame {
            games: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            seed: AtomicU64::new(seed),
        }
    }

    /// Start a game with a secret in `1..=max`. Returns the game id.
    pub fn start(&self, max: u32) -> Result<u64, String> {
        if max < 2 {
            return Err("max must be at least 2".into());
        }
        let seed = self.seed.fetch_add(0x9E37_79B9, Ordering::Relaxed);
        let secret = StdRng::seed_from_u64(seed).gen_range(1..=max);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.games.lock().insert(id, Game { secret, max, attempts: 0, finished: false });
        Ok(id)
    }

    /// Make a guess.
    pub fn guess(&self, game_id: u64, guess: u32) -> Result<Feedback, String> {
        let mut games = self.games.lock();
        let game = games.get_mut(&game_id).ok_or("no such game")?;
        if game.finished {
            return Ok(Feedback::GameOver);
        }
        if guess == 0 || guess > game.max {
            return Err(format!("guess must be in 1..={}", game.max));
        }
        game.attempts += 1;
        Ok(match guess.cmp(&game.secret) {
            std::cmp::Ordering::Less => Feedback::Higher,
            std::cmp::Ordering::Greater => Feedback::Lower,
            std::cmp::Ordering::Equal => {
                game.finished = true;
                Feedback::Correct { attempts: game.attempts }
            }
        })
    }

    /// Forfeit and reveal the secret (ends the game).
    pub fn reveal(&self, game_id: u64) -> Result<u32, String> {
        let mut games = self.games.lock();
        let game = games.get_mut(&game_id).ok_or("no such game")?;
        game.finished = true;
        Ok(game.secret)
    }

    /// Number of games currently tracked.
    pub fn active_games(&self) -> usize {
        self.games.lock().len()
    }
}

/// Optimal strategy: binary search. Returns the attempts used — handy
/// both as a test oracle and as the workflow example's "player".
pub fn binary_search_play(svc: &GuessingGame, game_id: u64, max: u32) -> Result<u32, String> {
    let (mut lo, mut hi) = (1u32, max);
    loop {
        let mid = lo + (hi - lo) / 2;
        match svc.guess(game_id, mid)? {
            Feedback::Correct { attempts } => return Ok(attempts),
            Feedback::Higher => lo = mid + 1,
            Feedback::Lower => hi = mid - 1,
            Feedback::GameOver => return Err("game already over".into()),
        }
        if lo > hi {
            return Err("inconsistent feedback".into());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn game_lifecycle() {
        let svc = GuessingGame::new(7);
        let id = svc.start(100).unwrap();
        let secret = {
            // Play binary search; must find it within ceil(log2(100)) = 7.
            let attempts = binary_search_play(&svc, id, 100).unwrap();
            assert!(attempts <= 7, "binary search took {attempts}");
            attempts
        };
        assert!(secret >= 1);
        // Finished games report GameOver.
        assert_eq!(svc.guess(id, 1).unwrap(), Feedback::GameOver);
    }

    #[test]
    fn feedback_directions_are_correct() {
        let svc = GuessingGame::new(1);
        let id = svc.start(50).unwrap();
        let secret = svc.reveal(id).unwrap();
        assert!((1..=50).contains(&secret));
        // Fresh game with known secret via a replayed seed is awkward;
        // instead verify directions against the revealed value on a new
        // game by brute force.
        let id2 = svc.start(50).unwrap();
        let mut found = None;
        for g in 1..=50 {
            match svc.guess(id2, g).unwrap() {
                Feedback::Correct { .. } => {
                    found = Some(g);
                    break;
                }
                Feedback::Higher => {}
                other => panic!("ascending scan got {other:?} at {g}"),
            }
        }
        assert!(found.is_some());
    }

    #[test]
    fn out_of_range_guesses_rejected() {
        let svc = GuessingGame::new(2);
        let id = svc.start(10).unwrap();
        assert!(svc.guess(id, 0).is_err());
        assert!(svc.guess(id, 11).is_err());
        assert!(svc.guess(999, 5).is_err());
    }

    #[test]
    fn tiny_ranges_rejected() {
        let svc = GuessingGame::new(3);
        assert!(svc.start(1).is_err());
        assert!(svc.start(2).is_ok());
    }

    #[test]
    fn concurrent_games_are_independent() {
        let svc = std::sync::Arc::new(GuessingGame::new(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let svc = svc.clone();
            handles.push(std::thread::spawn(move || {
                let id = svc.start(1000).unwrap();
                binary_search_play(&svc, id, 1000).unwrap()
            }));
        }
        for h in handles {
            let attempts = h.join().unwrap();
            assert!(attempts <= 10);
        }
        assert_eq!(svc.active_games(), 4);
    }

    #[test]
    fn secrets_vary_across_games() {
        let svc = GuessingGame::new(5);
        let mut secrets = std::collections::HashSet::new();
        for _ in 0..20 {
            let id = svc.start(1_000_000).unwrap();
            secrets.insert(svc.reveal(id).unwrap());
        }
        assert!(secrets.len() > 15, "secrets look constant: {secrets:?}");
    }
}
