//! # soc-webapp — web applications and state management (CSE445 unit 5)
//!
//! The course unit covers *"the models of Web applications, structure of
//! Web applications, state management in Web applications"*; its final
//! project is Figure 4's account application: *"an end user applies for
//! an account by submitting necessary information. The provider issues
//! a user ID if the application is approved. Using the ID, the end user
//! can create password and then access the system"*, with a credit-score
//! web service on the provider side and storage in `account.xml`.
//!
//! - [`session`] — server-side sessions keyed by an opaque cookie.
//! - [`viewstate`] — client-side round-tripped state with a tamper MAC
//!   (the ASP.NET-style alternative the course contrasts sessions with).
//! - [`templates`] — a minimal `{{var}}` / `{{#if}}` HTML template
//!   engine with escaping (XSS-safe by default).
//! - [`account_app`] — the Figure 4 application, end to end: subscribe
//!   → credit check (remote service) → user ID issuance → password
//!   creation (strength + match checks) → login → session-guarded home,
//!   persisted as an `account.xml` document via `soc-xml`.

pub mod account_app;
pub mod session;
pub mod templates;
pub mod viewstate;
