//! Figure 3 as a Criterion bench: Collatz validation, sequential vs
//! parallel, static vs dynamic scheduling, plus a chunk-size ablation —
//! the measured side of the speedup/efficiency figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soc_parallel::workloads::{validate_parallel, validate_sequential};
use soc_parallel::{Schedule, ThreadPool};

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(900))
        .warm_up_time(std::time::Duration::from_millis(200))
}

fn bench_collatz(c: &mut Criterion) {
    const LIMIT: u64 = 30_000;
    let mut group = c.benchmark_group("fig3_collatz");

    group.bench_function("sequential", |b| {
        b.iter(|| validate_sequential(std::hint::black_box(LIMIT)))
    });

    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut thread_counts = vec![1usize, 2, 4, host.max(1)];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    for threads in thread_counts {
        let pool = ThreadPool::new(threads);
        group.bench_with_input(BenchmarkId::new("parallel_dynamic", threads), &threads, |b, _| {
            b.iter(|| {
                validate_parallel(
                    &pool,
                    std::hint::black_box(LIMIT),
                    Schedule::Dynamic { chunk: 512 },
                )
            })
        });
    }

    // Scheduling ablation: static partitioning suffers on Collatz's
    // irregular trajectory lengths; dynamic chunking balances it.
    let pool = ThreadPool::new(host.max(2));
    group.bench_function("schedule/static", |b| {
        b.iter(|| validate_parallel(&pool, LIMIT, Schedule::Static))
    });
    for chunk in [64usize, 512, 4096] {
        group.bench_with_input(
            BenchmarkId::new("schedule/dynamic_chunk", chunk),
            &chunk,
            |b, &chunk| b.iter(|| validate_parallel(&pool, LIMIT, Schedule::Dynamic { chunk })),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_collatz
}
criterion_main!(benches);
