/root/repo/target/debug/deps/fig2_fsm-e7fef476bcca231a.d: crates/soc-bench/src/bin/fig2_fsm.rs

/root/repo/target/debug/deps/fig2_fsm-e7fef476bcca231a: crates/soc-bench/src/bin/fig2_fsm.rs

crates/soc-bench/src/bin/fig2_fsm.rs:
