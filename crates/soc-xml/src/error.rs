//! Error type shared by every layer of the XML stack.

use std::fmt;

/// Position inside the input, tracked as both byte offset and
/// line/column (1-based) so error messages point at the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Position {
    /// Byte offset from the start of the input.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes, not grapheme clusters).
    pub column: u32,
}

impl Position {
    /// The start of the input.
    pub fn start() -> Self {
        Position { offset: 0, line: 1, column: 1 }
    }

    /// Advance the position over one byte of input.
    pub fn advance(&mut self, byte: u8) {
        self.offset += 1;
        if byte == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
    }

    /// Advance over a whole slice at once (bulk twin of [`advance`],
    /// used by the reader so hot scans don't pay per-byte bookkeeping).
    ///
    /// [`advance`]: Position::advance
    pub fn advance_str(&mut self, s: &str) {
        self.offset += s.len();
        let mut newlines = 0u32;
        let mut last_nl = None;
        for (i, b) in s.bytes().enumerate() {
            if b == b'\n' {
                newlines += 1;
                last_nl = Some(i);
            }
        }
        match last_nl {
            Some(i) => {
                self.line += newlines;
                self.column = (s.len() - i) as u32;
            }
            None => self.column += s.len() as u32,
        }
    }

    /// Compute the position of byte `offset` within `input` by scanning
    /// the prefix once. The reader tracks only byte offsets on its hot
    /// path and materializes line/column lazily — here, exactly when an
    /// error (or an explicit position query) needs them.
    pub fn locate(input: &str, offset: usize) -> Position {
        let prefix = &input.as_bytes()[..offset.min(input.len())];
        let line = 1 + crate::scan::count_byte(prefix, b'\n') as u32;
        let column = match crate::scan::rfind_byte(prefix, b'\n') {
            Some(i) => (prefix.len() - i) as u32,
            None => prefix.len() as u32 + 1,
        };
        Position { offset, line, column }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Errors produced while lexing, parsing, or navigating XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Input ended in the middle of a construct.
    UnexpectedEof { pos: Position, expected: &'static str },
    /// A byte that cannot start or continue the current construct.
    Unexpected { pos: Position, found: char, expected: &'static str },
    /// A closing tag did not match the open element.
    MismatchedTag { pos: Position, open: String, close: String },
    /// `</x>` with no matching `<x>`.
    UnbalancedClose { pos: Position, name: String },
    /// An entity reference that is not one of the predefined five or a
    /// well-formed character reference.
    BadEntity { pos: Position, entity: String },
    /// The same attribute appeared twice on one element.
    DuplicateAttribute { pos: Position, name: String },
    /// The document has no root element, or text outside the root.
    NotWellFormed { pos: Position, detail: String },
    /// Invalid UTF-8 or a character not allowed in XML.
    BadChar { pos: Position, detail: String },
    /// XPath expression syntax error.
    XPathSyntax { detail: String },
    /// Attempt to use a [`crate::NodeId`] from another document.
    ForeignNode,
}

impl XmlError {
    /// Replace the recorded position. The reader raises errors from
    /// position-blind helpers (which see only a slice) and re-anchors
    /// them to the source document here.
    pub(crate) fn at(mut self, at: Position) -> XmlError {
        match &mut self {
            XmlError::UnexpectedEof { pos, .. }
            | XmlError::Unexpected { pos, .. }
            | XmlError::MismatchedTag { pos, .. }
            | XmlError::UnbalancedClose { pos, .. }
            | XmlError::BadEntity { pos, .. }
            | XmlError::DuplicateAttribute { pos, .. }
            | XmlError::NotWellFormed { pos, .. }
            | XmlError::BadChar { pos, .. } => *pos = at,
            XmlError::XPathSyntax { .. } | XmlError::ForeignNode => {}
        }
        self
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { pos, expected } => {
                write!(f, "{pos}: unexpected end of input, expected {expected}")
            }
            XmlError::Unexpected { pos, found, expected } => {
                write!(f, "{pos}: unexpected {found:?}, expected {expected}")
            }
            XmlError::MismatchedTag { pos, open, close } => {
                write!(f, "{pos}: closing tag </{close}> does not match <{open}>")
            }
            XmlError::UnbalancedClose { pos, name } => {
                write!(f, "{pos}: closing tag </{name}> with no open element")
            }
            XmlError::BadEntity { pos, entity } => {
                write!(f, "{pos}: unknown or malformed entity &{entity};")
            }
            XmlError::DuplicateAttribute { pos, name } => {
                write!(f, "{pos}: duplicate attribute {name:?}")
            }
            XmlError::NotWellFormed { pos, detail } => {
                write!(f, "{pos}: document not well-formed: {detail}")
            }
            XmlError::BadChar { pos, detail } => write!(f, "{pos}: {detail}"),
            XmlError::XPathSyntax { detail } => write!(f, "xpath syntax error: {detail}"),
            XmlError::ForeignNode => write!(f, "node id belongs to a different document"),
        }
    }
}

impl std::error::Error for XmlError {}

/// Convenience alias used across the crate.
pub type XmlResult<T> = Result<T, XmlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_tracks_lines_and_columns() {
        let mut p = Position::start();
        for b in b"ab\ncd" {
            p.advance(*b);
        }
        assert_eq!(p.offset, 5);
        assert_eq!(p.line, 2);
        assert_eq!(p.column, 3);
    }

    #[test]
    fn bulk_advance_matches_per_byte() {
        for input in ["abc", "a\nb\ncd", "\n", "", "líne\nmore"] {
            let mut per_byte = Position::start();
            for b in input.bytes() {
                per_byte.advance(b);
            }
            let mut bulk = Position::start();
            bulk.advance_str(input);
            assert_eq!(per_byte, bulk, "{input:?}");
        }
    }

    #[test]
    fn display_formats_are_stable() {
        let e = XmlError::MismatchedTag {
            pos: Position { offset: 9, line: 2, column: 4 },
            open: "a".into(),
            close: "b".into(),
        };
        assert_eq!(e.to_string(), "2:4: closing tag </b> does not match <a>");
    }

    #[test]
    fn eof_error_mentions_expectation() {
        let e = XmlError::UnexpectedEof { pos: Position::start(), expected: "'>'" };
        assert!(e.to_string().contains("expected '>'"));
    }
}
