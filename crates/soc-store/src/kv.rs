//! A versioned key-value [`StateMachine`] — the demo workload for the
//! replicated store node, and the simplest possible consumer of the
//! WAL's replay contract.

use std::collections::HashMap;

use soc_json::Value;

use crate::state::StateMachine;
use crate::wal::Lsn;

/// Versioned KV state: every key remembers the LSN of its last write,
/// which doubles as the version a read-your-writes client demands.
#[derive(Default)]
pub struct KvMachine {
    entries: HashMap<String, (Value, Lsn)>,
}

impl KvMachine {
    /// Empty machine.
    pub fn new() -> KvMachine {
        KvMachine::default()
    }

    /// The value and version of `key`.
    pub fn get(&self, key: &str) -> Option<(&Value, Lsn)> {
        self.entries.get(key).map(|(v, l)| (v, *l))
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no keys are live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorted keys (tests and debugging).
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.entries.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Serialize a `put` command.
    pub fn put_command(key: &str, value: &Value) -> Vec<u8> {
        let mut cmd = Value::object();
        cmd.set("op", "put");
        cmd.set("key", key);
        cmd.set("value", value.clone());
        cmd.to_compact().into_bytes()
    }

    /// Serialize a `put` that pins an explicit version — used by
    /// failover promotion to adopt a dead primary's keys without
    /// regressing the versions its clients already hold.
    pub fn put_versioned_command(key: &str, value: &Value, version: Lsn) -> Vec<u8> {
        let mut cmd = Value::object();
        cmd.set("op", "put");
        cmd.set("key", key);
        cmd.set("value", value.clone());
        cmd.set("version", version as i64);
        cmd.to_compact().into_bytes()
    }

    /// Serialize a `del` command.
    pub fn del_command(key: &str) -> Vec<u8> {
        let mut cmd = Value::object();
        cmd.set("op", "del");
        cmd.set("key", key);
        cmd.to_compact().into_bytes()
    }
}

impl StateMachine for KvMachine {
    fn apply(&mut self, lsn: Lsn, command: &[u8]) {
        let Ok(text) = std::str::from_utf8(command) else { return };
        let Ok(cmd) = Value::parse(text) else { return };
        let key = cmd.get("key").and_then(Value::as_str).unwrap_or_default().to_string();
        match cmd.get("op").and_then(Value::as_str) {
            Some("put") => {
                let value = cmd.get("value").cloned().unwrap_or(Value::Null);
                // A pinned version (promotion re-log) wins; otherwise
                // the LSN, floored so a key adopted at a high version
                // never regresses when its new primary's log is short.
                let prior = self.entries.get(&key).map(|(_, l)| *l).unwrap_or(0);
                let version = cmd
                    .get("version")
                    .and_then(Value::as_i64)
                    .map(|v| v as Lsn)
                    .unwrap_or_else(|| lsn.max(prior + 1));
                self.entries.insert(key, (value, version));
            }
            Some("del") => {
                self.entries.remove(&key);
            }
            _ => {}
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut keys: Vec<&String> = self.entries.keys().collect();
        keys.sort();
        let items: Vec<Value> = keys
            .into_iter()
            .map(|k| {
                let (v, lsn) = &self.entries[k];
                let mut item = Value::object();
                item.set("key", k.as_str());
                item.set("value", v.clone());
                item.set("version", *lsn as i64);
                item
            })
            .collect();
        let mut snap = Value::object();
        snap.set("entries", Value::Array(items));
        snap.to_compact().into_bytes()
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), String> {
        let text = std::str::from_utf8(snapshot).map_err(|e| e.to_string())?;
        let snap = Value::parse(text).map_err(|e| e.to_string())?;
        let items =
            snap.get("entries").and_then(Value::as_array).ok_or("kv snapshot missing entries")?;
        self.entries.clear();
        for item in items {
            let key = item
                .get("key")
                .and_then(Value::as_str)
                .ok_or("kv snapshot entry missing key")?
                .to_string();
            let value = item.get("value").cloned().unwrap_or(Value::Null);
            let version = item
                .get("version")
                .and_then(Value::as_i64)
                .ok_or("kv snapshot entry missing version")? as Lsn;
            self.entries.insert(key, (value, version));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Durable;
    use crate::wal::WalConfig;
    use crate::TempDir;
    use soc_json::json;

    #[test]
    fn put_get_delete_with_versions() {
        let tmp = TempDir::new("kv");
        let d = Durable::open(tmp.path(), WalConfig::default(), KvMachine::new()).unwrap();
        let v1 = d.execute(&KvMachine::put_command("a", &json!({"n": 1}))).unwrap();
        let v2 = d.execute(&KvMachine::put_command("a", &json!({"n": 2}))).unwrap();
        assert!(v2 > v1);
        assert_eq!(d.query(|m| m.get("a").map(|(_, l)| l)), Some(v2));
        d.execute(&KvMachine::del_command("a")).unwrap();
        assert!(d.query(|m| m.get("a").is_none()));
    }

    #[test]
    fn snapshot_round_trips_values_and_versions() {
        let tmp = TempDir::new("kv-snap");
        {
            let d = Durable::open(tmp.path(), WalConfig::default(), KvMachine::new()).unwrap();
            d.execute(&KvMachine::put_command("x", &json!("hello"))).unwrap();
            d.execute(&KvMachine::put_command("y", &json!([1, 2, 3]))).unwrap();
            d.execute(&KvMachine::del_command("x")).unwrap();
            d.compact().unwrap();
            d.execute(&KvMachine::put_command("z", &json!(9))).unwrap();
        }
        let d = Durable::open(tmp.path(), WalConfig::default(), KvMachine::new()).unwrap();
        assert_eq!(d.query(|m| m.keys()), vec!["y", "z"]);
        assert_eq!(d.query(|m| m.get("y").map(|(_, l)| l)), Some(2));
        assert_eq!(d.query(|m| m.get("z").map(|(_, l)| l)), Some(4));
    }
}
