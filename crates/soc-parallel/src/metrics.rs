//! Performance metrics from the course's Tables 1–2: speedup,
//! efficiency, cost/work, Amdahl's and Gustafson's laws.

use std::time::Duration;

/// Speedup `S(p) = T(1) / T(p)`.
pub fn speedup(t1: Duration, tp: Duration) -> f64 {
    t1.as_secs_f64() / tp.as_secs_f64().max(f64::MIN_POSITIVE)
}

/// Efficiency `E(p) = S(p) / p`.
pub fn efficiency(t1: Duration, tp: Duration, p: usize) -> f64 {
    speedup(t1, tp) / p.max(1) as f64
}

/// Parallel cost `C(p) = p · T(p)` in seconds.
pub fn cost(tp: Duration, p: usize) -> f64 {
    p as f64 * tp.as_secs_f64()
}

/// Amdahl's law: maximum speedup on `p` processors when a fraction
/// `serial` (0..=1) of the work cannot be parallelized.
pub fn amdahl_speedup(serial: f64, p: usize) -> f64 {
    assert!((0.0..=1.0).contains(&serial), "serial fraction must be in [0,1]");
    let p = p.max(1) as f64;
    1.0 / (serial + (1.0 - serial) / p)
}

/// Gustafson's law: scaled speedup for the same serial fraction when the
/// problem grows with `p`.
pub fn gustafson_speedup(serial: f64, p: usize) -> f64 {
    assert!((0.0..=1.0).contains(&serial), "serial fraction must be in [0,1]");
    let p = p.max(1) as f64;
    p - serial * (p - 1.0)
}

/// One row of a scaling experiment (Figure 3's data model: one point per
/// core count).
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Worker/core count for this measurement.
    pub threads: usize,
    /// Measured wall time.
    pub elapsed: Duration,
    /// Speedup vs the 1-thread row.
    pub speedup: f64,
    /// Efficiency = speedup / threads.
    pub efficiency: f64,
}

/// Turn raw `(threads, elapsed)` measurements into speedup/efficiency
/// rows, using the 1-thread (or smallest-thread) entry as the baseline.
pub fn scaling_table(mut raw: Vec<(usize, Duration)>) -> Vec<ScalingPoint> {
    raw.sort_by_key(|&(p, _)| p);
    let Some(&(_, t1)) = raw.first() else {
        return Vec::new();
    };
    raw.iter()
        .map(|&(threads, elapsed)| ScalingPoint {
            threads,
            elapsed,
            speedup: speedup(t1, elapsed),
            efficiency: efficiency(t1, elapsed, threads),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn perfect_scaling() {
        assert!((speedup(ms(800), ms(200)) - 4.0).abs() < 1e-9);
        assert!((efficiency(ms(800), ms(200), 4) - 1.0).abs() < 1e-9);
        assert!((cost(ms(200), 4) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn amdahl_limits() {
        // Fully parallel work scales linearly.
        assert!((amdahl_speedup(0.0, 32) - 32.0).abs() < 1e-9);
        // Fully serial work never speeds up.
        assert!((amdahl_speedup(1.0, 32) - 1.0).abs() < 1e-9);
        // 5% serial caps speedup below 20 regardless of p.
        assert!(amdahl_speedup(0.05, 1_000_000) < 20.0);
        // Monotone in p.
        assert!(amdahl_speedup(0.1, 8) > amdahl_speedup(0.1, 4));
    }

    #[test]
    fn gustafson_exceeds_amdahl_for_scaled_problems() {
        let s = 0.1;
        for p in [2, 8, 32] {
            assert!(gustafson_speedup(s, p) >= amdahl_speedup(s, p));
        }
        assert!((gustafson_speedup(0.0, 16) - 16.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "serial fraction")]
    fn amdahl_rejects_bad_fraction() {
        amdahl_speedup(1.5, 4);
    }

    #[test]
    fn scaling_table_uses_smallest_thread_count_as_baseline() {
        let rows = scaling_table(vec![(4, ms(300)), (1, ms(1000)), (2, ms(550))]);
        assert_eq!(rows[0].threads, 1);
        assert!((rows[0].speedup - 1.0).abs() < 1e-9);
        assert!(rows[2].speedup > 3.0);
        assert!(rows[2].efficiency < 1.0);
    }

    #[test]
    fn empty_table_is_empty() {
        assert!(scaling_table(vec![]).is_empty());
    }
}
