/root/repo/target/debug/examples/service_marketplace-e1d04d42b547d857.d: examples/service_marketplace.rs Cargo.toml

/root/repo/target/debug/examples/libservice_marketplace-e1d04d42b547d857.rmeta: examples/service_marketplace.rs Cargo.toml

examples/service_marketplace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
