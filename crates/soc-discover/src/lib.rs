//! # soc-discover — crawl the federation, search it, compose from it
//!
//! The missing front half of the service-oriented story: everything
//! else in the stack assumes somebody already knows which service to
//! call. This crate is the somebody. It reproduces the paper's
//! discovery/brokerage layer (Section V's registry–broker–consumer
//! triangle) as three cooperating subsystems:
//!
//! - **[`crawler`]** — walks federated [`soc_registry`] directories
//!   through a [`Gateway`](soc_gateway::Gateway), following
//!   `/directory/peers` referrals (cycles included), fetching each
//!   service's WSDL and parsing it into typed operation signatures.
//!   Lease versions make re-crawls incremental; the gateway makes
//!   crawling resilient and traced.
//! - **[`index`]** — an inverted index over everything crawled, ranked
//!   by `relevance × live QoS`: recent p95 and error rate from the
//!   gateway's monitor, and outlier-ejection state, demote services
//!   that look good on paper but are bad on the wire.
//! - **[`planner`] / [`check`] / [`execute`]** — goal-directed
//!   composition: `have {ssn, amount, income} → want {approved}`
//!   backward-chains through discovered signatures into a [`Plan`],
//!   which an independent static checker verifies (typed wiring, goal
//!   coverage, acyclicity) before it is lowered onto
//!   [`soc_workflow`]'s saga executor with deadline-derived resilience
//!   policies.
//!
//! [`Discovery`] ties the loop together, including *re-planning*: when
//! a saga fails mid-composition (a partitioned or ejected replica), the
//! failed node's service is denylisted and the goal is planned again —
//! the trace shows each attempt as a `discover.plan` span over the
//! `workflow.run` it launched.
//!
//! ```no_run
//! use soc_discover::{demo, CrawlConfig, Discovery, Goal};
//! use soc_http::mem::{MemNetwork, UniClient};
//! use soc_json::Value;
//! use soc_soap::XsdType;
//! use std::collections::HashMap;
//! use std::sync::Arc;
//!
//! let net = MemNetwork::new();
//! let federation = demo::host_mem(&net);
//! let mut discovery = Discovery::new(
//!     Arc::new(UniClient::new(net)),
//!     soc_gateway::GatewayConfig::default(),
//!     CrawlConfig::default(),
//! );
//! let roots: Vec<&str> = federation.roots.iter().map(String::as_str).collect();
//! discovery.crawl(&roots);
//!
//! let goal = Goal::new()
//!     .have("ssn", XsdType::String)
//!     .have("amount", XsdType::Int)
//!     .have("income", XsdType::Int)
//!     .want("approved", XsdType::Boolean);
//! let inputs = HashMap::from([
//!     ("ssn".to_string(), Value::from("123-45-6789")),
//!     ("amount".to_string(), Value::from(25_000)),
//!     ("income".to_string(), Value::from(90_000)),
//! ]);
//! let achieved = discovery.achieve(&goal, &inputs, &Default::default()).unwrap();
//! assert_eq!(achieved.outputs["approved"].as_bool(), Some(true));
//! ```

pub mod catalog;
pub mod check;
pub mod crawler;
pub mod demo;
pub mod execute;
pub mod index;
pub mod planner;

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use soc_gateway::{Gateway, GatewayConfig};
use soc_http::mem::Transport;
use soc_json::Value;
use soc_observe::SpanKind;
use soc_workflow::{SagaConfig, WorkflowError, WorkflowOutcome};

pub use catalog::{Catalog, DiscoveredService, TypedOperation};
pub use check::{check, verify, Violation};
pub use crawler::{CrawlConfig, CrawlStats, Crawler};
pub use execute::{lower, GatewayTransport, LowerError, LoweredPlan, OperationCall};
pub use index::{GatewayQos, NoQos, QosFeed, QosSnapshot, SearchHit, SearchIndex};
pub use planner::{Goal, Plan, PlanError, PlanNode, Planner, Wire, WireSource};

/// Tuning for [`Discovery::achieve`].
#[derive(Debug, Clone)]
pub struct AchieveConfig {
    /// How many times a failed composition may be re-planned before
    /// giving up (each re-plan denylists the failed service).
    pub max_replans: usize,
    /// Saga backoff seed; attempt index is folded in so re-plans do
    /// not replay the exact jitter schedule.
    pub seed: u64,
}

impl Default for AchieveConfig {
    fn default() -> Self {
        AchieveConfig { max_replans: 2, seed: 0xD15C }
    }
}

/// A goal achieved: the values, and how we got there.
#[derive(Debug)]
pub struct Achievement {
    /// The wanted outputs, keyed by goal name.
    pub outputs: HashMap<String, Value>,
    /// The plan that finally succeeded.
    pub plan: Plan,
    /// Services denylisted along the way (one per re-plan), in order.
    pub replanned: Vec<String>,
    /// Total planning attempts (1 = no re-plan was needed).
    pub attempts: usize,
}

/// Why [`Discovery`] could not deliver a goal.
#[derive(Debug)]
pub enum DiscoverError {
    /// Planning failed outright.
    Plan(PlanError),
    /// The planner emitted a plan the static checker rejected — a
    /// planner bug, surfaced rather than executed.
    Rejected(Vec<Violation>),
    /// Lowering to a workflow failed (e.g. a goal input was missing).
    Lower(LowerError),
    /// The workflow engine rejected the graph structurally.
    Workflow(WorkflowError),
    /// Every planning attempt executed and failed.
    Exhausted {
        /// Attempts made (initial plan + re-plans).
        attempts: usize,
        /// The last failure, as `node: error`.
        last: String,
    },
}

impl fmt::Display for DiscoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiscoverError::Plan(e) => write!(f, "planning failed: {e}"),
            DiscoverError::Rejected(vs) => {
                write!(f, "static checker rejected the plan: ")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{v}")?;
                }
                Ok(())
            }
            DiscoverError::Lower(e) => write!(f, "{e}"),
            DiscoverError::Workflow(e) => write!(f, "workflow rejected the plan: {e}"),
            DiscoverError::Exhausted { attempts, last } => {
                write!(f, "goal not achieved after {attempts} attempt(s); last failure: {last}")
            }
        }
    }
}

/// The discovery loop in one object: crawl → index → search → plan →
/// verify → execute (→ re-plan).
pub struct Discovery {
    gateway: Gateway,
    crawler: Crawler,
    catalog: Catalog,
    index: SearchIndex,
}

impl Discovery {
    /// A discovery stack over its own [`Gateway`] on `transport`.
    pub fn new(transport: Arc<dyn Transport>, config: GatewayConfig, crawl: CrawlConfig) -> Self {
        Self::with_gateway(Gateway::new(transport, config), crawl)
    }

    /// A discovery stack sharing an existing gateway (and therefore
    /// its breakers, monitor, and ejection state).
    pub fn with_gateway(gateway: Gateway, crawl: CrawlConfig) -> Self {
        let catalog = Catalog::new();
        let index = SearchIndex::build(&catalog);
        Discovery { crawler: Crawler::new(gateway.clone(), crawl), gateway, catalog, index }
    }

    /// Crawl from `roots`, then rebuild the search index over the
    /// merged catalog. Incremental: unchanged directories are skipped.
    pub fn crawl(&mut self, roots: &[&str]) -> CrawlStats {
        let stats = self.crawler.crawl(roots, &mut self.catalog);
        self.index = SearchIndex::build(&self.catalog);
        stats
    }

    /// The merged catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The current search index.
    pub fn index(&self) -> &SearchIndex {
        &self.index
    }

    /// The gateway all discovery traffic flows through.
    pub fn gateway(&self) -> &Gateway {
        &self.gateway
    }

    /// Free-text search ranked by relevance × live gateway QoS.
    pub fn search(&self, query: &str, limit: usize) -> Vec<SearchHit> {
        self.index.search(query, &GatewayQos::new(self.gateway.clone()), limit)
    }

    /// Plan `goal` against the current index (and verify the plan),
    /// without executing it.
    pub fn plan(&self, goal: &Goal) -> Result<Plan, DiscoverError> {
        let qos = GatewayQos::new(self.gateway.clone());
        let plan = Planner::new(&self.index, &qos).plan(goal).map_err(DiscoverError::Plan)?;
        verify(&plan, goal).map_err(DiscoverError::Rejected)?;
        Ok(plan)
    }

    /// Plan, verify, and execute `goal` as a saga through the gateway,
    /// re-planning around failed services up to
    /// [`AchieveConfig::max_replans`] times.
    pub fn achieve(
        &self,
        goal: &Goal,
        inputs: &HashMap<String, Value>,
        config: &AchieveConfig,
    ) -> Result<Achievement, DiscoverError> {
        let qos = GatewayQos::new(self.gateway.clone());
        let mut denied: Vec<String> = Vec::new();
        for attempt in 0..=config.max_replans {
            // One span per attempt: the trace reads
            // `discover.plan → workflow.run → gateway.request`.
            let mut plan_span = soc_observe::span("discover.plan", SpanKind::Internal);
            plan_span.set_attr("attempt", (attempt + 1).to_string());
            let _active = plan_span.activate();

            let mut planner = Planner::new(&self.index, &qos);
            for service in &denied {
                planner.deny(service);
            }
            let plan = match planner.plan(goal) {
                Ok(p) => p,
                Err(e) => {
                    plan_span.set_error(e.to_string());
                    return match denied.last() {
                        // Nothing failed yet: the goal is simply not
                        // plannable from this catalog.
                        None => Err(DiscoverError::Plan(e)),
                        Some(_) => Err(DiscoverError::Exhausted {
                            attempts: attempt + 1,
                            last: format!("no alternative plan: {e}"),
                        }),
                    };
                }
            };
            verify(&plan, goal).map_err(DiscoverError::Rejected)?;
            plan_span.set_attr("nodes", plan.nodes.len().to_string());

            let lowered =
                lower(&plan, goal, &self.gateway, inputs).map_err(DiscoverError::Lower)?;
            let saga = SagaConfig {
                deadline: goal.deadline,
                seed: config.seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            };
            let outcome =
                lowered.graph.run_saga(&HashMap::new(), &saga).map_err(DiscoverError::Workflow)?;
            match outcome {
                WorkflowOutcome::Completed(values) => {
                    let mut outputs = HashMap::new();
                    for (name, key) in &lowered.node_outputs {
                        if let Some(v) = values.get(key) {
                            outputs.insert(name.clone(), v.clone());
                        }
                    }
                    for (name, v) in lowered.direct_outputs {
                        outputs.insert(name, v);
                    }
                    return Ok(Achievement {
                        outputs,
                        plan,
                        replanned: denied,
                        attempts: attempt + 1,
                    });
                }
                WorkflowOutcome::Compensated { failed_at, error, .. } => {
                    plan_span.set_error(format!("{failed_at}: {error}"));
                    let culprit = lowered.node_services.get(&failed_at).cloned();
                    match culprit {
                        Some(service) if attempt < config.max_replans => {
                            soc_observe::metrics().counter("soc_discover_replans_total", &[]).inc();
                            denied.push(service);
                        }
                        _ => {
                            return Err(DiscoverError::Exhausted {
                                attempts: attempt + 1,
                                last: format!("{failed_at}: {error}"),
                            })
                        }
                    }
                }
            }
        }
        unreachable!("loop returns on success, terminal error, or exhausted re-plans")
    }
}
