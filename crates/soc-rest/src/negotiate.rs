//! `Accept`-header content negotiation between JSON and XML renderings —
//! the "services are implemented in multiple formats" theme of the ASU
//! repository, applied to representations.

use soc_http::{Request, Response};
use soc_json::Value;
use soc_xml::{Document, NodeId};

/// Representations the stack can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `application/json`
    Json,
    /// `text/xml` / `application/xml`
    Xml,
}

/// Choose a representation from the request's `Accept` header. JSON is
/// the default; `*/*` also yields JSON. Quality factors are honored in
/// their simplest useful form: an explicit type beats a wildcard.
pub fn negotiate(req: &Request) -> Format {
    let accept = req.headers.get("Accept").unwrap_or("*/*");
    let mut best = Format::Json;
    let mut best_rank = 0u8;
    for part in accept.split(',') {
        let mime = part.split(';').next().unwrap_or("").trim().to_ascii_lowercase();
        let (format, rank) = match mime.as_str() {
            "application/json" => (Format::Json, 3),
            "text/xml" | "application/xml" => (Format::Xml, 3),
            "application/*" => (Format::Json, 2),
            "text/*" => (Format::Xml, 2),
            "*/*" => (Format::Json, 1),
            _ => continue,
        };
        if rank > best_rank {
            best = format;
            best_rank = rank;
        }
    }
    best
}

/// Render a JSON value in the negotiated format. The XML rendering wraps
/// the value in the conventional element mapping: objects become child
/// elements, arrays repeat an `item` element, scalars become text.
pub fn render(req: &Request, root_name: &str, value: &Value) -> Response {
    match negotiate(req) {
        Format::Json => {
            // Serialize straight into the buffer the response body
            // takes ownership of — same one-allocation path as XML.
            let mut body = String::with_capacity(128);
            value.write_into(&mut body);
            Response::json_owned(body)
        }
        Format::Xml => {
            let mut doc = Document::new(root_name);
            let root = doc.root();
            value_to_xml(&mut doc, root, value);
            // Serialize into an owned buffer and move it into the
            // response — one allocation, no copy.
            let mut body = String::with_capacity(128);
            doc.write_xml_into(&mut body);
            Response::xml_owned(body)
        }
    }
}

fn value_to_xml(doc: &mut Document, parent: NodeId, value: &Value) {
    match value {
        Value::Null => {}
        Value::Bool(b) => {
            doc.add_text(parent, if *b { "true" } else { "false" });
        }
        Value::Number(n) => {
            doc.add_text(parent, n.to_string());
        }
        Value::String(s) => {
            doc.add_text(parent, s.clone());
        }
        Value::Array(items) => {
            for item in items {
                let el = doc.add_element(parent, "item");
                value_to_xml(doc, el, item);
            }
        }
        Value::Object(members) => {
            for (k, v) in members {
                // Element names must be XML names; non-conforming keys
                // are carried as <entry key="...">.
                let el = if k.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                    && k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                {
                    doc.add_element(parent, k.as_str())
                } else {
                    let el = doc.add_element(parent, "entry");
                    doc.set_attr(el, "key", k.clone());
                    el
                };
                value_to_xml(doc, el, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_json::json;

    #[test]
    fn default_is_json() {
        assert_eq!(negotiate(&Request::get("/")), Format::Json);
        assert_eq!(negotiate(&Request::get("/").with_header("Accept", "*/*")), Format::Json);
    }

    #[test]
    fn explicit_xml_wins() {
        let req = Request::get("/").with_header("Accept", "text/xml");
        assert_eq!(negotiate(&req), Format::Xml);
        let req = Request::get("/").with_header("Accept", "application/xml, */*");
        assert_eq!(negotiate(&req), Format::Xml);
    }

    #[test]
    fn explicit_beats_wildcard() {
        let req = Request::get("/").with_header("Accept", "text/*, application/json");
        assert_eq!(negotiate(&req), Format::Json);
    }

    #[test]
    fn unknown_types_ignored() {
        let req = Request::get("/").with_header("Accept", "image/png");
        assert_eq!(negotiate(&req), Format::Json);
    }

    #[test]
    fn renders_json() {
        let v = json!({ "name": "echo", "cost": 0 });
        let resp = render(&Request::get("/"), "service", &v);
        assert_eq!(resp.content_type(), Some("application/json"));
        assert!(resp.text_body().unwrap().contains("\"echo\""));
    }

    #[test]
    fn renders_xml_mapping() {
        let v = json!({ "name": "echo", "tags": ["a", "b"], "ok": true });
        let req = Request::get("/").with_header("Accept", "text/xml");
        let resp = render(&req, "service", &v);
        let xml = resp.text_body().unwrap();
        assert_eq!(
            xml,
            "<service><name>echo</name><tags><item>a</item><item>b</item></tags><ok>true</ok></service>"
        );
    }

    #[test]
    fn awkward_keys_become_entries() {
        let v = json!({ "1bad key": 5 });
        let req = Request::get("/").with_header("Accept", "text/xml");
        let resp = render(&req, "r", &v);
        assert!(resp.text_body().unwrap().contains(r#"<entry key="1bad key">5</entry>"#));
    }
}
