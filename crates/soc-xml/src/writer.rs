//! Streaming XML writer with compact and pretty modes.

use crate::dom::{Document, NodeId, NodeKind};
use crate::escape::{escape_attr, escape_text};
use crate::name::QName;

/// Serializes XML either compactly or with indentation.
///
/// Can be used standalone as a streaming writer
/// ([`XmlWriter::start_element`] / [`XmlWriter::text`] /
/// [`XmlWriter::end_element`]) or to serialize a whole [`Document`].
pub struct XmlWriter {
    out: String,
    indent: Option<&'static str>,
    depth: usize,
    /// Stack of open element names.
    open: Vec<QName>,
    /// True right after a start tag with no content yet (enables `<x/>`).
    tag_open: bool,
    /// True if the current open element has child elements (for pretty
    /// closing-tag placement).
    had_children: Vec<bool>,
    /// True if the current open element holds text (suppresses indent).
    had_text: Vec<bool>,
}

impl XmlWriter {
    /// Writer that emits no insignificant whitespace.
    pub fn compact() -> Self {
        Self::with_indent(None)
    }

    /// Writer that indents nested elements by two spaces.
    pub fn pretty() -> Self {
        Self::with_indent(Some("  "))
    }

    fn with_indent(indent: Option<&'static str>) -> Self {
        XmlWriter {
            out: String::new(),
            indent,
            depth: 0,
            open: Vec::new(),
            tag_open: false,
            had_children: Vec::new(),
            had_text: Vec::new(),
        }
    }

    /// Write the `<?xml … ?>` declaration.
    pub fn declaration(&mut self) {
        self.out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if self.indent.is_some() {
            self.out.push('\n');
        }
    }

    fn close_pending_tag(&mut self) {
        if self.tag_open {
            self.out.push('>');
            self.tag_open = false;
        }
    }

    fn newline_indent(&mut self) {
        if let Some(ind) = self.indent {
            if !self.out.is_empty() {
                self.out.push('\n');
            }
            for _ in 0..self.depth {
                self.out.push_str(ind);
            }
        }
    }

    /// Open an element. Attributes are added with [`XmlWriter::attr`]
    /// before any content is written.
    pub fn start_element(&mut self, name: impl Into<QName>) {
        self.close_pending_tag();
        if let Some(flag) = self.had_children.last_mut() {
            *flag = true;
        }
        // Never inject whitespace inside mixed content: it would change
        // the document's text value.
        if self.had_text.last() != Some(&true) {
            self.newline_indent();
        }
        let name = name.into();
        self.out.push('<');
        self.out.push_str(&name.to_string());
        self.open.push(name);
        self.tag_open = true;
        self.depth += 1;
        self.had_children.push(false);
        self.had_text.push(false);
    }

    /// Add an attribute to the element opened by the most recent
    /// [`XmlWriter::start_element`]. Panics if content was already
    /// written.
    pub fn attr(&mut self, name: impl Into<QName>, value: &str) {
        assert!(self.tag_open, "attr() must directly follow start_element()");
        self.out.push(' ');
        self.out.push_str(&name.into().to_string());
        self.out.push_str("=\"");
        self.out.push_str(&escape_attr(value));
        self.out.push('"');
    }

    /// Write escaped character data. Empty text is a no-op so that
    /// serialization is a fixpoint (an empty text node is
    /// indistinguishable from no text node after reparsing).
    pub fn text(&mut self, text: &str) {
        if text.is_empty() {
            return;
        }
        self.close_pending_tag();
        if let Some(flag) = self.had_text.last_mut() {
            *flag = true;
        }
        self.out.push_str(&escape_text(text));
    }

    /// Write a CDATA section. `]]>` inside the payload is split across
    /// two sections, per the standard trick.
    pub fn cdata(&mut self, text: &str) {
        self.close_pending_tag();
        if let Some(flag) = self.had_text.last_mut() {
            *flag = true;
        }
        self.out.push_str("<![CDATA[");
        self.out.push_str(&text.replace("]]>", "]]]]><![CDATA[>"));
        self.out.push_str("]]>");
    }

    /// Write a comment.
    pub fn comment(&mut self, text: &str) {
        self.close_pending_tag();
        self.newline_indent();
        self.out.push_str("<!--");
        self.out.push_str(text);
        self.out.push_str("-->");
    }

    /// Write a processing instruction.
    pub fn pi(&mut self, target: &str, data: &str) {
        self.close_pending_tag();
        self.newline_indent();
        self.out.push_str("<?");
        self.out.push_str(target);
        if !data.is_empty() {
            self.out.push(' ');
            self.out.push_str(data);
        }
        self.out.push_str("?>");
    }

    /// Close the most recently opened element.
    pub fn end_element(&mut self) {
        let name = self.open.pop().expect("end_element with no open element");
        self.depth -= 1;
        let had_children = self.had_children.pop().unwrap_or(false);
        let had_text = self.had_text.pop().unwrap_or(false);
        if self.tag_open {
            self.out.push_str("/>");
            self.tag_open = false;
            return;
        }
        if had_children && !had_text {
            self.newline_indent();
        }
        self.out.push_str("</");
        self.out.push_str(&name.to_string());
        self.out.push('>');
    }

    /// Convenience: `<name>text</name>`.
    pub fn text_element(&mut self, name: impl Into<QName>, text: &str) {
        self.start_element(name);
        self.text(text);
        self.end_element();
    }

    /// Serialize an entire document (root subtree).
    pub fn write_document(&mut self, doc: &Document) {
        self.write_node(doc, doc.root());
    }

    /// Serialize the subtree rooted at `id`.
    pub fn write_node(&mut self, doc: &Document, id: NodeId) {
        match &doc.node(id).kind {
            NodeKind::Element { name, attributes } => {
                self.start_element(name.clone());
                for a in attributes {
                    self.attr(a.name.clone(), &a.value);
                }
                // Mixed content (any text child) disables indentation for
                // the whole element so its text value is preserved.
                let mixed = doc.children(id).iter().any(|&c| match &doc.node(c).kind {
                    NodeKind::Text(t) => !t.is_empty(),
                    NodeKind::CData(_) => true,
                    _ => false,
                });
                if mixed {
                    if let Some(flag) = self.had_text.last_mut() {
                        *flag = true;
                    }
                }
                for &c in doc.children(id) {
                    self.write_node(doc, c);
                }
                self.end_element();
            }
            NodeKind::Text(t) => self.text(t),
            NodeKind::CData(t) => self.cdata(t),
            NodeKind::Comment(t) => self.comment(t),
            NodeKind::ProcessingInstruction { target, data } => self.pi(target, data),
        }
    }

    /// Consume the writer, returning the serialized string. Panics if
    /// elements remain open.
    pub fn finish(self) -> String {
        assert!(self.open.is_empty(), "finish() with {} unclosed elements", self.open.len());
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Document;

    #[test]
    fn streaming_compact() {
        let mut w = XmlWriter::compact();
        w.start_element("svc");
        w.attr("id", "a<b");
        w.text_element("name", "echo & co");
        w.end_element();
        assert_eq!(w.finish(), r#"<svc id="a&lt;b"><name>echo &amp; co</name></svc>"#);
    }

    #[test]
    fn empty_element_self_closes() {
        let mut w = XmlWriter::compact();
        w.start_element("a");
        w.end_element();
        assert_eq!(w.finish(), "<a/>");
    }

    #[test]
    fn pretty_indents_nested_elements() {
        let mut w = XmlWriter::pretty();
        w.start_element("a");
        w.start_element("b");
        w.text("t");
        w.end_element();
        w.end_element();
        assert_eq!(w.finish(), "<a>\n  <b>t</b>\n</a>");
    }

    #[test]
    fn cdata_escape_trick() {
        let mut w = XmlWriter::compact();
        w.start_element("a");
        w.cdata("x]]>y");
        w.end_element();
        let s = w.finish();
        assert_eq!(s, "<a><![CDATA[x]]]]><![CDATA[>y]]></a>");
        // And it parses back to the original text.
        let doc = Document::parse_str(&s).unwrap();
        assert_eq!(doc.text(doc.root()), "x]]>y");
    }

    #[test]
    fn declaration_prefix() {
        let mut w = XmlWriter::compact();
        w.declaration();
        w.start_element("a");
        w.end_element();
        assert!(w.finish().starts_with("<?xml version=\"1.0\""));
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn finish_panics_on_open_elements() {
        let mut w = XmlWriter::compact();
        w.start_element("a");
        let _ = w.finish();
    }

    #[test]
    fn mixed_content_keeps_text_inline() {
        let doc = Document::parse_str("<p>Hello <b>x</b>!</p>").unwrap();
        let mut w = XmlWriter::pretty();
        w.write_document(&doc);
        let s = w.finish();
        // Text-bearing elements must not gain stray whitespace.
        let doc2 = Document::parse_str_keep_whitespace(&s).unwrap();
        assert_eq!(doc2.text(doc2.root()), "Hello x!");
    }
}
