//! Table 4: CSE445/598 enrollments since Fall 2006, and the analytics
//! behind Figure 5 and the paper's growth claims.

/// Academic semester.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semester {
    /// Spring term.
    Spring,
    /// Fall term.
    Fall,
}

impl std::fmt::Display for Semester {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Semester::Spring => write!(f, "Spring"),
            Semester::Fall => write!(f, "Fall"),
        }
    }
}

/// One row of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnrollmentRow {
    /// Calendar year.
    pub year: u16,
    /// Term.
    pub semester: Semester,
    /// CSE445 (undergraduate) enrollment.
    pub cse445: u32,
    /// CSE598 (graduate) enrollment.
    pub cse598: u32,
}

impl EnrollmentRow {
    /// Combined enrollment (the paper's "Enrollment total" column).
    pub fn total(&self) -> u32 {
        self.cse445 + self.cse598
    }
}

/// Table 4, transcribed verbatim from the paper.
pub const TABLE4: [EnrollmentRow; 16] = [
    EnrollmentRow { year: 2006, semester: Semester::Fall, cse445: 25, cse598: 14 },
    EnrollmentRow { year: 2007, semester: Semester::Spring, cse445: 16, cse598: 16 },
    EnrollmentRow { year: 2007, semester: Semester::Fall, cse445: 24, cse598: 21 },
    EnrollmentRow { year: 2008, semester: Semester::Spring, cse445: 39, cse598: 8 },
    EnrollmentRow { year: 2008, semester: Semester::Fall, cse445: 35, cse598: 23 },
    EnrollmentRow { year: 2009, semester: Semester::Spring, cse445: 38, cse598: 13 },
    EnrollmentRow { year: 2009, semester: Semester::Fall, cse445: 33, cse598: 10 },
    EnrollmentRow { year: 2010, semester: Semester::Spring, cse445: 38, cse598: 22 },
    EnrollmentRow { year: 2010, semester: Semester::Fall, cse445: 42, cse598: 34 },
    EnrollmentRow { year: 2011, semester: Semester::Spring, cse445: 50, cse598: 20 },
    EnrollmentRow { year: 2011, semester: Semester::Fall, cse445: 30, cse598: 52 },
    EnrollmentRow { year: 2012, semester: Semester::Spring, cse445: 52, cse598: 15 },
    EnrollmentRow { year: 2012, semester: Semester::Fall, cse445: 42, cse598: 35 },
    EnrollmentRow { year: 2013, semester: Semester::Spring, cse445: 55, cse598: 38 },
    EnrollmentRow { year: 2013, semester: Semester::Fall, cse445: 44, cse598: 90 },
    EnrollmentRow { year: 2014, semester: Semester::Spring, cse445: 50, cse598: 62 },
];

/// Summary statistics over a span of rows.
#[derive(Debug, Clone, PartialEq)]
pub struct GrowthSummary {
    /// First row's combined enrollment.
    pub first_total: u32,
    /// Last row's combined enrollment.
    pub last_total: u32,
    /// Peak combined enrollment.
    pub peak_total: u32,
    /// Which row peaked (`year`, `semester`).
    pub peak_term: (u16, Semester),
    /// last/first ratio.
    pub growth_factor: f64,
    /// Least-squares slope of combined enrollment per term.
    pub trend_per_term: f64,
}

/// Compute the growth summary the paper narrates ("increased from 39 in
/// Fall 2006 to 134 in Fall 2013").
pub fn growth_summary(rows: &[EnrollmentRow]) -> Option<GrowthSummary> {
    let first = rows.first()?;
    let last = rows.last()?;
    let peak = rows.iter().max_by_key(|r| r.total())?;
    // Least squares on (index, total).
    let n = rows.len() as f64;
    let sum_x: f64 = (0..rows.len()).map(|i| i as f64).sum();
    let sum_y: f64 = rows.iter().map(|r| r.total() as f64).sum();
    let sum_xy: f64 = rows.iter().enumerate().map(|(i, r)| i as f64 * r.total() as f64).sum();
    let sum_xx: f64 = (0..rows.len()).map(|i| (i * i) as f64).sum();
    let denom = n * sum_xx - sum_x * sum_x;
    let slope = if denom.abs() < f64::EPSILON { 0.0 } else { (n * sum_xy - sum_x * sum_y) / denom };
    Some(GrowthSummary {
        first_total: first.total(),
        last_total: last.total(),
        peak_total: peak.total(),
        peak_term: (peak.year, peak.semester),
        growth_factor: last.total() as f64 / first.total().max(1) as f64,
        trend_per_term: slope,
    })
}

/// The three series Figure 5 plots: CSE445, CSE598, combined.
pub fn figure5_series(rows: &[EnrollmentRow]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    (
        rows.iter().map(|r| r.cse445 as f64).collect(),
        rows.iter().map(|r| r.cse598 as f64).collect(),
        rows.iter().map(|r| r.total() as f64).collect(),
    )
}

/// Term labels in the figure's x-axis form (`2006 Fall` → `06F`).
pub fn term_labels(rows: &[EnrollmentRow]) -> Vec<String> {
    rows.iter()
        .map(|r| {
            format!(
                "{:02}{}",
                r.year % 100,
                match r.semester {
                    Semester::Spring => "S",
                    Semester::Fall => "F",
                }
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_matches_paper_totals() {
        // Spot-check the rows the paper narrates explicitly.
        assert_eq!(TABLE4[0].total(), 39); // Fall 2006
        assert_eq!(TABLE4[14].total(), 134); // Fall 2013
        assert_eq!(TABLE4[15].total(), 112); // Spring 2014
        assert_eq!(TABLE4.len(), 16);
    }

    #[test]
    fn all_rows_have_consistent_totals() {
        for r in &TABLE4 {
            assert_eq!(r.total(), r.cse445 + r.cse598);
            assert!(r.total() > 0);
        }
    }

    #[test]
    fn growth_summary_reproduces_paper_claims() {
        let g = growth_summary(&TABLE4).unwrap();
        // "The combined enrollment has increased from 39 in Fall 2006 to
        // 134 in Fall 2013."
        assert_eq!(g.first_total, 39);
        assert_eq!(g.peak_total, 134);
        assert_eq!(g.peak_term, (2013, Semester::Fall));
        assert!(g.growth_factor > 2.5, "growth {:.2}", g.growth_factor);
        // "Both sections show significant increases from 2006 to 2014."
        assert!(g.trend_per_term > 3.0, "trend {:.2}", g.trend_per_term);
    }

    #[test]
    fn figure5_series_shapes() {
        let (a, b, c) = figure5_series(&TABLE4);
        assert_eq!(a.len(), 16);
        assert_eq!(b.len(), 16);
        for i in 0..16 {
            assert_eq!(a[i] + b[i], c[i]);
        }
    }

    #[test]
    fn labels_format() {
        let labels = term_labels(&TABLE4);
        assert_eq!(labels[0], "06F");
        assert_eq!(labels[15], "14S");
    }

    #[test]
    fn empty_rows_yield_no_summary() {
        assert!(growth_summary(&[]).is_none());
    }
}
