/root/repo/target/debug/deps/table1_3_acm-c711c8762355381c.d: crates/soc-bench/src/bin/table1_3_acm.rs

/root/repo/target/debug/deps/table1_3_acm-c711c8762355381c: crates/soc-bench/src/bin/table1_3_acm.rs

crates/soc-bench/src/bin/table1_3_acm.rs:
