//! Borrowed JSON values — the zero-copy twin of [`Value`].
//!
//! [`ValueRef`] keeps escape-free strings (and object keys) as `&str`
//! slices of the input via [`Cow::Borrowed`]; only strings that an
//! escape sequence actually rewrites are owned. A typical API payload
//! parses with one allocation per array/object and none per string —
//! the shape that lets an HTTP handler inspect a request body straight
//! out of the connection's read buffer.
//!
//! ```
//! use soc_json::{parse_ref, ValueRef};
//!
//! let body = r#"{"service":"echo","cost":3}"#;
//! let v = soc_json::parse_ref(body).unwrap();
//! assert_eq!(v.get("service").and_then(ValueRef::as_str), Some("echo"));
//! assert_eq!(v.get("cost").and_then(ValueRef::as_i64), Some(3));
//! ```

use std::borrow::Cow;

use crate::value::{Number, Value};

/// A JSON value whose strings borrow from the parsed input where the
/// text allows it. Produced by [`crate::parse_ref`].
#[derive(Debug, Clone, PartialEq)]
pub enum ValueRef<'a> {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string; borrowed unless escape expansion rewrote it.
    String(Cow<'a, str>),
    /// An ordered array.
    Array(Vec<ValueRef<'a>>),
    /// An ordered key → value map (later duplicates win on lookup).
    Object(Vec<(Cow<'a, str>, ValueRef<'a>)>),
}

impl<'a> ValueRef<'a> {
    /// Borrow as `&str` when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ValueRef::String(s) => Some(s),
            _ => None,
        }
    }

    /// As `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ValueRef::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As `i64` when a number that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ValueRef::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As `f64` when a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ValueRef::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Borrow the array items.
    pub fn as_array(&self) -> Option<&[ValueRef<'a>]> {
        match self {
            ValueRef::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object member lookup (last duplicate wins, matching [`Value`]).
    pub fn get(&self, key: &str) -> Option<&ValueRef<'a>> {
        match self {
            ValueRef::Object(o) => o.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array index lookup.
    pub fn at(&self, index: usize) -> Option<&ValueRef<'a>> {
        self.as_array()?.get(index)
    }

    /// Convert into an owned [`Value`], allocating for each borrowed
    /// string.
    pub fn into_owned(self) -> Value {
        match self {
            ValueRef::Null => Value::Null,
            ValueRef::Bool(b) => Value::Bool(b),
            ValueRef::Number(n) => Value::Number(n),
            ValueRef::String(s) => Value::String(s.into_owned()),
            ValueRef::Array(items) => {
                Value::Array(items.into_iter().map(ValueRef::into_owned).collect())
            }
            ValueRef::Object(members) => Value::Object(
                members.into_iter().map(|(k, v)| (k.into_owned(), v.into_owned())).collect(),
            ),
        }
    }
}

impl From<ValueRef<'_>> for Value {
    fn from(v: ValueRef<'_>) -> Value {
        v.into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_ref;

    #[test]
    fn escape_free_strings_borrow() {
        let v = parse_ref(r#"{"name":"echo service","tags":["a","b"]}"#).unwrap();
        let ValueRef::Object(members) = &v else { panic!() };
        assert!(matches!(&members[0].0, Cow::Borrowed(_)));
        assert!(matches!(&members[0].1, ValueRef::String(Cow::Borrowed(_))));
    }

    #[test]
    fn escaped_strings_are_owned_and_expanded() {
        let v = parse_ref(r#""a\nb""#).unwrap();
        assert!(matches!(&v, ValueRef::String(Cow::Owned(_))));
        assert_eq!(v.as_str(), Some("a\nb"));
    }

    #[test]
    fn into_owned_matches_direct_parse() {
        let src = r#"{"a":[1,2.5,"x\ty"],"b":{"c":null,"d":true}}"#;
        assert_eq!(parse_ref(src).unwrap().into_owned(), Value::parse(src).unwrap());
    }

    #[test]
    fn accessors_mirror_value() {
        let v = parse_ref(r#"{"k":1,"k":2,"arr":[10,20]}"#).unwrap();
        assert_eq!(v.get("k").and_then(ValueRef::as_i64), Some(2));
        assert_eq!(v.get("arr").and_then(|a| a.at(1)).and_then(ValueRef::as_i64), Some(20));
        assert_eq!(v.get("zzz"), None);
    }
}
