//! A TCP fault proxy: real-socket fault injection.
//!
//! [`FaultProxy`] fronts a real [`soc_http::HttpServer`] (or anything
//! speaking TCP) and tunnels bytes both ways, injecting faults on the
//! *response* path the way a misbehaving network would: added delay,
//! a connection cut mid-headers ("reset"), or a clean close after a
//! partial body ("truncate"). Verdicts are drawn per response
//! read-burst from one seeded [`soc_http::FaultRng`] shared by all
//! tunnels — with keep-alive clients one connection carries many
//! exchanges, so a per-connection draw would fault only the first and
//! starve the schedule. For the small responses in this stack one
//! burst is one response, and a given seed replays the same fault
//! sequence — the TCP counterpart of the in-memory `MemNetwork` fault
//! plane.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use soc_http::{FaultRng, HttpError, HttpResult};

/// What the proxy does to one connection's response bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProxyVerdict {
    /// Tunnel untouched.
    Clean,
    /// Tunnel, but stall before the first response byte.
    Delay,
    /// Cut the connection after a few response bytes (mid-headers).
    Reset,
    /// Forward a partial body, then close as if complete.
    Truncate,
}

/// Per-response-burst fault probabilities for a [`FaultProxy`]. Drawn
/// in a fixed order (delay, reset, truncate) so a seed replays exactly.
#[derive(Debug, Clone)]
pub struct ProxyFaults {
    /// Probability of stalling the response by `delay`.
    pub delay_prob: f64,
    /// The stall applied to delayed connections.
    pub delay: Duration,
    /// Probability of cutting the connection mid-headers.
    pub reset_prob: f64,
    /// Probability of closing after a partial body.
    pub truncate_prob: f64,
    /// Seeds the verdict stream.
    pub seed: u64,
}

impl Default for ProxyFaults {
    fn default() -> Self {
        ProxyFaults {
            delay_prob: 0.0,
            delay: Duration::from_millis(50),
            reset_prob: 0.0,
            truncate_prob: 0.0,
            seed: 0xFA_u64,
        }
    }
}

impl ProxyFaults {
    /// Clean pass-through with `seed` (set probabilities via the
    /// builders).
    pub fn seeded(seed: u64) -> Self {
        ProxyFaults { seed, ..ProxyFaults::default() }
    }

    /// Set the delay probability and stall duration.
    pub fn with_delay(mut self, p: f64, delay: Duration) -> Self {
        self.delay_prob = p;
        self.delay = delay;
        self
    }

    /// Set the mid-headers connection-cut probability.
    pub fn with_reset(mut self, p: f64) -> Self {
        self.reset_prob = p;
        self
    }

    /// Set the partial-body truncation probability.
    pub fn with_truncate(mut self, p: f64) -> Self {
        self.truncate_prob = p;
        self
    }

    fn verdict(&self, rng: &mut FaultRng) -> ProxyVerdict {
        // Fixed draw order keeps a seed's schedule stable even when
        // some probabilities are zero.
        let delay = rng.chance(self.delay_prob);
        let reset = rng.chance(self.reset_prob);
        let truncate = rng.chance(self.truncate_prob);
        if delay {
            ProxyVerdict::Delay
        } else if reset {
            ProxyVerdict::Reset
        } else if truncate {
            ProxyVerdict::Truncate
        } else {
            ProxyVerdict::Clean
        }
    }
}

/// Counters for asserting chaos invariants (and leak checks).
#[derive(Debug, Default)]
pub struct ProxyStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections cut mid-headers.
    pub resets: AtomicU64,
    /// Connections closed after a partial body.
    pub truncations: AtomicU64,
    /// Connections stalled before the response.
    pub delays: AtomicU64,
    /// Tunnels currently open (must drain to 0 after shutdown).
    pub open: AtomicI64,
}

/// A running TCP fault proxy; dropping it (or calling
/// [`FaultProxy::shutdown`]) stops the accept loop and joins every
/// tunnel.
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ProxyStats>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Listen on an ephemeral local port and tunnel every connection to
    /// `upstream`, applying `faults`.
    pub fn bind(upstream: SocketAddr, faults: ProxyFaults) -> HttpResult<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(io_err)?;
        let addr = listener.local_addr().map_err(io_err)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ProxyStats::default());

        let stop2 = stop.clone();
        let stats2 = stats.clone();
        let accept_thread = std::thread::Builder::new()
            .name("soc-chaos-proxy".into())
            .spawn(move || {
                let rng = Arc::new(Mutex::new(FaultRng::new(faults.seed)));
                let mut tunnels: Vec<std::thread::JoinHandle<()>> = Vec::new();
                // Same blocking-accept + self-connect wake-up shutdown
                // protocol as HttpServer.
                while let Ok((client, _peer)) = listener.accept() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    stats2.connections.fetch_add(1, Ordering::Relaxed);
                    let stats = stats2.clone();
                    let faults = faults.clone();
                    let rng = rng.clone();
                    stats.open.fetch_add(1, Ordering::AcqRel);
                    tunnels.push(std::thread::spawn(move || {
                        tunnel(client, upstream, &faults, &rng, &stats);
                        stats.open.fetch_sub(1, Ordering::AcqRel);
                    }));
                    // Reap finished tunnels so the vec stays bounded.
                    tunnels.retain(|t| !t.is_finished());
                }
                for t in tunnels {
                    let _ = t.join();
                }
            })
            .map_err(|e| HttpError::Io(e.to_string()))?;

        Ok(FaultProxy { addr, stop, stats, accept_thread: Some(accept_thread) })
    }

    /// The proxy's listening address (register THIS with the gateway).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Base URL of the proxy.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Fault counters.
    pub fn stats(&self) -> &ProxyStats {
        &self.stats
    }

    /// Tunnels currently open.
    pub fn open_tunnels(&self) -> i64 {
        self.stats.open.load(Ordering::Acquire)
    }

    /// Stop accepting and join the accept loop and every tunnel.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
            let _ = t.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn io_err(e: std::io::Error) -> HttpError {
    HttpError::Io(e.to_string())
}

/// Tunnel one client connection to `upstream`, drawing a fresh fault
/// verdict for each response read-burst.
fn tunnel(
    client: TcpStream,
    upstream: SocketAddr,
    faults: &ProxyFaults,
    rng: &Mutex<FaultRng>,
    stats: &ProxyStats,
) {
    let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(5)) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    for s in [&client, &server] {
        s.set_read_timeout(Some(Duration::from_secs(10))).ok();
        s.set_write_timeout(Some(Duration::from_secs(10))).ok();
        s.set_nodelay(true).ok();
    }

    // Request path: copy client → upstream verbatim on a helper thread.
    let (Ok(client_rx), Ok(server_tx)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    let up = std::thread::spawn(move || copy_until_eof(client_rx, server_tx));

    // Response path (where the faults live), on this thread.
    pump_response(server, client, faults, rng, stats);
    let _ = up.join();
}

/// Pump response bytes upstream → client, drawing one verdict per read
/// burst. With `TCP_NODELAY` and the single-write responses this stack
/// produces, one burst corresponds to one response, so a keep-alive
/// connection carrying N exchanges consumes N draws from the seeded
/// stream. A reset or truncation ends the tunnel.
fn pump_response(
    mut from: TcpStream,
    mut to: TcpStream,
    faults: &ProxyFaults,
    rng: &Mutex<FaultRng>,
    stats: &ProxyStats,
) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let verdict = faults.verdict(&mut rng.lock());
        let (forward, cut) = match verdict {
            ProxyVerdict::Clean => (n, false),
            ProxyVerdict::Delay => {
                stats.delays.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(faults.delay);
                (n, false)
            }
            // Mid-headers: even a status line is longer than 12 bytes.
            ProxyVerdict::Reset => {
                stats.resets.fetch_add(1, Ordering::Relaxed);
                (n.min(12), true)
            }
            // Drop the tail of the burst: for the small responses in
            // this stack that lands mid-body, after the headers.
            ProxyVerdict::Truncate => {
                stats.truncations.fetch_add(1, Ordering::Relaxed);
                (n.saturating_sub(4), true)
            }
        };
        if to.write_all(&buf[..forward]).is_err() || cut {
            break;
        }
    }
    let _ = to.shutdown(Shutdown::Write);
    let _ = from.shutdown(Shutdown::Read);
}

/// Pump bytes `from` → `to` untouched until EOF or error, closing both
/// write halves on exit so the peer observes the end.
fn copy_until_eof(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    let _ = to.shutdown(Shutdown::Write);
    let _ = from.shutdown(Shutdown::Read);
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_http::{HttpClient, HttpServer, Request, Response};

    fn upstream() -> HttpServer {
        HttpServer::bind("127.0.0.1:0", 2, |_req: Request| {
            Response::json("{\"payload\":\"0123456789abcdef\"}")
        })
        .unwrap()
    }

    #[test]
    fn clean_proxy_is_transparent() {
        let server = upstream();
        let mut proxy = FaultProxy::bind(server.addr(), ProxyFaults::seeded(1)).unwrap();
        let client = HttpClient::new();
        for _ in 0..3 {
            let resp = client.send(Request::get(format!("{}/x", proxy.url()))).unwrap();
            assert!(resp.status.is_success());
            assert!(resp.text_body().unwrap().contains("0123456789abcdef"));
        }
        // A pooled keep-alive client sends all three exchanges down one
        // proxied connection.
        assert_eq!(proxy.stats().connections.load(Ordering::Relaxed), 1);
        assert_eq!(client.pool_stats().reused, 2);
        proxy.shutdown();
        assert_eq!(proxy.open_tunnels(), 0, "tunnels must drain on shutdown");
    }

    #[test]
    fn reset_and_truncate_break_the_read_mid_response() {
        let server = upstream();
        for faults in
            [ProxyFaults::seeded(2).with_reset(1.0), ProxyFaults::seeded(2).with_truncate(1.0)]
        {
            let proxy = FaultProxy::bind(server.addr(), faults).unwrap();
            let client = HttpClient::new();
            let err = client.send(Request::get(format!("{}/x", proxy.url())));
            assert!(err.is_err(), "a cut response must surface as an error: {err:?}");
        }
    }

    #[test]
    fn verdicts_are_deterministic_per_seed() {
        let faults = ProxyFaults::seeded(42).with_reset(0.3).with_truncate(0.2);
        let draw = |f: &ProxyFaults| {
            let mut rng = FaultRng::new(f.seed);
            (0..64).map(|_| f.verdict(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(&faults), draw(&faults));
        let mixed = draw(&faults);
        assert!(mixed.contains(&ProxyVerdict::Reset));
        assert!(mixed.contains(&ProxyVerdict::Truncate));
        assert!(mixed.contains(&ProxyVerdict::Clean));
    }

    #[test]
    fn delay_stalls_but_succeeds() {
        let server = upstream();
        let proxy = FaultProxy::bind(
            server.addr(),
            ProxyFaults::seeded(3).with_delay(1.0, Duration::from_millis(40)),
        )
        .unwrap();
        let client = HttpClient::new();
        let start = std::time::Instant::now();
        let resp = client.send(Request::get(format!("{}/x", proxy.url()))).unwrap();
        assert!(resp.status.is_success());
        assert!(start.elapsed() >= Duration::from_millis(40));
        assert_eq!(proxy.stats().delays.load(Ordering::Relaxed), 1);
    }
}
