//! The shopping-cart service: carts, line items, quantity math, and a
//! small promotion engine — the commerce staple of the repository.
//!
//! [`CartService::durable`] journals every successful mutation
//! (create/add/remove/destroy) to a write-ahead log and replays it on
//! reopen, so carts survive a crash of the host process. Checkout is a
//! pure read and is never journalled. [`CartService::new`] keeps the
//! in-memory behavior.

use std::collections::HashMap;

use parking_lot::Mutex;
use soc_json::Value;
use soc_store::wal::{Lsn, Wal, WalConfig};
use soc_store::{StoreError, StoreResult};

/// Money in integer cents (floats and money don't mix — a unit-5 aside
/// the course makes too).
pub type Cents = i64;

/// One line of a cart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineItem {
    /// Stock-keeping id.
    pub sku: String,
    /// Display name.
    pub name: String,
    /// Unit price in cents.
    pub unit_price: Cents,
    /// Quantity (≥ 1 while in the cart).
    pub quantity: u32,
}

impl LineItem {
    /// Line total.
    pub fn total(&self) -> Cents {
        self.unit_price * self.quantity as i64
    }
}

/// Discounts applied at checkout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Promotion {
    /// Percent off the subtotal (1..=100).
    PercentOff(u32),
    /// Fixed amount off, floored at zero.
    AmountOff(Cents),
    /// Buy `buy` of a SKU, pay for `pay` of them.
    BuyNPayM {
        /// SKU the promotion applies to.
        sku: String,
        /// Units that must be in the cart.
        buy: u32,
        /// Units actually charged per `buy` group.
        pay: u32,
    },
}

/// A priced cart summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Receipt {
    /// Line items at checkout time.
    pub items: Vec<LineItem>,
    /// Sum of line totals.
    pub subtotal: Cents,
    /// Total discount (≥ 0).
    pub discount: Cents,
    /// Amount due.
    pub total: Cents,
}

#[derive(Default)]
struct CartState {
    carts: HashMap<u64, Vec<LineItem>>,
    next_id: u64,
}

impl CartState {
    fn add(&mut self, cart: u64, item: LineItem) -> Result<(), String> {
        if item.quantity == 0 {
            return Err("quantity must be at least 1".into());
        }
        if item.unit_price < 0 {
            return Err("price cannot be negative".into());
        }
        let lines = self.carts.get_mut(&cart).ok_or("no such cart")?;
        if let Some(line) = lines.iter_mut().find(|l| l.sku == item.sku) {
            line.quantity += item.quantity;
        } else {
            lines.push(item);
        }
        Ok(())
    }

    fn remove(&mut self, cart: u64, sku: &str, quantity: u32) -> Result<(), String> {
        let lines = self.carts.get_mut(&cart).ok_or("no such cart")?;
        let Some(pos) = lines.iter().position(|l| l.sku == sku) else {
            return Err(format!("sku {sku:?} not in cart"));
        };
        if lines[pos].quantity <= quantity {
            lines.remove(pos);
        } else {
            lines[pos].quantity -= quantity;
        }
        Ok(())
    }

    /// Replay one journalled event (all events were validated before
    /// being journalled, so failures here mean a corrupt journal).
    fn apply_event(&mut self, payload: &[u8]) -> Result<(), String> {
        let text = std::str::from_utf8(payload).map_err(|e| e.to_string())?;
        let ev = Value::parse(text).map_err(|e| e.to_string())?;
        let cart = ev.get("cart").and_then(Value::as_i64).unwrap_or(0) as u64;
        match ev.get("ev").and_then(Value::as_str) {
            Some("create") => {
                self.carts.insert(cart, Vec::new());
                self.next_id = self.next_id.max(cart + 1);
                Ok(())
            }
            Some("add") => self.add(
                cart,
                LineItem {
                    sku: ev.get("sku").and_then(Value::as_str).unwrap_or_default().to_string(),
                    name: ev.get("name").and_then(Value::as_str).unwrap_or_default().to_string(),
                    unit_price: ev.get("price").and_then(Value::as_i64).unwrap_or(0),
                    quantity: ev.get("qty").and_then(Value::as_i64).unwrap_or(0) as u32,
                },
            ),
            Some("remove") => self.remove(
                cart,
                ev.get("sku").and_then(Value::as_str).unwrap_or_default(),
                ev.get("qty").and_then(Value::as_i64).unwrap_or(0) as u32,
            ),
            Some("destroy") => {
                self.carts.remove(&cart);
                Ok(())
            }
            other => Err(format!("unknown cart event {other:?}")),
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut ids: Vec<&u64> = self.carts.keys().collect();
        ids.sort();
        let carts: Vec<Value> = ids
            .into_iter()
            .map(|id| {
                let lines: Vec<Value> = self.carts[id]
                    .iter()
                    .map(|l| {
                        let mut line = Value::object();
                        line.set("sku", l.sku.as_str());
                        line.set("name", l.name.as_str());
                        line.set("price", l.unit_price);
                        line.set("qty", l.quantity as i64);
                        line
                    })
                    .collect();
                let mut cart = Value::object();
                cart.set("id", *id as i64);
                cart.set("lines", Value::Array(lines));
                cart
            })
            .collect();
        let mut snap = Value::object();
        snap.set("carts", Value::Array(carts));
        snap.set("next_id", self.next_id as i64);
        snap.to_compact().into_bytes()
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), String> {
        let text = std::str::from_utf8(snapshot).map_err(|e| e.to_string())?;
        let snap = Value::parse(text).map_err(|e| e.to_string())?;
        *self = CartState::default();
        self.next_id = snap.get("next_id").and_then(Value::as_i64).unwrap_or(1) as u64;
        for cart in snap.get("carts").and_then(Value::as_array).ok_or("missing carts")? {
            let id = cart.get("id").and_then(Value::as_i64).ok_or("cart missing id")? as u64;
            let mut lines = Vec::new();
            for l in cart.get("lines").and_then(Value::as_array).unwrap_or(&[]) {
                lines.push(LineItem {
                    sku: l.get("sku").and_then(Value::as_str).unwrap_or_default().to_string(),
                    name: l.get("name").and_then(Value::as_str).unwrap_or_default().to_string(),
                    unit_price: l.get("price").and_then(Value::as_i64).unwrap_or(0),
                    quantity: l.get("qty").and_then(Value::as_i64).unwrap_or(0) as u32,
                });
            }
            self.carts.insert(id, lines);
        }
        Ok(())
    }
}

/// The cart service: many carts by id.
pub struct CartService {
    state: Mutex<CartState>,
    wal: Option<Wal>,
}

impl Default for CartService {
    fn default() -> Self {
        Self::new()
    }
}

impl CartService {
    /// Empty in-memory service.
    pub fn new() -> Self {
        CartService {
            state: Mutex::new(CartState { carts: HashMap::new(), next_id: 1 }),
            wal: None,
        }
    }

    /// A cart service journalled to a write-ahead log in `dir`,
    /// recovered to its pre-crash state if a journal already exists.
    pub fn durable(dir: impl AsRef<std::path::Path>, cfg: WalConfig) -> StoreResult<Self> {
        let (wal, recovery) = Wal::open_with(dir, cfg)?;
        let mut state = CartState { carts: HashMap::new(), next_id: 1 };
        if let Some((_, snap)) = &recovery.snapshot {
            state.restore(snap).map_err(StoreError::Corrupt)?;
        }
        for (_, payload) in &recovery.records {
            state.apply_event(payload).map_err(StoreError::Corrupt)?;
        }
        Ok(CartService { state: Mutex::new(state), wal: Some(wal) })
    }

    /// Snapshot-then-truncate the journal (durable services only).
    pub fn compact(&self) -> StoreResult<()> {
        let Some(wal) = &self.wal else { return Ok(()) };
        let state = self.state.lock();
        wal.snapshot(&state.snapshot())?;
        Ok(())
    }

    fn journal(&self, ev: &Value) -> Option<Lsn> {
        self.wal
            .as_ref()
            .map(|w| w.submit(ev.to_compact().as_bytes()).expect("cart journal refused an event"))
    }

    fn wait(&self, lsn: Option<Lsn>) {
        if let (Some(wal), Some(lsn)) = (&self.wal, lsn) {
            if let Err(e) = wal.wait_durable(lsn) {
                panic!("cart service lost durability: {e}");
            }
        }
    }

    /// Create an empty cart, returning its id.
    pub fn create(&self) -> u64 {
        let mut state = self.state.lock();
        let id = state.next_id;
        state.next_id += 1;
        state.carts.insert(id, Vec::new());
        let mut ev = Value::object();
        ev.set("ev", "create");
        ev.set("cart", id as i64);
        let lsn = self.journal(&ev);
        drop(state);
        self.wait(lsn);
        id
    }

    /// Add quantity of an item (merges with an existing line of the same
    /// SKU; the price of the existing line wins on conflict).
    pub fn add(&self, cart: u64, item: LineItem) -> Result<(), String> {
        let mut state = self.state.lock();
        let mut ev = Value::object();
        ev.set("ev", "add");
        ev.set("cart", cart as i64);
        ev.set("sku", item.sku.as_str());
        ev.set("name", item.name.as_str());
        ev.set("price", item.unit_price);
        ev.set("qty", item.quantity as i64);
        state.add(cart, item)?;
        // Only successful mutations are journalled.
        let lsn = self.journal(&ev);
        drop(state);
        self.wait(lsn);
        Ok(())
    }

    /// Remove up to `quantity` units of a SKU; the line disappears at 0.
    pub fn remove(&self, cart: u64, sku: &str, quantity: u32) -> Result<(), String> {
        let mut state = self.state.lock();
        state.remove(cart, sku, quantity)?;
        let mut ev = Value::object();
        ev.set("ev", "remove");
        ev.set("cart", cart as i64);
        ev.set("sku", sku);
        ev.set("qty", quantity as i64);
        let lsn = self.journal(&ev);
        drop(state);
        self.wait(lsn);
        Ok(())
    }

    /// Current lines.
    pub fn items(&self, cart: u64) -> Result<Vec<LineItem>, String> {
        self.state.lock().carts.get(&cart).cloned().ok_or_else(|| "no such cart".into())
    }

    /// Price the cart with promotions; does not consume it.
    pub fn checkout(&self, cart: u64, promotions: &[Promotion]) -> Result<Receipt, String> {
        let items = self.items(cart)?;
        let subtotal: Cents = items.iter().map(LineItem::total).sum();
        let mut discount: Cents = 0;
        for promo in promotions {
            discount += match promo {
                Promotion::PercentOff(pct) => {
                    if *pct == 0 || *pct > 100 {
                        return Err("percent must be 1..=100".into());
                    }
                    subtotal * *pct as i64 / 100
                }
                Promotion::AmountOff(cents) => (*cents).max(0),
                Promotion::BuyNPayM { sku, buy, pay } => {
                    if pay > buy || *buy == 0 {
                        return Err("buy/pay promotion malformed".into());
                    }
                    match items.iter().find(|l| l.sku == *sku) {
                        Some(line) => {
                            let groups = line.quantity / buy;
                            (groups * (buy - pay)) as i64 * line.unit_price
                        }
                        None => 0,
                    }
                }
            };
        }
        let discount = discount.min(subtotal);
        Ok(Receipt { items, subtotal, discount, total: subtotal - discount })
    }

    /// Drop a cart; `true` if it existed.
    pub fn destroy(&self, cart: u64) -> bool {
        let mut state = self.state.lock();
        let existed = state.carts.remove(&cart).is_some();
        let lsn = if existed {
            let mut ev = Value::object();
            ev.set("ev", "destroy");
            ev.set("cart", cart as i64);
            self.journal(&ev)
        } else {
            None
        };
        drop(state);
        self.wait(lsn);
        existed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book() -> LineItem {
        LineItem { sku: "bk-1".into(), name: "SOC text".into(), unit_price: 4999, quantity: 1 }
    }

    fn pen() -> LineItem {
        LineItem { sku: "pn-1".into(), name: "pen".into(), unit_price: 150, quantity: 3 }
    }

    #[test]
    fn add_merge_and_totals() {
        let svc = CartService::new();
        let id = svc.create();
        svc.add(id, book()).unwrap();
        svc.add(id, book()).unwrap();
        svc.add(id, pen()).unwrap();
        let items = svc.items(id).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].quantity, 2);
        let receipt = svc.checkout(id, &[]).unwrap();
        assert_eq!(receipt.subtotal, 2 * 4999 + 3 * 150);
        assert_eq!(receipt.total, receipt.subtotal);
        assert_eq!(receipt.discount, 0);
    }

    #[test]
    fn remove_decrements_and_deletes() {
        let svc = CartService::new();
        let id = svc.create();
        svc.add(id, pen()).unwrap();
        svc.remove(id, "pn-1", 2).unwrap();
        assert_eq!(svc.items(id).unwrap()[0].quantity, 1);
        svc.remove(id, "pn-1", 5).unwrap();
        assert!(svc.items(id).unwrap().is_empty());
        assert!(svc.remove(id, "pn-1", 1).is_err());
    }

    #[test]
    fn percent_discount() {
        let svc = CartService::new();
        let id = svc.create();
        svc.add(id, book()).unwrap();
        let r = svc.checkout(id, &[Promotion::PercentOff(10)]).unwrap();
        assert_eq!(r.discount, 499);
        assert_eq!(r.total, 4999 - 499);
        assert!(svc.checkout(id, &[Promotion::PercentOff(0)]).is_err());
        assert!(svc.checkout(id, &[Promotion::PercentOff(101)]).is_err());
    }

    #[test]
    fn buy_n_pay_m() {
        let svc = CartService::new();
        let id = svc.create();
        let mut pens = pen();
        pens.quantity = 7; // 7 pens, buy 3 pay 2 → 2 groups → 2 free
        svc.add(id, pens).unwrap();
        let promo = Promotion::BuyNPayM { sku: "pn-1".into(), buy: 3, pay: 2 };
        let r = svc.checkout(id, &[promo]).unwrap();
        assert_eq!(r.discount, 2 * 150);
        // Promotion on an absent SKU is a no-op.
        let promo = Promotion::BuyNPayM { sku: "ghost".into(), buy: 3, pay: 2 };
        assert_eq!(svc.checkout(id, &[promo]).unwrap().discount, 0);
    }

    #[test]
    fn discount_never_exceeds_subtotal() {
        let svc = CartService::new();
        let id = svc.create();
        svc.add(id, pen()).unwrap();
        let r = svc.checkout(id, &[Promotion::AmountOff(1_000_000)]).unwrap();
        assert_eq!(r.total, 0);
        assert_eq!(r.discount, r.subtotal);
    }

    #[test]
    fn stacked_promotions_accumulate() {
        let svc = CartService::new();
        let id = svc.create();
        svc.add(id, book()).unwrap();
        let r = svc.checkout(id, &[Promotion::PercentOff(10), Promotion::AmountOff(500)]).unwrap();
        assert_eq!(r.discount, 499 + 500);
    }

    #[test]
    fn validation_errors() {
        let svc = CartService::new();
        let id = svc.create();
        assert!(svc.add(id, LineItem { quantity: 0, ..book() }).is_err());
        assert!(svc.add(id, LineItem { unit_price: -5, ..book() }).is_err());
        assert!(svc.add(999, book()).is_err());
        assert!(svc.items(999).is_err());
    }

    #[test]
    fn destroy_cart() {
        let svc = CartService::new();
        let id = svc.create();
        assert!(svc.destroy(id));
        assert!(!svc.destroy(id));
        assert!(svc.items(id).is_err());
    }

    #[test]
    fn durable_cart_replays_to_pre_crash_state() {
        let tmp = soc_store::TempDir::new("cart-durable");
        let (alive, dead);
        {
            let svc = CartService::durable(tmp.path(), WalConfig::default()).unwrap();
            alive = svc.create();
            dead = svc.create();
            svc.add(alive, book()).unwrap();
            svc.add(alive, pen()).unwrap();
            svc.add(alive, book()).unwrap(); // merges with the first book line
            svc.remove(alive, "pn-1", 1).unwrap();
            svc.add(dead, pen()).unwrap();
            assert!(svc.destroy(dead));
            // Failed mutations are never journalled.
            assert!(svc.add(alive, LineItem { quantity: 0, ..book() }).is_err());
            // Simulated crash: drop without any shutdown handshake.
        }
        let svc = CartService::durable(tmp.path(), WalConfig::default()).unwrap();
        let items = svc.items(alive).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items.iter().find(|l| l.sku == "bk-1").unwrap().quantity, 2);
        assert_eq!(items.iter().find(|l| l.sku == "pn-1").unwrap().quantity, 2);
        assert!(svc.items(dead).is_err(), "destroyed cart must stay destroyed");
        // next_id resumes past every journalled create.
        assert!(svc.create() > dead);
        // Checkout still works on replayed state (pure read, unjournalled).
        let r = svc.checkout(alive, &[]).unwrap();
        assert_eq!(r.subtotal, 2 * 4999 + 2 * 150);
    }

    #[test]
    fn durable_cart_compaction_preserves_state() {
        let tmp = soc_store::TempDir::new("cart-compact");
        let id;
        {
            let svc = CartService::durable(tmp.path(), WalConfig::default()).unwrap();
            id = svc.create();
            svc.add(id, book()).unwrap();
            svc.compact().unwrap();
            svc.add(id, pen()).unwrap();
        }
        let svc = CartService::durable(tmp.path(), WalConfig::default()).unwrap();
        assert_eq!(svc.items(id).unwrap().len(), 2);
        assert!(svc.create() > id);
    }
}
