//! Property tests for the registry: descriptor codec round-trips,
//! repository persistence identity, search-engine ranking invariants,
//! and crawler determinism over random federations.

use proptest::prelude::*;
use soc_registry::descriptor::{Binding, ServiceDescriptor};
use soc_registry::search::{tokenize, SearchEngine};
use soc_registry::Repository;

fn binding_strategy() -> impl Strategy<Value = Binding> {
    prop_oneof![
        Just(Binding::Rest),
        Just(Binding::Soap),
        Just(Binding::Workflow),
        Just(Binding::InProcess),
    ]
}

fn descriptor_strategy() -> impl Strategy<Value = ServiceDescriptor> {
    (
        "[a-z][a-z0-9-]{0,12}",
        "[ -~é]{1,24}",
        "[ -~é]{0,48}",
        "[a-z]{1,10}",
        proptest::collection::vec("[a-z]{2,8}", 0..4),
        binding_strategy(),
    )
        .prop_map(|(id, name, desc, cat, keywords, binding)| {
            let kw: Vec<&str> = keywords.iter().map(String::as_str).collect();
            ServiceDescriptor::new(&id, name.trim(), &format!("mem://{id}/api"), binding)
                .describe(desc.trim())
                .category(&cat)
                .keywords(&kw)
                .provider("prop")
        })
}

fn catalog_strategy() -> impl Strategy<Value = Vec<ServiceDescriptor>> {
    proptest::collection::vec(descriptor_strategy(), 0..20).prop_map(|ds| {
        let mut seen = std::collections::HashSet::new();
        ds.into_iter().filter(|d| seen.insert(d.id.clone())).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn descriptor_json_round_trip(d in descriptor_strategy()) {
        let j = d.to_json();
        prop_assert_eq!(ServiceDescriptor::from_json(&j).unwrap(), d);
    }

    #[test]
    fn repository_xml_round_trip(catalog in catalog_strategy()) {
        let repo = Repository::new();
        for d in &catalog {
            repo.publish(d.clone()).unwrap();
        }
        let xml = repo.to_xml();
        let restored = Repository::from_xml(&xml).unwrap();
        prop_assert_eq!(restored.list(), catalog);
    }

    #[test]
    fn search_results_are_sorted_and_bounded(
        catalog in catalog_strategy(),
        query in "[a-z ]{0,24}",
        limit in 0usize..12,
    ) {
        let engine = SearchEngine::build(catalog);
        let hits = engine.search(&query, limit);
        prop_assert!(hits.len() <= limit);
        for w in hits.windows(2) {
            prop_assert!(
                w[0].score > w[1].score
                    || (w[0].score == w[1].score && w[0].service.id <= w[1].service.id),
                "ranking not sorted/deterministic"
            );
        }
        // Every hit actually shares a token with the query.
        let q_tokens: std::collections::HashSet<String> =
            tokenize(&query).into_iter().collect();
        for h in &hits {
            let mut doc_text = format!(
                "{} {} {} {}",
                h.service.name,
                h.service.description,
                h.service.category,
                h.service.keywords.join(" ")
            );
            doc_text = doc_text.to_lowercase();
            let doc_tokens: std::collections::HashSet<String> =
                tokenize(&doc_text).into_iter().collect();
            prop_assert!(
                q_tokens.iter().any(|t| doc_tokens.contains(t)),
                "hit shares no token with the query"
            );
        }
    }

    #[test]
    fn searching_for_a_unique_keyword_finds_its_service(catalog in catalog_strategy()) {
        // Plant one descriptor with a guaranteed-unique token.
        let mut catalog = catalog;
        let needle = "zzyzxunique";
        catalog.push(
            ServiceDescriptor::new("planted", "Planted Service", "mem://p/x", Binding::Rest)
                .describe(&format!("the {needle} sentinel value")),
        );
        let engine = SearchEngine::build(catalog);
        let hits = engine.search(needle, 5);
        prop_assert_eq!(hits.len(), 1);
        prop_assert_eq!(hits[0].service.id.as_str(), "planted");
    }

    #[test]
    fn tokenizer_is_idempotent_and_lowercase(text in "[ -~é中]{0,64}") {
        let once = tokenize(&text);
        let joined = once.join(" ");
        prop_assert_eq!(tokenize(&joined), once.clone());
        for t in &once {
            prop_assert!(t.len() >= 2);
            prop_assert_eq!(t.to_lowercase(), t.clone());
        }
    }

    #[test]
    fn publish_then_unpublish_is_identity(catalog in catalog_strategy(), extra in descriptor_strategy()) {
        prop_assume!(!catalog.iter().any(|d| d.id == extra.id));
        let repo = Repository::new();
        for d in &catalog {
            repo.publish(d.clone()).unwrap();
        }
        let before = repo.list();
        repo.publish(extra.clone()).unwrap();
        prop_assert!(repo.unpublish(&extra.id));
        prop_assert_eq!(repo.list(), before);
    }
}
