/root/repo/target/debug/deps/proptests-959969da62790516.d: crates/soc-parallel/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-959969da62790516.rmeta: crates/soc-parallel/tests/proptests.rs Cargo.toml

crates/soc-parallel/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
