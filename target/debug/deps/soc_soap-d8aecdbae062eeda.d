/root/repo/target/debug/deps/soc_soap-d8aecdbae062eeda.d: crates/soc-soap/src/lib.rs crates/soc-soap/src/client.rs crates/soc-soap/src/contract.rs crates/soc-soap/src/envelope.rs crates/soc-soap/src/service.rs crates/soc-soap/src/wsdl.rs Cargo.toml

/root/repo/target/debug/deps/libsoc_soap-d8aecdbae062eeda.rmeta: crates/soc-soap/src/lib.rs crates/soc-soap/src/client.rs crates/soc-soap/src/contract.rs crates/soc-soap/src/envelope.rs crates/soc-soap/src/service.rs crates/soc-soap/src/wsdl.rs Cargo.toml

crates/soc-soap/src/lib.rs:
crates/soc-soap/src/client.rs:
crates/soc-soap/src/contract.rs:
crates/soc-soap/src/envelope.rs:
crates/soc-soap/src/service.rs:
crates/soc-soap/src/wsdl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
