/root/repo/target/release/deps/soc_http-1d576ccc24a72179.d: crates/soc-http/src/lib.rs crates/soc-http/src/client.rs crates/soc-http/src/codec.rs crates/soc-http/src/cookies.rs crates/soc-http/src/mem.rs crates/soc-http/src/server.rs crates/soc-http/src/types.rs crates/soc-http/src/url.rs

/root/repo/target/release/deps/libsoc_http-1d576ccc24a72179.rlib: crates/soc-http/src/lib.rs crates/soc-http/src/client.rs crates/soc-http/src/codec.rs crates/soc-http/src/cookies.rs crates/soc-http/src/mem.rs crates/soc-http/src/server.rs crates/soc-http/src/types.rs crates/soc-http/src/url.rs

/root/repo/target/release/deps/libsoc_http-1d576ccc24a72179.rmeta: crates/soc-http/src/lib.rs crates/soc-http/src/client.rs crates/soc-http/src/codec.rs crates/soc-http/src/cookies.rs crates/soc-http/src/mem.rs crates/soc-http/src/server.rs crates/soc-http/src/types.rs crates/soc-http/src/url.rs

crates/soc-http/src/lib.rs:
crates/soc-http/src/client.rs:
crates/soc-http/src/codec.rs:
crates/soc-http/src/cookies.rs:
crates/soc-http/src/mem.rs:
crates/soc-http/src/server.rs:
crates/soc-http/src/types.rs:
crates/soc-http/src/url.rs:
