//! QoS / availability monitoring of published services.
//!
//! Section V motivates the ASU repository with the failure modes of free
//! public services: *"The performance of some of the services is not
//! adequate... The availability, reliability, and maintainability are
//! not warranted. Services are often offline or removed without
//! notice."* The monitor measures exactly those properties: per-service
//! probe success rate, latency statistics, and lease-based liveness for
//! providers that are supposed to heartbeat.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use soc_http::mem::Transport;
use soc_http::Request;

/// Rolled-up quality metrics for one service.
#[derive(Debug, Clone, PartialEq)]
pub struct QosReport {
    /// Service id.
    pub id: String,
    /// Probes sent.
    pub probes: u64,
    /// Probes that returned a 2xx.
    pub successes: u64,
    /// Availability in [0, 1].
    pub availability: f64,
    /// Mean latency over successful probes.
    pub mean_latency: Duration,
    /// Worst observed latency.
    pub max_latency: Duration,
    /// Median latency over successful probes.
    pub p50_latency: Duration,
    /// 95th-percentile latency over successful probes.
    pub p95_latency: Duration,
    /// 99th-percentile latency over successful probes.
    pub p99_latency: Duration,
}

/// Cap on retained latency samples per service; past it, the oldest
/// samples are overwritten so the percentile window slides forward.
const SAMPLE_CAP: usize = 8_192;

/// Window for the cheap "recent" accessors ([`QosMonitor::recent_percentile`],
/// [`QosMonitor::recent_error_rate`]) that load balancers consult on the
/// hot path: small enough to sort per call, fresh enough to track a
/// replica that just turned slow or flaky.
pub const RECENT_WINDOW: usize = 256;

#[derive(Debug, Default)]
struct Track {
    probes: u64,
    successes: u64,
    total_latency: Duration,
    max_latency: Duration,
    /// Success latencies in nanoseconds, a bounded sliding window.
    samples: Vec<u64>,
    /// Next overwrite position once `samples` hits [`SAMPLE_CAP`].
    next_slot: usize,
    /// Outcomes (ok / failed) of the last [`RECENT_WINDOW`] observations.
    recent_outcomes: std::collections::VecDeque<bool>,
}

impl Track {
    fn push_sample(&mut self, latency: Duration) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        if self.samples.len() < SAMPLE_CAP {
            self.samples.push(nanos);
        } else {
            self.samples[self.next_slot] = nanos;
            self.next_slot = (self.next_slot + 1) % SAMPLE_CAP;
        }
    }

    fn push_outcome(&mut self, ok: bool) {
        self.recent_outcomes.push_back(ok);
        while self.recent_outcomes.len() > RECENT_WINDOW {
            self.recent_outcomes.pop_front();
        }
    }

    /// Nearest-rank percentile (`q` in [0, 1]) over the sample window.
    fn percentile(&self, q: f64) -> Duration {
        Self::percentile_of(&self.samples, q)
    }

    fn percentile_of(samples: &[u64], q: f64) -> Duration {
        if samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Duration::from_nanos(sorted[rank - 1])
    }

    /// The last up-to-[`RECENT_WINDOW`] success latencies, in insertion
    /// order (the ring buffer makes "last" a two-segment walk).
    fn recent_samples(&self) -> Vec<u64> {
        if self.samples.len() < SAMPLE_CAP {
            let start = self.samples.len().saturating_sub(RECENT_WINDOW);
            return self.samples[start..].to_vec();
        }
        // Full ring: `next_slot` is the oldest entry; the freshest
        // RECENT_WINDOW entries end just before it.
        let mut out = Vec::with_capacity(RECENT_WINDOW);
        for i in 0..RECENT_WINDOW {
            let idx = (self.next_slot + SAMPLE_CAP - RECENT_WINDOW + i) % SAMPLE_CAP;
            out.push(self.samples[idx]);
        }
        out
    }
}

/// Probes service endpoints and accumulates QoS statistics.
pub struct QosMonitor {
    transport: Arc<dyn Transport>,
    tracks: Mutex<HashMap<String, Track>>,
}

impl QosMonitor {
    /// Monitor over a transport.
    pub fn new(transport: Arc<dyn Transport>) -> Self {
        QosMonitor { transport, tracks: Mutex::new(HashMap::new()) }
    }

    /// Probe `endpoint` once on behalf of service `id` (a plain GET; any
    /// 2xx counts as up). Returns whether the probe succeeded.
    pub fn probe(&self, id: &str, endpoint: &str) -> bool {
        let start = Instant::now();
        let ok = match self.transport.send(Request::get(endpoint)) {
            Ok(resp) => resp.status.is_success(),
            Err(_) => false,
        };
        self.record(id, ok, start.elapsed());
        ok
    }

    /// Record an externally observed outcome for service `id` — the same
    /// bookkeeping as [`QosMonitor::probe`] but with the caller supplying
    /// the result. Lets a gateway or client feed live traffic into the
    /// same QoS statistics the monitor's own probes populate.
    pub fn record(&self, id: &str, ok: bool, latency: Duration) {
        // Mirror every observation into the process-wide metrics plane
        // so `/observe/metrics` reports availability next to the
        // gateway's latency histograms.
        soc_observe::metrics()
            .counter(
                "soc_qos_observations_total",
                &[("service", id), ("outcome", if ok { "ok" } else { "error" })],
            )
            .inc();
        let mut tracks = self.tracks.lock();
        let t = tracks.entry(id.to_string()).or_default();
        t.probes += 1;
        t.push_outcome(ok);
        if ok {
            t.successes += 1;
            t.total_latency += latency;
            t.max_latency = t.max_latency.max(latency);
            t.push_sample(latency);
        }
    }

    /// Probe a service `n` times in a row.
    pub fn probe_n(&self, id: &str, endpoint: &str, n: usize) {
        for _ in 0..n {
            self.probe(id, endpoint);
        }
    }

    /// Report for one service, if it has ever been probed.
    pub fn report(&self, id: &str) -> Option<QosReport> {
        let tracks = self.tracks.lock();
        let t = tracks.get(id)?;
        Some(QosReport {
            id: id.to_string(),
            probes: t.probes,
            successes: t.successes,
            availability: if t.probes == 0 { 0.0 } else { t.successes as f64 / t.probes as f64 },
            mean_latency: if t.successes == 0 {
                Duration::ZERO
            } else {
                t.total_latency / t.successes as u32
            },
            max_latency: t.max_latency,
            p50_latency: t.percentile(0.50),
            p95_latency: t.percentile(0.95),
            p99_latency: t.percentile(0.99),
        })
    }

    /// Mean latency over successful observations of `id`, without the
    /// percentile computation a full [`QosMonitor::report`] pays for —
    /// cheap enough to consult on every load-balancing decision.
    pub fn mean_latency(&self, id: &str) -> Option<Duration> {
        let tracks = self.tracks.lock();
        let t = tracks.get(id)?;
        if t.successes == 0 {
            None
        } else {
            Some(t.total_latency / t.successes as u32)
        }
    }

    /// Nearest-rank `q`-quantile latency over the last
    /// [`RECENT_WINDOW`] *successful* observations of `id`, or `None`
    /// when none were recorded. Cheap enough (sorts at most
    /// [`RECENT_WINDOW`] numbers) to consult per request — this is the
    /// feed for hedged-request triggers and outlier ejection.
    pub fn recent_percentile(&self, id: &str, q: f64) -> Option<Duration> {
        let tracks = self.tracks.lock();
        let t = tracks.get(id)?;
        let recent = t.recent_samples();
        if recent.is_empty() {
            None
        } else {
            Some(Track::percentile_of(&recent, q))
        }
    }

    /// 95th-percentile latency over the recent success window — the
    /// hedging trigger's "this should have answered by now" threshold.
    pub fn recent_p95(&self, id: &str) -> Option<Duration> {
        self.recent_percentile(id, 0.95)
    }

    /// Failure fraction over the last [`RECENT_WINDOW`] observations
    /// (successes *and* failures), or `None` when `id` has never been
    /// observed. Unlike cumulative availability, this tracks a replica
    /// that just started failing.
    pub fn recent_error_rate(&self, id: &str) -> Option<f64> {
        let tracks = self.tracks.lock();
        let t = tracks.get(id)?;
        if t.recent_outcomes.is_empty() {
            return None;
        }
        let failures = t.recent_outcomes.iter().filter(|ok| !**ok).count();
        Some(failures as f64 / t.recent_outcomes.len() as f64)
    }

    /// Successful latency samples currently retained for `id` (bounded
    /// by the sliding window cap). Gates percentile-driven decisions so
    /// one lucky sample cannot steer them.
    pub fn success_samples(&self, id: &str) -> usize {
        self.tracks.lock().get(id).map(|t| t.samples.len()).unwrap_or(0)
    }

    /// Observations (success or failure) in the recent outcome window.
    pub fn recent_observations(&self, id: &str) -> usize {
        self.tracks.lock().get(id).map(|t| t.recent_outcomes.len()).unwrap_or(0)
    }

    /// Reports for every probed service, sorted by id.
    pub fn all_reports(&self) -> Vec<QosReport> {
        let ids: Vec<String> = {
            let tracks = self.tracks.lock();
            tracks.keys().cloned().collect()
        };
        let mut reports: Vec<QosReport> = ids.iter().filter_map(|id| self.report(id)).collect();
        reports.sort_by(|a, b| a.id.cmp(&b.id));
        reports
    }
}

/// One registration lease: when it lapses, and (optionally) where the
/// provider serves from — the feed `soc-store`'s shard map hashes over.
#[derive(Debug, Clone)]
struct Lease {
    expiry: u64,
    endpoint: Option<String>,
}

/// Lease-based liveness: providers renew a lease; services whose lease
/// lapses are considered gone ("removed without notice") and expire out
/// of listings. Time is injected as a logical tick count so tests and
/// benches are deterministic.
#[derive(Default)]
pub struct LeaseTable {
    /// id → lease.
    leases: Mutex<HashMap<String, Lease>>,
}

impl LeaseTable {
    /// Empty table.
    pub fn new() -> Self {
        LeaseTable::default()
    }

    /// Grant or renew a lease until `now + duration_ticks`, keeping
    /// any previously advertised endpoint.
    pub fn renew(&self, id: &str, now: u64, duration_ticks: u64) {
        self.renew_with_endpoint(id, now, duration_ticks, None);
    }

    /// Grant or renew a lease, optionally (re)advertising the
    /// provider's endpoint. `None` preserves the previous endpoint, so
    /// steady-state heartbeats don't need to repeat it.
    pub fn renew_with_endpoint(
        &self,
        id: &str,
        now: u64,
        duration_ticks: u64,
        endpoint: Option<&str>,
    ) {
        let mut leases = self.leases.lock();
        let expiry = now.saturating_add(duration_ticks);
        match leases.get_mut(id) {
            Some(lease) => {
                lease.expiry = expiry;
                if let Some(ep) = endpoint {
                    lease.endpoint = Some(ep.to_string());
                }
            }
            None => {
                leases.insert(
                    id.to_string(),
                    Lease { expiry, endpoint: endpoint.map(str::to_string) },
                );
            }
        }
    }

    /// Is the lease current at `now`?
    pub fn is_live(&self, id: &str, now: u64) -> bool {
        self.leases.lock().get(id).is_some_and(|lease| lease.expiry > now)
    }

    /// Drop expired leases, returning the ids that lapsed.
    pub fn expire(&self, now: u64) -> Vec<String> {
        let mut leases = self.leases.lock();
        let dead: Vec<String> = leases
            .iter()
            .filter(|(_, lease)| lease.expiry <= now)
            .map(|(id, _)| id.clone())
            .collect();
        for id in &dead {
            leases.remove(id);
        }
        let mut dead = dead;
        dead.sort();
        dead
    }

    /// Drop `id`'s lease outright, returning whether it was live at
    /// `now` (a provider deliberately going away, as opposed to
    /// lapsing).
    pub fn revoke(&self, id: &str, now: u64) -> bool {
        self.leases.lock().remove(id).is_some_and(|lease| lease.expiry > now)
    }

    /// Live ids at `now`, sorted.
    pub fn live(&self, now: u64) -> Vec<String> {
        let mut ids: Vec<String> = self
            .leases
            .lock()
            .iter()
            .filter(|(_, lease)| lease.expiry > now)
            .map(|(id, _)| id.clone())
            .collect();
        ids.sort();
        ids
    }

    /// `(id, endpoint)` for live leases that advertised one, sorted by
    /// id — the shard-map construction input.
    pub fn live_endpoints(&self, now: u64) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .leases
            .lock()
            .iter()
            .filter(|(_, lease)| lease.expiry > now)
            .filter_map(|(id, lease)| lease.endpoint.clone().map(|ep| (id.clone(), ep)))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_http::mem::{FaultConfig, MemNetwork};
    use soc_http::{Request as Rq, Response};

    fn net() -> MemNetwork {
        let net = MemNetwork::new();
        net.host("up", |_r: Rq| Response::text("ok"));
        net.host("flaky", |_r: Rq| Response::text("ok"));
        net.set_fault("flaky", FaultConfig { fail_every: 2, ..Default::default() });
        net
    }

    #[test]
    fn availability_of_healthy_service_is_one() {
        let monitor = QosMonitor::new(Arc::new(net()));
        monitor.probe_n("up", "mem://up/health", 10);
        let r = monitor.report("up").unwrap();
        assert_eq!(r.probes, 10);
        assert_eq!(r.successes, 10);
        assert!((r.availability - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flaky_service_availability_measured() {
        let monitor = QosMonitor::new(Arc::new(net()));
        monitor.probe_n("flaky", "mem://flaky/health", 10);
        let r = monitor.report("flaky").unwrap();
        assert_eq!(r.successes, 5);
        assert!((r.availability - 0.5).abs() < 1e-9);
    }

    #[test]
    fn offline_service_availability_zero() {
        let network = net();
        network.set_fault("up", FaultConfig { offline: true, ..Default::default() });
        let monitor = QosMonitor::new(Arc::new(network));
        monitor.probe_n("up", "mem://up/health", 4);
        let r = monitor.report("up").unwrap();
        assert_eq!(r.successes, 0);
        assert_eq!(r.availability, 0.0);
        assert_eq!(r.mean_latency, Duration::ZERO);
    }

    #[test]
    fn unknown_service_has_no_report() {
        let monitor = QosMonitor::new(Arc::new(net()));
        assert!(monitor.report("ghost").is_none());
    }

    #[test]
    fn all_reports_sorted() {
        let monitor = QosMonitor::new(Arc::new(net()));
        monitor.probe("up", "mem://up/");
        monitor.probe("flaky", "mem://flaky/");
        let ids: Vec<String> = monitor.all_reports().into_iter().map(|r| r.id).collect();
        assert_eq!(ids, vec!["flaky", "up"]);
    }

    #[test]
    fn record_feeds_percentiles() {
        let monitor = QosMonitor::new(Arc::new(net()));
        // 1ms..=100ms, one sample each: percentiles land on exact ranks.
        for ms in 1..=100u64 {
            monitor.record("svc", true, Duration::from_millis(ms));
        }
        let r = monitor.report("svc").unwrap();
        assert_eq!(r.probes, 100);
        assert_eq!(r.successes, 100);
        assert_eq!(r.p50_latency, Duration::from_millis(50));
        assert_eq!(r.p95_latency, Duration::from_millis(95));
        assert_eq!(r.p99_latency, Duration::from_millis(99));
        assert_eq!(r.max_latency, Duration::from_millis(100));
    }

    #[test]
    fn failures_do_not_skew_latency_percentiles() {
        let monitor = QosMonitor::new(Arc::new(net()));
        monitor.record("svc", true, Duration::from_millis(10));
        monitor.record("svc", false, Duration::from_secs(5));
        let r = monitor.report("svc").unwrap();
        assert_eq!(r.successes, 1);
        assert_eq!(r.p99_latency, Duration::from_millis(10));
        assert!((r.availability - 0.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_empty_when_never_successful() {
        let monitor = QosMonitor::new(Arc::new(net()));
        monitor.record("down", false, Duration::from_millis(1));
        let r = monitor.report("down").unwrap();
        assert_eq!(r.p50_latency, Duration::ZERO);
        assert_eq!(r.p95_latency, Duration::ZERO);
        assert_eq!(r.p99_latency, Duration::ZERO);
    }

    #[test]
    fn sample_window_slides_past_cap() {
        let monitor = QosMonitor::new(Arc::new(net()));
        // Overfill the window with slow samples, then fully replace them
        // with fast ones: old samples must age out of the percentile.
        for _ in 0..SAMPLE_CAP {
            monitor.record("svc", true, Duration::from_millis(100));
        }
        for _ in 0..SAMPLE_CAP {
            monitor.record("svc", true, Duration::from_millis(1));
        }
        let r = monitor.report("svc").unwrap();
        assert_eq!(r.p99_latency, Duration::from_millis(1));
    }

    #[test]
    fn recent_percentile_tracks_the_fresh_window() {
        let monitor = QosMonitor::new(Arc::new(net()));
        assert_eq!(monitor.recent_percentile("svc", 0.95), None);
        // Fill far beyond the recent window with slow samples, then
        // exactly one recent window of fast ones: the recent view must
        // see only the fast tail while the full report still remembers
        // the slow past.
        for _ in 0..(RECENT_WINDOW * 3) {
            monitor.record("svc", true, Duration::from_millis(50));
        }
        for _ in 0..RECENT_WINDOW {
            monitor.record("svc", true, Duration::from_millis(2));
        }
        assert_eq!(monitor.recent_p95("svc"), Some(Duration::from_millis(2)));
        assert_eq!(monitor.report("svc").unwrap().p95_latency, Duration::from_millis(50));
        assert_eq!(monitor.success_samples("svc"), RECENT_WINDOW * 4);
    }

    #[test]
    fn recent_percentile_spans_the_ring_wraparound() {
        let monitor = QosMonitor::new(Arc::new(net()));
        // Overfill the full sample cap, then add half a recent window of
        // fast samples: the recent window must straddle old and new.
        for _ in 0..SAMPLE_CAP {
            monitor.record("svc", true, Duration::from_millis(10));
        }
        for _ in 0..(RECENT_WINDOW / 2) {
            monitor.record("svc", true, Duration::from_millis(1));
        }
        // Median of the recent window: half 10 ms, half 1 ms → 1 ms at
        // q=0.5 by nearest rank (rank 128 of 256 lands on the fast half).
        assert_eq!(monitor.recent_percentile("svc", 0.5), Some(Duration::from_millis(1)));
        assert_eq!(monitor.recent_p95("svc"), Some(Duration::from_millis(10)));
    }

    #[test]
    fn recent_error_rate_sees_a_replica_turn_sick() {
        let monitor = QosMonitor::new(Arc::new(net()));
        assert_eq!(monitor.recent_error_rate("svc"), None);
        for _ in 0..RECENT_WINDOW {
            monitor.record("svc", true, Duration::from_millis(1));
        }
        assert_eq!(monitor.recent_error_rate("svc"), Some(0.0));
        // The replica turns fully sick: a full window of failures must
        // drive the recent rate to 1.0 even though cumulative
        // availability is still 0.5.
        for _ in 0..RECENT_WINDOW {
            monitor.record("svc", false, Duration::ZERO);
        }
        assert_eq!(monitor.recent_error_rate("svc"), Some(1.0));
        assert!((monitor.report("svc").unwrap().availability - 0.5).abs() < 1e-9);
        assert_eq!(monitor.recent_observations("svc"), RECENT_WINDOW);
    }

    #[test]
    fn lease_lifecycle() {
        let table = LeaseTable::new();
        table.renew("svc-a", 0, 10);
        table.renew("svc-b", 0, 3);
        assert!(table.is_live("svc-a", 5));
        assert!(!table.is_live("svc-b", 5));
        assert!(!table.is_live("ghost", 0));
        assert_eq!(table.expire(5), vec!["svc-b"]);
        assert_eq!(table.live(5), vec!["svc-a"]);
        // Renewal extends.
        table.renew("svc-a", 5, 10);
        assert!(table.is_live("svc-a", 14));
        assert!(!table.is_live("svc-a", 15));
    }

    #[test]
    fn lease_endpoints_survive_plain_renewals() {
        let table = LeaseTable::new();
        table.renew_with_endpoint("svc-a", 0, 10, Some("http://127.0.0.1:7001"));
        table.renew("svc-b", 0, 10);
        // A heartbeat without an endpoint keeps the advertised one.
        table.renew("svc-a", 5, 10);
        assert_eq!(
            table.live_endpoints(6),
            vec![("svc-a".to_string(), "http://127.0.0.1:7001".to_string())]
        );
        // A re-advertisement replaces it.
        table.renew_with_endpoint("svc-a", 6, 10, Some("http://127.0.0.1:7002"));
        assert_eq!(table.live_endpoints(7)[0].1, "http://127.0.0.1:7002");
        // Expired leases drop out of the endpoint view too.
        assert!(table.live_endpoints(40).is_empty());
    }

    #[test]
    fn expire_is_idempotent() {
        let table = LeaseTable::new();
        table.renew("x", 0, 1);
        assert_eq!(table.expire(2), vec!["x"]);
        assert!(table.expire(2).is_empty());
    }

    #[test]
    fn revoke_reports_liveness() {
        let table = LeaseTable::new();
        table.renew("live", 0, 10);
        table.renew("lapsed", 0, 2);
        assert!(table.revoke("live", 5));
        // Already expired at revocation time: removed, but not "live".
        assert!(!table.revoke("lapsed", 5));
        assert!(!table.revoke("ghost", 5));
        assert!(table.live(5).is_empty());
    }
}
