/root/repo/target/debug/deps/soc_http-7e58a37f4660dd9c.d: crates/soc-http/src/lib.rs crates/soc-http/src/client.rs crates/soc-http/src/codec.rs crates/soc-http/src/cookies.rs crates/soc-http/src/mem.rs crates/soc-http/src/server.rs crates/soc-http/src/types.rs crates/soc-http/src/url.rs

/root/repo/target/debug/deps/libsoc_http-7e58a37f4660dd9c.rlib: crates/soc-http/src/lib.rs crates/soc-http/src/client.rs crates/soc-http/src/codec.rs crates/soc-http/src/cookies.rs crates/soc-http/src/mem.rs crates/soc-http/src/server.rs crates/soc-http/src/types.rs crates/soc-http/src/url.rs

/root/repo/target/debug/deps/libsoc_http-7e58a37f4660dd9c.rmeta: crates/soc-http/src/lib.rs crates/soc-http/src/client.rs crates/soc-http/src/codec.rs crates/soc-http/src/cookies.rs crates/soc-http/src/mem.rs crates/soc-http/src/server.rs crates/soc-http/src/types.rs crates/soc-http/src/url.rs

crates/soc-http/src/lib.rs:
crates/soc-http/src/client.rs:
crates/soc-http/src/codec.rs:
crates/soc-http/src/cookies.rs:
crates/soc-http/src/mem.rs:
crates/soc-http/src/server.rs:
crates/soc-http/src/types.rs:
crates/soc-http/src/url.rs:
