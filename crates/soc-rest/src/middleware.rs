//! Around-style middleware for the router.
//!
//! A middleware receives the request and a `next` continuation; it can
//! short-circuit (auth failures), decorate (logging), or transform. The
//! built-ins implement the dependability unit's standard safeguards.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use soc_http::{Request, Response, Status};

type MiddlewareFn = dyn Fn(Request, &dyn Fn(Request) -> Response) -> Response + Send + Sync;

/// A cloneable middleware wrapper.
#[derive(Clone)]
pub struct Middleware {
    f: Arc<MiddlewareFn>,
    /// Human-readable label for diagnostics.
    pub name: &'static str,
}

impl Middleware {
    /// Wrap a closure as middleware.
    pub fn new(
        name: &'static str,
        f: impl Fn(Request, &dyn Fn(Request) -> Response) -> Response + Send + Sync + 'static,
    ) -> Self {
        Middleware { f: Arc::new(f), name }
    }

    /// Invoke the middleware around `next`.
    pub fn call(&self, req: Request, next: &dyn Fn(Request) -> Response) -> Response {
        (self.f)(req, next)
    }
}

/// Counters collected by [`logging`].
#[derive(Debug, Default)]
pub struct RequestLog {
    /// Total requests seen.
    pub requests: AtomicU64,
    /// Responses with status ≥ 400.
    pub errors: AtomicU64,
    /// Total handling time in microseconds.
    pub total_micros: AtomicU64,
}

impl RequestLog {
    /// Mean handling latency observed so far.
    pub fn mean_latency(&self) -> Duration {
        let n = self.requests.load(Ordering::Relaxed).max(1);
        Duration::from_micros(self.total_micros.load(Ordering::Relaxed) / n)
    }
}

/// Logging middleware: counts requests, errors, and latency into `log`.
pub fn logging(log: Arc<RequestLog>) -> Middleware {
    Middleware::new("logging", move |req, next| {
        let start = Instant::now();
        let resp = next(req);
        log.requests.fetch_add(1, Ordering::Relaxed);
        if resp.status.0 >= 400 {
            log.errors.fetch_add(1, Ordering::Relaxed);
        }
        log.total_micros.fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
        resp
    })
}

/// API-key authentication: requests must carry `X-Api-Key` matching one
/// of the provisioned keys; the key's principal is forwarded to the
/// handler via the `X-Authenticated-As` header.
pub fn api_key_auth(keys: HashMap<String, String>) -> Middleware {
    Middleware::new("api-key-auth", move |mut req, next| {
        let presented = req.headers.get("X-Api-Key").map(str::to_string);
        match presented.and_then(|k| keys.get(&k).cloned()) {
            Some(principal) => {
                req.headers.set("X-Authenticated-As", &principal);
                next(req)
            }
            None => Response::error(Status::UNAUTHORIZED, "missing or invalid API key")
                .with_header("WWW-Authenticate", "ApiKey"),
        }
    })
}

/// A fixed-window rate limiter keyed by the `X-Api-Key` header (or
/// `"anonymous"`): at most `limit` requests per `window`.
pub fn rate_limit(limit: u32, window: Duration) -> Middleware {
    let state: Arc<Mutex<HashMap<String, (Instant, u32)>>> = Arc::new(Mutex::new(HashMap::new()));
    Middleware::new("rate-limit", move |req, next| {
        let key = req.headers.get("X-Api-Key").unwrap_or("anonymous").to_string();
        let now = Instant::now();
        let mut map = state.lock();
        let entry = map.entry(key).or_insert((now, 0));
        if now.duration_since(entry.0) >= window {
            *entry = (now, 0);
        }
        entry.1 += 1;
        let over = entry.1 > limit;
        drop(map);
        if over {
            Response::error(Status::TOO_MANY_REQUESTS, "rate limit exceeded")
                .with_header("Retry-After", &window.as_secs().to_string())
        } else {
            next(req)
        }
    })
}

/// Adds a `Server` header to all responses (used to verify middleware
/// ordering in tests).
pub fn server_header(value: &'static str) -> Middleware {
    Middleware::new("server-header", move |req, next| next(req).with_header("Server", value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::Router;
    use soc_http::Handler;

    fn app() -> Router {
        let mut r = Router::new();
        r.get("/ok", |_rq, _p| Response::text("fine"));
        r.get("/who", |rq, _p| {
            Response::text(rq.headers.get("X-Authenticated-As").unwrap_or("?").to_string())
        });
        r.get("/fail", |_rq, _p| Response::error(Status::NOT_FOUND, "x"));
        r
    }

    #[test]
    fn logging_counts_requests_and_errors() {
        let log = Arc::new(RequestLog::default());
        let mut r = app();
        r.wrap(logging(log.clone()));
        r.handle(Request::get("/ok"));
        r.handle(Request::get("/fail"));
        r.handle(Request::get("/missing"));
        assert_eq!(log.requests.load(Ordering::Relaxed), 3);
        assert_eq!(log.errors.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn auth_rejects_without_key_and_forwards_principal() {
        let mut keys = HashMap::new();
        keys.insert("secret-1".to_string(), "ann".to_string());
        let mut r = app();
        r.wrap(api_key_auth(keys));
        assert_eq!(r.handle(Request::get("/ok")).status, Status::UNAUTHORIZED);
        let resp = r.handle(Request::get("/who").with_header("X-Api-Key", "secret-1"));
        assert_eq!(resp.text_body().unwrap(), "ann");
        // Spoofed principal header is overwritten by the middleware.
        let resp = r.handle(
            Request::get("/who")
                .with_header("X-Api-Key", "secret-1")
                .with_header("X-Authenticated-As", "root"),
        );
        assert_eq!(resp.text_body().unwrap(), "ann");
    }

    #[test]
    fn rate_limit_trips_after_limit() {
        let mut r = app();
        r.wrap(rate_limit(3, Duration::from_secs(60)));
        for _ in 0..3 {
            assert_eq!(r.handle(Request::get("/ok")).status, Status::OK);
        }
        assert_eq!(r.handle(Request::get("/ok")).status, Status::TOO_MANY_REQUESTS);
    }

    #[test]
    fn rate_limit_is_per_key() {
        let mut r = app();
        r.wrap(rate_limit(1, Duration::from_secs(60)));
        assert_eq!(r.handle(Request::get("/ok").with_header("X-Api-Key", "a")).status, Status::OK);
        assert_eq!(r.handle(Request::get("/ok").with_header("X-Api-Key", "b")).status, Status::OK);
        assert_eq!(
            r.handle(Request::get("/ok").with_header("X-Api-Key", "a")).status,
            Status::TOO_MANY_REQUESTS
        );
    }

    #[test]
    fn middleware_order_outermost_first() {
        // auth added first => runs outermost => unauthorized responses
        // still get the Server header only if server_header is outermost.
        let mut r = app();
        r.wrap(server_header("soc"));
        r.wrap(api_key_auth(HashMap::new()));
        let resp = r.handle(Request::get("/ok"));
        assert_eq!(resp.status, Status::UNAUTHORIZED);
        assert_eq!(resp.headers.get("Server"), Some("soc"));
    }
}
