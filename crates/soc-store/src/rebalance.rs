//! The rebalancer: live elasticity for the durable state plane.
//!
//! A [`Rebalancer`] watches the registry's lease table and turns
//! membership changes into safe shard-map transitions:
//!
//! 1. **Detect** — poll the lease snapshot; an unchanged version means
//!    an unchanged live set and the tick is a no-op.
//! 2. **Transfer** — before any routing changes, bring every surviving
//!    node's replica streams up to date by driving `POST /store/sync`
//!    against each peer (bounded concurrency so hand-off never starves
//!    foreground writes; jittered backoff between empty ship polls so
//!    idle tails don't hammer the primary).
//! 3. **Promote** — each node adopts, from its replica streams, exactly
//!    the keys it will primary under the *target* map (versions carry
//!    over, so clients' read-your-writes floors survive the flip).
//! 4. **Publish** — install the target map on every node (version CAS;
//!    stragglers with a newer map reject, which is correct) and grant
//!    fences at the new epoch.
//!
//! Between rebalances, **anti-entropy** sweeps compare per-stream
//! applied LSNs and state checksums across the fleet: a lagging stream
//! is repaired by log shipping; a checksum divergence at equal LSNs —
//! which the shipping invariants make impossible short of disk
//! corruption — is counted loudly rather than papered over.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use soc_http::mem::Transport;
use soc_json::Value;
use soc_registry::directory::DirectoryClient;
use soc_rest::RestClient;

use crate::shard::{ShardMap, ShardNode};
use crate::wal::Lsn;
use crate::{StoreError, StoreResult};

/// Tuning knobs for a [`Rebalancer`].
#[derive(Debug, Clone)]
pub struct RebalanceConfig {
    /// Replication factor for maps built from lease snapshots.
    pub replication: usize,
    /// TTL for the fences granted after a publish (should match the
    /// nodes' lease TTL; their own keepers take over from there).
    pub lease_ttl: Duration,
    /// How often the run loop polls the lease table.
    pub poll_interval: Duration,
    /// How often the run loop sweeps anti-entropy between rebalances.
    pub anti_entropy_interval: Duration,
    /// Hand-off transfers running at once; the rest queue. Bounds the
    /// I/O a rebalance can steal from foreground writes.
    pub max_concurrent_transfers: usize,
    /// Base delay between empty catch-up polls (doubles per empty poll
    /// up to [`RebalanceConfig::backoff_max`], with jitter).
    pub backoff_base: Duration,
    /// Ceiling for the poll backoff.
    pub backoff_max: Duration,
    /// Give up on a transfer after this many consecutive empty polls
    /// that still haven't reached the catch-up goal.
    pub max_empty_polls: u32,
    /// Seed for the backoff jitter.
    pub seed: u64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            replication: 2,
            lease_ttl: Duration::from_secs(30),
            poll_interval: Duration::from_millis(500),
            anti_entropy_interval: Duration::from_secs(5),
            max_concurrent_transfers: 2,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(250),
            max_empty_polls: 20,
            seed: 0x5eed_ba1a_0c0f_fee5,
        }
    }
}

/// Callback invoked with each newly published shard map.
type MapSubscriber = Box<dyn Fn(Arc<ShardMap>) + Send + Sync>;

/// Watches one directory's lease table and keeps a store fleet's shard
/// maps, replica streams, and fences converged on it.
pub struct Rebalancer {
    directory: DirectoryClient,
    rest: RestClient,
    cfg: RebalanceConfig,
    /// The last map this rebalancer published (starts empty).
    map: Mutex<Arc<ShardMap>>,
    /// Observers notified after each publish — campaign harnesses and
    /// co-located clients/gateways refresh their routing from here.
    subscribers: Mutex<Vec<MapSubscriber>>,
    /// Jitter state (xorshift64).
    rng: AtomicU64,
    rebalances: soc_observe::Counter,
    transfers: soc_observe::Counter,
    repairs: soc_observe::Counter,
    divergence: soc_observe::Counter,
}

impl Rebalancer {
    /// A rebalancer polling `directory` and driving peers over
    /// `transport`.
    pub fn new(
        directory: DirectoryClient,
        transport: Arc<dyn Transport>,
        cfg: RebalanceConfig,
    ) -> Rebalancer {
        let metrics = soc_observe::metrics();
        Rebalancer {
            directory,
            rest: RestClient::new(transport),
            rng: AtomicU64::new(cfg.seed | 1),
            cfg,
            map: Mutex::new(Arc::new(ShardMap::build(0, Vec::new(), 1))),
            subscribers: Mutex::new(Vec::new()),
            rebalances: metrics.counter("soc_store_rebalances_total", &[]),
            transfers: metrics.counter("soc_store_transfers_total", &[]),
            repairs: metrics.counter("soc_store_anti_entropy_repairs_total", &[]),
            divergence: metrics.counter("soc_store_anti_entropy_divergence_total", &[]),
        }
    }

    /// Register an observer for newly published maps.
    pub fn subscribe(&self, f: impl Fn(Arc<ShardMap>) + Send + Sync + 'static) {
        self.subscribers.lock().push(Box::new(f));
    }

    /// The last map this rebalancer published.
    pub fn map(&self) -> Arc<ShardMap> {
        self.map.lock().clone()
    }

    /// One control-loop step: poll the lease table and, if the live set
    /// moved, run the transfer → promote → publish → fence hand-off.
    /// Returns whether a rebalance ran.
    pub fn tick(&self) -> StoreResult<bool> {
        let snap = self.directory.leases().map_err(|e| StoreError::Remote(e.to_string()))?;
        let current = self.map();
        if snap.version <= current.version() && !current.is_empty() {
            return Ok(false);
        }
        let target = Arc::new(ShardMap::from_leases(&snap, self.cfg.replication));
        if target.is_empty() {
            // Nothing alive to rebalance onto; wait for a survivor.
            return Ok(false);
        }
        self.rebalance_to(target)?;
        Ok(true)
    }

    /// Drive the fleet to `target`: catch up streams, promote new
    /// primaries, publish, fence.
    fn rebalance_to(&self, target: Arc<ShardMap>) -> StoreResult<()> {
        // Phase 1: transfers. Every surviving node tails every other
        // surviving node's log so the promote step has current streams
        // to adopt from. Pairs run with bounded concurrency.
        let nodes = target.nodes().to_vec();
        let mut pairs: Vec<(ShardNode, ShardNode)> = Vec::new();
        for dest in &nodes {
            for source in &nodes {
                if dest.id != source.id {
                    pairs.push((dest.clone(), source.clone()));
                }
            }
        }
        for chunk in pairs.chunks(self.cfg.max_concurrent_transfers.max(1)) {
            std::thread::scope(|s| {
                for (dest, source) in chunk {
                    s.spawn(|| {
                        if self.transfer(dest, source).is_ok() {
                            self.transfers.inc();
                        }
                    });
                }
            });
        }

        // Phase 2: promote under the target map — each node adopts the
        // keys it will primary — *before* any routing flips, so a
        // redirected write never lands on a primary missing its keys.
        let map_json = target.to_json();
        for node in &nodes {
            for source in &nodes {
                if node.id == source.id {
                    continue;
                }
                let mut body = Value::object();
                body.set("source", source.id.as_str());
                body.set("map", map_json.clone());
                let _ = self.rest.post(&format!("{}/store/promote", node.endpoint), &body);
            }
        }

        // Phase 3: publish the map (version CAS node-side) and grant
        // fences at the new epoch; the nodes' own lease keepers keep
        // them renewed from here.
        for node in &nodes {
            let _ = self.rest.post(&format!("{}/store/map", node.endpoint), &map_json);
            let mut fence = Value::object();
            fence.set("epoch", target.version() as i64);
            fence.set("ttl_ms", self.cfg.lease_ttl.as_millis() as i64);
            let _ = self.rest.post(&format!("{}/store/fence", node.endpoint), &fence);
        }

        *self.map.lock() = target.clone();
        self.rebalances.inc();
        for f in self.subscribers.lock().iter() {
            f(target.clone());
        }
        Ok(())
    }

    /// Catch `dest`'s replica stream of `source` up to `source`'s
    /// applied LSN. Two passes, each chasing a goal fixed at its start
    /// (so a busy primary can't make the loop chase forever): the first
    /// moves the bulk, the second picks up the tail written while the
    /// first ran. Empty polls back off with jitter instead of hammering
    /// `/store/ship`.
    fn transfer(&self, dest: &ShardNode, source: &ShardNode) -> StoreResult<()> {
        for _pass in 0..2 {
            self.transfer_to_goal(dest, source)?;
        }
        Ok(())
    }

    fn transfer_to_goal(&self, dest: &ShardNode, source: &ShardNode) -> StoreResult<()> {
        let goal = self.peer_applied(&source.endpoint)?;
        let mut body = Value::object();
        body.set("from", source.endpoint.as_str());
        let mut empty_polls = 0u32;
        loop {
            if self.stream_lsn(&dest.endpoint, &source.id)? >= goal {
                return Ok(());
            }
            let resp = self
                .rest
                .post(&format!("{}/store/sync", dest.endpoint), &body)
                .map_err(|e| StoreError::Remote(e.to_string()))?;
            let applied = resp.get("applied").and_then(Value::as_i64).unwrap_or(0);
            if applied > 0 {
                empty_polls = 0;
                continue;
            }
            empty_polls += 1;
            if empty_polls >= self.cfg.max_empty_polls {
                return Err(StoreError::Remote(format!(
                    "transfer {} <- {} stalled short of lsn {goal}",
                    dest.id, source.id
                )));
            }
            std::thread::sleep(self.backoff(empty_polls));
        }
    }

    /// One anti-entropy sweep over the last published map: every
    /// replica pair compares applied LSNs (lag → repair by shipping)
    /// and state checksums (divergence at equal LSN → counted loudly).
    /// Returns how many repairs were driven.
    pub fn anti_entropy(&self) -> StoreResult<usize> {
        let map = self.map();
        let nodes = map.nodes().to_vec();
        let mut repaired = 0;
        for source in &nodes {
            let src_status = match self.status(&source.endpoint) {
                Ok(s) => s,
                Err(_) => continue, // dead node: the lease table will notice
            };
            let src_applied = src_status.get("applied").and_then(Value::as_i64).unwrap_or(0);
            let src_crc = src_status.get("state_crc").and_then(Value::as_i64).unwrap_or(0);
            for dest in &nodes {
                if dest.id == source.id {
                    continue;
                }
                let Ok(dst_status) = self.status(&dest.endpoint) else { continue };
                let stream_lsn = dst_status
                    .pointer(&format!("/replica_streams/{}", escape_pointer(&source.id)))
                    .and_then(Value::as_i64)
                    .unwrap_or(0);
                if stream_lsn < src_applied {
                    let mut body = Value::object();
                    body.set("from", source.endpoint.as_str());
                    if self.rest.post(&format!("{}/store/sync", dest.endpoint), &body).is_ok() {
                        self.repairs.inc();
                        repaired += 1;
                    }
                    continue;
                }
                let stream_crc = dst_status
                    .pointer(&format!("/stream_crcs/{}", escape_pointer(&source.id)))
                    .and_then(Value::as_i64)
                    .unwrap_or(0);
                if stream_lsn == src_applied && stream_crc != src_crc {
                    // Equal history, different state: impossible under
                    // the shipping invariants, so surface it loudly
                    // rather than guessing which copy to keep.
                    self.divergence.inc();
                }
            }
        }
        Ok(repaired)
    }

    /// Run the control loop until `stop` flips: tick on every poll
    /// interval, anti-entropy on its own cadence.
    pub fn run(&self, stop: &AtomicBool) {
        let mut since_sweep = Duration::ZERO;
        while !stop.load(Ordering::Acquire) {
            let _ = self.tick();
            if since_sweep >= self.cfg.anti_entropy_interval {
                since_sweep = Duration::ZERO;
                let _ = self.anti_entropy();
            }
            let nap = self.cfg.poll_interval + self.jitter(self.cfg.poll_interval / 4);
            std::thread::sleep(nap);
            since_sweep += nap;
        }
    }

    /// Spawn [`Rebalancer::run`] on a background thread; the handle
    /// stops and joins it on drop.
    pub fn spawn(self: Arc<Self>) -> RebalancerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::spawn(move || self.run(&stop_flag));
        RebalancerHandle { stop, handle: Some(handle) }
    }

    fn status(&self, endpoint: &str) -> StoreResult<Value> {
        self.rest
            .get(&format!("{endpoint}/store/status"))
            .map_err(|e| StoreError::Remote(e.to_string()))
    }

    fn peer_applied(&self, endpoint: &str) -> StoreResult<Lsn> {
        Ok(self.status(endpoint)?.get("applied").and_then(Value::as_i64).unwrap_or(0) as Lsn)
    }

    fn stream_lsn(&self, endpoint: &str, source: &str) -> StoreResult<Lsn> {
        Ok(self
            .status(endpoint)?
            .pointer(&format!("/replica_streams/{}", escape_pointer(source)))
            .and_then(Value::as_i64)
            .unwrap_or(0) as Lsn)
    }

    /// Exponential backoff with jitter for empty catch-up polls.
    fn backoff(&self, empty_polls: u32) -> Duration {
        let base = self.cfg.backoff_base.saturating_mul(1 << empty_polls.min(6));
        let capped = base.min(self.cfg.backoff_max);
        capped / 2 + self.jitter(capped / 2)
    }

    /// A uniform-ish duration in `[0, bound)` from a xorshift64 walk.
    fn jitter(&self, bound: Duration) -> Duration {
        let mut x = self.rng.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.store(x, Ordering::Relaxed);
        let nanos = bound.as_nanos().max(1) as u64;
        Duration::from_nanos(x % nanos)
    }
}

/// Handle for a running rebalancer thread; stops it on drop.
pub struct RebalancerHandle {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RebalancerHandle {
    /// Stop the control loop and join the thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RebalancerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Escape a JSON-pointer segment (`~` → `~0`, `/` → `~1`).
fn escape_pointer(s: &str) -> String {
    s.replace('~', "~0").replace('/', "~1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvMachine;
    use crate::node::{StoreClient, StoreNode, StoreNodeConfig};
    use crate::TempDir;
    use soc_http::MemNetwork;
    use soc_json::json;
    use soc_registry::directory::DirectoryService;
    use soc_registry::repository::Repository;

    struct Fleet {
        net: Arc<MemNetwork>,
        directory: DirectoryClient,
        nodes: Vec<StoreNode>,
        _dirs: Vec<TempDir>,
    }

    /// A directory at `mem://dir` plus `n` store nodes `mem://s{i}`,
    /// each holding a fenced lease.
    fn fleet(n: usize) -> Fleet {
        let net = Arc::new(MemNetwork::new());
        let (dir_svc, _state) = DirectoryService::new(Repository::new(), vec![]);
        net.host("dir", dir_svc);
        let directory = DirectoryClient::new(net.clone() as Arc<dyn Transport>, "mem://dir");
        let mut nodes = Vec::new();
        let mut dirs = Vec::new();
        for i in 0..n {
            let (node, dir) = add_node(&net, i);
            directory
                .renew_fenced_lease(&format!("s{i}"), 60_000, Some(&format!("mem://s{i}")))
                .unwrap();
            nodes.push(node);
            dirs.push(dir);
        }
        Fleet { net, directory, nodes, _dirs: dirs }
    }

    fn add_node(net: &Arc<MemNetwork>, i: usize) -> (StoreNode, TempDir) {
        let dir = TempDir::new(&format!("reb-{i}"));
        let node = StoreNode::open(
            StoreNodeConfig::new(&format!("s{i}")),
            dir.path(),
            net.clone() as Arc<dyn Transport>,
        )
        .unwrap();
        net.host(&format!("s{i}"), node.router());
        (node, dir)
    }

    fn quick_cfg() -> RebalanceConfig {
        RebalanceConfig {
            replication: 2,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(5),
            ..RebalanceConfig::default()
        }
    }

    #[test]
    fn tick_publishes_a_map_from_the_lease_table() {
        let f = fleet(3);
        let r = Rebalancer::new(f.directory.clone(), f.net.clone(), quick_cfg());
        assert!(r.tick().unwrap(), "first tick rebalances");
        assert!(!r.tick().unwrap(), "steady state is a no-op");
        let map = r.map();
        assert_eq!(map.nodes().len(), 3);
        for node in &f.nodes {
            assert_eq!(node.map().version(), map.version());
            assert!(node.fence().is_valid(), "{} fenced after publish", node.id());
        }
    }

    #[test]
    fn join_and_expiry_move_the_map_and_keep_data() {
        let f = fleet(2);
        let r = Rebalancer::new(f.directory.clone(), f.net.clone(), quick_cfg());
        assert!(r.tick().unwrap());
        let client = StoreClient::new(f.net.clone() as Arc<dyn Transport>);
        client.set_map(r.map());
        let mut versions = std::collections::HashMap::new();
        for i in 0..16 {
            let key = format!("key-{i}");
            let v = client.put(&key, &json!(i)).unwrap();
            versions.insert(key, v);
        }
        // A third node joins: lease version bumps, tick transfers and
        // republishes.
        let (node2, _dir2) = add_node(&f.net, 2);
        f.directory.renew_fenced_lease("s2", 60_000, Some("mem://s2")).unwrap();
        assert!(r.tick().unwrap(), "join triggers a rebalance");
        assert!(node2.map().version() > 0);
        client.set_map(r.map());
        // Every key still readable at its version through the new map.
        for (key, v) in &versions {
            let (_, got) = client.get(key).unwrap().expect("key survives the join");
            assert!(got >= *v, "{key}: {got} < {v}");
        }
        // s0 dies: revoke its lease; the next tick heals around it.
        f.directory.revoke_lease("s0").unwrap();
        f.net.unhost("s0");
        assert!(r.tick().unwrap(), "expiry triggers a rebalance");
        client.set_map(r.map());
        assert_eq!(r.map().nodes().len(), 2);
        for (key, v) in &versions {
            let (_, got) = client.get(key).unwrap().expect("key survives the death");
            assert!(got >= *v, "{key}: {got} < {v}");
        }
    }

    #[test]
    fn anti_entropy_repairs_a_lagging_stream() {
        let f = fleet(2);
        let r = Rebalancer::new(f.directory.clone(), f.net.clone(), quick_cfg());
        r.tick().unwrap();
        // Feed s0's own log directly (no replication pushes), leaving
        // s1's stream of s0 behind.
        for i in 0..8 {
            f.nodes[0]
                .store()
                .execute(&KvMachine::put_command(&format!("d{i}"), &json!(i)))
                .unwrap();
        }
        assert!(f.nodes[1].replica_applied("s0") < f.nodes[0].store().applied_lsn());
        let repaired = r.anti_entropy().unwrap();
        assert!(repaired > 0, "sweep drives at least one repair");
        assert_eq!(f.nodes[1].replica_applied("s0"), f.nodes[0].store().applied_lsn());
    }
}
