//! Cookie handling for the web-application state-management unit.

use crate::types::{Headers, Request, Response};

/// A single cookie with the attributes the webapp layer uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cookie {
    /// Cookie name.
    pub name: String,
    /// Cookie value (stored raw; values must not contain `;` or `,`).
    pub value: String,
    /// `Path` attribute.
    pub path: Option<String>,
    /// `Max-Age` in seconds.
    pub max_age: Option<i64>,
    /// `HttpOnly` flag (dependability unit: scripts must not read
    /// session tokens).
    pub http_only: bool,
    /// `Secure` flag.
    pub secure: bool,
}

impl Cookie {
    /// A session-scoped cookie with standard hardening flags off.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        Cookie {
            name: name.into(),
            value: value.into(),
            path: Some("/".to_string()),
            max_age: None,
            http_only: false,
            secure: false,
        }
    }

    /// Builder: mark HttpOnly.
    pub fn http_only(mut self) -> Self {
        self.http_only = true;
        self
    }

    /// Builder: set Max-Age.
    pub fn max_age(mut self, seconds: i64) -> Self {
        self.max_age = Some(seconds);
        self
    }

    /// Format as a `Set-Cookie` header value.
    pub fn to_set_cookie(&self) -> String {
        let mut out = format!("{}={}", self.name, self.value);
        if let Some(p) = &self.path {
            out.push_str("; Path=");
            out.push_str(p);
        }
        if let Some(age) = self.max_age {
            out.push_str(&format!("; Max-Age={age}"));
        }
        if self.http_only {
            out.push_str("; HttpOnly");
        }
        if self.secure {
            out.push_str("; Secure");
        }
        out
    }

    /// A `Set-Cookie` value that deletes the cookie.
    pub fn removal(name: &str) -> String {
        format!("{name}=; Path=/; Max-Age=0")
    }
}

/// Parse a request's `Cookie` header(s) into `(name, value)` pairs.
pub fn parse_cookie_header(headers: &Headers) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for value in headers.get_all("Cookie") {
        for pair in value.split(';') {
            if let Some((k, v)) = pair.split_once('=') {
                out.push((k.trim().to_string(), v.trim().to_string()));
            }
        }
    }
    out
}

/// Look up one cookie on a request.
pub fn request_cookie(req: &Request, name: &str) -> Option<String> {
    parse_cookie_header(&req.headers).into_iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Attach a `Set-Cookie` header to a response.
pub fn set_cookie(resp: Response, cookie: &Cookie) -> Response {
    resp.with_header("Set-Cookie", &cookie.to_set_cookie())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Request, Response, Status};

    #[test]
    fn set_cookie_formatting() {
        let c = Cookie::new("sid", "abc123").http_only().max_age(3600);
        assert_eq!(c.to_set_cookie(), "sid=abc123; Path=/; Max-Age=3600; HttpOnly");
    }

    #[test]
    fn parse_multiple_cookies() {
        let req = Request::get("/").with_header("Cookie", "sid=abc; theme=dark ; x=1");
        assert_eq!(request_cookie(&req, "sid").as_deref(), Some("abc"));
        assert_eq!(request_cookie(&req, "theme").as_deref(), Some("dark"));
        assert_eq!(request_cookie(&req, "x").as_deref(), Some("1"));
        assert_eq!(request_cookie(&req, "nope"), None);
    }

    #[test]
    fn multiple_cookie_headers_merge() {
        let req = Request::get("/").with_header("Cookie", "a=1").with_header("Cookie", "b=2");
        let pairs = parse_cookie_header(&req.headers);
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn response_set_cookie_round_trip() {
        let resp = set_cookie(Response::new(Status::OK), &Cookie::new("sid", "z9"));
        let v = resp.headers.get("Set-Cookie").unwrap();
        assert!(v.starts_with("sid=z9"));
    }

    #[test]
    fn removal_expires_immediately() {
        assert!(Cookie::removal("sid").contains("Max-Age=0"));
    }
}
