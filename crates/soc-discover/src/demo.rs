//! A small lending federation for demos, tests, and benches.
//!
//! Three directories refer to each other in a cycle (`dir-a → dir-b →
//! dir-c → dir-a`), jointly advertising a loan-decision supply chain:
//!
//! | service | operation | signature |
//! |---|---|---|
//! | `credit-check` (×2 replicas) | `Score` | `ssn: string → score: int` |
//! | `risk-model` | `Assess` | `score: int, amount: int → risk: double` |
//! | `risk-model-alt` | `Assess` | same signature, independent provider |
//! | `underwriting` | `Decide` | `risk: double, income: int → approved: boolean, rate_bps: int` |
//!
//! `credit-check` is advertised by *two* directories with different
//! replicas, exercising federation-wide replica merging;
//! `risk-model-alt` is the alternative provider re-planning falls back
//! to when `risk-model` is partitioned or ejected. The same handlers
//! host on a [`MemNetwork`] or on real TCP sockets.

use std::collections::HashMap;
use std::sync::Arc;

use soc_http::mem::MemNetwork;
use soc_http::{Handler, HttpResult, HttpServer, Request, Response, Status};
use soc_json::Value;
use soc_registry::directory::{DirectoryService, DirectoryState};
use soc_registry::{Binding, Repository, ServiceDescriptor};
use soc_rest::Router;
use soc_soap::{Contract, Operation, XsdType};

/// Handler body for one operation: JSON inputs in, JSON outputs out.
pub type OpFn = Arc<dyn Fn(&Value) -> Result<Value, String> + Send + Sync>;

/// A contract-first demo service: serves its WSDL at `GET /wsdl` and
/// its operations at `POST /api/{operation, lowercased}`.
pub struct DemoService {
    router: Router,
}

impl DemoService {
    /// Host `contract` with the given operation implementations.
    pub fn new(contract: Contract, impls: Vec<(&str, OpFn)>) -> Self {
        let table: Arc<HashMap<String, OpFn>> =
            Arc::new(impls.into_iter().map(|(name, f)| (name.to_lowercase(), f)).collect());
        let mut router = Router::new();
        router.get("/wsdl", move |req: Request, _p| {
            // Advertise a host-relative port address unless the
            // transport told us our own host; crawlers resolve it
            // against the origin they fetched the WSDL from.
            let location = match req.headers.get("Host") {
                Some(host) => format!("http://{host}/api"),
                None => "/api".to_string(),
            };
            Response::new(Status::OK).with_text(
                "text/xml; charset=utf-8",
                &soc_soap::wsdl::generate(&contract, &location),
            )
        });
        router.post("/api/{op}", move |req: Request, p| {
            let Some(f) = table.get(p.get("op").unwrap_or("")) else {
                return Response::error(Status::NOT_FOUND, "no such operation");
            };
            let body = match req.text() {
                Ok(text) if !text.trim().is_empty() => match Value::parse(text) {
                    Ok(v) => v,
                    Err(e) => return Response::error(Status::BAD_REQUEST, &e.to_string()),
                },
                _ => Value::Null,
            };
            match f(&body) {
                Ok(v) => Response::json(&v.to_compact()),
                Err(e) => Response::error(Status::UNPROCESSABLE, &e),
            }
        });
        DemoService { router }
    }
}

impl Handler for DemoService {
    fn handle(&self, req: Request) -> Response {
        self.router.handle(req)
    }
}

/// The `credit-check` contract.
pub fn credit_contract() -> Contract {
    Contract::new("CreditCheck", "urn:soc:demo:credit").operation(
        Operation::new("Score")
            .input("ssn", XsdType::String)
            .output("score", XsdType::Int)
            .doc("Credit score for an applicant"),
    )
}

/// A risk-model contract; both providers share the signature.
pub fn risk_contract(name: &str, namespace: &str) -> Contract {
    Contract::new(name, namespace).operation(
        Operation::new("Assess")
            .input("score", XsdType::Int)
            .input("amount", XsdType::Int)
            .output("risk", XsdType::Double)
            .doc("Default risk for a loan of `amount` at credit `score`"),
    )
}

/// The `underwriting` contract.
pub fn underwriting_contract() -> Contract {
    Contract::new("Underwriting", "urn:soc:demo:underwrite").operation(
        Operation::new("Decide")
            .input("risk", XsdType::Double)
            .input("income", XsdType::Int)
            .output("approved", XsdType::Boolean)
            .output("rate_bps", XsdType::Int)
            .doc("Approve or reject, and price the loan"),
    )
}

fn int_field(body: &Value, name: &str) -> Result<i64, String> {
    body.get(name).and_then(Value::as_i64).ok_or_else(|| format!("missing int field `{name}`"))
}

/// Deterministic demo credit score in `300..=850`.
pub fn score_of(ssn: &str) -> i64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in ssn.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    300 + (h % 551) as i64
}

fn score_fn() -> OpFn {
    Arc::new(|body| {
        let ssn = body.get("ssn").and_then(Value::as_str).ok_or("missing string field `ssn`")?;
        let mut out = Value::object();
        out.set("score", score_of(ssn));
        Ok(out)
    })
}

fn assess_fn() -> OpFn {
    Arc::new(|body| {
        let score = int_field(body, "score")?;
        let amount = int_field(body, "amount")?;
        let risk = (amount as f64 / (score.max(1) as f64 * 400.0)).min(1.0);
        let mut out = Value::object();
        out.set("risk", risk);
        Ok(out)
    })
}

fn assess_alt_fn() -> OpFn {
    Arc::new(|body| {
        // The alternative provider is more conservative but agrees on
        // clearly good loans.
        let score = int_field(body, "score")?;
        let amount = int_field(body, "amount")?;
        let risk = (amount as f64 / (score.max(1) as f64 * 320.0) + 0.05).min(1.0);
        let mut out = Value::object();
        out.set("risk", risk);
        Ok(out)
    })
}

fn decide_fn() -> OpFn {
    Arc::new(|body| {
        let risk = body.get("risk").and_then(Value::as_f64).ok_or("missing double field `risk`")?;
        let income = int_field(body, "income")?;
        let mut out = Value::object();
        out.set("approved", risk < 0.6 && income > 0);
        out.set("rate_bps", (250.0 + risk * 900.0) as i64);
        Ok(out)
    })
}

/// The five demo services as `(host key, handler)` pairs, in hosting
/// order. Host keys double as mem host names.
fn handlers() -> Vec<(&'static str, DemoService)> {
    vec![
        ("credit-0", DemoService::new(credit_contract(), vec![("Score", score_fn())])),
        ("credit-1", DemoService::new(credit_contract(), vec![("Score", score_fn())])),
        (
            "risk-0",
            DemoService::new(
                risk_contract("RiskModel", "urn:soc:demo:risk"),
                vec![("Assess", assess_fn())],
            ),
        ),
        (
            "risk-alt-0",
            DemoService::new(
                risk_contract("RiskModelAlt", "urn:soc:demo:risk-alt"),
                vec![("Assess", assess_alt_fn())],
            ),
        ),
        ("underwrite-0", DemoService::new(underwriting_contract(), vec![("Decide", decide_fn())])),
    ]
}

fn descriptor(
    id: &str,
    name: &str,
    origin: &str,
    keywords: &[&str],
    description: &str,
) -> ServiceDescriptor {
    ServiceDescriptor::new(id, name, &format!("{origin}/api"), Binding::Rest)
        .describe(description)
        .category("lending")
        .keywords(keywords)
        .provider("soc-demo")
        .wsdl(&format!("{origin}/wsdl"))
}

/// Descriptors per directory, given each demo host's origin. Directory
/// 0 and 1 both advertise `credit-check` (different replicas); the
/// referral cycle is closed by the caller.
fn listings(origin_of: impl Fn(&str) -> String) -> Vec<Vec<ServiceDescriptor>> {
    vec![
        vec![descriptor(
            "credit-check",
            "Credit Check",
            &origin_of("credit-0"),
            &["credit", "score"],
            "Scores an applicant's credit from their SSN",
        )],
        vec![
            descriptor(
                "credit-check",
                "Credit Check",
                &origin_of("credit-1"),
                &["credit", "score"],
                "Scores an applicant's credit from their SSN",
            ),
            descriptor(
                "risk-model",
                "Risk Model",
                &origin_of("risk-0"),
                &["risk", "loan"],
                "Assesses default risk for a loan application",
            ),
        ],
        vec![
            descriptor(
                "risk-model-alt",
                "Risk Model (alternate)",
                &origin_of("risk-alt-0"),
                &["risk", "loan", "backup"],
                "Independent risk assessment provider",
            ),
            descriptor(
                "underwriting",
                "Underwriting",
                &origin_of("underwrite-0"),
                &["underwriting", "approval", "loan"],
                "Approves and prices loan applications",
            ),
        ],
    ]
}

/// The federation hosted on a [`MemNetwork`].
pub struct MemFederation {
    /// Crawl entry points (just `mem://dir-a`; referrals reach the rest).
    pub roots: Vec<String>,
    /// Directory states for `dir-a`, `dir-b`, `dir-c` — tests bump
    /// lease versions or publish services through these.
    pub directories: Vec<Arc<DirectoryState>>,
}

/// Mem host names of the demo *service* replicas (not directories).
pub const SERVICE_HOSTS: [&str; 5] =
    ["credit-0", "credit-1", "risk-0", "risk-alt-0", "underwrite-0"];

/// Host the whole federation on `net`.
pub fn host_mem(net: &MemNetwork) -> MemFederation {
    for (host, handler) in handlers() {
        net.host(host, handler);
    }
    let dir_names = ["dir-a", "dir-b", "dir-c"];
    let mut directories = Vec::new();
    for (i, listing) in listings(|host| format!("mem://{host}")).into_iter().enumerate() {
        let repo = Repository::new();
        for d in listing {
            repo.publish(d).expect("demo descriptors are unique per directory");
        }
        // Referral cycle: each directory points at the next.
        let peer = format!("mem://{}", dir_names[(i + 1) % dir_names.len()]);
        let (dir, state) = DirectoryService::new(repo, vec![peer]);
        net.host(dir_names[i], dir);
        directories.push(state);
    }
    MemFederation { roots: vec!["mem://dir-a".to_string()], directories }
}

/// The federation hosted on real TCP sockets.
pub struct TcpFederation {
    /// Crawl entry points (the first directory's URL).
    pub roots: Vec<String>,
    /// Directory states, as in [`MemFederation`].
    pub directories: Vec<Arc<DirectoryState>>,
    /// Base URL per logical host name (services and directories).
    pub urls: HashMap<String, String>,
    /// The listening servers — dropped servers stop answering.
    pub servers: Vec<HttpServer>,
}

/// Bind every demo service and directory on loopback TCP. The referral
/// cycle is closed after binding (peer URLs are not known before).
pub fn host_tcp(workers: usize) -> HttpResult<TcpFederation> {
    let mut servers = Vec::new();
    let mut urls = HashMap::new();
    for (host, handler) in handlers() {
        let server = HttpServer::bind("127.0.0.1:0", workers, handler)?;
        urls.insert(host.to_string(), server.url());
        servers.push(server);
    }
    let origin_of = |host: &str| urls[host].clone();
    let mut directories = Vec::new();
    let mut dir_urls = Vec::new();
    for (i, listing) in listings(origin_of).into_iter().enumerate() {
        let repo = Repository::new();
        for d in listing {
            repo.publish(d).expect("demo descriptors are unique per directory");
        }
        let (dir, state) = DirectoryService::new(repo, Vec::new());
        let server = HttpServer::bind("127.0.0.1:0", workers, dir)?;
        urls.insert(format!("dir-{}", (b'a' + i as u8) as char), server.url());
        dir_urls.push(server.url());
        servers.push(server);
        directories.push(state);
    }
    for (i, state) in directories.iter().enumerate() {
        *state.peers.write() = vec![dir_urls[(i + 1) % dir_urls.len()].clone()];
    }
    Ok(TcpFederation { roots: vec![dir_urls[0].clone()], directories, urls, servers })
}
