//! Core HTTP types: methods, status codes, headers, request/response.

use std::fmt;

/// Errors across the HTTP stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Wire data that does not parse as HTTP.
    Malformed(String),
    /// Underlying socket failure.
    Io(String),
    /// URL that does not parse or has an unsupported scheme.
    BadUrl(String),
    /// `mem://` host that is not registered on the network.
    UnknownHost(String),
    /// The peer closed before a full message arrived.
    UnexpectedEof,
    /// Body larger than the configured limit.
    BodyTooLarge {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// A per-request deadline expired before the response arrived.
    DeadlineExceeded,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(d) => write!(f, "malformed HTTP: {d}"),
            HttpError::Io(d) => write!(f, "io error: {d}"),
            HttpError::BadUrl(d) => write!(f, "bad url: {d}"),
            HttpError::UnknownHost(h) => write!(f, "unknown in-memory host: {h}"),
            HttpError::UnexpectedEof => write!(f, "connection closed mid-message"),
            HttpError::BodyTooLarge { limit } => write!(f, "body exceeds {limit} bytes"),
            HttpError::DeadlineExceeded => write!(f, "request deadline exceeded"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e.to_string())
    }
}

/// Result alias for this crate.
pub type HttpResult<T> = Result<T, HttpError>;

/// HTTP protocol version from the request line. The stack speaks
/// HTTP/1.1 but must understand HTTP/1.0 peers, whose connections
/// default to *close* instead of keep-alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// `HTTP/1.0`: no persistent connections unless explicitly
    /// negotiated via `Connection: keep-alive`.
    Http10,
    /// `HTTP/1.1` (and any other `HTTP/1.x`): persistent by default.
    Http11,
}

impl Version {
    /// Parse the version token from a request or status line. Any
    /// `HTTP/1.x` other than 1.0 is treated as 1.1; everything else is
    /// unsupported.
    pub fn parse(s: &str) -> Option<Version> {
        match s {
            "HTTP/1.0" => Some(Version::Http10),
            _ if s.starts_with("HTTP/1.") => Some(Version::Http11),
            _ => None,
        }
    }

    /// Canonical wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            Version::Http10 => "HTTP/1.0",
            Version::Http11 => "HTTP/1.1",
        }
    }

    /// Does this version keep the connection open by default?
    pub fn persistent_by_default(self) -> bool {
        matches!(self, Version::Http11)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Request methods (the REST verbs the course teaches, plus the rest of
/// the RFC 9110 set we need).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Method {
    Get,
    Post,
    Put,
    Delete,
    Head,
    Options,
    Patch,
}

impl Method {
    /// Parse from the uppercase token.
    pub fn parse(s: &str) -> Option<Method> {
        Some(match s {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "HEAD" => Method::Head,
            "OPTIONS" => Method::Options,
            "PATCH" => Method::Patch,
            _ => return None,
        })
    }

    /// Canonical uppercase token.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
            Method::Options => "OPTIONS",
            Method::Patch => "PATCH",
        }
    }

    /// Safe methods have no side effects (RFC 9110 §9.2.1).
    pub fn is_safe(self) -> bool {
        matches!(self, Method::Get | Method::Head | Method::Options)
    }

    /// Idempotent methods may be retried blindly.
    pub fn is_idempotent(self) -> bool {
        self.is_safe() || matches!(self, Method::Put | Method::Delete)
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Status codes used by the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status(pub u16);

#[allow(missing_docs)]
impl Status {
    pub const OK: Status = Status(200);
    pub const CREATED: Status = Status(201);
    pub const ACCEPTED: Status = Status(202);
    pub const NO_CONTENT: Status = Status(204);
    pub const MOVED_PERMANENTLY: Status = Status(301);
    pub const FOUND: Status = Status(302);
    pub const NOT_MODIFIED: Status = Status(304);
    pub const BAD_REQUEST: Status = Status(400);
    pub const UNAUTHORIZED: Status = Status(401);
    pub const FORBIDDEN: Status = Status(403);
    pub const NOT_FOUND: Status = Status(404);
    pub const METHOD_NOT_ALLOWED: Status = Status(405);
    pub const CONFLICT: Status = Status(409);
    pub const PAYLOAD_TOO_LARGE: Status = Status(413);
    pub const UNSUPPORTED_MEDIA_TYPE: Status = Status(415);
    pub const UNPROCESSABLE: Status = Status(422);
    pub const TOO_MANY_REQUESTS: Status = Status(429);
    pub const INTERNAL_SERVER_ERROR: Status = Status(500);
    pub const NOT_IMPLEMENTED: Status = Status(501);
    pub const SERVICE_UNAVAILABLE: Status = Status(503);
    pub const GATEWAY_TIMEOUT: Status = Status(504);

    /// Standard reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            204 => "No Content",
            301 => "Moved Permanently",
            302 => "Found",
            304 => "Not Modified",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            415 => "Unsupported Media Type",
            422 => "Unprocessable Entity",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// 2xx?
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// 4xx or 5xx?
    pub fn is_error(self) -> bool {
        self.0 >= 400
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// Case-insensitive header multimap preserving insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Empty header set.
    pub fn new() -> Self {
        Headers::default()
    }

    /// Append a header (does not replace existing values).
    pub fn add(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// Replace all values of `name` with one value.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(&name));
        self.entries.push((name, value.into()));
    }

    /// First value of `name`, case-insensitive.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// All values of `name`.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.entries
            .iter()
            .filter(move |(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Remove all values of `name`.
    pub fn remove(&mut self, name: &str) {
        self.entries.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
    }

    /// Does the header exist?
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// True when any value of `name`, read as a comma-separated token
    /// list, contains `token` (ASCII case-insensitive). Connection
    /// options arrive this way — `Connection: close, TE` means close —
    /// so comparing a whole header value against one token misreads
    /// legal messages.
    pub fn has_token(&self, name: &str, token: &str) -> bool {
        self.get_all(name).flat_map(|v| v.split(',')).any(|t| t.trim().eq_ignore_ascii_case(token))
    }

    /// Iterate all `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of header lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// No headers at all?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Header marking a non-idempotent request as safe to replay: the
/// origin deduplicates on the key, so gateways may retry/hedge the
/// POST without double-executing its side effect.
pub const IDEMPOTENCY_KEY: &str = "Idempotency-Key";

/// A process-unique idempotency key: one value per *logical* request.
/// Attach it with [`Request::with_idempotency_key`]; every transport
/// retry of that request must reuse the same key.
pub fn fresh_idempotency_key() -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    static BASE: OnceLock<u64> = OnceLock::new();
    let base = *BASE.get_or_init(|| {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        t ^ (&COUNTER as *const _ as u64).rotate_left(32)
    });
    let n = COUNTER.fetch_add(1, Ordering::Relaxed) + 1;
    format!("{base:016x}-{n:012x}")
}

/// An HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Target: for server-side requests the path + query (`/a/b?x=1`);
    /// for client-side the full URL (`http://h:1/a`, `mem://svc/a`).
    pub target: String,
    /// Header lines.
    pub headers: Headers,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Build a request with an empty body.
    pub fn new(method: Method, target: impl Into<String>) -> Self {
        Request { method, target: target.into(), headers: Headers::new(), body: Vec::new() }
    }

    /// GET convenience.
    pub fn get(target: impl Into<String>) -> Self {
        Request::new(Method::Get, target)
    }

    /// POST with a body.
    pub fn post(target: impl Into<String>, body: Vec<u8>) -> Self {
        Request::new(Method::Post, target).with_body_bytes(body)
    }

    /// PUT with a body.
    pub fn put(target: impl Into<String>, body: Vec<u8>) -> Self {
        Request::new(Method::Put, target).with_body_bytes(body)
    }

    /// DELETE convenience.
    pub fn delete(target: impl Into<String>) -> Self {
        Request::new(Method::Delete, target)
    }

    /// Builder: add a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.add(name, value);
        self
    }

    /// Builder: mark this request replay-safe under `key` (see
    /// [`IDEMPOTENCY_KEY`]).
    pub fn with_idempotency_key(mut self, key: &str) -> Self {
        self.headers.set(IDEMPOTENCY_KEY, key);
        self
    }

    /// The request's idempotency key, if it carries one.
    pub fn idempotency_key(&self) -> Option<&str> {
        self.headers.get(IDEMPOTENCY_KEY)
    }

    /// Whether a gateway may retry or hedge this request without
    /// risking a duplicated side effect: the method is idempotent by
    /// definition, or the caller attached an idempotency key the
    /// origin deduplicates on.
    pub fn is_replay_safe(&self) -> bool {
        self.method.is_idempotent() || self.idempotency_key().is_some()
    }

    /// Builder: set the raw body.
    pub fn with_body_bytes(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// Builder: set a text body and content type.
    pub fn with_text(mut self, content_type: &str, text: &str) -> Self {
        self.headers.set("Content-Type", content_type);
        self.body = text.as_bytes().to_vec();
        self
    }

    /// Body as UTF-8 (lossless; errors on invalid bytes).
    pub fn text(&self) -> HttpResult<&str> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Malformed("body is not UTF-8".into()))
    }

    /// Parse the body as JSON, borrowing escape-free strings straight
    /// from the body bytes the transport read off the socket — no
    /// intermediate copy between the wire and the value.
    pub fn json(&self) -> HttpResult<soc_json::ValueRef<'_>> {
        soc_json::parse_ref(self.text()?)
            .map_err(|e| HttpError::Malformed(format!("bad JSON body: {e}")))
    }

    /// The path component of [`Request::target`] (before `?`).
    pub fn path(&self) -> &str {
        let t = &self.target;
        // Strip scheme://host for absolute-form targets.
        let after_scheme = match t.find("://") {
            Some(i) => {
                let rest = &t[i + 3..];
                match rest.find('/') {
                    Some(j) => &rest[j..],
                    None => "/",
                }
            }
            None => t.as_str(),
        };
        after_scheme.split('?').next().unwrap_or("/")
    }

    /// Parse the query string into decoded pairs.
    pub fn query_pairs(&self) -> Vec<(String, String)> {
        match self.target.split_once('?') {
            Some((_, q)) => crate::url::parse_form(q),
            None => Vec::new(),
        }
    }

    /// First query parameter named `key`.
    pub fn query(&self, key: &str) -> Option<String> {
        self.query_pairs().into_iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Parse an `application/x-www-form-urlencoded` body.
    pub fn form_pairs(&self) -> Vec<(String, String)> {
        self.text().map(crate::url::parse_form).unwrap_or_default()
    }

    /// First form field named `key`.
    pub fn form(&self, key: &str) -> Option<String> {
        self.form_pairs().into_iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Header lines.
    pub headers: Headers,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// Empty response with the given status.
    pub fn new(status: Status) -> Self {
        Response { status, headers: Headers::new(), body: Vec::new() }
    }

    /// 200 with a `text/plain` body.
    pub fn text(body: impl Into<String>) -> Self {
        Response::new(Status::OK).with_text("text/plain; charset=utf-8", &body.into())
    }

    /// 200 with an `application/json` body.
    pub fn json(body: &str) -> Self {
        Response::new(Status::OK).with_text("application/json", body)
    }

    /// 200 with a `text/xml` body.
    pub fn xml(body: &str) -> Self {
        Response::new(Status::OK).with_text("text/xml; charset=utf-8", body)
    }

    /// 200 with an `application/json` body, taking ownership of an
    /// already-built buffer (pair with `Value::write_into` to render
    /// into a reused allocation and move it here without copying).
    pub fn json_owned(body: String) -> Self {
        let mut resp = Response::new(Status::OK);
        resp.headers.set("Content-Type", "application/json");
        resp.body = body.into_bytes();
        resp
    }

    /// 200 with a `text/xml` body, taking ownership of an already-built
    /// buffer. Unlike [`Response::xml`] the body bytes are moved, not
    /// copied — pair with the zero-copy serializers in `soc-xml`.
    pub fn xml_owned(body: String) -> Self {
        let mut resp = Response::new(Status::OK);
        resp.headers.set("Content-Type", "text/xml; charset=utf-8");
        resp.body = body.into_bytes();
        resp
    }

    /// 200 with a `text/html` body.
    pub fn html(body: &str) -> Self {
        Response::new(Status::OK).with_text("text/html; charset=utf-8", body)
    }

    /// An error response with a plain-text explanation.
    pub fn error(status: Status, detail: &str) -> Self {
        Response::new(status).with_text("text/plain; charset=utf-8", detail)
    }

    /// 302 redirect.
    pub fn redirect(location: &str) -> Self {
        let mut r = Response::new(Status::FOUND);
        r.headers.set("Location", location);
        r
    }

    /// Builder: add a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.add(name, value);
        self
    }

    /// Builder: set the raw body.
    pub fn with_body_bytes(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// Builder: set a text body and content type.
    pub fn with_text(mut self, content_type: &str, text: &str) -> Self {
        self.headers.set("Content-Type", content_type);
        self.body = text.as_bytes().to_vec();
        self
    }

    /// Body as UTF-8.
    pub fn text_body(&self) -> HttpResult<&str> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Malformed("body is not UTF-8".into()))
    }

    /// `Content-Type` header, if present.
    pub fn content_type(&self) -> Option<&str> {
        self.headers.get("Content-Type")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_json_parses_borrowed_from_the_body() {
        let req = Request::post("/svc", br#"{"name":"echo","n":1}"#.to_vec());
        let v = req.json().unwrap();
        assert_eq!(v.get("name").and_then(|v| v.as_str()), Some("echo"));
        assert_eq!(v.get("n").and_then(|v| v.as_i64()), Some(1));
        assert!(Request::post("/svc", b"{oops".to_vec()).json().is_err());
        assert!(Request::post("/svc", vec![0xff, 0xfe]).json().is_err());
    }

    #[test]
    fn json_owned_moves_the_buffer() {
        let resp = Response::json_owned("{\"a\":1}".to_string());
        assert_eq!(resp.content_type(), Some("application/json"));
        assert_eq!(resp.body, b"{\"a\":1}");
    }

    #[test]
    fn method_parse_and_properties() {
        assert_eq!(Method::parse("GET"), Some(Method::Get));
        assert_eq!(Method::parse("get"), None);
        assert_eq!(Method::parse("BREW"), None);
        assert!(Method::Get.is_safe());
        assert!(!Method::Post.is_idempotent());
        assert!(Method::Put.is_idempotent());
        assert_eq!(Method::Delete.to_string(), "DELETE");
    }

    #[test]
    fn status_classes() {
        assert!(Status::OK.is_success());
        assert!(!Status::NOT_FOUND.is_success());
        assert!(Status::NOT_FOUND.is_error());
        assert_eq!(Status::NOT_FOUND.to_string(), "404 Not Found");
        assert_eq!(Status(299).reason(), "Unknown");
    }

    #[test]
    fn headers_case_insensitive_multimap() {
        let mut h = Headers::new();
        h.add("Content-Type", "a");
        h.add("content-type", "b");
        assert_eq!(h.get("CONTENT-TYPE"), Some("a"));
        assert_eq!(h.get_all("Content-Type").count(), 2);
        h.set("Content-Type", "c");
        assert_eq!(h.get_all("content-type").count(), 1);
        assert_eq!(h.get("content-type"), Some("c"));
        h.remove("CONTENT-type");
        assert!(h.is_empty());
    }

    #[test]
    fn request_path_and_query() {
        let r = Request::get("/svc/echo?msg=hi%20there&n=2");
        assert_eq!(r.path(), "/svc/echo");
        assert_eq!(r.query("msg").as_deref(), Some("hi there"));
        assert_eq!(r.query("n").as_deref(), Some("2"));
        assert_eq!(r.query("absent"), None);
    }

    #[test]
    fn absolute_form_target_path() {
        let r = Request::get("http://host:8080/a/b?x=1");
        assert_eq!(r.path(), "/a/b");
        let r = Request::get("mem://svc");
        assert_eq!(r.path(), "/");
    }

    #[test]
    fn form_body_parsing() {
        let r = Request::post("/login", Vec::new())
            .with_text("application/x-www-form-urlencoded", "user=ann&pass=a%26b");
        assert_eq!(r.form("user").as_deref(), Some("ann"));
        assert_eq!(r.form("pass").as_deref(), Some("a&b"));
    }

    #[test]
    fn response_builders() {
        let r = Response::json("{\"ok\":true}");
        assert_eq!(r.content_type(), Some("application/json"));
        assert_eq!(r.text_body().unwrap(), "{\"ok\":true}");
        let r = Response::redirect("/next");
        assert_eq!(r.status, Status::FOUND);
        assert_eq!(r.headers.get("Location"), Some("/next"));
    }

    #[test]
    fn non_utf8_body_is_error_not_panic() {
        let r = Response::new(Status::OK).with_body_bytes(vec![0xff, 0xfe]);
        assert!(r.text_body().is_err());
    }
}
