/root/repo/target/debug/examples/maze_navigation-31fb41616d7653e3.d: examples/maze_navigation.rs

/root/repo/target/debug/examples/maze_navigation-31fb41616d7653e3: examples/maze_navigation.rs

examples/maze_navigation.rs:
