//! Workflow engine overheads: dataflow dispatch per activity,
//! sequential vs parallel waves, BPEL step costs, and FSM dispatch.

use std::collections::HashMap;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soc_json::Value;
use soc_parallel::ThreadPool;
use soc_workflow::activity::{Compute, Const};
use soc_workflow::bpel::{Process, Scope, Step};
use soc_workflow::fsm::FsmBuilder;
use soc_workflow::graph::WorkflowGraph;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(150))
}

/// A diamond-chain graph with `n` independent add pipelines.
fn wide_graph(n: usize) -> WorkflowGraph {
    let mut g = WorkflowGraph::new();
    for i in 0..n {
        let a = g.add(&format!("a{i}"), Const::new(i as i64));
        let b = g.add(&format!("b{i}"), Const::new(1000));
        let s = g.add(
            &format!("s{i}"),
            Compute::new(&["a", "b"], |p| {
                Ok(Value::from(p["a"].as_i64().unwrap() + p["b"].as_i64().unwrap()))
            }),
        );
        g.connect(a, "out", s, "a").unwrap();
        g.connect(b, "out", s, "b").unwrap();
    }
    g
}

fn bench_workflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("workflow");

    for n in [8usize, 64] {
        let g = wide_graph(n);
        group.bench_with_input(BenchmarkId::new("dataflow_sequential", n), &g, |b, g| {
            b.iter(|| g.run(&HashMap::new()).unwrap())
        });
        let pool = ThreadPool::new(2);
        group.bench_with_input(BenchmarkId::new("dataflow_parallel", n), &g, |b, g| {
            b.iter(|| g.run_parallel(&pool, &HashMap::new()).unwrap())
        });
    }

    // BPEL: tight while loop of assigns (pure engine overhead per step).
    let net = soc_http::MemNetwork::new();
    let transport: Arc<dyn soc_http::mem::Transport> = Arc::new(net);
    group.bench_function("bpel_1000_steps", |b| {
        b.iter(|| {
            let p = Process::new(
                Step::Sequence(vec![
                    Step::set("i", 0),
                    Step::While {
                        cond: Arc::new(|s: &Scope| s["i"].as_i64().unwrap() < 1000),
                        body: Box::new(Step::assign("i", |s| {
                            Ok(Value::from(s["i"].as_i64().unwrap() + 1))
                        })),
                    },
                ]),
                transport.clone(),
            );
            p.run(Scope::new()).unwrap()
        })
    });

    // TBB-style pipeline throughput (unit 2's stage model).
    group.bench_function("pipeline_3_stages_1000_items", |b| {
        b.iter(|| {
            soc_parallel::pipeline::Pipeline::new(16)
                .stage(soc_parallel::pipeline::StageKind::Serial, |x: i64| Some(x + 1))
                .stage(soc_parallel::pipeline::StageKind::Parallel(2), |x| Some(x * 2))
                .stage(soc_parallel::pipeline::StageKind::Serial, |x| {
                    if x % 3 == 0 {
                        None
                    } else {
                        Some(x)
                    }
                })
                .run((0..1000).collect())
        })
    });

    // FSM dispatch rate.
    group.bench_function("fsm_dispatch_1000", |b| {
        let mut fsm = FsmBuilder::<u64>::new("a")
            .on_do("a", "go", "b", |c| *c += 1)
            .on_do("b", "go", "a", |c| *c += 1)
            .build();
        b.iter(|| {
            let mut ctx = 0u64;
            for _ in 0..1000 {
                fsm.dispatch("go", &mut ctx);
            }
            ctx
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_workflow
}
criterion_main!(benches);
