//! Client-side round-tripped state ("view state") with a tamper MAC —
//! the other half of the unit's state-management comparison: the server
//! stays stateless, the client carries the (signed) state.

use soc_services::crypto::{base64_decode, base64_encode};

fn mac(secret: u64, payload: &[u8]) -> u64 {
    // FNV-1a keyed at both ends (course-grade MAC; the *construction*
    // — sign, verify before trust — is the lesson).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ secret;
    for &b in payload {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= secret.rotate_left(31);
    h = h.wrapping_mul(0x100_0000_01b3);
    h
}

/// Encode `(key, value)` pairs into an opaque signed token.
pub fn encode(secret: u64, fields: &[(String, String)]) -> String {
    let mut payload = String::new();
    for (k, v) in fields {
        payload.push_str(&soc_http::url::percent_encode(k));
        payload.push('=');
        payload.push_str(&soc_http::url::percent_encode(v));
        payload.push('&');
    }
    let tag = mac(secret, payload.as_bytes());
    base64_encode(format!("{tag:016x}|{payload}").as_bytes())
}

/// Decode and verify a token. Any tampering (payload or tag) fails.
pub fn decode(secret: u64, token: &str) -> Result<Vec<(String, String)>, String> {
    let raw = base64_decode(token)?;
    let text = String::from_utf8(raw).map_err(|_| "view state is not UTF-8")?;
    let (tag_hex, payload) = text.split_once('|').ok_or("view state missing tag")?;
    let presented = u64::from_str_radix(tag_hex, 16).map_err(|_| "bad tag")?;
    let expected = mac(secret, payload.as_bytes());
    if presented != expected {
        return Err("view state failed integrity check".into());
    }
    Ok(payload
        .split('&')
        .filter(|p| !p.is_empty())
        .filter_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            Some((soc_http::url::percent_decode(k), soc_http::url::percent_decode(v)))
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields() -> Vec<(String, String)> {
        vec![
            ("step".to_string(), "2".to_string()),
            ("name".to_string(), "Ann Example".to_string()),
            ("note".to_string(), "a&b=c %100".to_string()),
        ]
    }

    #[test]
    fn round_trip() {
        let token = encode(42, &fields());
        assert_eq!(decode(42, &token).unwrap(), fields());
    }

    #[test]
    fn wrong_secret_rejected() {
        let token = encode(42, &fields());
        assert!(decode(43, &token).is_err());
    }

    #[test]
    fn tampering_detected() {
        let token = encode(42, &fields());
        // Flip a character in the middle of the (base64) token.
        let mut bytes: Vec<u8> = token.into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] = if bytes[mid] == b'A' { b'B' } else { b'A' };
        let tampered = String::from_utf8(bytes).unwrap();
        assert!(decode(42, &tampered).is_err());
    }

    #[test]
    fn garbage_rejected_without_panic() {
        assert!(decode(42, "!!!not base64!!!").is_err());
        assert!(decode(42, "").is_err());
        assert!(decode(42, &base64_encode(b"no-tag-separator")).is_err());
    }

    #[test]
    fn empty_state_round_trips() {
        let token = encode(7, &[]);
        assert_eq!(decode(7, &token).unwrap(), vec![]);
    }

    #[test]
    fn token_is_opaque() {
        let token = encode(42, &fields());
        assert!(!token.contains("Ann"));
    }
}
