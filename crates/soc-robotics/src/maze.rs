//! Maze model, generation, and the BFS oracle.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Compass directions; also the robot's heading space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Decreasing y.
    North,
    /// Increasing x.
    East,
    /// Increasing y.
    South,
    /// Decreasing x.
    West,
}

impl Direction {
    /// All four, clockwise from north.
    pub const ALL: [Direction; 4] =
        [Direction::North, Direction::East, Direction::South, Direction::West];

    /// Unit step for this direction.
    pub fn delta(self) -> (i32, i32) {
        match self {
            Direction::North => (0, -1),
            Direction::East => (1, 0),
            Direction::South => (0, 1),
            Direction::West => (-1, 0),
        }
    }

    /// 90° right.
    pub fn right(self) -> Direction {
        match self {
            Direction::North => Direction::East,
            Direction::East => Direction::South,
            Direction::South => Direction::West,
            Direction::West => Direction::North,
        }
    }

    /// 90° left.
    pub fn left(self) -> Direction {
        self.right().right().right()
    }

    /// 180°.
    pub fn opposite(self) -> Direction {
        self.right().right()
    }

    fn bit(self) -> u8 {
        match self {
            Direction::North => 1,
            Direction::East => 2,
            Direction::South => 4,
            Direction::West => 8,
        }
    }
}

/// A rectangular maze. Every cell starts fully walled; generation
/// carves passages. Coordinates are `(x, y)` with the origin at the
/// north-west corner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Maze {
    width: usize,
    height: usize,
    /// Wall bitmask per cell (bit set = wall present).
    walls: Vec<u8>,
    /// Where robots start.
    pub start: (usize, usize),
    /// The exit cell.
    pub exit: (usize, usize),
}

impl Maze {
    /// A fully walled maze (no passages yet).
    pub fn walled(width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "maze must be at least 2×2");
        Maze {
            width,
            height,
            walls: vec![0b1111; width * height],
            start: (0, 0),
            exit: (width - 1, height - 1),
        }
    }

    /// Generate a *perfect* maze (exactly one path between any two
    /// cells) with the recursive backtracker, deterministically from
    /// `seed`.
    pub fn generate(width: usize, height: usize, seed: u64) -> Self {
        let mut maze = Maze::walled(width, height);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut visited = vec![false; width * height];
        let mut stack = vec![(0usize, 0usize)];
        visited[0] = true;
        while let Some(&(x, y)) = stack.last() {
            let mut options: Vec<Direction> = Direction::ALL
                .into_iter()
                .filter(|d| {
                    maze.neighbor((x, y), *d)
                        .map(|(nx, ny)| !visited[ny * width + nx])
                        .unwrap_or(false)
                })
                .collect();
            if options.is_empty() {
                stack.pop();
                continue;
            }
            options.shuffle(&mut rng);
            let d = options[0];
            let (nx, ny) = maze.neighbor((x, y), d).expect("filtered");
            maze.carve((x, y), d);
            visited[ny * width + nx] = true;
            stack.push((nx, ny));
        }
        maze
    }

    /// Generate a perfect maze with randomized Prim's algorithm —
    /// structurally distinct from the backtracker (shorter corridors,
    /// more branching), giving the algorithm comparisons a second
    /// workload family. Deterministic from `seed`.
    pub fn generate_prim(width: usize, height: usize, seed: u64) -> Self {
        let mut maze = Maze::walled(width, height);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut in_maze = vec![false; width * height];
        in_maze[0] = true;
        // Frontier of (cell, direction) walls between in-maze and out.
        let mut frontier: Vec<((usize, usize), Direction)> = Direction::ALL
            .into_iter()
            .filter(|d| maze.neighbor((0, 0), *d).is_some())
            .map(|d| ((0, 0), d))
            .collect();
        while !frontier.is_empty() {
            let pick = rng.gen_range(0..frontier.len());
            let (cell, dir) = frontier.swap_remove(pick);
            let Some((nx, ny)) = maze.neighbor(cell, dir) else { continue };
            if in_maze[ny * width + nx] {
                continue;
            }
            maze.carve(cell, dir);
            in_maze[ny * width + nx] = true;
            for d in Direction::ALL {
                if let Some((fx, fy)) = maze.neighbor((nx, ny), d) {
                    if !in_maze[fy * width + fx] {
                        frontier.push(((nx, ny), d));
                    }
                }
            }
        }
        maze
    }

    /// Fraction of cells that are dead ends (exactly one open side) — a
    /// structural signature distinguishing generator families.
    pub fn dead_end_fraction(&self) -> f64 {
        let mut dead = 0usize;
        for y in 0..self.height {
            for x in 0..self.width {
                if self.open_sides((x, y)) == 1 {
                    dead += 1;
                }
            }
        }
        dead as f64 / (self.width * self.height) as f64
    }

    /// Remove ~`fraction` of dead ends by knocking through one extra
    /// wall each ("braiding"), producing loops — harder for greedy
    /// algorithms, trivial for BFS. Deterministic from `seed`.
    pub fn braid(&mut self, fraction: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for y in 0..self.height {
            for x in 0..self.width {
                let open: Vec<Direction> =
                    Direction::ALL.into_iter().filter(|d| !self.has_wall((x, y), *d)).collect();
                if open.len() == 1 && rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                    // Dead end: open a random walled side with a neighbor.
                    let mut candidates: Vec<Direction> = Direction::ALL
                        .into_iter()
                        .filter(|d| *d != open[0] && self.neighbor((x, y), *d).is_some())
                        .collect();
                    candidates.shuffle(&mut rng);
                    if let Some(&d) = candidates.first() {
                        self.carve((x, y), d);
                    }
                }
            }
        }
    }

    /// Maze width in cells.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Maze height in cells.
    pub fn height(&self) -> usize {
        self.height
    }

    fn index(&self, (x, y): (usize, usize)) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y * self.width + x
    }

    /// The neighboring cell in direction `d`, if inside the maze.
    pub fn neighbor(&self, (x, y): (usize, usize), d: Direction) -> Option<(usize, usize)> {
        let (dx, dy) = d.delta();
        let nx = x as i32 + dx;
        let ny = y as i32 + dy;
        if nx < 0 || ny < 0 || nx >= self.width as i32 || ny >= self.height as i32 {
            None
        } else {
            Some((nx as usize, ny as usize))
        }
    }

    /// Is there a wall on side `d` of `cell`? (The maze border always
    /// reads as a wall.)
    pub fn has_wall(&self, cell: (usize, usize), d: Direction) -> bool {
        self.walls[self.index(cell)] & d.bit() != 0
    }

    /// Knock through the wall between `cell` and its neighbor in `d`.
    /// No-op on the border.
    pub fn carve(&mut self, cell: (usize, usize), d: Direction) {
        if let Some(n) = self.neighbor(cell, d) {
            let i = self.index(cell);
            self.walls[i] &= !d.bit();
            let j = self.index(n);
            self.walls[j] &= !d.opposite().bit();
        }
    }

    /// Number of open (carved) sides of a cell.
    pub fn open_sides(&self, cell: (usize, usize)) -> usize {
        Direction::ALL.into_iter().filter(|d| !self.has_wall(cell, *d)).count()
    }

    /// How many cells are open straight ahead from `cell` in `d` before
    /// a wall — the value a distance sensor reports.
    pub fn distance_to_wall(&self, cell: (usize, usize), d: Direction) -> usize {
        let mut dist = 0;
        let mut cur = cell;
        while !self.has_wall(cur, d) {
            match self.neighbor(cur, d) {
                Some(n) => {
                    dist += 1;
                    cur = n;
                }
                None => break,
            }
        }
        dist
    }

    /// BFS shortest path from `from` to `to` (cells inclusive), or
    /// `None` when unreachable.
    pub fn shortest_path(
        &self,
        from: (usize, usize),
        to: (usize, usize),
    ) -> Option<Vec<(usize, usize)>> {
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; self.width * self.height];
        let mut seen = vec![false; self.width * self.height];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(from);
        seen[self.index(from)] = true;
        while let Some(cell) = queue.pop_front() {
            if cell == to {
                let mut path = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = prev[self.index(cur)].expect("bfs chain");
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for d in Direction::ALL {
                if self.has_wall(cell, d) {
                    continue;
                }
                if let Some(n) = self.neighbor(cell, d) {
                    let i = self.index(n);
                    if !seen[i] {
                        seen[i] = true;
                        prev[i] = Some(cell);
                        queue.push_back(n);
                    }
                }
            }
        }
        None
    }

    /// Render as ASCII art (for examples and debugging).
    pub fn to_ascii(&self, robot: Option<(usize, usize)>) -> String {
        let mut out = String::new();
        // Top border.
        for x in 0..self.width {
            out.push('+');
            out.push_str(if self.has_wall((x, 0), Direction::North) { "---" } else { "   " });
        }
        out.push_str("+\n");
        for y in 0..self.height {
            // Cell row.
            for x in 0..self.width {
                out.push_str(if self.has_wall((x, y), Direction::West) { "|" } else { " " });
                let c = if robot == Some((x, y)) {
                    " R "
                } else if (x, y) == self.exit {
                    " E "
                } else if (x, y) == self.start {
                    " S "
                } else {
                    "   "
                };
                out.push_str(c);
            }
            out.push_str(if self.has_wall((self.width - 1, y), Direction::East) {
                "|\n"
            } else {
                " \n"
            });
            // Wall row below.
            for x in 0..self.width {
                out.push('+');
                out.push_str(if self.has_wall((x, y), Direction::South) { "---" } else { "   " });
            }
            out.push_str("+\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_compose() {
        for d in Direction::ALL {
            assert_eq!(d.left().right(), d);
            assert_eq!(d.opposite().opposite(), d);
            assert_eq!(d.right().right().right().right(), d);
        }
    }

    #[test]
    fn carving_is_symmetric() {
        let mut m = Maze::walled(3, 3);
        assert!(m.has_wall((0, 0), Direction::East));
        m.carve((0, 0), Direction::East);
        assert!(!m.has_wall((0, 0), Direction::East));
        assert!(!m.has_wall((1, 0), Direction::West));
    }

    #[test]
    fn border_carving_is_noop() {
        let mut m = Maze::walled(3, 3);
        m.carve((0, 0), Direction::North);
        assert!(m.has_wall((0, 0), Direction::North));
    }

    #[test]
    fn generated_maze_is_fully_connected() {
        let m = Maze::generate(15, 11, 42);
        for y in 0..m.height() {
            for x in 0..m.width() {
                assert!(m.shortest_path(m.start, (x, y)).is_some(), "cell ({x},{y}) unreachable");
            }
        }
    }

    #[test]
    fn perfect_maze_has_cells_minus_one_passages() {
        let m = Maze::generate(12, 9, 7);
        // Count carved walls (each passage shared by two cells).
        let mut passages = 0;
        for y in 0..m.height() {
            for x in 0..m.width() {
                if !m.has_wall((x, y), Direction::East) {
                    passages += 1;
                }
                if !m.has_wall((x, y), Direction::South) {
                    passages += 1;
                }
            }
        }
        assert_eq!(passages, 12 * 9 - 1, "a perfect maze is a spanning tree");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(Maze::generate(9, 9, 5), Maze::generate(9, 9, 5));
        assert_ne!(Maze::generate(9, 9, 5), Maze::generate(9, 9, 6));
    }

    #[test]
    fn braiding_adds_loops() {
        let mut m = Maze::generate(15, 15, 3);
        let dead_ends_before = (0..15 * 15).filter(|i| m.open_sides((i % 15, i / 15)) == 1).count();
        m.braid(1.0, 99);
        let dead_ends_after = (0..15 * 15).filter(|i| m.open_sides((i % 15, i / 15)) == 1).count();
        assert!(dead_ends_after < dead_ends_before);
        // Still fully connected (braiding only removes walls).
        assert!(m.shortest_path(m.start, m.exit).is_some());
    }

    #[test]
    fn distance_sensor_counts_open_cells() {
        let mut m = Maze::walled(5, 2);
        m.carve((0, 0), Direction::East);
        m.carve((1, 0), Direction::East);
        m.carve((2, 0), Direction::East);
        assert_eq!(m.distance_to_wall((0, 0), Direction::East), 3);
        assert_eq!(m.distance_to_wall((0, 0), Direction::West), 0);
        assert_eq!(m.distance_to_wall((3, 0), Direction::East), 0);
    }

    #[test]
    fn bfs_path_endpoints_and_adjacency() {
        let m = Maze::generate(10, 10, 11);
        let path = m.shortest_path(m.start, m.exit).unwrap();
        assert_eq!(*path.first().unwrap(), m.start);
        assert_eq!(*path.last().unwrap(), m.exit);
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            let adjacent = Direction::ALL
                .into_iter()
                .any(|d| m.neighbor(a, d) == Some(b) && !m.has_wall(a, d));
            assert!(adjacent, "{a:?} -> {b:?} is not a legal move");
        }
    }

    #[test]
    fn unreachable_when_walled() {
        let m = Maze::walled(4, 4);
        assert!(m.shortest_path((0, 0), (3, 3)).is_none());
        assert_eq!(m.shortest_path((1, 1), (1, 1)).unwrap(), vec![(1, 1)]);
    }

    #[test]
    fn ascii_rendering_contains_markers() {
        let m = Maze::generate(4, 4, 1);
        let art = m.to_ascii(Some((1, 1)));
        assert!(art.contains(" R "));
        assert!(art.contains(" E "));
        assert!(art.contains(" S "));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_maze_rejected() {
        let _ = Maze::walled(1, 5);
    }
}

#[cfg(test)]
mod prim_tests {
    use super::*;

    #[test]
    fn prim_mazes_are_perfect_and_connected() {
        for seed in 0..6 {
            let m = Maze::generate_prim(13, 9, seed);
            let mut passages = 0;
            for y in 0..m.height() {
                for x in 0..m.width() {
                    if !m.has_wall((x, y), Direction::East) {
                        passages += 1;
                    }
                    if !m.has_wall((x, y), Direction::South) {
                        passages += 1;
                    }
                }
            }
            assert_eq!(passages, 13 * 9 - 1, "seed {seed}: not a spanning tree");
            assert!(m.shortest_path(m.start, m.exit).is_some());
        }
    }

    #[test]
    fn prim_is_deterministic_and_distinct_from_backtracker() {
        assert_eq!(Maze::generate_prim(11, 11, 4), Maze::generate_prim(11, 11, 4));
        assert_ne!(Maze::generate_prim(11, 11, 4), Maze::generate(11, 11, 4));
    }

    #[test]
    fn prim_has_more_dead_ends_than_backtracker() {
        // The structural signature: Prim's produces many short branches,
        // the backtracker long corridors. Compare averages over seeds.
        let avg = |gen: fn(usize, usize, u64) -> Maze| -> f64 {
            (0..8).map(|s| gen(21, 21, s).dead_end_fraction()).sum::<f64>() / 8.0
        };
        let prim = avg(Maze::generate_prim);
        let backtracker = avg(Maze::generate);
        assert!(prim > backtracker + 0.05, "prim {prim:.3} vs backtracker {backtracker:.3}");
    }

    #[test]
    fn algorithms_solve_prim_mazes_too() {
        use crate::algorithms::{self, Hand, TwoDistanceGreedy, WallFollower};
        for seed in 0..6 {
            let m = Maze::generate_prim(13, 13, seed);
            let budget = 13 * 13 * 16;
            assert!(
                algorithms::run(&m, &mut WallFollower::new(Hand::Right), budget).reached,
                "wall follower failed on prim seed {seed}"
            );
            assert!(
                algorithms::run(&m, &mut TwoDistanceGreedy::new(), budget).reached,
                "greedy failed on prim seed {seed}"
            );
        }
    }
}
