/root/repo/target/debug/deps/soc_robotics-f5564a349554bd83.d: crates/soc-robotics/src/lib.rs crates/soc-robotics/src/algorithms.rs crates/soc-robotics/src/maze.rs crates/soc-robotics/src/raas.rs crates/soc-robotics/src/robot.rs crates/soc-robotics/src/sync.rs Cargo.toml

/root/repo/target/debug/deps/libsoc_robotics-f5564a349554bd83.rmeta: crates/soc-robotics/src/lib.rs crates/soc-robotics/src/algorithms.rs crates/soc-robotics/src/maze.rs crates/soc-robotics/src/raas.rs crates/soc-robotics/src/robot.rs crates/soc-robotics/src/sync.rs Cargo.toml

crates/soc-robotics/src/lib.rs:
crates/soc-robotics/src/algorithms.rs:
crates/soc-robotics/src/maze.rs:
crates/soc-robotics/src/raas.rs:
crates/soc-robotics/src/robot.rs:
crates/soc-robotics/src/sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
