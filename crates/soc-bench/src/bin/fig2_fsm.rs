//! **Figure 2 harness** — "Two-distance algorithm in finite state
//! machine": run the greedy FSM navigator across seeded mazes and print
//! its state machine (states, transition counts, a trace excerpt), plus
//! the success/steps comparison against the wall follower and oracle.
//!
//! ```sh
//! cargo run -p soc-bench --bin fig2_fsm
//! ```

use std::collections::BTreeMap;

use soc_robotics::algorithms::{self, Hand, TwoDistanceGreedy, WallFollower};
use soc_robotics::maze::Maze;

fn main() {
    println!("Figure 2: two-distance greedy algorithm as a finite state machine");
    soc_bench::print_rule(72);

    // One instrumented run to show the FSM itself.
    let maze = Maze::generate(11, 11, 3);
    let mut nav = TwoDistanceGreedy::new();
    let out = algorithms::run(&maze, &mut nav, 11 * 11 * 10);
    println!(
        "single run on an 11×11 maze: reached={} steps={} ticks={}",
        out.reached, out.steps, out.ticks
    );

    let mut transition_counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    for (from, event, to) in nav.trace() {
        *transition_counts.entry((from.clone(), event.clone(), to.clone())).or_insert(0) += 1;
    }
    println!("\nFSM transitions taken (the arrows of Figure 2):");
    println!("{:<12} {:<10} {:<12} {:>6}", "from", "event", "to", "count");
    for ((from, event, to), count) in &transition_counts {
        println!("{from:<12} {event:<10} {to:<12} {count:>6}");
    }
    println!("\ntrace excerpt (first 10 transitions):");
    for (from, event, to) in nav.trace().iter().take(10) {
        println!("  {from} --{event}--> {to}");
    }

    // Batch comparison across seeds — the figure's pedagogical payload.
    println!("\nbatch over 20 seeded 13×13 perfect mazes:");
    println!("{:<24} {:>9} {:>12} {:>12}", "algorithm", "solved", "mean steps", "vs oracle");
    let budget = 13 * 13 * 10;
    for algo in ["two-distance-greedy", "wall-follow-right"] {
        let mut solved = 0;
        let mut steps = 0usize;
        let mut oracle = 0usize;
        for seed in 0..20 {
            let m = Maze::generate(13, 13, seed);
            let mut nav: Box<dyn algorithms::Navigator> = match algo {
                "two-distance-greedy" => Box::new(TwoDistanceGreedy::new()),
                _ => Box::new(WallFollower::new(Hand::Right)),
            };
            let out = algorithms::run(&m, nav.as_mut(), budget * 4);
            if out.reached {
                solved += 1;
                steps += out.steps;
                oracle += algorithms::oracle_steps(&m).unwrap();
            }
        }
        println!(
            "{:<24} {:>6}/20 {:>12.1} {:>11.2}×",
            algo,
            solved,
            steps as f64 / solved.max(1) as f64,
            steps as f64 / oracle.max(1) as f64
        );
    }
}
