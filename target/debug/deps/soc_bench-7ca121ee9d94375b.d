/root/repo/target/debug/deps/soc_bench-7ca121ee9d94375b.d: crates/soc-bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsoc_bench-7ca121ee9d94375b.rmeta: crates/soc-bench/src/lib.rs Cargo.toml

crates/soc-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
