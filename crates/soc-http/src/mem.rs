//! An in-memory virtual network of hosts.
//!
//! Most of the paper's scenarios are *topologies*: a client consuming a
//! provider that consumes a third-party service; a crawler walking
//! several directories; a registry monitoring flaky upstreams. This
//! module hosts any number of [`Handler`]s under `mem://` names inside
//! one process, so those topologies run deterministically, with
//! controllable fault injection standing in for the paper's unreliable
//! free public services ("services are too slow... often offline or
//! removed without notice").

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use crate::client::HttpClient;
use crate::server::Handler;
use crate::types::{HttpError, HttpResult, Request, Response, Status};
use crate::url::Url;

/// Anything that can exchange request/response pairs: the TCP client,
/// the in-memory network, or the combined [`UniClient`]. Service-layer
/// code is written against this, so every binding works over both real
/// sockets and the virtual network.
pub trait Transport: Send + Sync {
    /// Send a request to an absolute URL target.
    fn send(&self, req: Request) -> HttpResult<Response>;
}

impl Transport for HttpClient {
    fn send(&self, req: Request) -> HttpResult<Response> {
        HttpClient::send(self, req)
    }
}

/// Deterministic fault injection for a virtual host.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Every `n`-th request (1-based counter) returns 503. `0` disables.
    pub fail_every: u64,
    /// Added latency per request.
    pub latency: Duration,
    /// When set, the host answers nothing (connection refused
    /// equivalent: an `Io` error).
    pub offline: bool,
}

struct HostEntry {
    handler: Arc<dyn Handler>,
    fault: FaultConfig,
    hits: AtomicU64,
}

/// A registry of named in-memory hosts addressed as `mem://name/path`.
#[derive(Clone, Default)]
pub struct MemNetwork {
    hosts: Arc<RwLock<HashMap<String, Arc<HostEntry>>>>,
}

impl MemNetwork {
    /// An empty network.
    pub fn new() -> Self {
        MemNetwork::default()
    }

    /// Register (or replace) a host.
    pub fn host(&self, name: &str, handler: impl Handler) {
        self.hosts.write().insert(
            name.to_string(),
            Arc::new(HostEntry {
                handler: Arc::new(handler),
                fault: FaultConfig::default(),
                hits: AtomicU64::new(0),
            }),
        );
    }

    /// Remove a host (it "goes offline without notice").
    pub fn unhost(&self, name: &str) {
        self.hosts.write().remove(name);
    }

    /// Configure fault injection for an existing host.
    pub fn set_fault(&self, name: &str, fault: FaultConfig) -> bool {
        let hosts = self.hosts.read();
        let Some(entry) = hosts.get(name) else { return false };
        let entry = entry.clone();
        drop(hosts);
        let mut hosts = self.hosts.write();
        hosts.insert(
            name.to_string(),
            Arc::new(HostEntry {
                handler: entry.handler.clone(),
                fault,
                hits: AtomicU64::new(entry.hits.load(Ordering::Relaxed)),
            }),
        );
        true
    }

    /// Names of all registered hosts.
    pub fn host_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.hosts.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Requests a host has received.
    pub fn hits(&self, name: &str) -> u64 {
        self.hosts.read().get(name).map(|e| e.hits.load(Ordering::Relaxed)).unwrap_or(0)
    }
}

impl Transport for MemNetwork {
    fn send(&self, req: Request) -> HttpResult<Response> {
        let url = Url::parse(&req.target)?;
        if url.scheme != "mem" {
            return Err(HttpError::BadUrl(format!(
                "MemNetwork only routes mem://, got {}",
                url.scheme
            )));
        }
        let entry = self
            .hosts
            .read()
            .get(&url.host)
            .cloned()
            .ok_or_else(|| HttpError::UnknownHost(url.host.clone()))?;

        if entry.fault.offline {
            return Err(HttpError::Io(format!("host {} is offline", url.host)));
        }
        if !entry.fault.latency.is_zero() {
            std::thread::sleep(entry.fault.latency);
        }
        let n = entry.hits.fetch_add(1, Ordering::Relaxed) + 1;
        if entry.fault.fail_every > 0 && n % entry.fault.fail_every == 0 {
            return Ok(Response::error(Status::SERVICE_UNAVAILABLE, "injected fault"));
        }

        // The handler sees origin-form targets, exactly like over TCP.
        let mut inner = req;
        inner.target = url.path_and_query();
        // Same trace plumbing as the TCP path: inject the caller's
        // context, then serve inside a server span on the "remote" side.
        crate::observe::inject_traceparent(&mut inner.headers);
        let resp = crate::observe::serve_with_span(inner, "mem.server", |req| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| entry.handler.handle(req)))
                .unwrap_or_else(|_| {
                    Response::error(Status::INTERNAL_SERVER_ERROR, "handler panicked")
                })
        });
        Ok(resp)
    }
}

/// A transport that routes `mem://` to a [`MemNetwork`] and `http://`
/// to a real [`HttpClient`] — application code stays
/// deployment-agnostic, which is the SOA platform-independence story.
#[derive(Clone)]
pub struct UniClient {
    net: MemNetwork,
    http: HttpClient,
}

impl UniClient {
    /// Combine a virtual network with a TCP client.
    pub fn new(net: MemNetwork) -> Self {
        UniClient { net, http: HttpClient::new() }
    }

    /// Override the TCP client (timeouts, body limits).
    pub fn with_http(mut self, http: HttpClient) -> Self {
        self.http = http;
        self
    }
}

impl Transport for UniClient {
    fn send(&self, req: Request) -> HttpResult<Response> {
        let url = Url::parse(&req.target)?;
        match url.scheme.as_str() {
            "mem" => self.net.send(req),
            "http" => self.http.send(req),
            other => Err(HttpError::BadUrl(format!("unsupported scheme {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_net() -> MemNetwork {
        let net = MemNetwork::new();
        net.host("echo", |req: Request| Response::text(format!("{} {}", req.method, req.target)));
        net
    }

    #[test]
    fn routes_to_named_host() {
        let net = echo_net();
        let resp = net.send(Request::get("mem://echo/a/b?x=1")).unwrap();
        assert_eq!(resp.text_body().unwrap(), "GET /a/b?x=1");
        assert_eq!(net.hits("echo"), 1);
    }

    #[test]
    fn unknown_host_errors() {
        let net = echo_net();
        assert!(matches!(
            net.send(Request::get("mem://ghost/")),
            Err(HttpError::UnknownHost(h)) if h == "ghost"
        ));
    }

    #[test]
    fn unhost_takes_service_offline() {
        let net = echo_net();
        net.unhost("echo");
        assert!(net.send(Request::get("mem://echo/")).is_err());
        assert!(net.host_names().is_empty());
    }

    #[test]
    fn fault_injection_fail_every() {
        let net = echo_net();
        assert!(net.set_fault("echo", FaultConfig { fail_every: 3, ..Default::default() }));
        let mut failures = 0;
        for _ in 0..9 {
            let resp = net.send(Request::get("mem://echo/")).unwrap();
            if resp.status == Status::SERVICE_UNAVAILABLE {
                failures += 1;
            }
        }
        assert_eq!(failures, 3);
    }

    #[test]
    fn offline_fault_is_io_error() {
        let net = echo_net();
        net.set_fault("echo", FaultConfig { offline: true, ..Default::default() });
        assert!(matches!(net.send(Request::get("mem://echo/")), Err(HttpError::Io(_))));
    }

    #[test]
    fn set_fault_on_missing_host_is_false() {
        let net = MemNetwork::new();
        assert!(!net.set_fault("nope", FaultConfig::default()));
    }

    #[test]
    fn panicking_handler_is_500_not_poison() {
        let net = MemNetwork::new();
        net.host("bad", |_req: Request| -> Response { panic!("bug") });
        let resp = net.send(Request::get("mem://bad/")).unwrap();
        assert_eq!(resp.status, Status::INTERNAL_SERVER_ERROR);
        // Network still usable.
        let resp = net.send(Request::get("mem://bad/")).unwrap();
        assert_eq!(resp.status, Status::INTERNAL_SERVER_ERROR);
    }

    #[test]
    fn uniclient_dispatches_by_scheme() {
        let net = echo_net();
        let uni = UniClient::new(net);
        assert!(uni.send(Request::get("mem://echo/ok")).is_ok());
        assert!(uni.send(Request::get("ftp://x/")).is_err());
    }

    #[test]
    fn hosts_are_concurrent() {
        let net = Arc::new(echo_net());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let net = net.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    net.send(Request::get("mem://echo/")).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(net.hits("echo"), 200);
    }
}
