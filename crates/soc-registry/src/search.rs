//! The service search engine: inverted index with TF-IDF ranking.
//!
//! The paper hosts a "service engine" at `venus.eas.asu.edu/sse/` that
//! searches services discovered by the crawler. This module is that
//! engine: documents are descriptors (name + description + keywords +
//! category), queries are free text, results are ranked by cosine-ish
//! TF-IDF score. A naive substring scan is included as the baseline the
//! bench compares against.

use std::collections::HashMap;

use crate::descriptor::ServiceDescriptor;

/// Lowercase word tokens of length ≥ 2 (letters/digits).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            cur.extend(c.to_lowercase());
        } else if !cur.is_empty() {
            if cur.len() >= 2 {
                out.push(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        }
    }
    if cur.len() >= 2 {
        out.push(cur);
    }
    out
}

/// A ranked search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// The matching service.
    pub service: ServiceDescriptor,
    /// TF-IDF relevance score (higher = better).
    pub score: f64,
}

#[derive(Debug)]
struct DocEntry {
    descriptor: ServiceDescriptor,
    /// term → term frequency in this document.
    terms: HashMap<String, u32>,
    /// Total terms (for normalization).
    length: u32,
}

/// An inverted index over service descriptors.
#[derive(Debug, Default)]
pub struct SearchEngine {
    docs: Vec<DocEntry>,
    /// term → doc indices containing it.
    postings: HashMap<String, Vec<usize>>,
}

impl SearchEngine {
    /// Empty engine.
    pub fn new() -> Self {
        SearchEngine::default()
    }

    /// Build from a batch of descriptors.
    pub fn build(descriptors: impl IntoIterator<Item = ServiceDescriptor>) -> Self {
        let mut e = SearchEngine::new();
        for d in descriptors {
            e.index(d);
        }
        e
    }

    /// The text fields that get indexed, weighted: name ×3, keywords ×2,
    /// description and category ×1.
    fn document_terms(d: &ServiceDescriptor) -> Vec<String> {
        let mut terms = Vec::new();
        for _ in 0..3 {
            terms.extend(tokenize(&d.name));
        }
        for k in &d.keywords {
            let toks = tokenize(k);
            terms.extend(toks.clone());
            terms.extend(toks);
        }
        terms.extend(tokenize(&d.description));
        terms.extend(tokenize(&d.category));
        terms
    }

    /// Add one descriptor to the index. Re-indexing the same id replaces
    /// nothing — deduplicate upstream (the crawler does).
    pub fn index(&mut self, d: ServiceDescriptor) {
        let terms = Self::document_terms(&d);
        let mut tf: HashMap<String, u32> = HashMap::new();
        for t in &terms {
            *tf.entry(t.clone()).or_insert(0) += 1;
        }
        let idx = self.docs.len();
        for term in tf.keys() {
            let posting = self.postings.entry(term.clone()).or_default();
            if posting.last() != Some(&idx) {
                posting.push(idx);
            }
        }
        self.docs.push(DocEntry { descriptor: d, length: terms.len() as u32, terms: tf });
    }

    /// Number of indexed services.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// TF-IDF ranked search. Returns up to `limit` hits, best first;
    /// ties broken by id for determinism.
    pub fn search(&self, query: &str, limit: usize) -> Vec<Hit> {
        let q_terms = tokenize(query);
        if q_terms.is_empty() || self.docs.is_empty() {
            return Vec::new();
        }
        let n = self.docs.len() as f64;
        let mut scores: HashMap<usize, f64> = HashMap::new();
        for term in &q_terms {
            let Some(posting) = self.postings.get(term) else { continue };
            let idf = (n / posting.len() as f64).ln() + 1.0;
            for &doc in posting {
                let entry = &self.docs[doc];
                let tf =
                    entry.terms.get(term).copied().unwrap_or(0) as f64 / entry.length.max(1) as f64;
                *scores.entry(doc).or_insert(0.0) += tf * idf;
            }
        }
        let mut hits: Vec<Hit> = scores
            .into_iter()
            .map(|(doc, score)| Hit { service: self.docs[doc].descriptor.clone(), score })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.service.id.cmp(&b.service.id))
        });
        hits.truncate(limit);
        hits
    }

    /// The naive baseline: case-insensitive substring scan over all
    /// fields, unranked. Kept for the search-quality/latency ablation.
    pub fn naive_scan(&self, query: &str) -> Vec<ServiceDescriptor> {
        let q = query.to_lowercase();
        self.docs
            .iter()
            .filter(|d| {
                let s = &d.descriptor;
                s.name.to_lowercase().contains(&q)
                    || s.description.to_lowercase().contains(&q)
                    || s.category.to_lowercase().contains(&q)
                    || s.keywords.iter().any(|k| k.to_lowercase().contains(&q))
            })
            .map(|d| d.descriptor.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::Binding;

    fn corpus() -> Vec<ServiceDescriptor> {
        vec![
            ServiceDescriptor::new("enc", "Encryption Service", "mem://s/enc", Binding::Rest)
                .describe("encrypts and decrypts text with a shared secret key")
                .category("security")
                .keywords(&["cipher", "crypto"]),
            ServiceDescriptor::new("cart", "Shopping Cart", "mem://s/cart", Binding::Rest)
                .describe("add items, remove items, compute totals for a shopping session")
                .category("commerce"),
            ServiceDescriptor::new("img", "Image Verifier", "mem://s/img", Binding::Rest)
                .describe("generates a random string image for human verification (captcha)")
                .category("security")
                .keywords(&["captcha", "image"]),
            ServiceDescriptor::new(
                "mortgage",
                "Mortgage Approval",
                "mem://s/mortgage",
                Binding::Soap,
            )
            .describe("mortgage application approval using a credit score service")
            .category("finance"),
        ]
    }

    #[test]
    fn tokenizer_basics() {
        assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
        assert_eq!(tokenize("TF-IDF 2.0"), vec!["tf", "idf"]);
        assert!(tokenize("a ! ?").is_empty()); // 1-char tokens dropped
    }

    #[test]
    fn finds_by_description_terms() {
        let e = SearchEngine::build(corpus());
        let hits = e.search("encrypt secret", 10);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].service.id, "enc");
    }

    #[test]
    fn name_terms_outrank_description_terms() {
        let e = SearchEngine::build(corpus());
        // "image" appears in img's name-ish keywords and description.
        let hits = e.search("image", 10);
        assert_eq!(hits[0].service.id, "img");
    }

    #[test]
    fn multi_term_queries_accumulate() {
        let e = SearchEngine::build(corpus());
        let hits = e.search("mortgage credit score", 10);
        assert_eq!(hits[0].service.id, "mortgage");
    }

    #[test]
    fn rare_terms_weigh_more_than_common() {
        // "service" appears everywhere → low idf; "captcha" only in img.
        let e = SearchEngine::build(corpus());
        let hits = e.search("service captcha", 10);
        assert_eq!(hits[0].service.id, "img");
    }

    #[test]
    fn no_match_is_empty() {
        let e = SearchEngine::build(corpus());
        assert!(e.search("blockchain", 10).is_empty());
        assert!(e.search("", 10).is_empty());
    }

    #[test]
    fn limit_respected_and_deterministic() {
        let e = SearchEngine::build(corpus());
        let hits = e.search("security", 1);
        assert_eq!(hits.len(), 1);
        let again = e.search("security", 1);
        assert_eq!(hits[0].service.id, again[0].service.id);
    }

    #[test]
    fn naive_scan_substring_semantics() {
        let e = SearchEngine::build(corpus());
        // Substring "crypt" matches encrypts/decrypts/crypto.
        let found = e.naive_scan("crypt");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].id, "enc");
        // But the ranked engine tokenizes, so "crypt" alone misses.
        assert!(e.search("crypt", 10).is_empty());
    }

    #[test]
    fn empty_engine() {
        let e = SearchEngine::new();
        assert!(e.search("anything", 5).is_empty());
        assert!(e.is_empty());
    }
}
