/root/repo/target/release/deps/soc_registry-9b911678d48bc21b.d: crates/soc-registry/src/lib.rs crates/soc-registry/src/crawler.rs crates/soc-registry/src/descriptor.rs crates/soc-registry/src/directory.rs crates/soc-registry/src/monitor.rs crates/soc-registry/src/ontology.rs crates/soc-registry/src/repository.rs crates/soc-registry/src/search.rs

/root/repo/target/release/deps/libsoc_registry-9b911678d48bc21b.rlib: crates/soc-registry/src/lib.rs crates/soc-registry/src/crawler.rs crates/soc-registry/src/descriptor.rs crates/soc-registry/src/directory.rs crates/soc-registry/src/monitor.rs crates/soc-registry/src/ontology.rs crates/soc-registry/src/repository.rs crates/soc-registry/src/search.rs

/root/repo/target/release/deps/libsoc_registry-9b911678d48bc21b.rmeta: crates/soc-registry/src/lib.rs crates/soc-registry/src/crawler.rs crates/soc-registry/src/descriptor.rs crates/soc-registry/src/directory.rs crates/soc-registry/src/monitor.rs crates/soc-registry/src/ontology.rs crates/soc-registry/src/repository.rs crates/soc-registry/src/search.rs

crates/soc-registry/src/lib.rs:
crates/soc-registry/src/crawler.rs:
crates/soc-registry/src/descriptor.rs:
crates/soc-registry/src/directory.rs:
crates/soc-registry/src/monitor.rs:
crates/soc-registry/src/ontology.rs:
crates/soc-registry/src/repository.rs:
crates/soc-registry/src/search.rs:
