/root/repo/target/debug/deps/tcp_stack-baa3f6a312995f19.d: tests/tcp_stack.rs

/root/repo/target/debug/deps/tcp_stack-baa3f6a312995f19: tests/tcp_stack.rs

tests/tcp_stack.rs:
