//! XPath 1.0 location-path subset.
//!
//! Supported syntax, chosen to cover everything the course materials (and
//! our SOAP/registry layers) need:
//!
//! - absolute (`/a/b`) and relative (`a/b`) location paths
//! - `//` descendant-or-self steps, at the start or between steps
//! - name tests, `*`, `.`, `..`, `text()`
//! - attribute selection `@name` and `@*` as the final step
//! - predicates: `[3]` (1-based position), `[last()]`, `[@id]`,
//!   `[@id='x']`, `[child]`, `[child='v']`, `[text()='v']`
//!
//! ```
//! use soc_xml::{Document, xpath};
//! let doc = Document::parse_str(
//!     "<r><s id='a'><p>1</p></s><s id='b'><p>2</p></s></r>").unwrap();
//! let hit = xpath::eval("/r/s[@id='b']/p", &doc).unwrap();
//! assert_eq!(hit.first_text(&doc).as_deref(), Some("2"));
//! ```

use crate::dom::{Document, NodeId, NodeValue};
use crate::error::{XmlError, XmlResult};
use crate::name::qname_matches;

/// An ordered, de-duplicated set of nodes (document order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeSet {
    nodes: Vec<NodeId>,
}

impl NodeSet {
    /// Empty set.
    pub fn new() -> Self {
        NodeSet::default()
    }

    /// Nodes in document order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Number of nodes selected.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing was selected.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// First node, if any.
    pub fn first(&self) -> Option<NodeId> {
        self.nodes.first().copied()
    }

    /// Text content of the first selected node.
    pub fn first_text(&self, doc: &Document) -> Option<String> {
        self.first().map(|n| doc.text(n))
    }

    /// Text content of every selected node.
    pub fn texts(&self, doc: &Document) -> Vec<String> {
        self.nodes.iter().map(|&n| doc.text(n)).collect()
    }

    /// Underlying vector.
    pub fn into_vec(self) -> Vec<NodeId> {
        self.nodes
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        // NodeIds are assigned in creation order, so for parsed documents
        // ascending id order *is* document order — sort + dedup replaces
        // the quadratic contains-scan this used to do.
        let mut nodes: Vec<NodeId> = iter.into_iter().collect();
        nodes.sort_unstable();
        nodes.dedup();
        NodeSet { nodes }
    }
}

/// Result of evaluating an expression: nodes, or strings when the final
/// step selects attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XPathResult {
    /// Element/text node selection.
    Nodes(NodeSet),
    /// Attribute value selection (`…/@name`).
    Strings(Vec<String>),
}

impl XPathResult {
    /// The node set, or an empty one for string results.
    pub fn nodes(self) -> NodeSet {
        match self {
            XPathResult::Nodes(n) => n,
            XPathResult::Strings(_) => NodeSet::new(),
        }
    }

    /// The strings: attribute values, or text of each node.
    pub fn strings(self, doc: &Document) -> Vec<String> {
        match self {
            XPathResult::Nodes(n) => n.texts(doc),
            XPathResult::Strings(s) => s,
        }
    }
}

// ---- expression model ----------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Axis {
    Child,
    DescendantOrSelf,
}

#[derive(Debug, Clone, PartialEq)]
enum NodeTest {
    Name(String),
    AnyElement,
    Text,
    SelfNode,
    Parent,
    Attr(String),
    AnyAttr,
}

#[derive(Debug, Clone, PartialEq)]
enum Predicate {
    Position(usize),
    Last,
    HasAttr(String),
    AttrEquals(String, String),
    HasChild(String),
    ChildEquals(String, String),
    TextEquals(String),
}

#[derive(Debug, Clone, PartialEq)]
struct Step {
    axis: Axis,
    test: NodeTest,
    predicates: Vec<Predicate>,
}

/// A parsed XPath expression, reusable across evaluations.
#[derive(Debug, Clone, PartialEq)]
pub struct XPath {
    absolute: bool,
    steps: Vec<Step>,
}

fn syntax(detail: impl Into<String>) -> XmlError {
    XmlError::XPathSyntax { detail: detail.into() }
}

impl XPath {
    /// Parse an expression.
    pub fn parse(expr: &str) -> XmlResult<Self> {
        let expr = expr.trim();
        if expr.is_empty() {
            return Err(syntax("empty expression"));
        }
        let mut rest = expr;
        let mut absolute = false;
        let mut steps = Vec::new();

        if let Some(r) = rest.strip_prefix("//") {
            absolute = true;
            steps.push(Step {
                axis: Axis::DescendantOrSelf,
                test: NodeTest::SelfNode,
                predicates: vec![],
            });
            rest = r;
        } else if let Some(r) = rest.strip_prefix('/') {
            absolute = true;
            rest = r;
            if rest.is_empty() {
                return Ok(XPath { absolute, steps });
            }
        }

        loop {
            let (step_src, remainder, next_descendant) = split_step(rest)?;
            steps.push(parse_step(step_src)?);
            match remainder {
                None => break,
                Some(r) => {
                    if next_descendant {
                        steps.push(Step {
                            axis: Axis::DescendantOrSelf,
                            test: NodeTest::SelfNode,
                            predicates: vec![],
                        });
                    }
                    rest = r;
                }
            }
        }
        // Attribute tests are only legal as the final step.
        for (i, s) in steps.iter().enumerate() {
            if matches!(s.test, NodeTest::Attr(_) | NodeTest::AnyAttr) && i + 1 != steps.len() {
                return Err(syntax("attribute step must be last"));
            }
        }
        Ok(XPath { absolute, steps })
    }

    /// Evaluate against a whole document (context = virtual root).
    pub fn eval(&self, doc: &Document) -> XPathResult {
        self.eval_from(doc, doc.root(), true)
    }

    /// Evaluate relative to `context`. When the expression is absolute the
    /// context is ignored and evaluation starts above the document root.
    pub fn eval_from(&self, doc: &Document, context: NodeId, _is_root: bool) -> XPathResult {
        let mut current: Vec<NodeId> = if self.absolute {
            // A virtual node above the root: child axis from it yields the
            // root element itself. We model it by treating the first step
            // specially.
            vec![]
        } else {
            vec![context]
        };
        let mut at_virtual_root = self.absolute;

        let mut attr_result: Option<Vec<String>> = None;
        for step in &self.steps {
            if attr_result.is_some() {
                // Attribute step was not last; parser prevents this.
                break;
            }
            let candidates: Vec<NodeId> = if at_virtual_root {
                at_virtual_root = false;
                match step.axis {
                    Axis::Child => vec![doc.root()],
                    Axis::DescendantOrSelf => doc.descendants(doc.root()),
                }
            } else {
                let mut out = Vec::new();
                for &ctx in &current {
                    match step.axis {
                        Axis::Child => out.extend(doc.children(ctx)),
                        Axis::DescendantOrSelf => out.extend(doc.descendants_iter(ctx)),
                    }
                }
                out
            };

            // Special tests that do not filter by children.
            match &step.test {
                NodeTest::SelfNode => {
                    current = candidates;
                    continue;
                }
                NodeTest::Parent => {
                    current = current.iter().filter_map(|&n| doc.parent(n)).collect();
                    continue;
                }
                NodeTest::Attr(name) => {
                    let vals = current
                        .iter()
                        .filter_map(|&n| doc.attr(n, name).map(str::to_string))
                        .collect();
                    attr_result = Some(vals);
                    continue;
                }
                NodeTest::AnyAttr => {
                    let vals = current
                        .iter()
                        .flat_map(|&n| doc.attributes(n).map(|(_, v)| v.to_string()))
                        .collect();
                    attr_result = Some(vals);
                    continue;
                }
                _ => {}
            }

            let matched: Vec<NodeId> = candidates
                .into_iter()
                .filter(|&n| match (&step.test, doc.value(n)) {
                    (NodeTest::Name(want), NodeValue::Element(name)) => {
                        name.local == *want || qname_matches(name, want)
                    }
                    (NodeTest::AnyElement, NodeValue::Element(_)) => true,
                    (NodeTest::Text, NodeValue::Text(_) | NodeValue::CData(_)) => true,
                    _ => false,
                })
                .collect();

            let filtered = apply_predicates(doc, matched, &step.predicates);
            current = filtered;
        }

        match attr_result {
            Some(vals) => XPathResult::Strings(vals),
            None => XPathResult::Nodes(current.into_iter().collect()),
        }
    }
}

/// Split off the first step of `rest` (respecting brackets). Returns the
/// step source, the remainder after the separator, and whether the
/// separator was `//`.
fn split_step(rest: &str) -> XmlResult<(&str, Option<&str>, bool)> {
    let bytes = rest.as_bytes();
    let mut depth = 0usize;
    let mut in_quote: Option<u8> = None;
    for (i, &b) in bytes.iter().enumerate() {
        match (in_quote, b) {
            (Some(q), _) if b == q => in_quote = None,
            (Some(_), _) => {}
            (None, b'\'' | b'"') => in_quote = Some(b),
            (None, b'[') => depth += 1,
            (None, b']') => depth = depth.checked_sub(1).ok_or_else(|| syntax("unbalanced ']'"))?,
            (None, b'/') if depth == 0 => {
                let step = &rest[..i];
                if step.is_empty() {
                    return Err(syntax("empty step"));
                }
                let after = &rest[i + 1..];
                if let Some(r) = after.strip_prefix('/') {
                    return Ok((step, Some(r), true));
                }
                return Ok((step, Some(after), false));
            }
            _ => {}
        }
    }
    if depth != 0 || in_quote.is_some() {
        return Err(syntax("unbalanced predicate"));
    }
    Ok((rest, None, false))
}

fn parse_step(src: &str) -> XmlResult<Step> {
    let (head, preds_src) = match src.find('[') {
        Some(i) => (&src[..i], Some(&src[i..])),
        None => (src, None),
    };
    let head = head.trim();
    let test = match head {
        "." => NodeTest::SelfNode,
        ".." => NodeTest::Parent,
        "*" => NodeTest::AnyElement,
        "text()" => NodeTest::Text,
        "@*" => NodeTest::AnyAttr,
        _ if head.starts_with('@') => NodeTest::Attr(head[1..].to_string()),
        _ if head.is_empty() => return Err(syntax("empty step")),
        _ => NodeTest::Name(head.to_string()),
    };
    let mut predicates = Vec::new();
    if let Some(mut p) = preds_src {
        while !p.is_empty() {
            if !p.starts_with('[') {
                return Err(syntax(format!("expected '[' in predicates, got {p:?}")));
            }
            let end = find_matching_bracket(p)?;
            predicates.push(parse_predicate(&p[1..end])?);
            p = &p[end + 1..];
        }
    }
    Ok(Step { axis: Axis::Child, test, predicates })
}

fn find_matching_bracket(s: &str) -> XmlResult<usize> {
    let mut depth = 0usize;
    let mut in_quote: Option<u8> = None;
    for (i, &b) in s.as_bytes().iter().enumerate() {
        match (in_quote, b) {
            (Some(q), _) if b == q => in_quote = None,
            (Some(_), _) => {}
            (None, b'\'' | b'"') => in_quote = Some(b),
            (None, b'[') => depth += 1,
            (None, b']') => {
                depth -= 1;
                if depth == 0 {
                    return Ok(i);
                }
            }
            _ => {}
        }
    }
    Err(syntax("unterminated predicate"))
}

fn parse_predicate(src: &str) -> XmlResult<Predicate> {
    let src = src.trim();
    if src == "last()" {
        return Ok(Predicate::Last);
    }
    if let Ok(n) = src.parse::<usize>() {
        if n == 0 {
            return Err(syntax("positions are 1-based"));
        }
        return Ok(Predicate::Position(n));
    }
    if let Some((lhs, rhs)) = split_equality(src) {
        let value = parse_literal(rhs)?;
        let lhs = lhs.trim();
        if let Some(attr) = lhs.strip_prefix('@') {
            return Ok(Predicate::AttrEquals(attr.to_string(), value));
        }
        if lhs == "text()" {
            return Ok(Predicate::TextEquals(value));
        }
        return Ok(Predicate::ChildEquals(lhs.to_string(), value));
    }
    if let Some(attr) = src.strip_prefix('@') {
        return Ok(Predicate::HasAttr(attr.to_string()));
    }
    if !src.is_empty() {
        return Ok(Predicate::HasChild(src.to_string()));
    }
    Err(syntax("empty predicate"))
}

fn split_equality(src: &str) -> Option<(&str, &str)> {
    let mut in_quote: Option<u8> = None;
    for (i, &b) in src.as_bytes().iter().enumerate() {
        match (in_quote, b) {
            (Some(q), _) if b == q => in_quote = None,
            (Some(_), _) => {}
            (None, b'\'' | b'"') => in_quote = Some(b),
            (None, b'=') => return Some((&src[..i], &src[i + 1..])),
            _ => {}
        }
    }
    None
}

fn parse_literal(src: &str) -> XmlResult<String> {
    let src = src.trim();
    let bytes = src.as_bytes();
    if bytes.len() >= 2
        && (bytes[0] == b'\'' || bytes[0] == b'"')
        && bytes[bytes.len() - 1] == bytes[0]
    {
        Ok(src[1..src.len() - 1].to_string())
    } else {
        Err(syntax(format!("expected quoted literal, got {src:?}")))
    }
}

fn apply_predicates(doc: &Document, nodes: Vec<NodeId>, preds: &[Predicate]) -> Vec<NodeId> {
    let mut current = nodes;
    for pred in preds {
        let len = current.len();
        current = current
            .into_iter()
            .enumerate()
            .filter(|&(i, n)| match pred {
                Predicate::Position(p) => i + 1 == *p,
                Predicate::Last => i + 1 == len,
                Predicate::HasAttr(a) => doc.attr(n, a).is_some(),
                Predicate::AttrEquals(a, v) => doc.attr(n, a) == Some(v.as_str()),
                Predicate::HasChild(c) => doc.find_child(n, c).is_some(),
                Predicate::ChildEquals(c, v) => doc.child_text(n, c).as_deref() == Some(v),
                Predicate::TextEquals(v) => doc.text(n) == *v,
            })
            .map(|(_, n)| n)
            .collect();
    }
    current
}

/// Parse and evaluate in one call; returns the node set (attribute
/// selections yield an empty node set — use [`eval_strings`] for those).
pub fn eval(expr: &str, doc: &Document) -> XmlResult<NodeSet> {
    Ok(XPath::parse(expr)?.eval(doc).nodes())
}

/// Parse and evaluate, returning strings: attribute values for `@` steps,
/// node text otherwise.
pub fn eval_strings(expr: &str, doc: &Document) -> XmlResult<Vec<String>> {
    Ok(XPath::parse(expr)?.eval(doc).strings(doc))
}

/// Evaluate relative to a context node.
pub fn eval_at(expr: &str, doc: &Document, context: NodeId) -> XmlResult<NodeSet> {
    Ok(XPath::parse(expr)?.eval_from(doc, context, false).nodes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse_str(
            r#"<catalog>
                 <service id="s1" kind="rest"><name>echo</name><cost>0</cost></service>
                 <service id="s2" kind="soap"><name>cipher</name><cost>5</cost></service>
                 <service id="s3" kind="rest"><name>cart</name><cost>5</cost></service>
                 <meta><name>asu</name></meta>
               </catalog>"#,
        )
        .unwrap()
    }

    #[test]
    fn absolute_child_path() {
        let d = doc();
        let r = eval("/catalog/service/name", &d).unwrap();
        assert_eq!(r.texts(&d), vec!["echo", "cipher", "cart"]);
    }

    #[test]
    fn descendant_search() {
        let d = doc();
        let r = eval("//name", &d).unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn descendant_between_steps() {
        let d = doc();
        let r = eval("/catalog//name", &d).unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn wildcard_step() {
        let d = doc();
        let r = eval("/catalog/*", &d).unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn position_predicates() {
        let d = doc();
        assert_eq!(
            eval("/catalog/service[2]/name", &d).unwrap().first_text(&d).as_deref(),
            Some("cipher")
        );
        assert_eq!(
            eval("/catalog/service[last()]/name", &d).unwrap().first_text(&d).as_deref(),
            Some("cart")
        );
    }

    #[test]
    fn attribute_predicates() {
        let d = doc();
        let r = eval("/catalog/service[@kind='rest']", &d).unwrap();
        assert_eq!(r.len(), 2);
        let r = eval("/catalog/service[@kind]", &d).unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn child_value_predicate() {
        let d = doc();
        let r = eval("/catalog/service[cost='5']/name", &d).unwrap();
        assert_eq!(r.texts(&d), vec!["cipher", "cart"]);
    }

    #[test]
    fn has_child_predicate() {
        let d = doc();
        assert_eq!(eval("/catalog/*[name]", &d).unwrap().len(), 4);
        assert_eq!(eval("/catalog/*[cost]", &d).unwrap().len(), 3);
    }

    #[test]
    fn attribute_selection_returns_strings() {
        let d = doc();
        let vals = eval_strings("/catalog/service/@id", &d).unwrap();
        assert_eq!(vals, vec!["s1", "s2", "s3"]);
    }

    #[test]
    fn any_attribute_selection() {
        let d = doc();
        let vals = eval_strings("/catalog/service[1]/@*", &d).unwrap();
        assert_eq!(vals, vec!["s1", "rest"]);
    }

    #[test]
    fn text_node_test() {
        let d = doc();
        let r = eval("/catalog/service[1]/name/text()", &d).unwrap();
        assert_eq!(r.first_text(&d).as_deref(), Some("echo"));
    }

    #[test]
    fn relative_evaluation() {
        let d = doc();
        let svc = eval("/catalog/service[2]", &d).unwrap().first().unwrap();
        let r = eval_at("name", &d, svc).unwrap();
        assert_eq!(r.first_text(&d).as_deref(), Some("cipher"));
        let up = eval_at("..", &d, svc).unwrap();
        assert_eq!(up.first(), Some(d.root()));
    }

    #[test]
    fn root_only_path() {
        let d = doc();
        let r = eval("/catalog", &d).unwrap();
        assert_eq!(r.first(), Some(d.root()));
        assert!(eval("/nomatch", &d).unwrap().is_empty());
    }

    #[test]
    fn predicate_with_slash_inside_literal() {
        let d = Document::parse_str(r#"<r><s url="http://a/b"/><s url="x"/></r>"#).unwrap();
        let r = eval("/r/s[@url='http://a/b']", &d).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn chained_predicates() {
        let d = doc();
        let r = eval("/catalog/service[@kind='rest'][2]/name", &d).unwrap();
        assert_eq!(r.first_text(&d).as_deref(), Some("cart"));
    }

    #[test]
    fn syntax_errors() {
        assert!(XPath::parse("").is_err());
        assert!(XPath::parse("/a[").is_err());
        assert!(XPath::parse("/a[0]").is_err());
        assert!(XPath::parse("/a[@x=unquoted]").is_err());
        assert!(XPath::parse("/@x/b").is_err());
        assert!(XPath::parse("a//").is_err());
    }

    #[test]
    fn text_equals_predicate() {
        let d = doc();
        let r = eval("//name[text()='cart']", &d).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn nodeset_dedups() {
        let d = doc();
        // `//service//name` and overlapping descendant scans must not
        // duplicate nodes.
        let r = eval("//service/name", &d).unwrap();
        assert_eq!(r.len(), 3);
    }
}
