//! The Figure 4 account application, end to end.
//!
//! Paper flow (client → provider): the user **subscribes** with name,
//! SSN, address, and date of birth; the provider **checks existence**,
//! calls the **credit score web service**, and on approval **issues a
//! user ID** stored in **`account.xml`**; the user then **creates a
//! password** (strength and match checks) and can **log in** to reach
//! the system. Every box in the figure is a code path here.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use soc_http::mem::Transport;
use soc_http::{Handler, Request, Response, Status};
use soc_json::Value;
use soc_rest::router::Router;
use soc_services::access::{check_password_strength, hash_password};
use soc_webapp_templates::{render, vars};
use soc_xml::Document;

use crate::session::SessionStore;
use crate::templates as soc_webapp_templates;

/// Minimum credit score the provider accepts (the "Approval?" diamond).
pub const MIN_SCORE: u32 = 600;

/// One account row of `account.xml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Account {
    /// Issued user id (e.g. `U1001`).
    pub user_id: String,
    /// Applicant name.
    pub name: String,
    /// Applicant SSN.
    pub ssn: String,
    /// Mailing address.
    pub address: String,
    /// Date of birth (YYYY-MM-DD).
    pub dob: String,
    /// Credit score at approval time.
    pub score: u32,
    /// Salted password hash; empty until the password step completes.
    pub password_hash: String,
    /// Salt for the hash.
    pub salt: String,
}

/// The provider-side account store, persisted as an `account.xml`
/// document exactly as Figure 4 shows.
#[derive(Default)]
pub struct AccountStore {
    accounts: RwLock<Vec<Account>>,
    next_id: AtomicU64,
}

impl AccountStore {
    /// Empty store; user ids start at `U1001`.
    pub fn new() -> Self {
        AccountStore { accounts: RwLock::new(Vec::new()), next_id: AtomicU64::new(1001) }
    }

    /// Does an account with this SSN exist? (The "Check existence" box.)
    pub fn exists_ssn(&self, ssn: &str) -> bool {
        let normalized: String = ssn.chars().filter(|c| c.is_ascii_digit()).collect();
        self.accounts
            .read()
            .iter()
            .any(|a| a.ssn.chars().filter(|c| c.is_ascii_digit()).collect::<String>() == normalized)
    }

    /// Create an account, issuing a fresh user id.
    pub fn create(&self, name: &str, ssn: &str, address: &str, dob: &str, score: u32) -> String {
        let user_id = format!("U{}", self.next_id.fetch_add(1, Ordering::Relaxed));
        self.accounts.write().push(Account {
            user_id: user_id.clone(),
            name: name.to_string(),
            ssn: ssn.to_string(),
            address: address.to_string(),
            dob: dob.to_string(),
            score,
            password_hash: String::new(),
            salt: String::new(),
        });
        user_id
    }

    /// Fetch by user id.
    pub fn get(&self, user_id: &str) -> Option<Account> {
        self.accounts.read().iter().find(|a| a.user_id == user_id).cloned()
    }

    /// Set the password (the "addPwd" box).
    pub fn set_password(&self, user_id: &str, password: &str) -> bool {
        let mut accounts = self.accounts.write();
        let Some(a) = accounts.iter_mut().find(|a| a.user_id == user_id) else {
            return false;
        };
        a.salt = format!("salt-{user_id}");
        a.password_hash = hash_password(password, &a.salt, 64);
        true
    }

    /// Verify credentials.
    pub fn verify(&self, user_id: &str, password: &str) -> bool {
        let accounts = self.accounts.read();
        let Some(a) = accounts.iter().find(|a| a.user_id == user_id) else {
            return false;
        };
        !a.password_hash.is_empty()
            && soc_services::access::constant_time_eq(
                &hash_password(password, &a.salt, 64),
                &a.password_hash,
            )
    }

    /// Number of accounts.
    pub fn len(&self) -> usize {
        self.accounts.read().len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialize as the `account.xml` document.
    pub fn to_account_xml(&self) -> String {
        let mut doc = Document::new("accounts");
        let root = doc.root();
        for a in self.accounts.read().iter() {
            let el = doc.add_element(root, "account");
            doc.set_attr(el, "userId", a.user_id.clone());
            doc.add_text_element(el, "name", a.name.clone());
            doc.add_text_element(el, "ssn", a.ssn.clone());
            doc.add_text_element(el, "address", a.address.clone());
            doc.add_text_element(el, "dob", a.dob.clone());
            doc.add_text_element(el, "score", a.score.to_string());
            doc.add_text_element(el, "passwordHash", a.password_hash.clone());
            doc.add_text_element(el, "salt", a.salt.clone());
        }
        doc.to_pretty_xml()
    }

    /// Load from `account.xml`.
    pub fn from_account_xml(xml: &str) -> Result<Self, String> {
        let doc = Document::parse_str(xml).map_err(|e| e.to_string())?;
        let root = doc.root();
        if doc.name(root).map(|q| q.local.as_str()) != Some("accounts") {
            return Err("not an accounts document".into());
        }
        let store = AccountStore::new();
        let mut max_id = 1000u64;
        {
            let mut accounts = store.accounts.write();
            for el in doc.find_children(root, "account") {
                let user_id = doc.attr(el, "userId").ok_or("account missing userId")?.to_string();
                if let Some(n) = user_id.strip_prefix('U').and_then(|n| n.parse::<u64>().ok()) {
                    max_id = max_id.max(n);
                }
                let text = |name: &str| doc.child_text(el, name).unwrap_or_default();
                accounts.push(Account {
                    user_id,
                    name: text("name"),
                    ssn: text("ssn"),
                    address: text("address"),
                    dob: text("dob"),
                    score: text("score").parse().unwrap_or(0),
                    password_hash: text("passwordHash"),
                    salt: text("salt"),
                });
            }
        }
        store.next_id.store(max_id + 1, Ordering::Relaxed);
        Ok(store)
    }
}

/// The provider application: web UI + the backing store + the remote
/// credit-score dependency.
pub struct AccountApp {
    router: Router,
    store: Arc<AccountStore>,
}

const PAGE: &str =
    r#"<html><body>{{#if error}}<p class="error">{{error}}</p>{{/if}}{{{content}}}</body></html>"#;

fn page(content: &str, error: &str) -> Response {
    Response::html(&render(PAGE, &vars(&[("content", content), ("error", error)])))
}

impl AccountApp {
    /// Build the app. `credit_url` is the credit-score REST endpoint
    /// (e.g. `mem://services.asu/credit/score`).
    pub fn new(transport: Arc<dyn Transport>, credit_url: &str) -> Self {
        let store = Arc::new(AccountStore::new());
        let sessions = Arc::new(SessionStore::new(1_000, 0x50C_4EB));
        let clock = Arc::new(AtomicU64::new(0));
        let mut router = Router::new();
        let credit_url = credit_url.to_string();

        // Subscription form (client pane of Figure 4).
        router.get("/subscribe", |_req, _p| {
            page(
                r#"<form method="post" action="/subscribe">
                   <input name="name"/><input name="ssn"/>
                   <input name="address"/><input name="dob"/>
                   <button>Subscribe</button></form>"#,
                "",
            )
        });

        // Subscription handling: existence check → credit service →
        // approval → user ID.
        {
            let (store, transport, credit_url) = (store.clone(), transport.clone(), credit_url);
            router.post("/subscribe", move |req, _p| {
                let field = |k: &str| req.form(k).unwrap_or_default();
                let (name, ssn, address, dob) =
                    (field("name"), field("ssn"), field("address"), field("dob"));
                if name.trim().is_empty() || ssn.trim().is_empty() {
                    return page("", "name and SSN are required");
                }
                if store.exists_ssn(&ssn) {
                    return page("", "an account for this SSN already exists");
                }
                // Call the credit-score web service (the remote box of
                // Figure 4).
                let url = format!("{credit_url}?ssn={}", soc_http::url::percent_encode(&ssn));
                let score = match transport.send(Request::get(url)) {
                    Ok(resp) if resp.status.is_success() => {
                        resp.text_body()
                            .ok()
                            .and_then(|t| Value::parse(t).ok())
                            .and_then(|v| v.get("score").and_then(Value::as_i64))
                            .unwrap_or(0) as u32
                    }
                    Ok(resp) if resp.status == Status::UNPROCESSABLE => {
                        return page("", "SSN must contain nine digits")
                    }
                    _ => {
                        return Response::error(
                            Status::SERVICE_UNAVAILABLE,
                            "credit score service is unavailable; try again later",
                        )
                    }
                };
                if score < MIN_SCORE {
                    // Figure 4's "You do not qualify" box.
                    return page("", "You do not qualify");
                }
                let user_id = store.create(&name, &ssn, &address, &dob, score);
                page(
                    &format!(
                        r#"<p>Your user ID is <b>{user_id}</b>.</p>
                           <a href="/password?user={user_id}">Create Password</a>"#
                    ),
                    "",
                )
            });
        }

        // Password creation (strength + match, then addPwd).
        {
            let store = store.clone();
            router.post("/password", move |req, _p| {
                let user = req.form("user").unwrap_or_default();
                let pw = req.form("password").unwrap_or_default();
                let retype = req.form("retype").unwrap_or_default();
                if store.get(&user).is_none() {
                    return page("", "unknown user ID");
                }
                if pw != retype {
                    return page("", "passwords do not match"); // Match?
                }
                if let Err(e) = check_password_strength(&pw) {
                    return page("", &e.to_string()); // Strong?
                }
                store.set_password(&user, &pw);
                page(r#"<p>Password created.</p><a href="/login">Login</a>"#, "")
            });
        }

        // Login → session → home.
        {
            let (store, sessions, clock) = (store.clone(), sessions.clone(), clock.clone());
            router.post("/login", move |req, _p| {
                let now = clock.fetch_add(1, Ordering::Relaxed);
                let user = req.form("user").unwrap_or_default();
                let pw = req.form("password").unwrap_or_default();
                if !store.verify(&user, &pw) {
                    let mut resp = page("", "invalid user ID or password");
                    resp.status = Status::UNAUTHORIZED;
                    return resp;
                }
                let sid = sessions.create(now);
                sessions.set(&sid, "user", user.clone(), now);
                SessionStore::attach(Response::redirect("/home"), &sid)
            });
        }
        {
            let (store, sessions, clock) = (store.clone(), sessions.clone(), clock.clone());
            router.get("/home", move |req, _p| {
                let now = clock.fetch_add(1, Ordering::Relaxed);
                let Some(sid) = SessionStore::id_from_request(&req) else {
                    return Response::redirect("/login");
                };
                if !sessions.touch(&sid, now) {
                    return Response::redirect("/login");
                }
                let user = sessions
                    .get(&sid, "user", now)
                    .and_then(|v| v.as_str().map(String::from))
                    .unwrap_or_default();
                let name = store.get(&user).map(|a| a.name).unwrap_or_default();
                page(
                    &render(
                        "<h1>Welcome {{name}} ({{user}})</h1>",
                        &vars(&[("name", &name), ("user", &user)]),
                    ),
                    "",
                )
            });
        }
        {
            router.post("/logout", move |req, _p| {
                if let Some(sid) = SessionStore::id_from_request(&req) {
                    sessions.destroy(&sid);
                }
                SessionStore::detach(Response::redirect("/login"))
            });
        }

        // The provider's data pane: account.xml (read-only diagnostics).
        {
            let store = store.clone();
            router.get("/account.xml", move |_req, _p| Response::xml(&store.to_account_xml()));
        }

        AccountApp { router, store }
    }

    /// The backing store (tests and the persistence example use this).
    pub fn store(&self) -> Arc<AccountStore> {
        self.store.clone()
    }
}

impl Handler for AccountApp {
    fn handle(&self, req: Request) -> Response {
        self.router.handle(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_http::url::encode_form;
    use soc_http::MemNetwork;
    use soc_services::mortgage::CreditScoreService;

    /// A network with the repository services + the account app.
    fn setup() -> MemNetwork {
        let net = MemNetwork::new();
        soc_services::bindings::host_all(&net, 7);
        let app = AccountApp::new(Arc::new(net.clone()), "mem://services.asu/credit/score");
        net.host("bank.example", app);
        net
    }

    fn form_post(net: &MemNetwork, url: &str, fields: &[(&str, &str)]) -> Response {
        let body = encode_form(
            &fields.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect::<Vec<_>>(),
        );
        net.send(
            Request::post(url, Vec::new()).with_text("application/x-www-form-urlencoded", &body),
        )
        .unwrap()
    }

    fn qualifying_ssn() -> String {
        (0..)
            .map(|i| format!("{:09}", i))
            .find(|ssn| CreditScoreService::score(ssn) >= MIN_SCORE)
            .unwrap()
    }

    fn failing_ssn() -> String {
        (0..)
            .map(|i| format!("{:09}", i))
            .find(|ssn| CreditScoreService::score(ssn) < MIN_SCORE)
            .unwrap()
    }

    fn extract_user_id(resp: &Response) -> String {
        let body = resp.text_body().unwrap();
        let start = body.find("<b>U").expect("user id in page") + 3;
        let end = body[start..].find("</b>").unwrap() + start;
        body[start..end].to_string()
    }

    #[test]
    fn full_figure4_flow() {
        let net = setup();
        let ssn = qualifying_ssn();
        // Subscribe.
        let resp = form_post(
            &net,
            "mem://bank.example/subscribe",
            &[("name", "Ann"), ("ssn", &ssn), ("address", "1 Mill Ave"), ("dob", "1990-01-02")],
        );
        let user = extract_user_id(&resp);
        // Create password (strong + matching).
        let resp = form_post(
            &net,
            "mem://bank.example/password",
            &[("user", &user), ("password", "Str0ngPass"), ("retype", "Str0ngPass")],
        );
        assert!(resp.text_body().unwrap().contains("Password created"));
        // Login.
        let resp = form_post(
            &net,
            "mem://bank.example/login",
            &[("user", &user), ("password", "Str0ngPass")],
        );
        assert_eq!(resp.status, Status::FOUND);
        let cookie = resp.headers.get("Set-Cookie").unwrap().split(';').next().unwrap().to_string();
        // Home, with the session cookie.
        let home = net
            .send(Request::get("mem://bank.example/home").with_header("Cookie", &cookie))
            .unwrap();
        assert!(home.text_body().unwrap().contains("Welcome Ann"));
    }

    #[test]
    fn low_credit_score_does_not_qualify() {
        let net = setup();
        let resp = form_post(
            &net,
            "mem://bank.example/subscribe",
            &[("name", "Bob"), ("ssn", &failing_ssn()), ("address", "x"), ("dob", "1990-01-01")],
        );
        assert!(resp.text_body().unwrap().contains("You do not qualify"));
    }

    #[test]
    fn duplicate_ssn_rejected() {
        let net = setup();
        let ssn = qualifying_ssn();
        let fields = [("name", "Ann"), ("ssn", ssn.as_str()), ("address", "a"), ("dob", "d")];
        form_post(&net, "mem://bank.example/subscribe", &fields);
        let resp = form_post(&net, "mem://bank.example/subscribe", &fields);
        assert!(resp.text_body().unwrap().contains("already exists"));
    }

    #[test]
    fn weak_or_mismatched_passwords_rejected() {
        let net = setup();
        let ssn = qualifying_ssn();
        let resp = form_post(
            &net,
            "mem://bank.example/subscribe",
            &[("name", "Ann"), ("ssn", &ssn), ("address", "a"), ("dob", "d")],
        );
        let user = extract_user_id(&resp);
        let weak = form_post(
            &net,
            "mem://bank.example/password",
            &[("user", &user), ("password", "weak"), ("retype", "weak")],
        );
        assert!(weak.text_body().unwrap().contains("weak password"));
        let mismatch = form_post(
            &net,
            "mem://bank.example/password",
            &[("user", &user), ("password", "Str0ngPass"), ("retype", "Str0ngPass2")],
        );
        assert!(mismatch.text_body().unwrap().contains("do not match"));
    }

    #[test]
    fn login_without_password_or_with_wrong_password_fails() {
        let net = setup();
        let ssn = qualifying_ssn();
        let resp = form_post(
            &net,
            "mem://bank.example/subscribe",
            &[("name", "Ann"), ("ssn", &ssn), ("address", "a"), ("dob", "d")],
        );
        let user = extract_user_id(&resp);
        // No password set yet.
        let resp = form_post(
            &net,
            "mem://bank.example/login",
            &[("user", &user), ("password", "Str0ngPass")],
        );
        assert_eq!(resp.status, Status::UNAUTHORIZED);
        // Set one, then present the wrong one.
        form_post(
            &net,
            "mem://bank.example/password",
            &[("user", &user), ("password", "Str0ngPass"), ("retype", "Str0ngPass")],
        );
        let resp = form_post(
            &net,
            "mem://bank.example/login",
            &[("user", &user), ("password", "Wr0ngPass!")],
        );
        assert_eq!(resp.status, Status::UNAUTHORIZED);
    }

    #[test]
    fn home_requires_session() {
        let net = setup();
        let resp = net.send(Request::get("mem://bank.example/home")).unwrap();
        assert_eq!(resp.status, Status::FOUND);
        assert_eq!(resp.headers.get("Location"), Some("/login"));
        // A forged cookie is also rejected.
        let resp = net
            .send(
                Request::get("mem://bank.example/home")
                    .with_header("Cookie", "SOCSESSION=forged123"),
            )
            .unwrap();
        assert_eq!(resp.status, Status::FOUND);
    }

    #[test]
    fn credit_service_outage_is_a_503_not_an_approval() {
        let net = setup();
        net.unhost("services.asu");
        let resp = form_post(
            &net,
            "mem://bank.example/subscribe",
            &[("name", "Ann"), ("ssn", &qualifying_ssn()), ("address", "a"), ("dob", "d")],
        );
        assert_eq!(resp.status, Status::SERVICE_UNAVAILABLE);
    }

    #[test]
    fn invalid_ssn_reported() {
        let net = setup();
        let resp = form_post(
            &net,
            "mem://bank.example/subscribe",
            &[("name", "Ann"), ("ssn", "12-34"), ("address", "a"), ("dob", "d")],
        );
        assert!(resp.text_body().unwrap().contains("nine digits"));
    }

    #[test]
    fn account_xml_round_trip() {
        let net = setup();
        let ssn = qualifying_ssn();
        let resp = form_post(
            &net,
            "mem://bank.example/subscribe",
            &[("name", "Ann"), ("ssn", &ssn), ("address", "1 Mill"), ("dob", "1990-01-02")],
        );
        let user = extract_user_id(&resp);
        form_post(
            &net,
            "mem://bank.example/password",
            &[("user", &user), ("password", "Str0ngPass"), ("retype", "Str0ngPass")],
        );
        let xml = net
            .send(Request::get("mem://bank.example/account.xml"))
            .unwrap()
            .text_body()
            .unwrap()
            .to_string();
        let restored = AccountStore::from_account_xml(&xml).unwrap();
        assert_eq!(restored.len(), 1);
        assert!(restored.verify(&user, "Str0ngPass"));
        // Issued ids continue after the max loaded id.
        let next = restored.create("New", "000", "a", "d", 700);
        assert_ne!(next, user);
    }

    #[test]
    fn logout_kills_session() {
        let net = setup();
        let ssn = qualifying_ssn();
        let resp = form_post(
            &net,
            "mem://bank.example/subscribe",
            &[("name", "Ann"), ("ssn", &ssn), ("address", "a"), ("dob", "d")],
        );
        let user = extract_user_id(&resp);
        form_post(
            &net,
            "mem://bank.example/password",
            &[("user", &user), ("password", "Str0ngPass"), ("retype", "Str0ngPass")],
        );
        let resp = form_post(
            &net,
            "mem://bank.example/login",
            &[("user", &user), ("password", "Str0ngPass")],
        );
        let cookie = resp.headers.get("Set-Cookie").unwrap().split(';').next().unwrap().to_string();
        let logout = net
            .send(
                Request::post("mem://bank.example/logout", Vec::new())
                    .with_header("Cookie", &cookie),
            )
            .unwrap();
        assert_eq!(logout.status, Status::FOUND);
        let home = net
            .send(Request::get("mem://bank.example/home").with_header("Cookie", &cookie))
            .unwrap();
        assert_eq!(home.headers.get("Location"), Some("/login"));
    }
}
