/root/repo/target/release/deps/table4_enrollment-66535cb96673a2b7.d: crates/soc-bench/src/bin/table4_enrollment.rs

/root/repo/target/release/deps/table4_enrollment-66535cb96673a2b7: crates/soc-bench/src/bin/table4_enrollment.rs

crates/soc-bench/src/bin/table4_enrollment.rs:
