//! Offline stand-in for the `parking_lot` crate.
//!
//! The build host has no network access, so the workspace vendors the
//! subset of parking_lot's API it actually uses, implemented over
//! `std::sync`. Semantics match parking_lot where they matter to this
//! codebase: `lock()`/`read()`/`write()` return guards directly (no
//! poisoning — a panic while holding a lock does not poison it for
//! later users), and `Condvar` re-waits on the caller's guard in place.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard moved during Condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard moved during Condvar wait")
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Did the wait end by timeout rather than notification?
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable compatible with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    // std::sync::Condvar panics if used with two different mutexes;
    // parking_lot allows it. We keep std semantics (single mutex), which
    // is how this workspace uses it.
    _used: AtomicBool,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new(), _used: AtomicBool::new(false) }
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self._used.store(true, Ordering::Relaxed);
        let inner = guard.inner.take().expect("guard already waiting");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        self._used.store(true, Ordering::Relaxed);
        let inner = guard.inner.take().expect("guard already waiting");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(std::time::Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cvar.wait(&mut started);
        }
        assert!(*started);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
