/root/repo/target/debug/deps/workflow-5c1171209a890e61.d: crates/soc-bench/benches/workflow.rs Cargo.toml

/root/repo/target/debug/deps/libworkflow-5c1171209a890e61.rmeta: crates/soc-bench/benches/workflow.rs Cargo.toml

crates/soc-bench/benches/workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
