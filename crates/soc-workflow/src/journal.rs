//! Durable saga execution: the coordinator's completion log on the
//! `soc-store` write-ahead log.
//!
//! [`SagaJournal`] records three event kinds per saga — `begin`,
//! `node` (a completed forward step with its outputs), and `end` — so
//! a coordinator that crashes mid-saga reopens to the exact set of
//! sagas that began but never finished, each with the nodes it is
//! *known* to have completed. The restarted coordinator then either
//! **resumes** ([`WorkflowGraph::resume_saga`]: seed the journalled
//! completions, execute only the remaining suffix) or **compensates**
//! ([`WorkflowGraph::compensate_saga`]: run the compensators of every
//! journalled completion in reverse topological order) — the paper's
//! dependability story carried across a process boundary.
//!
//! The journal trails reality by at most one in-flight node: a node's
//! completion is logged *before* its outputs are routed, so a crash
//! between a side effect landing and the `node` event reaching disk
//! loses only that one step — which is why compensators must be safe
//! to run when the effect never landed (the same contract in-run
//! compensation already demands of the failed node).
//!
//! Snapshot = the open-saga table only; `end` events delete their saga,
//! so compaction naturally discards finished history.
//!
//! Where the journal *lives* is a separate choice from what it records:
//! the [`Journal`] trait abstracts the storage, [`SagaJournal`] keeps it
//! on a local WAL (recovery requires the same disk), and
//! [`ReplicatedJournal`] keeps it in the replicated durable store — so a
//! coordinator on a *different machine* can pick up the worklist after a
//! crash, reading through version-gated replicas.

use std::collections::HashMap;
use std::time::Duration;

use soc_json::Value;
use soc_parallel::ThreadPool;
use soc_store::wal::{Lsn, WalConfig};
use soc_store::{Durable, StateMachine, StoreClient, StoreResult};

use crate::activity::Ports;
use crate::graph::{WorkflowError, WorkflowGraph};
use crate::saga::{SagaConfig, SagaHook, WorkflowOutcome};

/// What the journal knows about one unfinished saga.
#[derive(Debug, Clone, Default)]
pub struct SagaRecord {
    /// Completed nodes in completion order: `(node name, outputs)`.
    pub completed: Vec<(String, Ports)>,
}

/// The replayable open-saga table.
#[derive(Default)]
struct JournalMachine {
    open: HashMap<String, SagaRecord>,
}

fn ports_to_value(ports: &Ports) -> Value {
    let mut obj = Value::object();
    let mut names: Vec<&String> = ports.keys().collect();
    names.sort();
    for name in names {
        obj.set(name.as_str(), ports[name].clone());
    }
    obj
}

fn ports_from_value(v: &Value) -> Ports {
    let mut ports = Ports::new();
    if let Value::Object(entries) = v {
        for (k, val) in entries {
            ports.insert(k.clone(), val.clone());
        }
    }
    ports
}

impl JournalMachine {
    fn begin_event(saga: &str) -> Vec<u8> {
        let mut ev = Value::object();
        ev.set("ev", "begin");
        ev.set("saga", saga);
        ev.to_compact().into_bytes()
    }

    fn node_event(saga: &str, node: &str, outputs: &Ports) -> Vec<u8> {
        let mut ev = Value::object();
        ev.set("ev", "node");
        ev.set("saga", saga);
        ev.set("node", node);
        ev.set("outputs", ports_to_value(outputs));
        ev.to_compact().into_bytes()
    }

    fn end_event(saga: &str) -> Vec<u8> {
        let mut ev = Value::object();
        ev.set("ev", "end");
        ev.set("saga", saga);
        ev.to_compact().into_bytes()
    }
}

impl StateMachine for JournalMachine {
    fn apply(&mut self, _lsn: Lsn, command: &[u8]) {
        let Ok(text) = std::str::from_utf8(command) else { return };
        let Ok(ev) = Value::parse(text) else { return };
        let saga = ev.get("saga").and_then(Value::as_str).unwrap_or_default().to_string();
        match ev.get("ev").and_then(Value::as_str) {
            Some("begin") => {
                self.open.entry(saga).or_default();
            }
            Some("node") => {
                let node = ev.get("node").and_then(Value::as_str).unwrap_or_default().to_string();
                let outputs = ev.get("outputs").map(ports_from_value).unwrap_or_default();
                self.open.entry(saga).or_default().completed.push((node, outputs));
            }
            Some("end") => {
                self.open.remove(&saga);
            }
            _ => {}
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut ids: Vec<&String> = self.open.keys().collect();
        ids.sort();
        let sagas: Vec<Value> = ids
            .into_iter()
            .map(|id| {
                let rec = &self.open[id];
                let completed: Vec<Value> = rec
                    .completed
                    .iter()
                    .map(|(node, ports)| {
                        let mut step = Value::object();
                        step.set("node", node.as_str());
                        step.set("outputs", ports_to_value(ports));
                        step
                    })
                    .collect();
                let mut saga = Value::object();
                saga.set("saga", id.as_str());
                saga.set("completed", Value::Array(completed));
                saga
            })
            .collect();
        let mut snap = Value::object();
        snap.set("open", Value::Array(sagas));
        snap.to_compact().into_bytes()
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), String> {
        let text = std::str::from_utf8(snapshot).map_err(|e| e.to_string())?;
        let snap = Value::parse(text).map_err(|e| e.to_string())?;
        self.open.clear();
        for saga in snap.get("open").and_then(Value::as_array).ok_or("missing open sagas")? {
            let id = saga.get("saga").and_then(Value::as_str).ok_or("saga missing id")?.to_string();
            let mut rec = SagaRecord::default();
            for step in saga.get("completed").and_then(Value::as_array).unwrap_or(&[]) {
                let node = step.get("node").and_then(Value::as_str).unwrap_or_default().to_string();
                let outputs = step.get("outputs").map(ports_from_value).unwrap_or_default();
                rec.completed.push((node, outputs));
            }
            self.open.insert(id, rec);
        }
        Ok(())
    }
}

/// The coordinator's completion log. One journal serves many sagas,
/// keyed by caller-chosen ids (e.g. the gateway request id).
pub struct SagaJournal {
    store: Durable<JournalMachine>,
}

impl SagaJournal {
    /// Open (or recover) the journal in `dir`.
    pub fn open(dir: impl AsRef<std::path::Path>, cfg: WalConfig) -> StoreResult<Self> {
        Ok(SagaJournal { store: Durable::open(dir, cfg, JournalMachine::default())? })
    }

    /// Ids of sagas that began but never ended — the restart worklist.
    pub fn incomplete(&self) -> Vec<String> {
        self.store.query(|m| {
            let mut ids: Vec<String> = m.open.keys().cloned().collect();
            ids.sort();
            ids
        })
    }

    /// What a crashed run is known to have completed for `saga`.
    pub fn record(&self, saga: &str) -> Option<SagaRecord> {
        self.store.query(|m| m.open.get(saga).cloned())
    }

    /// Snapshot-then-truncate: only open sagas survive compaction.
    pub fn compact(&self) -> StoreResult<Lsn> {
        self.store.compact()
    }

    fn log(&self, event: &[u8]) {
        self.store.execute(event).expect("saga journal lost durability");
    }
}

/// Where a coordinator journals saga progress. The contract is the
/// same everywhere — `begin` before the first wave, each completion as
/// it lands, `end` when the saga settles — but implementations differ
/// in *who can recover*: a [`SagaJournal`] needs the same disk back; a
/// [`ReplicatedJournal`] lets any machine that can reach the store
/// fleet pick up the worklist.
///
/// Logging failures panic rather than return: a journal write that is
/// silently dropped is precisely the lost-completion bug the journal
/// exists to prevent, and a coordinator that cannot journal must not
/// keep producing side effects.
pub trait Journal {
    /// Record that `saga` has begun.
    fn log_begin(&self, saga: &str);
    /// Record that `node` completed with `outputs`.
    fn log_node(&self, saga: &str, node: &str, outputs: &Ports);
    /// Record that `saga` settled (completed or compensated).
    fn log_end(&self, saga: &str);
    /// What a crashed run is known to have completed for `saga`.
    fn record(&self, saga: &str) -> Option<SagaRecord>;
    /// Ids of sagas that began but never ended — the restart worklist.
    fn incomplete(&self) -> Vec<String>;
}

impl Journal for SagaJournal {
    fn log_begin(&self, saga: &str) {
        self.log(&JournalMachine::begin_event(saga));
    }

    fn log_node(&self, saga: &str, node: &str, outputs: &Ports) {
        self.log(&JournalMachine::node_event(saga, node, outputs));
    }

    fn log_end(&self, saga: &str) {
        self.log(&JournalMachine::end_event(saga));
    }

    fn record(&self, saga: &str) -> Option<SagaRecord> {
        SagaJournal::record(self, saga)
    }

    fn incomplete(&self) -> Vec<String> {
        SagaJournal::incomplete(self)
    }
}

/// A saga journal kept in the replicated durable store instead of a
/// local WAL, so coordinator recovery is not pinned to one machine.
///
/// Layout under a caller-chosen `scope` (one scope per coordinator
/// fleet): the worklist lives at `saga/{scope}` (an array of open saga
/// ids) and each open saga's completions at `saga/{scope}/{id}`.
/// Progress reads during a run go through the client's version-gated
/// replica path (the session floor guarantees read-your-writes);
/// recovery reads ([`Journal::incomplete`], [`Journal::record`]) use
/// primary-first fresh reads, because a restarted coordinator has no
/// session and must see *other* writers' completions.
///
/// Ordering makes crashes safe without transactions: `begin` adds the
/// id to the worklist before any completion is written (a crash in
/// between re-runs the saga from the top, which saga semantics already
/// tolerate), and `end` removes the id from the worklist *before*
/// deleting the record (a crash in between leaves an unlisted orphan
/// record, not a resurrected saga).
///
/// One coordinator owns a scope at a time; the read-modify-write on the
/// worklist is not safe under concurrent writers.
pub struct ReplicatedJournal {
    client: StoreClient,
    scope: String,
}

impl ReplicatedJournal {
    /// A journal for `scope` speaking through `client` (which must have
    /// a shard map installed or a rebalancer feeding it one).
    pub fn new(client: StoreClient, scope: &str) -> ReplicatedJournal {
        ReplicatedJournal { client, scope: scope.to_string() }
    }

    /// The underlying store client (e.g. to refresh its shard map).
    pub fn client(&self) -> &StoreClient {
        &self.client
    }

    fn index_key(&self) -> String {
        format!("saga/{}", self.scope)
    }

    fn record_key(&self, saga: &str) -> String {
        format!("saga/{}/{}", self.scope, saga)
    }

    /// Put with bounded retries: a store fleet mid-failover refuses
    /// writes briefly (fencing, map flips); the journal rides that out
    /// rather than losing a completion. Panics when the fleet stays
    /// unreachable — see the [`Journal`] contract.
    fn put_retry(&self, key: &str, value: &Value) {
        let mut delay = Duration::from_millis(5);
        for attempt in 0..10 {
            match self.client.put(key, value) {
                Ok(_) => return,
                Err(e) if attempt == 9 => panic!("saga journal lost durability: {e}"),
                Err(_) => {
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(Duration::from_millis(200));
                }
            }
        }
    }

    fn record_to_value(completed: &[(String, Ports)]) -> Value {
        let steps: Vec<Value> = completed
            .iter()
            .map(|(node, ports)| {
                let mut step = Value::object();
                step.set("node", node.as_str());
                step.set("outputs", ports_to_value(ports));
                step
            })
            .collect();
        let mut rec = Value::object();
        rec.set("completed", Value::Array(steps));
        rec
    }

    fn record_from_value(v: &Value) -> SagaRecord {
        let mut rec = SagaRecord::default();
        for step in v.get("completed").and_then(Value::as_array).unwrap_or(&[]) {
            let node = step.get("node").and_then(Value::as_str).unwrap_or_default().to_string();
            let outputs = step.get("outputs").map(ports_from_value).unwrap_or_default();
            rec.completed.push((node, outputs));
        }
        rec
    }

    /// Read-modify-write the worklist through this session's own floor.
    fn update_index(&self, f: impl FnOnce(&mut Vec<String>)) {
        let key = self.index_key();
        let mut ids: Vec<String> = match self.client.get(&key) {
            Ok(Some((v, _))) => v
                .as_array()
                .map(|a| {
                    a.iter().filter_map(|x| x.as_str().map(str::to_string)).collect::<Vec<_>>()
                })
                .unwrap_or_default(),
            _ => Vec::new(),
        };
        f(&mut ids);
        let arr = Value::Array(ids.iter().map(|s| Value::from(s.as_str())).collect());
        self.put_retry(&key, &arr);
    }
}

impl Journal for ReplicatedJournal {
    fn log_begin(&self, saga: &str) {
        // Worklist first: a saga with no record resumes from the top,
        // which is safe; a record with no worklist entry is never
        // recovered, which is not.
        let saga = saga.to_string();
        self.update_index(move |ids| {
            if !ids.contains(&saga) {
                ids.push(saga);
            }
        });
    }

    fn log_node(&self, saga: &str, node: &str, outputs: &Ports) {
        let key = self.record_key(saga);
        let mut completed = match self.client.get(&key) {
            Ok(Some((v, _))) => Self::record_from_value(&v).completed,
            _ => Vec::new(),
        };
        completed.push((node.to_string(), outputs.clone()));
        self.put_retry(&key, &Self::record_to_value(&completed));
    }

    fn log_end(&self, saga: &str) {
        let saga_owned = saga.to_string();
        self.update_index(move |ids| ids.retain(|id| *id != saga_owned));
        let _ = self.client.delete(&self.record_key(saga));
    }

    fn record(&self, saga: &str) -> Option<SagaRecord> {
        match self.client.get_fresh(&self.record_key(saga)) {
            Ok(Some((v, _))) => Some(Self::record_from_value(&v)),
            _ => None,
        }
    }

    fn incomplete(&self) -> Vec<String> {
        let mut ids: Vec<String> = match self.client.get_fresh(&self.index_key()) {
            Ok(Some((v, _))) => v
                .as_array()
                .map(|a| {
                    a.iter().filter_map(|x| x.as_str().map(str::to_string)).collect::<Vec<_>>()
                })
                .unwrap_or_default(),
            _ => Vec::new(),
        };
        ids.sort();
        ids
    }
}

impl WorkflowGraph {
    /// [`WorkflowGraph::run_saga`] with its completion log journalled:
    /// `begin` before the first wave, each completed node as it lands,
    /// `end` when the outcome (completed *or* compensated in-run) is
    /// final. A process that dies in between leaves the saga in
    /// [`SagaJournal::incomplete`] for [`WorkflowGraph::resume_saga`]
    /// or [`WorkflowGraph::compensate_saga`] to settle.
    pub fn run_saga_durable<J: Journal + Sync + ?Sized>(
        &self,
        journal: &J,
        saga_id: &str,
        inputs: &HashMap<String, Value>,
        config: &SagaConfig,
    ) -> Result<WorkflowOutcome, WorkflowError> {
        journal.log_begin(saga_id);
        self.finish_durable(journal, saga_id, SagaRecord::default(), None, inputs, config)
    }

    /// Continue an interrupted saga forward: journalled completions are
    /// seeded (their activities do **not** re-run), the remaining
    /// suffix executes under the same saga semantics, and the journal
    /// entry is closed. If the remainder fails, the compensators of
    /// *all* completed nodes — journalled and new — run as usual.
    pub fn resume_saga<J: Journal + Sync + ?Sized>(
        &self,
        journal: &J,
        saga_id: &str,
        inputs: &HashMap<String, Value>,
        config: &SagaConfig,
    ) -> Result<WorkflowOutcome, WorkflowError> {
        let record = journal.record(saga_id).unwrap_or_default();
        self.finish_durable(journal, saga_id, record, None, inputs, config)
    }

    /// Like [`WorkflowGraph::resume_saga`], on a pool.
    pub fn resume_saga_parallel<J: Journal + Sync + ?Sized>(
        &self,
        pool: &ThreadPool,
        journal: &J,
        saga_id: &str,
        inputs: &HashMap<String, Value>,
        config: &SagaConfig,
    ) -> Result<WorkflowOutcome, WorkflowError> {
        let record = journal.record(saga_id).unwrap_or_default();
        self.finish_durable(journal, saga_id, record, Some(pool), inputs, config)
    }

    /// Abort an interrupted saga: run the compensators of every
    /// journalled completion in reverse topological order, then close
    /// the journal entry. Returns `(compensated, errors)` exactly like
    /// the in-run rollback.
    pub fn compensate_saga<J: Journal + Sync + ?Sized>(
        &self,
        journal: &J,
        saga_id: &str,
    ) -> (Vec<String>, Vec<(String, String)>) {
        let record = journal.record(saga_id).unwrap_or_default();
        let completed: Vec<(usize, Ports)> = record
            .completed
            .iter()
            .filter_map(|(name, ports)| {
                self.nodes.iter().position(|n| n.name == *name).map(|i| (i, ports.clone()))
            })
            .collect();
        let mut span = soc_observe::span("workflow.recover", soc_observe::SpanKind::Internal);
        span.set_attr("saga", saga_id);
        span.set_attr("mode", "compensate");
        let _active = span.activate();
        let result = self.compensate(&completed, None, span.context());
        journal.log_end(saga_id);
        result
    }

    fn finish_durable<J: Journal + Sync + ?Sized>(
        &self,
        journal: &J,
        saga_id: &str,
        record: SagaRecord,
        pool: Option<&ThreadPool>,
        inputs: &HashMap<String, Value>,
        config: &SagaConfig,
    ) -> Result<WorkflowOutcome, WorkflowError> {
        let completed: HashMap<String, Ports> = record.completed.into_iter().collect();
        let on_complete = |node: &str, outputs: &Ports| {
            journal.log_node(saga_id, node, outputs);
        };
        let hook = SagaHook { completed, on_complete: &on_complete };
        let outcome = self.run_saga_inner(inputs, pool, config, Some(&hook))?;
        // Compensated outcomes rolled back in-run; either way the saga
        // is settled and leaves the open table.
        journal.log_end(saga_id);
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{Compute, Const};
    use soc_store::TempDir;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    /// a -> b -> c, where every node counts executions and a/b register
    /// compensators into `undone`.
    fn chain(
        runs: &Arc<AtomicU32>,
        undone: &Arc<parking_lot::Mutex<Vec<String>>>,
    ) -> WorkflowGraph {
        let mut g = WorkflowGraph::new();
        let a = g.add("a", Const::new(1));
        let rb = runs.clone();
        let b = g.add(
            "b",
            Compute::new(&["x"], move |p| {
                rb.fetch_add(1, Ordering::SeqCst);
                Ok(Value::from(p["x"].as_i64().unwrap_or(0) + 10))
            }),
        );
        let rc = runs.clone();
        let c = g.add(
            "c",
            Compute::new(&["x"], move |p| {
                rc.fetch_add(1, Ordering::SeqCst);
                Ok(Value::from(p["x"].as_i64().unwrap_or(0) * 2))
            }),
        );
        g.connect(a, "out", b, "x").unwrap();
        g.connect(b, "out", c, "x").unwrap();
        for (id, name) in [(a, "a"), (b, "b")] {
            let undone = undone.clone();
            let name = name.to_string();
            g.set_compensation(
                id,
                Compute::new(&[], move |_| {
                    undone.lock().push(name.clone());
                    Ok(Value::Null)
                }),
            )
            .unwrap();
        }
        g
    }

    #[test]
    fn completed_saga_leaves_no_open_entry() {
        let tmp = TempDir::new("saga-journal");
        let journal = SagaJournal::open(tmp.path(), WalConfig::default()).unwrap();
        let runs = Arc::new(AtomicU32::new(0));
        let undone = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let g = chain(&runs, &undone);
        let out = g
            .run_saga_durable(&journal, "saga-1", &HashMap::new(), &SagaConfig::default())
            .unwrap();
        assert_eq!(out.outputs().unwrap()["c.out"].as_i64(), Some(22));
        assert!(journal.incomplete().is_empty());
    }

    #[test]
    fn crashed_saga_resumes_without_rerunning_completed_nodes() {
        let tmp = TempDir::new("saga-resume");
        // "Crash" after a and b complete: journal begin + two node
        // events by hand, exactly what a killed coordinator leaves.
        {
            let journal = SagaJournal::open(tmp.path(), WalConfig::default()).unwrap();
            journal.log_begin("saga-9");
            let a_out: Ports = [("out".to_string(), Value::from(1))].into();
            journal.log_node("saga-9", "a", &a_out);
            let b_out: Ports = [("out".to_string(), Value::from(11))].into();
            journal.log_node("saga-9", "b", &b_out);
        }
        let journal = SagaJournal::open(tmp.path(), WalConfig::default()).unwrap();
        assert_eq!(journal.incomplete(), vec!["saga-9"]);
        let runs = Arc::new(AtomicU32::new(0));
        let undone = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let g = chain(&runs, &undone);
        let out =
            g.resume_saga(&journal, "saga-9", &HashMap::new(), &SagaConfig::default()).unwrap();
        // Only c ran; a and b were adopted from the journal.
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        assert_eq!(out.outputs().unwrap()["c.out"].as_i64(), Some(22));
        assert!(journal.incomplete().is_empty());
    }

    #[test]
    fn crashed_saga_compensates_journalled_completions_in_reverse() {
        let tmp = TempDir::new("saga-comp");
        {
            let journal = SagaJournal::open(tmp.path(), WalConfig::default()).unwrap();
            journal.log_begin("saga-2");
            let a_out: Ports = [("out".to_string(), Value::from(1))].into();
            journal.log_node("saga-2", "a", &a_out);
            let b_out: Ports = [("out".to_string(), Value::from(11))].into();
            journal.log_node("saga-2", "b", &b_out);
        }
        let journal = SagaJournal::open(tmp.path(), WalConfig::default()).unwrap();
        let runs = Arc::new(AtomicU32::new(0));
        let undone = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let g = chain(&runs, &undone);
        let (compensated, errors) = g.compensate_saga(&journal, "saga-2");
        assert_eq!(compensated, vec!["b".to_string(), "a".to_string()]);
        assert!(errors.is_empty());
        assert_eq!(runs.load(Ordering::SeqCst), 0, "forward path must not re-run");
        assert_eq!(*undone.lock(), vec!["b".to_string(), "a".to_string()]);
        assert!(journal.incomplete().is_empty());
    }

    #[test]
    fn journal_compaction_keeps_only_open_sagas() {
        let tmp = TempDir::new("saga-compact");
        {
            let journal = SagaJournal::open(tmp.path(), WalConfig::default()).unwrap();
            for i in 0..5 {
                journal.log_begin(&format!("done-{i}"));
                journal.log_end(&format!("done-{i}"));
            }
            journal.log_begin("stuck");
            let out: Ports = [("out".to_string(), Value::from(7))].into();
            journal.log_node("stuck", "a", &out);
            journal.compact().unwrap();
        }
        let journal = SagaJournal::open(tmp.path(), WalConfig::default()).unwrap();
        assert_eq!(journal.incomplete(), vec!["stuck"]);
        let rec = journal.record("stuck").unwrap();
        assert_eq!(rec.completed.len(), 1);
        assert_eq!(rec.completed[0].0, "a");
        assert_eq!(rec.completed[0].1["out"].as_i64(), Some(7));
    }

    #[test]
    fn failure_after_resume_compensates_adopted_nodes_too() {
        // Journal says a completed; the remaining node always fails, so
        // the resume must roll back the adopted completion.
        let tmp = TempDir::new("saga-resume-fail");
        let mut g = WorkflowGraph::new();
        let a = g.add("a", Const::new(1));
        let boom = g.add("boom", Compute::new(&["x"], |_| Err("kaput".into())));
        g.connect(a, "out", boom, "x").unwrap();
        let undone = Arc::new(AtomicU32::new(0));
        let u = undone.clone();
        g.set_compensation(
            a,
            Compute::new(&[], move |_| {
                u.fetch_add(1, Ordering::SeqCst);
                Ok(Value::Null)
            }),
        )
        .unwrap();
        let journal = SagaJournal::open(tmp.path(), WalConfig::default()).unwrap();
        journal.log_begin("s");
        let a_out: Ports = [("out".to_string(), Value::from(1))].into();
        journal.log_node("s", "a", &a_out);
        let out = g.resume_saga(&journal, "s", &HashMap::new(), &SagaConfig::default()).unwrap();
        match out {
            WorkflowOutcome::Compensated { failed_at, compensated, .. } => {
                assert_eq!(failed_at, "boom");
                assert_eq!(compensated, vec!["a".to_string()]);
                assert_eq!(undone.load(Ordering::SeqCst), 1);
            }
            other => panic!("expected compensation, got {other:?}"),
        }
        assert!(journal.incomplete().is_empty());
    }

    /// A two-node replicated store fleet plus a client with the map
    /// installed — the journal's backing for the cross-machine tests.
    fn store_fleet() -> (Arc<soc_http::MemNetwork>, Vec<soc_store::StoreNode>, Vec<TempDir>) {
        use soc_http::mem::Transport;
        let net = Arc::new(soc_http::MemNetwork::new());
        let mut nodes = Vec::new();
        let mut dirs = Vec::new();
        let shard_nodes: Vec<soc_store::ShardNode> = (0..2)
            .map(|i| soc_store::ShardNode { id: format!("s{i}"), endpoint: format!("mem://s{i}") })
            .collect();
        let map = Arc::new(soc_store::ShardMap::build(1, shard_nodes, 2));
        for i in 0..2 {
            let dir = TempDir::new(&format!("repl-journal-{i}"));
            let node = soc_store::StoreNode::open(
                soc_store::StoreNodeConfig::new(&format!("s{i}")),
                dir.path(),
                net.clone() as Arc<dyn Transport>,
            )
            .unwrap();
            net.host(&format!("s{i}"), node.router());
            node.set_map(map.clone());
            nodes.push(node);
            dirs.push(dir);
        }
        (net, nodes, dirs)
    }

    fn journal_client(net: &Arc<soc_http::MemNetwork>) -> soc_store::StoreClient {
        use soc_http::mem::Transport;
        let client = soc_store::StoreClient::new(net.clone() as Arc<dyn Transport>);
        client.set_map(net_map(net));
        client
    }

    fn net_map(_net: &Arc<soc_http::MemNetwork>) -> Arc<soc_store::ShardMap> {
        let shard_nodes: Vec<soc_store::ShardNode> = (0..2)
            .map(|i| soc_store::ShardNode { id: format!("s{i}"), endpoint: format!("mem://s{i}") })
            .collect();
        Arc::new(soc_store::ShardMap::build(1, shard_nodes, 2))
    }

    #[test]
    fn replicated_journal_completes_and_clears_worklist() {
        let (net, _nodes, _dirs) = store_fleet();
        let journal = ReplicatedJournal::new(journal_client(&net), "gw");
        let runs = Arc::new(AtomicU32::new(0));
        let undone = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let g = chain(&runs, &undone);
        let out = g
            .run_saga_durable(&journal, "saga-r1", &HashMap::new(), &SagaConfig::default())
            .unwrap();
        assert_eq!(out.outputs().unwrap()["c.out"].as_i64(), Some(22));
        assert!(journal.incomplete().is_empty());
    }

    #[test]
    fn replicated_journal_recovers_on_a_second_coordinator() {
        let (net, _nodes, _dirs) = store_fleet();
        // Coordinator 1 "crashes" after journalling a and b.
        {
            let journal = ReplicatedJournal::new(journal_client(&net), "gw");
            journal.log_begin("saga-x");
            let a_out: Ports = [("out".to_string(), Value::from(1))].into();
            journal.log_node("saga-x", "a", &a_out);
            let b_out: Ports = [("out".to_string(), Value::from(11))].into();
            journal.log_node("saga-x", "b", &b_out);
        }
        // Coordinator 2 is a different process with a *fresh* client (no
        // session floors): the worklist and record must still be visible.
        let journal = ReplicatedJournal::new(journal_client(&net), "gw");
        assert_eq!(Journal::incomplete(&journal), vec!["saga-x"]);
        let runs = Arc::new(AtomicU32::new(0));
        let undone = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let g = chain(&runs, &undone);
        let out =
            g.resume_saga(&journal, "saga-x", &HashMap::new(), &SagaConfig::default()).unwrap();
        assert_eq!(runs.load(Ordering::SeqCst), 1, "only c re-runs");
        assert_eq!(out.outputs().unwrap()["c.out"].as_i64(), Some(22));
        assert!(Journal::incomplete(&journal).is_empty());
    }

    #[test]
    fn replicated_journal_compensates_from_another_machine() {
        let (net, _nodes, _dirs) = store_fleet();
        {
            let journal = ReplicatedJournal::new(journal_client(&net), "gw");
            journal.log_begin("saga-y");
            let a_out: Ports = [("out".to_string(), Value::from(1))].into();
            journal.log_node("saga-y", "a", &a_out);
        }
        let journal = ReplicatedJournal::new(journal_client(&net), "gw");
        let runs = Arc::new(AtomicU32::new(0));
        let undone = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let g = chain(&runs, &undone);
        let (compensated, errors) = g.compensate_saga(&journal, "saga-y");
        assert_eq!(compensated, vec!["a".to_string()]);
        assert!(errors.is_empty());
        assert_eq!(*undone.lock(), vec!["a".to_string()]);
        assert!(Journal::incomplete(&journal).is_empty());
    }
}
