//! # soc-bench — the benchmark and reproduction harness
//!
//! One binary per paper table/figure (see `src/bin/`) and one Criterion
//! bench per performance question (see `benches/`). DESIGN.md carries
//! the full experiment index; EXPERIMENTS.md records paper-vs-measured.
//!
//! This library holds the workload generators the binaries and benches
//! share.

use soc_registry::descriptor::{Binding, ServiceDescriptor};

/// Deterministic pseudo-random u64 stream (SplitMix64) — benches avoid
/// pulling `rand` into hot loops.
pub struct SplitMix(pub u64);

impl SplitMix {
    /// Next value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `n`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

const WORDS: &[&str] = &[
    "service",
    "cloud",
    "robot",
    "maze",
    "cart",
    "cipher",
    "image",
    "captcha",
    "credit",
    "mortgage",
    "queue",
    "cache",
    "password",
    "workflow",
    "soap",
    "rest",
    "xml",
    "registry",
    "broker",
    "client",
    "provider",
    "discovery",
    "composition",
    "integration",
    "distributed",
    "parallel",
    "thread",
    "lock",
    "event",
    "semaphore",
];

/// Generate `n` synthetic service descriptors with word-salad
/// descriptions (the registry/search corpus).
pub fn synthetic_catalog(n: usize, seed: u64) -> Vec<ServiceDescriptor> {
    let mut rng = SplitMix(seed);
    (0..n)
        .map(|i| {
            let words: Vec<&str> =
                (0..8).map(|_| WORDS[rng.below(WORDS.len() as u64) as usize]).collect();
            let kw1 = WORDS[rng.below(WORDS.len() as u64) as usize];
            let kw2 = WORDS[rng.below(WORDS.len() as u64) as usize];
            ServiceDescriptor::new(
                &format!("svc-{i}"),
                &format!("{} {} service {i}", words[0], words[1]),
                &format!("mem://host-{}/{i}", rng.below(16)),
                if i % 3 == 0 { Binding::Soap } else { Binding::Rest },
            )
            .describe(&words.join(" "))
            .category(WORDS[rng.below(8) as usize])
            .keywords(&[kw1, kw2])
        })
        .collect()
}

/// Generate a synthetic XML document with `breadth` children per node
/// and `depth` levels (the XML bench corpus).
pub fn synthetic_xml(breadth: usize, depth: usize) -> String {
    fn emit(out: &mut String, breadth: usize, depth: usize, rng: &mut SplitMix) {
        if depth == 0 {
            out.push_str(&format!("v{}", rng.below(1000)));
            return;
        }
        for i in 0..breadth {
            out.push_str(&format!("<n{} id=\"{}\">", i % 4, rng.below(100)));
            emit(out, breadth, depth - 1, rng);
            out.push_str(&format!("</n{}>", i % 4));
        }
    }
    let mut out = String::from("<root>");
    let mut rng = SplitMix(7);
    emit(&mut out, breadth, depth, &mut rng);
    out.push_str("</root>");
    out
}

/// Standard table-printing helper for the figure binaries.
pub fn print_rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = SplitMix(1);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix(1);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn catalog_has_unique_ids() {
        let c = synthetic_catalog(100, 3);
        let ids: std::collections::HashSet<&str> = c.iter().map(|d| d.id.as_str()).collect();
        assert_eq!(ids.len(), 100);
        assert!(c.iter().any(|d| d.binding == Binding::Soap));
    }

    #[test]
    fn synthetic_xml_parses() {
        let xml = synthetic_xml(3, 3);
        let doc = soc_xml::Document::parse_str(&xml).unwrap();
        assert!(doc.len() > 20);
    }
}
