/root/repo/target/debug/examples/quickstart-6e4b88df6ab25d22.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-6e4b88df6ab25d22.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
