/root/repo/target/debug/deps/soc_gateway-abb88c1edb876abc.d: crates/soc-gateway/src/lib.rs crates/soc-gateway/src/balance.rs crates/soc-gateway/src/breaker.rs crates/soc-gateway/src/limit.rs crates/soc-gateway/src/resolver.rs crates/soc-gateway/src/stats.rs

/root/repo/target/debug/deps/libsoc_gateway-abb88c1edb876abc.rlib: crates/soc-gateway/src/lib.rs crates/soc-gateway/src/balance.rs crates/soc-gateway/src/breaker.rs crates/soc-gateway/src/limit.rs crates/soc-gateway/src/resolver.rs crates/soc-gateway/src/stats.rs

/root/repo/target/debug/deps/libsoc_gateway-abb88c1edb876abc.rmeta: crates/soc-gateway/src/lib.rs crates/soc-gateway/src/balance.rs crates/soc-gateway/src/breaker.rs crates/soc-gateway/src/limit.rs crates/soc-gateway/src/resolver.rs crates/soc-gateway/src/stats.rs

crates/soc-gateway/src/lib.rs:
crates/soc-gateway/src/balance.rs:
crates/soc-gateway/src/breaker.rs:
crates/soc-gateway/src/limit.rs:
crates/soc-gateway/src/resolver.rs:
crates/soc-gateway/src/stats.rs:
