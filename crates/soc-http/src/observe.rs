//! HTTP-side observability plumbing: `traceparent` inject/extract
//! around every transport hop, plus the mountable `/observe/*`
//! endpoints serving the process-wide metrics and trace store.

use soc_json::Value;
use soc_observe::{SpanKind, TraceContext, TraceId, TRACEPARENT};

use crate::server::Handler;
use crate::types::{Headers, Request, Response, Status};

/// Inject the thread's active trace context as a `traceparent` header,
/// unless the caller already set one explicitly. Called by every
/// outbound transport ([`crate::HttpClient`], [`crate::MemNetwork`]).
pub(crate) fn inject_traceparent(headers: &mut Headers) {
    if headers.contains(TRACEPARENT) {
        return;
    }
    if let Some(ctx) = soc_observe::context::current() {
        headers.set(TRACEPARENT, ctx.to_traceparent());
    }
}

/// Run `f` inside a server span: extract the remote parent from
/// `traceparent` (or start a new trace), activate the span so nested
/// work and further outbound hops join the trace, and advertise the
/// trace id back to the caller via `X-Trace-Id` when sampled.
pub(crate) fn serve_with_span(
    req: Request,
    name: &'static str,
    f: impl FnOnce(Request) -> Response,
) -> Response {
    let parent = req.headers.get(TRACEPARENT).and_then(TraceContext::parse_traceparent);
    let mut span = match parent {
        Some(p) => soc_observe::child_span(p, name, SpanKind::Server),
        None => soc_observe::root_span(name, SpanKind::Server),
    };
    if span.is_recording() {
        span.set_attr("http.method", req.method.as_str());
        span.set_attr("http.target", req.target.as_str());
    }
    let ctx = span.context();
    let mut resp = {
        let _active = span.activate();
        f(req)
    };
    if span.is_recording() {
        span.set_attr("http.status", resp.status.0.to_string());
        if resp.status.0 >= 500 {
            span.set_error(format!("status {}", resp.status.0));
        }
    }
    if ctx.sampled {
        resp.headers.set("X-Trace-Id", ctx.trace_id.to_hex());
    }
    resp
}

/// The observability plane as a [`Handler`], mountable on any
/// `HttpServer` (or composed into another handler via
/// [`ObserveEndpoints::try_handle`]):
///
/// - `GET /observe/metrics` — every registered metric, Prometheus text
///   exposition format.
/// - `GET /observe/traces` — retained trace ids with span counts.
/// - `GET /observe/traces/{trace_id}` — one trace as a JSON span tree.
#[derive(Clone, Copy, Debug, Default)]
pub struct ObserveEndpoints;

impl ObserveEndpoints {
    /// The endpoints handler.
    pub fn new() -> ObserveEndpoints {
        ObserveEndpoints
    }

    /// Answer `req` if it targets an `/observe/*` route, `None`
    /// otherwise — lets front-ends (like the gateway) splice the
    /// observability plane next to their own routes.
    pub fn try_handle(req: &Request) -> Option<Response> {
        let path = req.path();
        if path == "/observe/metrics" {
            // Render into one String and move it into the body — the
            // exposition can be large, so the copy `Response::text`
            // would make is worth skipping.
            let mut body = String::new();
            soc_observe::metrics().render_prometheus_into(&mut body);
            let mut resp = Response::new(Status::OK).with_body_bytes(body.into_bytes());
            resp.headers.set("Content-Type", "text/plain; version=0.0.4");
            return Some(resp);
        }
        if path == "/observe/traces" {
            let traces: Vec<Value> = soc_observe::store()
                .trace_ids()
                .into_iter()
                .map(|(id, n)| {
                    let mut t = Value::Object(vec![]);
                    t.set("trace_id", id.to_hex());
                    t.set("spans", n as i64);
                    t
                })
                .collect();
            let mut root = Value::Object(vec![]);
            root.set("traces", Value::Array(traces));
            let mut body = String::new();
            root.write_into(&mut body);
            return Some(Response::json_owned(body));
        }
        let id = path.strip_prefix("/observe/traces/")?;
        Some(match TraceId::from_hex(id).and_then(soc_observe::trace_json) {
            Some(tree) => {
                // Serialize straight into the buffer the response body
                // takes ownership of — no `to_string` + copy round.
                let mut body = String::new();
                tree.write_into(&mut body);
                Response::json_owned(body)
            }
            None => Response::error(Status::NOT_FOUND, "unknown trace"),
        })
    }
}

impl Handler for ObserveEndpoints {
    fn handle(&self, req: Request) -> Response {
        Self::try_handle(&req)
            .unwrap_or_else(|| Response::error(Status::NOT_FOUND, "not an /observe route"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_observe::span;

    #[test]
    fn metrics_endpoint_renders_prometheus_text() {
        soc_observe::metrics().counter("observe_endpoint_test_total", &[]).add(5);
        let resp = ObserveEndpoints.handle(Request::get("/observe/metrics"));
        assert_eq!(resp.status, Status::OK);
        assert!(resp.text_body().unwrap().contains("observe_endpoint_test_total 5"));
    }

    #[test]
    fn trace_endpoint_serves_span_tree_and_404s_unknown() {
        let s = span::root_span("observe.endpoint.test", SpanKind::Internal);
        let id = s.context().trace_id.to_hex();
        drop(s);
        let resp = ObserveEndpoints.handle(Request::get(format!("/observe/traces/{id}")));
        assert_eq!(resp.status, Status::OK);
        let v = Value::parse(resp.text_body().unwrap()).unwrap();
        assert_eq!(v.pointer("/trace_id").and_then(Value::as_str), Some(id.as_str()));
        assert_eq!(
            v.pointer("/spans/0/name").and_then(Value::as_str),
            Some("observe.endpoint.test")
        );

        let miss =
            ObserveEndpoints.handle(Request::get(format!("/observe/traces/{}", "f".repeat(32))));
        assert_eq!(miss.status, Status::NOT_FOUND);
        let not_observe = ObserveEndpoints.handle(Request::get("/other"));
        assert_eq!(not_observe.status, Status::NOT_FOUND);
    }

    #[test]
    fn listing_includes_recent_traces() {
        let s = span::root_span("observe.listing.test", SpanKind::Internal);
        let id = s.context().trace_id.to_hex();
        drop(s);
        let resp = ObserveEndpoints.handle(Request::get("/observe/traces"));
        assert!(resp.text_body().unwrap().contains(&id));
    }
}
