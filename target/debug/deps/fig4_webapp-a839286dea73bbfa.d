/root/repo/target/debug/deps/fig4_webapp-a839286dea73bbfa.d: crates/soc-bench/src/bin/fig4_webapp.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_webapp-a839286dea73bbfa.rmeta: crates/soc-bench/src/bin/fig4_webapp.rs Cargo.toml

crates/soc-bench/src/bin/fig4_webapp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
