//! A typed REST client over any [`Transport`].

use std::sync::Arc;

use soc_http::mem::Transport;
use soc_http::{HttpError, Method, Request, Status};
use soc_json::Value;

/// Errors surfaced to REST consumers.
#[derive(Debug)]
pub enum RestError {
    /// The transport failed (connection refused, unknown host, …).
    Transport(HttpError),
    /// The service answered with an error status.
    Status {
        /// Status code returned.
        status: Status,
        /// Response body text (best effort).
        body: String,
    },
    /// The body was not valid JSON.
    Decode(String),
}

impl std::fmt::Display for RestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestError::Transport(e) => write!(f, "transport: {e}"),
            RestError::Status { status, body } => write!(f, "service error {status}: {body}"),
            RestError::Decode(d) => write!(f, "bad JSON from service: {d}"),
        }
    }
}

impl std::error::Error for RestError {}

impl From<HttpError> for RestError {
    fn from(e: HttpError) -> Self {
        RestError::Transport(e)
    }
}

/// Result alias for REST calls.
pub type RestResult<T> = Result<T, RestError>;

/// A JSON-speaking client bound to a transport.
#[derive(Clone)]
pub struct RestClient {
    transport: Arc<dyn Transport>,
    api_key: Option<String>,
}

impl RestClient {
    /// Wrap a transport.
    pub fn new(transport: Arc<dyn Transport>) -> Self {
        RestClient { transport, api_key: None }
    }

    /// Attach an `X-Api-Key` header to every request.
    pub fn with_api_key(mut self, key: &str) -> Self {
        self.api_key = Some(key.to_string());
        self
    }

    fn prepare(&self, mut req: Request) -> Request {
        if let Some(key) = &self.api_key {
            req.headers.set("X-Api-Key", key);
        }
        if !req.headers.contains("Accept") {
            req.headers.set("Accept", "application/json");
        }
        req
    }

    /// Send a raw request through the transport with client defaults.
    pub fn send_raw(&self, req: Request) -> RestResult<soc_http::Response> {
        Ok(self.transport.send(self.prepare(req))?)
    }

    fn json_call(&self, method: Method, url: &str, body: Option<&Value>) -> RestResult<Value> {
        let mut req = Request::new(method, url);
        if let Some(v) = body {
            req = req.with_text("application/json", &v.to_compact());
        }
        let resp = self.send_raw(req)?;
        if !resp.status.is_success() {
            return Err(RestError::Status {
                status: resp.status,
                body: resp.text_body().unwrap_or("<binary>").to_string(),
            });
        }
        if resp.body.is_empty() {
            return Ok(Value::Null);
        }
        let text =
            resp.text_body().map_err(|_| RestError::Decode("response body is not UTF-8".into()))?;
        Value::parse(text).map_err(|e| RestError::Decode(e.to_string()))
    }

    /// GET expecting JSON.
    pub fn get(&self, url: &str) -> RestResult<Value> {
        self.json_call(Method::Get, url, None)
    }

    /// POST JSON, expecting JSON (or empty).
    pub fn post(&self, url: &str, body: &Value) -> RestResult<Value> {
        self.json_call(Method::Post, url, Some(body))
    }

    /// PUT JSON, expecting JSON (or empty).
    pub fn put(&self, url: &str, body: &Value) -> RestResult<Value> {
        self.json_call(Method::Put, url, Some(body))
    }

    /// DELETE, expecting empty or JSON.
    pub fn delete(&self, url: &str) -> RestResult<Value> {
        self.json_call(Method::Delete, url, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::{mount, MemoryResource};
    use crate::router::Router;
    use soc_http::MemNetwork;
    use soc_json::json;

    fn client() -> RestClient {
        let net = MemNetwork::new();
        let mut router = Router::new();
        mount(&mut router, "items", Arc::new(MemoryResource::new("id")));
        net.host("api", router);
        RestClient::new(Arc::new(net))
    }

    #[test]
    fn crud_through_typed_client() {
        let c = client();
        let created = c.post("mem://api/items", &json!({ "id": "a", "n": 1 })).unwrap();
        assert_eq!(created.get("n").and_then(Value::as_i64), Some(1));
        let got = c.get("mem://api/items/a").unwrap();
        assert_eq!(got.get("id").and_then(Value::as_str), Some("a"));
        let all = c.get("mem://api/items").unwrap();
        assert_eq!(all.as_array().unwrap().len(), 1);
        c.put("mem://api/items/a", &json!({ "id": "a", "n": 2 })).unwrap();
        assert_eq!(c.delete("mem://api/items/a").unwrap(), Value::Null);
    }

    #[test]
    fn error_status_is_typed() {
        let c = client();
        match c.get("mem://api/items/nope") {
            Err(RestError::Status { status, .. }) => assert_eq!(status, Status::NOT_FOUND),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_host_is_transport_error() {
        let c = client();
        assert!(matches!(c.get("mem://ghost/x"), Err(RestError::Transport(_))));
    }

    #[test]
    fn non_json_body_is_decode_error() {
        let net = MemNetwork::new();
        net.host("raw", |_req: Request| soc_http::Response::text("not json"));
        let c = RestClient::new(Arc::new(net));
        assert!(matches!(c.get("mem://raw/"), Err(RestError::Decode(_))));
    }

    #[test]
    fn api_key_is_attached() {
        let net = MemNetwork::new();
        net.host("auth", |req: Request| {
            soc_http::Response::text(req.headers.get("X-Api-Key").unwrap_or("none").to_string())
        });
        let c = RestClient::new(Arc::new(net)).with_api_key("k-123");
        let resp = c.send_raw(Request::get("mem://auth/")).unwrap();
        assert_eq!(resp.text_body().unwrap(), "k-123");
    }
}
