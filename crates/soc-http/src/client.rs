//! A blocking HTTP client over TCP.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

use crate::codec::{self, DEFAULT_BODY_LIMIT};
use crate::types::{HttpError, HttpResult, Request, Response};
use crate::url::Url;

/// A simple one-connection-per-request client. The request's `target`
/// must be an absolute `http://` URL; the client rewrites it to
/// origin-form on the wire.
#[derive(Debug, Clone)]
pub struct HttpClient {
    timeout: Duration,
    body_limit: usize,
}

impl Default for HttpClient {
    fn default() -> Self {
        Self::new()
    }
}

impl HttpClient {
    /// Client with a 30 s timeout.
    pub fn new() -> Self {
        HttpClient { timeout: Duration::from_secs(30), body_limit: DEFAULT_BODY_LIMIT }
    }

    /// Client with an explicit connect/read/write timeout.
    pub fn with_timeout(timeout: Duration) -> Self {
        HttpClient { timeout, body_limit: DEFAULT_BODY_LIMIT }
    }

    /// Cap the accepted response body size.
    pub fn with_body_limit(mut self, limit: usize) -> Self {
        self.body_limit = limit;
        self
    }

    /// Send `req` and wait for the response.
    pub fn send(&self, req: Request) -> HttpResult<Response> {
        let url = Url::parse(&req.target)?;
        if url.scheme != "http" {
            return Err(HttpError::BadUrl(format!(
                "HttpClient only speaks http://, got {}",
                url.scheme
            )));
        }
        let addr = (url.host.as_str(), url.port);
        let stream = TcpStream::connect(addr).map_err(|e| HttpError::Io(e.to_string()))?;
        stream.set_read_timeout(Some(self.timeout)).ok();
        stream.set_write_timeout(Some(self.timeout)).ok();
        stream.set_nodelay(true).ok();

        let mut wire_req = req.clone();
        wire_req.target = url.path_and_query();
        // One-shot connection: tell the server not to wait for more.
        if !wire_req.headers.contains("Connection") {
            wire_req.headers.set("Connection", "close");
        }
        let mut writer = stream.try_clone().map_err(|e| HttpError::Io(e.to_string()))?;
        codec::write_request(&mut writer, &wire_req, Some(&url.authority()))?;
        let mut reader = BufReader::new(stream);
        codec::read_response(&mut reader, self.body_limit)
    }

    /// GET an absolute URL.
    pub fn get(&self, url: &str) -> HttpResult<Response> {
        self.send(Request::get(url))
    }

    /// POST text with a content type.
    pub fn post(&self, url: &str, content_type: &str, body: &str) -> HttpResult<Response> {
        self.send(Request::post(url, Vec::new()).with_text(content_type, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_http_urls() {
        let c = HttpClient::new();
        assert!(matches!(c.get("mem://x/"), Err(HttpError::BadUrl(_))));
        assert!(matches!(c.get("not a url"), Err(HttpError::BadUrl(_))));
    }

    #[test]
    fn connection_refused_is_io_error() {
        let c = HttpClient::with_timeout(Duration::from_millis(300));
        // Port 1 on localhost is essentially never listening.
        assert!(matches!(c.get("http://127.0.0.1:1/"), Err(HttpError::Io(_))));
    }
}
