//! A test-and-test-and-set spin lock with an RAII guard — the course's
//! "resource locking versus unbreakable operations" contrast made
//! concrete. Compare with the lock-free paths in the `sync` benchmark.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// A spin lock protecting a value of type `T`.
///
/// Appropriate only for very short critical sections; the thread pool
/// and services use blocking locks. Provided (and benchmarked) because
/// the contrast is part of the course material.
pub struct SpinLock<T> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the lock provides the exclusion needed to hand out &mut T.
unsafe impl<T: Send> Sync for SpinLock<T> {}
unsafe impl<T: Send> Send for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        SpinLock { locked: AtomicBool::new(false), value: UnsafeCell::new(value) }
    }

    /// Spin until the lock is acquired.
    pub fn lock(&self) -> SpinLockGuard<'_, T> {
        loop {
            // Test-and-test-and-set: spin on a cheap load first so the
            // cache line is not bounced by failed RMWs.
            while self.locked.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return SpinLockGuard { lock: self };
            }
        }
    }

    /// Try to acquire without spinning.
    pub fn try_lock(&self) -> Option<SpinLockGuard<'_, T>> {
        if self.locked.compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed).is_ok() {
            Some(SpinLockGuard { lock: self })
        } else {
            None
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

/// RAII guard; releases on drop.
pub struct SpinLockGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> Deref for SpinLockGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: we hold the lock.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for SpinLockGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: we hold the lock exclusively.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for SpinLockGuard<'_, T> {
    fn drop(&mut self) {
        // Release pairs with the Acquire in `lock`, publishing our writes.
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn guards_exclusive_access() {
        let lock = Arc::new(SpinLock::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = lock.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..10_000 {
                    *lock.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), 40_000);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let lock = SpinLock::new(());
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn into_inner_returns_value() {
        let lock = SpinLock::new(vec![1, 2]);
        assert_eq!(lock.into_inner(), vec![1, 2]);
    }

    #[test]
    fn writes_visible_across_threads() {
        let lock = Arc::new(SpinLock::new(String::new()));
        let l2 = lock.clone();
        thread::spawn(move || l2.lock().push_str("hello")).join().unwrap();
        assert_eq!(&*lock.lock(), "hello");
    }
}
