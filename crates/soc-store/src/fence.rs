//! Lease fencing: the write-side guard that makes promote-on-failover
//! safe.
//!
//! A store node's right to accept writes is a **lease** in the
//! registry, renewed on a heartbeat. Each renewal returns the
//! lease-table version, which doubles as the node's **fencing epoch** —
//! a monotone integer that bumps whenever the live set changes (a node
//! joins, expires, or moves). Two rules close the split-brain window:
//!
//! 1. A primary whose lease lapses (it cannot reach the registry before
//!    the TTL runs out) refuses writes with [`StoreError::Fenced`]. It
//!    may be partitioned from the registry *and* from its replicas; the
//!    only safe behaviour is to stop acknowledging.
//! 2. Replicas remember the newest epoch each source has shipped under
//!    and refuse anything older ([`StoreError::StaleEpoch`]) — so even
//!    a primary that ignores rule 1 cannot be *obeyed* once the rest of
//!    the fleet has moved to a newer map.
//!
//! Fencing is opt-in per node: a [`Fence`] starts disabled (standalone
//! and operator-published-map deployments keep their old semantics) and
//! arms on the first [`Fence::grant`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::{StoreError, StoreResult};

/// One node's view of its own fencing lease.
pub struct Fence {
    /// Armed by the first grant; a disabled fence admits everything.
    enabled: AtomicBool,
    /// Newest epoch granted (monotone; an older grant is ignored).
    epoch: AtomicU64,
    /// When the current lease runs out. `None` = lapsed or never held.
    valid_until: Mutex<Option<Instant>>,
}

impl Default for Fence {
    fn default() -> Self {
        Fence::new()
    }
}

impl Fence {
    /// A disarmed fence: writes are admitted until the first grant.
    pub fn new() -> Fence {
        Fence {
            enabled: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            valid_until: Mutex::new(None),
        }
    }

    /// Whether the fence has ever been granted (and so enforces).
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Record a successful lease renewal at `epoch`, valid for `ttl`.
    /// Epochs ratchet: a grant older than what we already hold extends
    /// nothing (it is a delayed response from before a map change).
    pub fn grant(&self, epoch: u64, ttl: Duration) {
        let current = self.epoch.load(Ordering::Acquire);
        if epoch < current {
            return;
        }
        self.epoch.store(epoch, Ordering::Release);
        *self.valid_until.lock() = Some(Instant::now() + ttl);
        self.enabled.store(true, Ordering::Release);
    }

    /// Ratchet the epoch forward without touching lease validity — used
    /// when a newer shard map is installed: the node learns the fleet
    /// has moved on even if its own renewals are stale.
    pub fn observe_epoch(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::AcqRel);
    }

    /// Drop the lease immediately (tests and deliberate step-down).
    pub fn expire_now(&self) {
        if self.is_enabled() {
            *self.valid_until.lock() = None;
        }
    }

    /// The newest epoch this node has held or observed.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Whether the lease is currently valid (disabled counts as valid:
    /// an unfenced node is standalone by construction).
    pub fn is_valid(&self) -> bool {
        if !self.is_enabled() {
            return true;
        }
        matches!(*self.valid_until.lock(), Some(t) if Instant::now() < t)
    }

    /// Admit or refuse a primary write under the current lease.
    pub fn check_write(&self) -> StoreResult<()> {
        if self.is_valid() {
            Ok(())
        } else {
            Err(StoreError::Fenced { epoch: self.epoch() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_fence_admits_everything() {
        let f = Fence::new();
        assert!(!f.is_enabled());
        assert!(f.is_valid());
        assert!(f.check_write().is_ok());
        assert_eq!(f.epoch(), 0);
    }

    #[test]
    fn grant_arms_and_expiry_fences() {
        let f = Fence::new();
        f.grant(3, Duration::from_secs(60));
        assert!(f.is_enabled());
        assert!(f.check_write().is_ok());
        assert_eq!(f.epoch(), 3);
        f.expire_now();
        match f.check_write() {
            Err(StoreError::Fenced { epoch: 3 }) => {}
            other => panic!("expected Fenced, got {other:?}"),
        }
        // A fresh renewal restores the write right at a newer epoch.
        f.grant(4, Duration::from_secs(60));
        assert!(f.check_write().is_ok());
    }

    #[test]
    fn zero_ttl_grant_is_immediately_lapsed() {
        let f = Fence::new();
        f.grant(1, Duration::from_millis(0));
        assert!(f.check_write().is_err());
    }

    #[test]
    fn epochs_ratchet() {
        let f = Fence::new();
        f.grant(5, Duration::from_secs(60));
        // A delayed grant from an older epoch neither extends nor
        // regresses anything.
        f.grant(2, Duration::from_secs(60));
        assert_eq!(f.epoch(), 5);
        f.observe_epoch(9);
        assert_eq!(f.epoch(), 9);
        f.observe_epoch(7);
        assert_eq!(f.epoch(), 9);
    }
}
