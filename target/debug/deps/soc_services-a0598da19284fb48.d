/root/repo/target/debug/deps/soc_services-a0598da19284fb48.d: crates/soc-services/src/lib.rs crates/soc-services/src/access.rs crates/soc-services/src/bindings.rs crates/soc-services/src/buffer.rs crates/soc-services/src/cache.rs crates/soc-services/src/captcha.rs crates/soc-services/src/cart.rs crates/soc-services/src/crypto.rs crates/soc-services/src/guessing.rs crates/soc-services/src/image.rs crates/soc-services/src/mortgage.rs crates/soc-services/src/password.rs Cargo.toml

/root/repo/target/debug/deps/libsoc_services-a0598da19284fb48.rmeta: crates/soc-services/src/lib.rs crates/soc-services/src/access.rs crates/soc-services/src/bindings.rs crates/soc-services/src/buffer.rs crates/soc-services/src/cache.rs crates/soc-services/src/captcha.rs crates/soc-services/src/cart.rs crates/soc-services/src/crypto.rs crates/soc-services/src/guessing.rs crates/soc-services/src/image.rs crates/soc-services/src/mortgage.rs crates/soc-services/src/password.rs Cargo.toml

crates/soc-services/src/lib.rs:
crates/soc-services/src/access.rs:
crates/soc-services/src/bindings.rs:
crates/soc-services/src/buffer.rs:
crates/soc-services/src/cache.rs:
crates/soc-services/src/captcha.rs:
crates/soc-services/src/cart.rs:
crates/soc-services/src/crypto.rs:
crates/soc-services/src/guessing.rs:
crates/soc-services/src/image.rs:
crates/soc-services/src/mortgage.rs:
crates/soc-services/src/password.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
