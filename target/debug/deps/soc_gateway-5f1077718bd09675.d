/root/repo/target/debug/deps/soc_gateway-5f1077718bd09675.d: crates/soc-gateway/src/lib.rs crates/soc-gateway/src/balance.rs crates/soc-gateway/src/breaker.rs crates/soc-gateway/src/limit.rs crates/soc-gateway/src/resolver.rs crates/soc-gateway/src/stats.rs

/root/repo/target/debug/deps/soc_gateway-5f1077718bd09675: crates/soc-gateway/src/lib.rs crates/soc-gateway/src/balance.rs crates/soc-gateway/src/breaker.rs crates/soc-gateway/src/limit.rs crates/soc-gateway/src/resolver.rs crates/soc-gateway/src/stats.rs

crates/soc-gateway/src/lib.rs:
crates/soc-gateway/src/balance.rs:
crates/soc-gateway/src/breaker.rs:
crates/soc-gateway/src/limit.rs:
crates/soc-gateway/src/resolver.rs:
crates/soc-gateway/src/stats.rs:
