//! C10K load harness for the HTTP transports.
//!
//! Three experiments, all against the same `/ping` handler:
//!
//! 1. **C10K**: establish ~10k keep-alive connections against the
//!    reactor transport (scaled to the process fd limit) and leave them
//!    parked; request latency through the loaded server must stay under
//!    budget — idle connections may cost file descriptors, never
//!    throughput.
//! 2. **Open loop**: a poller-based load generator offers requests on a
//!    fixed arrival schedule across many pipelined keep-alive
//!    connections — arrivals do not wait for completions, so queueing
//!    delay shows up in the latency rows instead of silently throttling
//!    the offered load (the closed-loop-measurement mistake).
//! 3. **Reactor vs threaded**: the same offered load, equal workers,
//!    connections >> workers. The threaded transport pins one worker
//!    per live connection, so most connections starve; the reactor
//!    multiplexes all of them. The harness asserts the reactor's
//!    achieved throughput is strictly higher.
//!
//! Not a Criterion harness: the runs are long, stateful, and assert
//! budgets — `cargo bench --bench http_load` is an executable
//! acceptance check whose results are recorded in `BENCH_http.json`.

#[cfg(target_os = "linux")]
mod load {
    use std::collections::VecDeque;
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::{Duration, Instant};

    use soc_http::poller::{Interest, Poller};
    use soc_http::{HttpServer, Request, Response, ServerConfig, ServerTransport};

    /// Hard ceiling on p99 request latency with the C10K connections
    /// parked, in nanoseconds. Generous for CI noise; the point is
    /// "milliseconds, not seconds".
    const BUDGET_C10K_P99_NS: f64 = 50_000_000.0;

    /// One recorded result row (grepped by scripts/check_bench.sh, so
    /// every `row("...")` must appear in BENCH_http.json).
    pub fn row(name: &str, value: f64, unit: &str) -> f64 {
        println!("{name:<24} {value:>12.1} {unit}");
        value
    }

    fn handler(req: Request) -> Response {
        match req.path() {
            "/ping" => Response::text("pong"),
            _ => Response::error(soc_http::Status(404), "no such route"),
        }
    }

    fn bind(transport: ServerTransport, workers: usize, max_connections: usize) -> HttpServer {
        HttpServer::bind_with(
            "127.0.0.1:0",
            ServerConfig {
                workers,
                max_connections,
                transport,
                keep_alive_timeout: Duration::from_secs(60),
                ..ServerConfig::default()
            },
            handler,
        )
        .expect("bind load server")
    }

    // ------------------------------------------------------------------
    // fd limit (raw FFI; no libc crate in this workspace)
    // ------------------------------------------------------------------

    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }

    const RLIMIT_NOFILE: i32 = 7;

    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }

    /// Raise the soft fd limit to the hard limit and return it.
    fn max_fds() -> u64 {
        let mut lim = Rlimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return 1024;
        }
        if lim.cur < lim.max {
            let raised = Rlimit { cur: lim.max, max: lim.max };
            if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
                return lim.max;
            }
        }
        lim.cur
    }

    // ------------------------------------------------------------------
    // Minimal blocking exchange used while establishing connections
    // ------------------------------------------------------------------

    const PING: &[u8] = b"GET /ping HTTP/1.1\r\nHost: l\r\n\r\n";

    /// Write one ping and read its complete response off `stream`.
    fn blocking_ping(stream: &mut TcpStream, scratch: &mut Vec<u8>) -> bool {
        if stream.write_all(PING).is_err() {
            return false;
        }
        scratch.clear();
        let mut byte = [0u8; 256];
        loop {
            match stream.read(&mut byte) {
                Ok(0) | Err(_) => return false,
                Ok(n) => scratch.extend_from_slice(&byte[..n]),
            }
            if let Some((consumed, _)) = parse_one_response(scratch) {
                return consumed == scratch.len();
            }
        }
    }

    /// If `buf` starts with one complete response, return (bytes
    /// consumed, status). The load path only needs framing, not full
    /// header semantics: find the head, read `Content-Length`, skip.
    fn parse_one_response(buf: &[u8]) -> Option<(usize, u16)> {
        let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
        let head = std::str::from_utf8(&buf[..head_end]).ok()?;
        let status: u16 = head.split_whitespace().nth(1)?.parse().ok()?;
        let mut len = 0usize;
        for line in head.split("\r\n") {
            if let Some((k, v)) = line.split_once(':') {
                if k.eq_ignore_ascii_case("content-length") {
                    len = v.trim().parse().ok()?;
                }
            }
        }
        (buf.len() >= head_end + len).then_some((head_end + len, status))
    }

    // ------------------------------------------------------------------
    // Experiment 1: C10K parked connections
    // ------------------------------------------------------------------

    pub fn c10k() -> (f64, f64) {
        let fd_budget = max_fds();
        // Each connection costs two fds in this single-process harness
        // (client end + server end); keep headroom for the rest of the
        // suite.
        let target = (((fd_budget.saturating_sub(1500)) / 2) as usize).min(10_000);
        let server = bind(ServerTransport::Reactor, 2, target + 64);
        let addr = server.addr();

        let mut parked: Vec<TcpStream> = Vec::with_capacity(target);
        let mut scratch = Vec::with_capacity(256);
        while parked.len() < target {
            let mut stream = match TcpStream::connect(addr) {
                Ok(s) => s,
                Err(_) => break,
            };
            stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
            stream.set_nodelay(true).ok();
            // One round trip proves the reactor accepted and parked it
            // (and paces connects under the listener backlog).
            if !blocking_ping(&mut stream, &mut scratch) {
                break;
            }
            parked.push(stream);
        }
        let conns = parked.len();

        // With every connection idle in the epoll set, fresh requests
        // must still clear in milliseconds.
        let mut lat = Vec::with_capacity(1000);
        let probe = &mut parked[0..50];
        for i in 0..1000 {
            let stream = &mut probe[i % 50];
            let start = Instant::now();
            assert!(blocking_ping(stream, &mut scratch), "probe ping failed under C10K load");
            lat.push(start.elapsed().as_nanos() as u64);
        }
        lat.sort_unstable();
        let p99 = lat[lat.len() * 99 / 100] as f64;

        row("c10k_conns", conns as f64, "connections");
        row("c10k_request_p50_us", lat[lat.len() / 2] as f64 / 1e3, "us");
        let p99_us = row("c10k_request_p99_us", p99 / 1e3, "us");
        assert!(
            p99 <= BUDGET_C10K_P99_NS,
            "p99 request latency {p99:.0} ns with {conns} parked connections exceeds budget \
             {BUDGET_C10K_P99_NS:.0} ns"
        );
        assert!(
            conns as u64 >= (fd_budget.saturating_sub(1500)) / 2 || conns >= 10_000,
            "only established {conns} connections (fd budget {fd_budget})"
        );
        (conns as f64, p99_us)
    }

    // ------------------------------------------------------------------
    // Experiment 2/3: open-loop generator
    // ------------------------------------------------------------------

    struct LoadConn {
        stream: TcpStream,
        /// Bytes written by arrivals but not yet accepted by the kernel.
        out: Vec<u8>,
        /// Unparsed response bytes.
        buf: Vec<u8>,
        /// Send timestamps of in-flight requests, FIFO (HTTP/1.1
        /// pipelining: responses come back in order).
        inflight: VecDeque<Instant>,
        dead: bool,
    }

    pub struct OpenLoopResult {
        pub offered_rps: f64,
        pub achieved_rps: f64,
        pub completed: u64,
        pub errors: u64,
        pub p50_us: f64,
        pub p99_us: f64,
    }

    /// Offer `rate` requests/second for `duration` across `n_conns`
    /// pipelined connections (uniform arrivals, round-robin placement),
    /// then drain. Arrivals never wait for completions: on an
    /// overloaded server the queues grow and the p99 shows it.
    pub fn open_loop(
        addr: SocketAddr,
        n_conns: usize,
        rate: f64,
        duration: Duration,
    ) -> OpenLoopResult {
        let poller = Poller::new().expect("poller");
        let mut conns = Vec::with_capacity(n_conns);
        for i in 0..n_conns {
            let stream = TcpStream::connect(addr).expect("connect load conn");
            stream.set_nodelay(true).ok();
            stream.set_nonblocking(true).expect("nonblocking");
            poller.add(stream.as_raw_fd(), i as u64, Interest::READ).expect("register");
            conns.push(LoadConn {
                stream,
                out: Vec::new(),
                buf: Vec::new(),
                inflight: VecDeque::new(),
                dead: false,
            });
        }

        let interval = Duration::from_secs_f64(1.0 / rate);
        let started = Instant::now();
        let end = started + duration;
        let mut next_arrival = started;
        let mut sent: u64 = 0;
        let mut completed: u64 = 0;
        let mut errors: u64 = 0;
        let mut latencies: Vec<u64> = Vec::new();
        let mut events = Vec::new();
        let mut read_chunk = [0u8; 16 * 1024];

        let drain_deadline = end + Duration::from_secs(2);
        loop {
            let now = Instant::now();
            let sending = now < end;
            if !sending && (conns.iter().all(|c| c.inflight.is_empty()) || now >= drain_deadline) {
                break;
            }

            // Fire every arrival whose time has come (open loop: the
            // schedule, not the server, decides).
            while sending && now >= next_arrival {
                let idx = (sent as usize) % conns.len();
                next_arrival += interval;
                sent += 1;
                let conn = &mut conns[idx];
                if conn.dead {
                    errors += 1;
                    continue;
                }
                conn.inflight.push_back(now);
                conn.out.extend_from_slice(PING);
                flush(&poller, conn, idx as u64, &mut errors);
            }

            let timeout = if sending {
                next_arrival.saturating_duration_since(Instant::now())
            } else {
                drain_deadline.saturating_duration_since(Instant::now())
            };
            poller.wait(&mut events, Some(timeout.max(Duration::from_micros(50)))).ok();
            for ev in events.clone() {
                let idx = ev.token as usize;
                let conn = &mut conns[idx];
                if conn.dead {
                    continue;
                }
                if ev.writable {
                    flush(&poller, conn, ev.token, &mut errors);
                }
                if ev.readable || ev.hangup {
                    loop {
                        match conn.stream.read(&mut read_chunk) {
                            Ok(0) => {
                                die(&poller, conn, &mut errors);
                                break;
                            }
                            Ok(n) => conn.buf.extend_from_slice(&read_chunk[..n]),
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(_) => {
                                die(&poller, conn, &mut errors);
                                break;
                            }
                        }
                    }
                    while let Some((consumed, status)) = parse_one_response(&conn.buf) {
                        conn.buf.drain(..consumed);
                        match conn.inflight.pop_front() {
                            Some(t0) if status == 200 => {
                                completed += 1;
                                latencies.push(t0.elapsed().as_nanos() as u64);
                            }
                            _ => errors += 1,
                        }
                    }
                }
            }
        }

        let elapsed = started.elapsed().as_secs_f64();
        latencies.sort_unstable();
        let pct = |p: usize| {
            if latencies.is_empty() {
                f64::NAN
            } else {
                latencies[(latencies.len() - 1) * p / 100] as f64 / 1e3
            }
        };
        OpenLoopResult {
            offered_rps: rate,
            achieved_rps: completed as f64 / elapsed,
            completed,
            errors,
            p50_us: pct(50),
            p99_us: pct(99),
        }
    }

    fn flush(poller: &Poller, conn: &mut LoadConn, token: u64, errors: &mut u64) {
        while !conn.out.is_empty() {
            match conn.stream.write(&conn.out) {
                Ok(0) => {
                    die(poller, conn, errors);
                    return;
                }
                Ok(n) => {
                    conn.out.drain(..n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    poller
                        .modify(
                            conn.stream.as_raw_fd(),
                            token,
                            Interest { readable: true, writable: true },
                        )
                        .ok();
                    return;
                }
                Err(_) => {
                    die(poller, conn, errors);
                    return;
                }
            }
        }
        poller.modify(conn.stream.as_raw_fd(), token, Interest::READ).ok();
    }

    fn die(poller: &Poller, conn: &mut LoadConn, errors: &mut u64) {
        poller.delete(conn.stream.as_raw_fd()).ok();
        *errors += conn.inflight.len() as u64;
        conn.inflight.clear();
        conn.dead = true;
    }

    // ------------------------------------------------------------------
    // Drivers
    // ------------------------------------------------------------------

    pub fn latency_vs_offered_load() {
        let server = bind(ServerTransport::Reactor, 2, 256);
        for (label, rate) in
            [("open_loop_1k", 1_000.0), ("open_loop_4k", 4_000.0), ("open_loop_12k", 12_000.0)]
        {
            let r = open_loop(server.addr(), 32, rate, Duration::from_millis(800));
            println!(
                "  offered {:>7.0} rps -> achieved {:>7.0} rps, {} completed, {} errors, \
                 p50 {:.0} us, p99 {:.0} us",
                r.offered_rps, r.achieved_rps, r.completed, r.errors, r.p50_us, r.p99_us
            );
            row(label, r.achieved_rps, "rps");
        }
    }

    /// The tentpole comparison: same offered load, equal workers, 32
    /// connections against 2 workers. Returns (reactor, threaded) rps.
    pub fn reactor_vs_threaded() -> (f64, f64) {
        let run = |transport| {
            let server = bind(transport, 2, 256);
            let r = open_loop(server.addr(), 32, 6_000.0, Duration::from_millis(1200));
            println!(
                "  {:?}: achieved {:>7.0} rps, {} completed, {} errors, p99 {:.0} us",
                transport, r.achieved_rps, r.completed, r.errors, r.p99_us
            );
            r.achieved_rps
        };
        let reactor = run(ServerTransport::Reactor);
        let threaded = run(ServerTransport::Threaded);
        row("peak_reactor_rps", reactor, "rps");
        row("peak_threaded_rps", threaded, "rps");
        assert!(
            reactor > threaded,
            "reactor ({reactor:.0} rps) must beat threaded ({threaded:.0} rps) at equal \
             workers once connections outnumber workers"
        );
        (reactor, threaded)
    }
}

#[cfg(target_os = "linux")]
fn main() {
    println!("http transport load harness");
    println!("== C10K: parked keep-alive connections on the reactor ==");
    load::c10k();
    println!("== open loop: latency vs offered load (reactor, 32 conns) ==");
    load::latency_vs_offered_load();
    println!("== reactor vs threaded at equal workers (32 conns, 2 workers) ==");
    load::reactor_vs_threaded();
    println!("all budgets held");
}

#[cfg(not(target_os = "linux"))]
fn main() {
    println!("http_load: reactor transport is Linux-only; nothing to measure");
}
