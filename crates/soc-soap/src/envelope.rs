//! SOAP 1.1 envelope encoding and decoding.

use soc_xml::{xpath, Document, XmlError, XmlWriter};

use crate::SOAP_ENV_NS;

const XML_DECL: &str = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";

/// A SOAP fault (SOAP 1.1 `<soap:Fault>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoapFault {
    /// `faultcode`, conventionally `soap:Client` or `soap:Server`.
    pub code: String,
    /// Human-readable `faultstring`.
    pub message: String,
    /// Optional `detail` text.
    pub detail: Option<String>,
}

impl SoapFault {
    /// A caller-side fault (bad request).
    pub fn client(message: impl Into<String>) -> Self {
        SoapFault { code: "soap:Client".into(), message: message.into(), detail: None }
    }

    /// A service-side fault.
    pub fn server(message: impl Into<String>) -> Self {
        SoapFault { code: "soap:Server".into(), message: message.into(), detail: None }
    }

    /// Builder: attach detail text.
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = Some(detail.into());
        self
    }
}

impl std::fmt::Display for SoapFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// Build a request/response envelope: one body child named `element`
/// (namespaced to `ns`), with `(name, value)` children.
pub fn encode(ns: &str, element: &str, params: &[(String, String)]) -> String {
    let mut out = String::with_capacity(192 + element.len() * 2 + ns.len());
    encode_into(ns, element, params, &mut out);
    out
}

/// Buffer-reuse twin of [`encode`]: appends the envelope (declaration
/// included) to `out`, streaming straight through the XML writer with no
/// intermediate DOM or `String`s. Clear and reuse `out` across calls to
/// amortize the allocation.
pub fn encode_into(ns: &str, element: &str, params: &[(String, String)], out: &mut String) {
    out.push_str(XML_DECL);
    let mut w = XmlWriter::compact_into(out);
    w.start_element("soap:Envelope");
    w.attr("xmlns:soap", SOAP_ENV_NS);
    w.attr("xmlns:m", ns);
    w.start_element("soap:Body");
    w.start_element(format!("m:{element}"));
    for (name, value) in params {
        w.text_element(name.as_str(), value);
    }
    w.end_element();
    w.end_element();
    w.end_element();
    w.finish();
}

/// Build a fault envelope.
pub fn encode_fault(fault: &SoapFault) -> String {
    let mut out = String::with_capacity(192);
    encode_fault_into(fault, &mut out);
    out
}

/// Buffer-reuse twin of [`encode_fault`].
pub fn encode_fault_into(fault: &SoapFault, out: &mut String) {
    out.push_str(XML_DECL);
    let mut w = XmlWriter::compact_into(out);
    w.start_element("soap:Envelope");
    w.attr("xmlns:soap", SOAP_ENV_NS);
    w.start_element("soap:Body");
    w.start_element("soap:Fault");
    w.text_element("faultcode", &fault.code);
    w.text_element("faultstring", &fault.message);
    if let Some(d) = &fault.detail {
        w.text_element("detail", d);
    }
    w.end_element();
    w.end_element();
    w.end_element();
    w.finish();
}

/// A decoded envelope body: the operation element's local name and its
/// parameter children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedBody {
    /// Local name of the single body child.
    pub element: String,
    /// Namespace of the body child (resolved), if any.
    pub namespace: Option<String>,
    /// `(name, text)` of each parameter child.
    pub params: Vec<(String, String)>,
}

/// Outcome of decoding: a normal body or a fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded {
    /// A normal request/response payload.
    Body(DecodedBody),
    /// A `<soap:Fault>`.
    Fault(SoapFault),
}

/// Decode an envelope from XML text. Verifies the envelope structure
/// and the SOAP namespace. Whitespace inside parameter elements is
/// preserved — SOAP string values are whitespace-sensitive.
pub fn decode(xml: &str) -> Result<Decoded, XmlError> {
    let doc = Document::parse_str_keep_whitespace(xml)?;
    let root = doc.root();
    let root_name = doc.name(root).cloned().ok_or(XmlError::ForeignNode)?;
    if root_name.local != "Envelope" || doc.namespace(root) != Some(SOAP_ENV_NS) {
        return Err(XmlError::NotWellFormed {
            pos: Default::default(),
            detail: "not a SOAP 1.1 envelope".into(),
        });
    }
    let body = doc.find_child(root, "Body").ok_or(XmlError::NotWellFormed {
        pos: Default::default(),
        detail: "envelope has no Body".into(),
    })?;
    let Some(child) = doc.child_elements(body).next() else {
        return Err(XmlError::NotWellFormed {
            pos: Default::default(),
            detail: "empty SOAP Body".into(),
        });
    };
    let child_name = doc.name(child).cloned().ok_or(XmlError::ForeignNode)?;

    if child_name.local == "Fault" {
        let code = doc.child_text(child, "faultcode").unwrap_or_default();
        let message = doc.child_text(child, "faultstring").unwrap_or_default();
        let detail = doc.child_text(child, "detail");
        return Ok(Decoded::Fault(SoapFault { code, message, detail }));
    }

    let mut params = Vec::new();
    for p in doc.child_elements(child) {
        if let Some(name) = doc.name(p) {
            params.push((name.local.clone(), doc.text(p)));
        }
    }
    // Sanity: `xpath` agrees there's exactly one operation element.
    debug_assert_eq!(xpath::eval("/Envelope/Body/*", &doc).map(|n| n.len()).unwrap_or(1), 1);
    Ok(Decoded::Body(DecodedBody {
        element: child_name.local.clone(),
        namespace: doc.namespace(child).map(str::to_string),
        params,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let xml = encode("urn:calc", "Add", &[("a".into(), "2".into()), ("b".into(), "40".into())]);
        match decode(&xml).unwrap() {
            Decoded::Body(b) => {
                assert_eq!(b.element, "Add");
                assert_eq!(b.namespace.as_deref(), Some("urn:calc"));
                assert_eq!(
                    b.params,
                    vec![("a".to_string(), "2".to_string()), ("b".to_string(), "40".to_string())]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fault_round_trip() {
        let f = SoapFault::server("database down").with_detail("retry later");
        match decode(&encode_fault(&f)).unwrap() {
            Decoded::Fault(got) => assert_eq!(got, f),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parameter_values_are_escaped() {
        let xml = encode("urn:x", "Echo", &[("msg".into(), "a <b> & 'c'".into())]);
        match decode(&xml).unwrap() {
            Decoded::Body(b) => assert_eq!(b.params[0].1, "a <b> & 'c'"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_non_envelopes() {
        assert!(decode("<NotAnEnvelope/>").is_err());
        assert!(decode("<Envelope xmlns='urn:wrong'><Body/></Envelope>").is_err());
        assert!(decode("not xml at all").is_err());
    }

    #[test]
    fn rejects_missing_or_empty_body() {
        let no_body = r#"<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/"/>"#;
        assert!(decode(no_body).is_err());
        let empty_body = r#"<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/"><soap:Body/></soap:Envelope>"#;
        assert!(decode(empty_body).is_err());
    }

    #[test]
    fn accepts_foreign_prefixes() {
        // A peer that uses a different prefix for the same namespace.
        let xml = r#"<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/">
            <e:Body><op xmlns="urn:z"><x>1</x></op></e:Body></e:Envelope>"#;
        match decode(xml).unwrap() {
            Decoded::Body(b) => {
                assert_eq!(b.element, "op");
                assert_eq!(b.namespace.as_deref(), Some("urn:z"));
            }
            other => panic!("{other:?}"),
        }
    }
}
