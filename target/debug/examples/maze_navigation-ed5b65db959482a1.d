/root/repo/target/debug/examples/maze_navigation-ed5b65db959482a1.d: examples/maze_navigation.rs Cargo.toml

/root/repo/target/debug/examples/libmaze_navigation-ed5b65db959482a1.rmeta: examples/maze_navigation.rs Cargo.toml

examples/maze_navigation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
