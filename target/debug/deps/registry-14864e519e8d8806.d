/root/repo/target/debug/deps/registry-14864e519e8d8806.d: crates/soc-bench/benches/registry.rs Cargo.toml

/root/repo/target/debug/deps/libregistry-14864e519e8d8806.rmeta: crates/soc-bench/benches/registry.rs Cargo.toml

crates/soc-bench/benches/registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
