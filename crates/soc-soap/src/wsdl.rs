//! WSDL 1.1 document generation and parsing.
//!
//! `generate` produces the document a provider serves at `?wsdl`;
//! `parse` recovers a [`Contract`] plus endpoint from such a document —
//! which is exactly what the service broker stores and what a consumer
//! needs to call the service.

use soc_xml::{Document, NodeId, XmlWriter};

use crate::contract::{Contract, Operation, XsdType};
use crate::{SOAP_ENV_NS, WSDL_NS, XSD_NS};

/// Render a WSDL 1.1 document (document/literal convention) for a
/// contract hosted at `endpoint`.
pub fn generate(contract: &Contract, endpoint: &str) -> String {
    let mut doc = Document::new("wsdl:definitions");
    let root = doc.root();
    doc.set_attr(root, "xmlns:wsdl", WSDL_NS);
    doc.set_attr(root, "xmlns:xsd", XSD_NS);
    doc.set_attr(root, "xmlns:soapenv", SOAP_ENV_NS);
    doc.set_attr(root, "xmlns:tns", contract.namespace.clone());
    doc.set_attr(root, "targetNamespace", contract.namespace.clone());
    doc.set_attr(root, "name", contract.name.clone());

    // <types>: one element per message payload.
    let types = doc.add_element(root, "wsdl:types");
    let schema = doc.add_element(types, "xsd:schema");
    doc.set_attr(schema, "targetNamespace", contract.namespace.clone());
    for op in &contract.operations {
        add_message_element(&mut doc, schema, &op.name, &op.inputs);
        add_message_element(&mut doc, schema, &format!("{}Response", op.name), &op.outputs);
    }

    // <message> pairs.
    for op in &contract.operations {
        for (suffix, element) in
            [("Input", op.name.clone()), ("Output", format!("{}Response", op.name))]
        {
            let msg = doc.add_element(root, "wsdl:message");
            doc.set_attr(msg, "name", format!("{}{suffix}", op.name));
            let part = doc.add_element(msg, "wsdl:part");
            doc.set_attr(part, "name", "parameters");
            doc.set_attr(part, "element", format!("tns:{element}"));
        }
    }

    // <portType>.
    let port_type = doc.add_element(root, "wsdl:portType");
    doc.set_attr(port_type, "name", format!("{}PortType", contract.name));
    for op in &contract.operations {
        let o = doc.add_element(port_type, "wsdl:operation");
        doc.set_attr(o, "name", op.name.clone());
        if let Some(text) = &op.doc {
            doc.add_text_element(o, "wsdl:documentation", text.clone());
        }
        let input = doc.add_element(o, "wsdl:input");
        doc.set_attr(input, "message", format!("tns:{}Input", op.name));
        let output = doc.add_element(o, "wsdl:output");
        doc.set_attr(output, "message", format!("tns:{}Output", op.name));
    }

    // <binding> (document/literal over SOAP-HTTP).
    let binding = doc.add_element(root, "wsdl:binding");
    doc.set_attr(binding, "name", format!("{}Binding", contract.name));
    doc.set_attr(binding, "type", format!("tns:{}PortType", contract.name));
    for op in &contract.operations {
        let o = doc.add_element(binding, "wsdl:operation");
        doc.set_attr(o, "name", op.name.clone());
        doc.set_attr(o, "soapAction", format!("{}#{}", contract.namespace, op.name));
    }

    // <service>/<port>.
    let service = doc.add_element(root, "wsdl:service");
    doc.set_attr(service, "name", contract.name.clone());
    let port = doc.add_element(service, "wsdl:port");
    doc.set_attr(port, "name", format!("{}Port", contract.name));
    doc.set_attr(port, "binding", format!("tns:{}Binding", contract.name));
    let address = doc.add_element(port, "soapenv:address");
    doc.set_attr(address, "location", endpoint);

    // Serialize declaration + document into one buffer: no intermediate
    // String from `to_pretty_xml`, no second copy.
    let mut out = String::with_capacity(2048);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    let mut w = XmlWriter::pretty_to(&mut out);
    w.write_document(&doc);
    w.finish();
    out
}

fn add_message_element(
    doc: &mut Document,
    schema: NodeId,
    element_name: &str,
    params: &[crate::contract::Param],
) {
    let el = doc.add_element(schema, "xsd:element");
    doc.set_attr(el, "name", element_name);
    let ct = doc.add_element(el, "xsd:complexType");
    let seq = doc.add_element(ct, "xsd:sequence");
    for p in params {
        let pe = doc.add_element(seq, "xsd:element");
        doc.set_attr(pe, "name", p.name.clone());
        doc.set_attr(pe, "type", p.ty.xsd_name());
    }
}

/// A contract plus its endpoint, recovered from WSDL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedWsdl {
    /// The recovered contract.
    pub contract: Contract,
    /// The `soapenv:address location` the service is reachable at.
    pub endpoint: String,
}

/// Parse a WSDL document (as produced by [`generate`]).
pub fn parse(xml: &str) -> Result<ParsedWsdl, String> {
    let doc = Document::parse_str(xml).map_err(|e| e.to_string())?;
    let root = doc.root();
    if doc.name(root).map(|q| q.local.as_str()) != Some("definitions") {
        return Err("not a WSDL document (no definitions root)".into());
    }
    let namespace = doc.attr(root, "targetNamespace").ok_or("missing targetNamespace")?.to_string();
    let name = doc.attr(root, "name").unwrap_or("Service").to_string();
    let mut contract = Contract::new(&name, &namespace);

    // Recover parameter types from the schema.
    let mut elements: Vec<(String, Vec<(String, XsdType)>)> = Vec::new();
    if let Some(types) = doc.find_child(root, "types") {
        if let Some(schema) = doc.find_child(types, "schema") {
            for el in doc.find_children(schema, "element") {
                let Some(el_name) = doc.attr(el, "name") else { continue };
                let mut params = Vec::new();
                if let Some(ct) = doc.find_child(el, "complexType") {
                    if let Some(seq) = doc.find_child(ct, "sequence") {
                        for pe in doc.find_children(seq, "element") {
                            let pname = doc.attr(pe, "name").unwrap_or("").to_string();
                            let ty = doc
                                .attr(pe, "type")
                                .and_then(XsdType::parse)
                                .unwrap_or(XsdType::String);
                            params.push((pname, ty));
                        }
                    }
                }
                elements.push((el_name.to_string(), params));
            }
        }
    }
    let lookup = |name: &str| -> Vec<(String, XsdType)> {
        elements.iter().find(|(n, _)| n == name).map(|(_, p)| p.clone()).unwrap_or_default()
    };

    // Operations from the portType.
    let port_type = doc.find_child(root, "portType").ok_or("missing portType")?;
    for o in doc.find_children(port_type, "operation") {
        let Some(op_name) = doc.attr(o, "name") else { continue };
        let mut op = Operation::new(op_name);
        if let Some(d) = doc.child_text(o, "documentation") {
            op.doc = Some(d);
        }
        for (pname, ty) in lookup(op_name) {
            op.inputs.push(crate::contract::Param { name: pname, ty });
        }
        for (pname, ty) in lookup(&format!("{op_name}Response")) {
            op.outputs.push(crate::contract::Param { name: pname, ty });
        }
        contract.operations.push(op);
    }

    // Endpoint from service/port/address.
    let endpoint = doc
        .find_child(root, "service")
        .and_then(|s| doc.find_child(s, "port"))
        .and_then(|p| doc.find_child(p, "address"))
        .and_then(|a| doc.attr(a, "location").map(str::to_string))
        .ok_or("missing service address")?;

    Ok(ParsedWsdl { contract, endpoint })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{Contract, Operation, XsdType};

    fn calc() -> Contract {
        Contract::new("Calc", "urn:soc:calc")
            .operation(
                Operation::new("Add")
                    .input("a", XsdType::Int)
                    .input("b", XsdType::Int)
                    .output("sum", XsdType::Int)
                    .doc("adds integers"),
            )
            .operation(
                Operation::new("Hypot")
                    .input("x", XsdType::Double)
                    .input("y", XsdType::Double)
                    .output("r", XsdType::Double),
            )
    }

    #[test]
    fn generate_parse_round_trip() {
        let wsdl = generate(&calc(), "http://example.com/calc");
        let parsed = parse(&wsdl).unwrap();
        assert_eq!(parsed.endpoint, "http://example.com/calc");
        assert_eq!(parsed.contract, calc());
    }

    #[test]
    fn generated_document_mentions_standard_namespaces() {
        let wsdl = generate(&calc(), "mem://calc/soap");
        assert!(wsdl.contains(crate::WSDL_NS));
        assert!(wsdl.contains(crate::XSD_NS));
        assert!(wsdl.contains("targetNamespace=\"urn:soc:calc\""));
        assert!(wsdl.contains("soapAction=\"urn:soc:calc#Add\""));
    }

    #[test]
    fn parse_rejects_non_wsdl() {
        assert!(parse("<random/>").is_err());
        assert!(parse("garbage").is_err());
    }

    #[test]
    fn parse_requires_address() {
        let wsdl =
            generate(&calc(), "mem://calc/soap").replace("soapenv:address", "soapenv:elsewhere");
        assert!(parse(&wsdl).is_err());
    }

    #[test]
    fn unknown_types_default_to_string() {
        let wsdl = generate(&calc(), "mem://x").replace("xsd:int", "xsd:duration");
        let parsed = parse(&wsdl).unwrap();
        let add = parsed.contract.find("Add").unwrap();
        assert!(add.inputs.iter().all(|p| p.ty == XsdType::String));
    }
}
