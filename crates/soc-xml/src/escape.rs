//! Escaping and entity expansion for text and attribute content.
//!
//! Every entry point is zero-copy on the fast path: a byte scan proves
//! "nothing to rewrite" and the input comes back as [`Cow::Borrowed`];
//! an owned buffer is built only when an escape or entity reference
//! actually changes bytes. The `*_into` variants append straight into a
//! caller-provided buffer so the serializer never materializes an
//! intermediate `String`.

use std::borrow::Cow;

use crate::error::{Position, XmlError, XmlResult};
use crate::scan;

/// Bytes that force a rewrite inside a double-quoted attribute value.
const ATTR_NEEDLES: &[u8] = b"<>&\"'\n\t";

/// Offset of the first byte that must be rewritten in text content.
///
/// `<` and `&` always; `>` only as the tail of a `]]>` run (the one
/// place the spec forbids it), so CDATA-adjacent text like `a > b` or
/// `x]>y` borrows instead of copying.
#[inline]
fn scan_text(bytes: &[u8]) -> Option<usize> {
    let mut i = 0;
    while let Some(p) = scan::find_byte3(&bytes[i..], b'<', b'&', b'>') {
        let at = i + p;
        if bytes[at] != b'>' || (at >= 2 && &bytes[at - 2..at] == b"]]") {
            return Some(at);
        }
        i = at + 1;
    }
    None
}

/// Escape `<`, `&`, and the `>` of `]]>` for element text content.
/// Borrows the input when nothing needs escaping — in particular, bare
/// `>` stays literal and does not force a copy.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    match scan_text(s.as_bytes()) {
        None => Cow::Borrowed(s),
        Some(i) => {
            let mut out = String::with_capacity(s.len() + 8);
            escape_text_from(s, i, &mut out);
            Cow::Owned(out)
        }
    }
}

/// Append `s` to `out`, escaping text content. The buffer-reuse twin of
/// [`escape_text`].
pub fn escape_text_into(s: &str, out: &mut String) {
    match scan_text(s.as_bytes()) {
        None => out.push_str(s),
        Some(i) => escape_text_from(s, i, out),
    }
}

/// Escape text starting from `first` (the offset [`scan_text`] found);
/// operates on the whole string so the `]]>` lookbehind never loses
/// context at a slice boundary.
fn escape_text_from(s: &str, first: usize, out: &mut String) {
    let bytes = s.as_bytes();
    out.push_str(&s[..first]);
    let mut last = first;
    let mut i = first;
    while let Some(p) = scan::find_byte3(&bytes[i..], b'<', b'&', b'>') {
        let at = i + p;
        let rep = match bytes[at] {
            b'<' => "&lt;",
            b'&' => "&amp;",
            b'>' if at >= 2 && &bytes[at - 2..at] == b"]]" => "&gt;",
            _ => {
                i = at + 1;
                continue;
            }
        };
        out.push_str(&s[last..at]);
        out.push_str(rep);
        last = at + 1;
        i = at + 1;
    }
    out.push_str(&s[last..]);
}

/// Escape text for use inside a double-quoted attribute value. Borrows
/// the input when nothing needs escaping.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    match scan::find_any(s.as_bytes(), ATTR_NEEDLES) {
        None => Cow::Borrowed(s),
        Some(i) => {
            let mut out = String::with_capacity(s.len() + 8);
            out.push_str(&s[..i]);
            escape_attr_rest(&s[i..], &mut out);
            Cow::Owned(out)
        }
    }
}

/// Append `s` to `out`, escaping attribute content. The buffer-reuse
/// twin of [`escape_attr`].
pub fn escape_attr_into(s: &str, out: &mut String) {
    match scan::find_any(s.as_bytes(), ATTR_NEEDLES) {
        None => out.push_str(s),
        Some(i) => {
            out.push_str(&s[..i]);
            escape_attr_rest(&s[i..], out);
        }
    }
}

fn escape_attr_rest(s: &str, out: &mut String) {
    let bytes = s.as_bytes();
    let mut last = 0;
    let mut i = 0;
    while let Some(p) = scan::find_any(&bytes[i..], ATTR_NEEDLES) {
        let at = i + p;
        let rep = match bytes[at] {
            b'<' => "&lt;",
            b'>' => "&gt;",
            b'&' => "&amp;",
            b'"' => "&quot;",
            b'\'' => "&apos;",
            b'\n' => "&#10;",
            _ => "&#9;",
        };
        out.push_str(&s[last..at]);
        out.push_str(rep);
        last = at + 1;
        i = at + 1;
    }
    out.push_str(&s[last..]);
}

/// Expand the five predefined entities plus decimal/hex character
/// references in `s`. Borrows the input when it contains no `&` at all.
/// `pos` is used only for error reporting.
pub fn unescape(s: &str, pos: Position) -> XmlResult<Cow<'_, str>> {
    let Some(first) = scan::find_byte(s.as_bytes(), b'&') else {
        return Ok(Cow::Borrowed(s));
    };
    let mut out = String::with_capacity(s.len());
    out.push_str(&s[..first]);
    let mut rest = &s[first..];
    while let Some(amp) = scan::find_byte(rest.as_bytes(), b'&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let Some(end) = scan::find_byte(after.as_bytes(), b';') else {
            return Err(XmlError::BadEntity { pos, entity: after.chars().take(8).collect() });
        };
        let name = &after[..end];
        match name {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => {
                let code = if let Some(hex) =
                    name.strip_prefix("#x").or_else(|| name.strip_prefix("#X"))
                {
                    u32::from_str_radix(hex, 16).ok()
                } else if let Some(dec) = name.strip_prefix('#') {
                    dec.parse::<u32>().ok()
                } else {
                    None
                };
                match code.and_then(char::from_u32) {
                    Some(ch) => out.push(ch),
                    None => {
                        return Err(XmlError::BadEntity { pos, entity: name.to_string() });
                    }
                }
            }
        }
        rest = &after[end + 1..];
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Position {
        Position::start()
    }

    #[test]
    fn escape_then_unescape_text_round_trips() {
        let original = "a < b && c > d";
        let escaped = escape_text(original);
        // Bare '>' is legal in character data and stays literal.
        assert_eq!(escaped, "a &lt; b &amp;&amp; c > d");
        assert_eq!(unescape(&escaped, p()).unwrap(), original);
    }

    #[test]
    fn cdata_close_sequence_is_escaped() {
        let escaped = escape_text("a]]>b");
        assert_eq!(escaped, "a]]&gt;b");
        assert_eq!(unescape(&escaped, p()).unwrap(), "a]]>b");
        // Near misses borrow: "]>", "] >", and a trailing "]]".
        assert!(matches!(escape_text("a]>b"), Cow::Borrowed(_)));
        assert!(matches!(escape_text("a] ]>b"), Cow::Borrowed(_)));
        assert!(matches!(escape_text("ab]]"), Cow::Borrowed(_)));
        let mut buf = String::new();
        escape_text_into("x]]>y]]>z", &mut buf);
        assert_eq!(buf, "x]]&gt;y]]&gt;z");
    }

    #[test]
    fn escape_attr_handles_quotes_and_whitespace() {
        assert_eq!(escape_attr("say \"hi\"\n"), "say &quot;hi&quot;&#10;");
        assert_eq!(unescape("say &quot;hi&quot;&#10;", p()).unwrap(), "say \"hi\"\n");
    }

    #[test]
    fn numeric_references_decimal_and_hex() {
        assert_eq!(unescape("&#65;&#x42;&#x63;", p()).unwrap(), "ABc");
    }

    #[test]
    fn unicode_references() {
        assert_eq!(unescape("&#x4E2D;&#x6587;", p()).unwrap(), "中文");
    }

    #[test]
    fn unknown_entity_is_an_error() {
        assert!(matches!(unescape("&nbsp;", p()), Err(XmlError::BadEntity { .. })));
    }

    #[test]
    fn unterminated_entity_is_an_error() {
        assert!(matches!(unescape("a&ltb", p()), Err(XmlError::BadEntity { .. })));
    }

    #[test]
    fn surrogate_char_reference_is_rejected() {
        assert!(matches!(unescape("&#xD800;", p()), Err(XmlError::BadEntity { .. })));
    }

    #[test]
    fn plain_string_borrows_without_copying() {
        assert!(matches!(unescape("hello world", p()).unwrap(), Cow::Borrowed(_)));
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
        assert!(matches!(escape_attr("hello world"), Cow::Borrowed(_)));
        // CDATA-adjacent text with bare '>' no longer copies.
        assert!(matches!(escape_text("if a > b then"), Cow::Borrowed(_)));
    }

    #[test]
    fn escaped_strings_are_owned_only_when_rewritten() {
        assert!(matches!(escape_text("a<b"), Cow::Owned(_)));
        assert!(matches!(unescape("&amp;", p()).unwrap(), Cow::Owned(_)));
    }

    #[test]
    fn into_variants_append_to_existing_buffers() {
        let mut buf = String::from("x=");
        escape_attr_into("a\"b", &mut buf);
        assert_eq!(buf, "x=a&quot;b");
        let mut buf = String::from("t:");
        escape_text_into("1<2", &mut buf);
        assert_eq!(buf, "t:1&lt;2");
    }
}
