//! Round-trip identity: `parse ∘ serialize` must be the identity on
//! the value model, and the borrowed parser must agree with the owned
//! one on every input — including the adversarial corners (escapes,
//! surrogate pairs, `-0`, exponent overflow, nesting at the depth
//! limit).

use proptest::prelude::*;
use soc_json::{parse_ref, Number, Value, ValueRef};

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(|i| Value::Number(Number::Int(i))),
        (-1e15f64..1e15).prop_map(|f| Value::Number(Number::Float(f))),
        // Strings biased toward escape-needing content: quotes,
        // backslashes, controls, astral-plane characters.
        "[ -~\\\\\"\u{8}\u{c}\n\r\t\u{1}\u{1f}é中😀]{0,24}".prop_map(Value::String),
    ];
    leaf.prop_recursive(5, 48, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            proptest::collection::vec(("[a-z\\\\\" ]{0,8}", inner), 0..6)
                .prop_map(|pairs| Value::Object(pairs.into_iter().collect())),
        ]
    })
}

proptest! {
    /// serialize → parse is the identity (compact and pretty).
    #[test]
    fn parse_after_serialize_is_identity(v in value_strategy()) {
        prop_assert_eq!(Value::parse(&v.to_compact()).unwrap(), v.clone());
        prop_assert_eq!(Value::parse(&v.to_pretty()).unwrap(), v);
    }

    /// The buffer-reusing serializer emits the same bytes as the
    /// allocating one, regardless of what is already in the buffer.
    #[test]
    fn write_into_matches_to_compact(v in value_strategy(), prefix in "[a-z]{0,8}") {
        let mut buf = prefix.clone();
        v.write_into(&mut buf);
        prop_assert_eq!(buf, format!("{prefix}{}", v.to_compact()));
    }

    /// Borrowed and owned parsers accept the same documents with the
    /// same result.
    #[test]
    fn parse_ref_agrees_with_parse(v in value_strategy()) {
        let text = v.to_compact();
        let borrowed = parse_ref(&text).unwrap();
        prop_assert_eq!(borrowed.into_owned(), Value::parse(&text).unwrap());
    }

    /// parse → serialize → parse is stable (the serialization is a
    /// fixed point), over arbitrary near-JSON byte soup that happens
    /// to parse.
    #[test]
    fn reserialization_is_stable(s in "[ -~]{0,48}") {
        if let Ok(v) = Value::parse(&s) {
            let once = v.to_compact();
            let again = Value::parse(&once).unwrap().to_compact();
            prop_assert_eq!(once, again);
        }
    }
}

#[test]
fn escape_corpus_round_trips() {
    for src in [
        r#""\"\\\/\b\f\n\r\t""#,
        r#""\u0000 low \u001f controls""#,
        r#""😀 paired""#,
        r#""mixed 中 文 😀 \n tail""#,
    ] {
        let v = Value::parse(src).unwrap();
        assert_eq!(Value::parse(&v.to_compact()).unwrap(), v, "{src}");
        let b = parse_ref(src).unwrap();
        assert_eq!(b.into_owned(), v, "{src}");
    }
}

#[test]
fn negative_zero_survives() {
    // -0 must stay a float (Int cannot hold the sign) and re-emit a
    // form that parses back to -0.
    let v = Value::parse("-0").unwrap();
    let f = v.as_f64().unwrap();
    assert_eq!(f, 0.0);
    assert!(f.is_sign_negative(), "-0 parsed to {f:?}");
    let back = Value::parse(&v.to_compact()).unwrap().as_f64().unwrap();
    assert!(back.is_sign_negative());
    assert_eq!(Value::parse("-0.0").unwrap().as_f64().unwrap().to_bits(), (-0.0f64).to_bits());
}

#[test]
fn exponent_overflow_is_rejected_not_inf() {
    assert!(Value::parse("1e400").is_err());
    assert!(Value::parse("-1e400").is_err());
    // Underflow to zero is fine.
    assert_eq!(Value::parse("1e-400").unwrap().as_f64(), Some(0.0));
    // Largest finite double round-trips.
    let v = Value::parse("1.7976931348623157e308").unwrap();
    assert_eq!(Value::parse(&v.to_compact()).unwrap(), v);
}

#[test]
fn nesting_at_the_depth_limit() {
    // MAX_DEPTH is 128: exactly at the limit parses, one past fails,
    // for both parsers.
    let at = "[".repeat(128) + &"]".repeat(128);
    let over = "[".repeat(129) + &"]".repeat(129);
    assert!(Value::parse(&at).is_ok());
    assert!(Value::parse(&over).is_err());
    assert!(parse_ref(&at).is_ok());
    assert!(parse_ref(&over).is_err());
    // The round trip holds at the limit.
    let v = Value::parse(&at).unwrap();
    assert_eq!(Value::parse(&v.to_compact()).unwrap(), v);
}

#[test]
fn borrowed_strings_only_when_clean() {
    let v = parse_ref(r#"{"clean":"no escapes here","dirty":"tab\there"}"#).unwrap();
    let ValueRef::Object(members) = v else { panic!() };
    assert!(matches!(&members[0].1, ValueRef::String(std::borrow::Cow::Borrowed(_))));
    assert!(matches!(&members[1].1, ValueRef::String(std::borrow::Cow::Owned(_))));
}
