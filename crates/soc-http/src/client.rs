//! A blocking HTTP client over TCP.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::codec::{self, DEFAULT_BODY_LIMIT};
use crate::types::{HttpError, HttpResult, Request, Response};
use crate::url::Url;

/// A simple one-connection-per-request client. The request's `target`
/// must be an absolute `http://` URL; the client rewrites it to
/// origin-form on the wire.
#[derive(Debug, Clone)]
pub struct HttpClient {
    timeout: Duration,
    body_limit: usize,
}

impl Default for HttpClient {
    fn default() -> Self {
        Self::new()
    }
}

impl HttpClient {
    /// Client with a 30 s timeout.
    pub fn new() -> Self {
        HttpClient { timeout: Duration::from_secs(30), body_limit: DEFAULT_BODY_LIMIT }
    }

    /// Client with an explicit connect/read/write timeout.
    pub fn with_timeout(timeout: Duration) -> Self {
        HttpClient { timeout, body_limit: DEFAULT_BODY_LIMIT }
    }

    /// Cap the accepted response body size.
    pub fn with_body_limit(mut self, limit: usize) -> Self {
        self.body_limit = limit;
        self
    }

    /// Send `req` and wait for the response.
    pub fn send(&self, req: Request) -> HttpResult<Response> {
        self.dispatch(req, None)
    }

    /// Send `req`, giving up once `deadline` passes.
    ///
    /// The deadline is a whole-request budget, distinct from the
    /// client's socket timeout: the socket timeout bounds each blocking
    /// read/write, while the deadline bounds connect + write + read
    /// end to end. Per-socket-operation waits are capped at whatever
    /// remains of the budget, so a slow-dripping peer cannot stretch a
    /// 100 ms deadline into repeated 30 s socket waits. An expired
    /// budget yields [`HttpError::DeadlineExceeded`].
    pub fn send_with_deadline(&self, req: Request, deadline: Instant) -> HttpResult<Response> {
        self.dispatch(req, Some(deadline))
    }

    fn dispatch(&self, req: Request, deadline: Option<Instant>) -> HttpResult<Response> {
        let url = Url::parse(&req.target)?;
        if url.scheme != "http" {
            return Err(HttpError::BadUrl(format!(
                "HttpClient only speaks http://, got {}",
                url.scheme
            )));
        }
        // Remaining budget, or the socket timeout when no deadline is
        // set. Zero remaining means the request is already too late.
        let op_timeout = |deadline: Option<Instant>| -> HttpResult<Duration> {
            match deadline {
                None => Ok(self.timeout),
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        Err(HttpError::DeadlineExceeded)
                    } else {
                        Ok(left.min(self.timeout))
                    }
                }
            }
        };
        let addr = (url.host.as_str(), url.port);
        let stream = match deadline {
            None => TcpStream::connect(addr).map_err(|e| HttpError::Io(e.to_string()))?,
            Some(_) => {
                // connect_timeout needs a resolved SocketAddr.
                let budget = op_timeout(deadline)?;
                let resolved = std::net::ToSocketAddrs::to_socket_addrs(&addr)
                    .map_err(|e| HttpError::Io(e.to_string()))?
                    .next()
                    .ok_or_else(|| HttpError::BadUrl(format!("unresolvable host: {}", url.host)))?;
                TcpStream::connect_timeout(&resolved, budget).map_err(|e| {
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                    ) {
                        HttpError::DeadlineExceeded
                    } else {
                        HttpError::Io(e.to_string())
                    }
                })?
            }
        };
        stream.set_read_timeout(Some(op_timeout(deadline)?)).ok();
        stream.set_write_timeout(Some(op_timeout(deadline)?)).ok();
        stream.set_nodelay(true).ok();

        let mut wire_req = req.clone();
        wire_req.target = url.path_and_query();
        // Propagate the thread's active trace context across the hop.
        crate::observe::inject_traceparent(&mut wire_req.headers);
        // One-shot connection: tell the server not to wait for more.
        if !wire_req.headers.contains("Connection") {
            wire_req.headers.set("Connection", "close");
        }
        let mut writer = stream.try_clone().map_err(|e| HttpError::Io(e.to_string()))?;
        codec::write_request(&mut writer, &wire_req, Some(&url.authority()))?;
        // Re-arm the read timeout with whatever budget the write left.
        stream.set_read_timeout(Some(op_timeout(deadline)?)).ok();
        let mut reader = BufReader::new(stream);
        let resp = codec::read_response(&mut reader, self.body_limit);
        match resp {
            // A read failure after the budget ran out is the deadline's
            // fault, not the peer's: report it as such.
            Err(e) => match deadline {
                Some(d) if Instant::now() >= d => Err(HttpError::DeadlineExceeded),
                _ => Err(e),
            },
            ok => ok,
        }
    }

    /// GET an absolute URL.
    pub fn get(&self, url: &str) -> HttpResult<Response> {
        self.send(Request::get(url))
    }

    /// POST text with a content type.
    pub fn post(&self, url: &str, content_type: &str, body: &str) -> HttpResult<Response> {
        self.send(Request::post(url, Vec::new()).with_text(content_type, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_http_urls() {
        let c = HttpClient::new();
        assert!(matches!(c.get("mem://x/"), Err(HttpError::BadUrl(_))));
        assert!(matches!(c.get("not a url"), Err(HttpError::BadUrl(_))));
    }

    #[test]
    fn connection_refused_is_io_error() {
        let c = HttpClient::with_timeout(Duration::from_millis(300));
        // Port 1 on localhost is essentially never listening.
        assert!(matches!(c.get("http://127.0.0.1:1/"), Err(HttpError::Io(_))));
    }

    #[test]
    fn expired_deadline_fails_fast() {
        let c = HttpClient::with_timeout(Duration::from_secs(30));
        let past = Instant::now() - Duration::from_millis(1);
        let err = c.send_with_deadline(Request::get("http://127.0.0.1:1/"), past).unwrap_err();
        assert_eq!(err, HttpError::DeadlineExceeded);
    }

    #[test]
    fn deadline_bounds_a_stalled_server() {
        // A listener that accepts and then never responds: the socket
        // timeout alone (30 s) would hang the call; the deadline must
        // cut it short.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(500));
            drop(stream);
        });
        let c = HttpClient::with_timeout(Duration::from_secs(30));
        let deadline = Instant::now() + Duration::from_millis(80);
        let start = Instant::now();
        let err =
            c.send_with_deadline(Request::get(format!("http://{addr}/")), deadline).unwrap_err();
        assert_eq!(err, HttpError::DeadlineExceeded);
        assert!(start.elapsed() < Duration::from_secs(5), "deadline did not bound the wait");
        server.join().unwrap();
    }

    #[test]
    fn generous_deadline_does_not_interfere() {
        let server =
            crate::HttpServer::bind("127.0.0.1:0", 2, |_req: Request| crate::Response::text("ok"))
                .unwrap();
        let url = format!("http://{}/", server.addr());
        let c = HttpClient::with_timeout(Duration::from_secs(5));
        let deadline = Instant::now() + Duration::from_secs(5);
        let resp = c.send_with_deadline(Request::get(&url), deadline).unwrap();
        assert!(resp.status.is_success());
    }
}
