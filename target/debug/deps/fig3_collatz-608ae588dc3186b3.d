/root/repo/target/debug/deps/fig3_collatz-608ae588dc3186b3.d: crates/soc-bench/src/bin/fig3_collatz.rs

/root/repo/target/debug/deps/fig3_collatz-608ae588dc3186b3: crates/soc-bench/src/bin/fig3_collatz.rs

crates/soc-bench/src/bin/fig3_collatz.rs:
