//! Durable state plane costs: WAL append throughput under both fsync
//! schedules, recovery replay rate, and shard-failover latency.
//!
//! The headline row pair is the group-commit claim: a WAL fsyncing
//! every record pays the full device sync per append, while the
//! group-committed log amortizes one sync across every record that
//! rides the same flush — the classic reason WALs batch. The asserted
//! ≥ 10x row measures the pipelined schedule (`submit` a burst, wait
//! once), which is what replica catch-up ships through
//! `execute_shipped_batch`; a second row records what individually
//! acknowledged concurrent appenders see, where batch formation is
//! bounded by how fast the scheduler can rotate woken appenders in
//! (on a single-core container that caps well below the pipelined
//! ratio). The harness **asserts** the ratios, the replay rate floor,
//! and the failover ceiling, so `cargo bench --bench store` is an
//! executable acceptance check.
//!
//! Not a Criterion harness, for the same reason as `chaos.rs`: the
//! budget asserts need a hard pass/fail, and the interesting rows
//! (concurrent group commit, kill-and-republish failover) are
//! scenarios, not single closures.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use soc_http::{MemNetwork, Transport};
use soc_json::{json, Value};
use soc_registry::directory::{DirectoryClient, DirectoryService};
use soc_registry::repository::Repository;
use soc_rest::RestClient;
use soc_store::node::LeaseKeeper;
use soc_store::wal::{FsyncPolicy, Wal, WalConfig};
use soc_store::{
    RebalanceConfig, Rebalancer, ShardMap, ShardNode, StoreClient, StoreNode, StoreNodeConfig,
    TempDir,
};

/// Group commit must amortize the sync cost at least this much over
/// fsync-per-record, measured on the pipelined submit-burst schedule.
const BUDGET_GROUP_COMMIT_RATIO: f64 = 10.0;
/// Individually acked concurrent appenders still have to beat the
/// serial fsync schedule — a loose floor (scheduler-limited on one
/// core) that catches the group-commit path breaking outright.
const BUDGET_CONCURRENT_RATIO: f64 = 2.0;
/// Recovery must replay at least this many records per second — a cold
/// restart of a ledger with a day of submissions must be milliseconds,
/// not minutes.
const BUDGET_REPLAY_RECORDS_PER_S: f64 = 500_000.0;
/// Kill-to-first-acked-write ceiling for an in-process failover: the
/// map republish plus one redirected write.
const BUDGET_FAILOVER_NS: f64 = 50_000_000.0;
/// Kill-to-first-acked-write ceiling for the *lease-driven* failover:
/// nobody republishes by hand — the dead primary's lease must expire
/// (the TTL dominates), the rebalancer's next tick re-elects, and the
/// client follows the new map. TTL is 100 ms here, so the ceiling
/// leaves ~50 ms for detection, transfer, promote, and the first write.
const BUDGET_REBALANCE_FAILOVER_NS: f64 = 150_000_000.0;
/// Lease TTL for the rebalance-failover row.
const REBALANCE_LEASE_TTL: std::time::Duration = std::time::Duration::from_millis(100);

/// Concurrent appenders for the group-commit row.
const APPENDERS: usize = 16;

/// A submission-sized record (the ledger journals ~this much per apply).
const PAYLOAD: [u8; 64] = [0x5A; 64];

fn bench(name: &str, iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..(iters / 10).max(1) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
    println!("{name:<26} {ns:>12.1} ns/op   ({iters} iters)");
    ns
}

fn wal_config(fsync: FsyncPolicy) -> WalConfig {
    WalConfig { fsync, ..WalConfig::default() }
}

/// Per-record cost of the pipelined group-commit schedule: submit a
/// burst of records, then wait for durability once — the shape
/// `Durable::execute_shipped_batch` drives during replica catch-up.
fn group_commit_ns() -> f64 {
    let tmp = TempDir::new("bench-group");
    let (wal, _) = Wal::open_with(tmp.path(), wal_config(FsyncPolicy::Batch)).unwrap();
    const BURST: usize = 64;
    const BURSTS: usize = 64;
    // Warm-up burst.
    for _ in 0..BURST {
        wal.submit(&PAYLOAD).unwrap();
    }
    wal.flush().unwrap();
    let start = Instant::now();
    for _ in 0..BURSTS {
        let mut last = 0;
        for _ in 0..BURST {
            last = wal.submit(&PAYLOAD).unwrap();
        }
        wal.wait_durable(last).unwrap();
    }
    let ns = start.elapsed().as_secs_f64() * 1e9 / (BURST * BURSTS) as f64;
    println!(
        "{:<26} {ns:>12.1} ns/op   ({BURSTS} bursts of {BURST} submits)",
        "wal_append_group_commit"
    );
    ns
}

/// Per-record cost with [`APPENDERS`] threads appending concurrently,
/// each acknowledged individually — batch formation here is limited by
/// how fast woken appenders get scheduled back in.
fn concurrent_append_ns() -> f64 {
    let tmp = TempDir::new("bench-concurrent");
    let (wal, _) = Wal::open_with(tmp.path(), wal_config(FsyncPolicy::Batch)).unwrap();
    for _ in 0..64 {
        wal.append(&PAYLOAD).unwrap();
    }
    const PER_THREAD: usize = 512;
    let barrier = Arc::new(Barrier::new(APPENDERS + 1));
    let handles: Vec<_> = (0..APPENDERS)
        .map(|_| {
            let wal = wal.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..PER_THREAD {
                    wal.append(&PAYLOAD).unwrap();
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().unwrap();
    }
    let total = (APPENDERS * PER_THREAD) as f64;
    let ns = start.elapsed().as_secs_f64() * 1e9 / total;
    println!(
        "{:<26} {ns:>12.1} ns/op   ({APPENDERS} appenders x {PER_THREAD})",
        "wal_append_concurrent"
    );
    ns
}

/// Records-per-second when reopening a log of `n` submission-sized
/// records (mean of `reps` cold opens).
fn recovery_replay_rate(n: usize, reps: usize) -> f64 {
    let tmp = TempDir::new("bench-replay");
    {
        let (wal, _) = Wal::open_with(tmp.path(), wal_config(FsyncPolicy::Never)).unwrap();
        for _ in 0..n {
            wal.append(&PAYLOAD).unwrap();
        }
    }
    let start = Instant::now();
    for _ in 0..reps {
        let (_, recovery) = Wal::open_with(tmp.path(), wal_config(FsyncPolicy::Never)).unwrap();
        assert_eq!(recovery.records.len(), n, "replay must see every record");
    }
    let per_record_ns = start.elapsed().as_secs_f64() * 1e9 / (n * reps) as f64;
    let rate = 1e9 / per_record_ns;
    println!(
        "{:<26} {per_record_ns:>12.1} ns/rec  ({rate:.0} records/s over {n} records)",
        "recovery_replay"
    );
    rate
}

/// A three-node in-memory fleet for the failover row.
struct Fleet {
    net: Arc<MemNetwork>,
    ids: Vec<String>,
    dirs: Vec<TempDir>,
    nodes: Vec<Option<StoreNode>>,
}

impl Fleet {
    fn start() -> Fleet {
        let net = Arc::new(MemNetwork::new());
        let ids: Vec<String> = (0..3).map(|i| format!("bench-store-{i}")).collect();
        let dirs: Vec<TempDir> =
            (0..3).map(|i| TempDir::new(&format!("bench-failover-{i}"))).collect();
        let mut fleet = Fleet { net, ids, dirs, nodes: vec![None, None, None] };
        for i in 0..3 {
            fleet.open(i);
        }
        fleet
    }

    fn open(&mut self, idx: usize) {
        let node = StoreNode::open(
            StoreNodeConfig::new(&self.ids[idx]),
            self.dirs[idx].path(),
            self.net.clone() as Arc<dyn Transport>,
        )
        .unwrap();
        self.net.host(&self.ids[idx], node.router());
        self.nodes[idx] = Some(node);
    }

    /// Build a map over the live nodes and publish it node-by-node over
    /// `POST /store/map` — the same wire path a registry-driven
    /// rebalance takes.
    fn publish(&self, client: &StoreClient, version: u64) {
        let rest = RestClient::new(self.net.clone() as Arc<dyn Transport>);
        let nodes: Vec<ShardNode> = self
            .ids
            .iter()
            .enumerate()
            .filter(|(i, _)| self.nodes[*i].is_some())
            .map(|(_, id)| ShardNode { id: id.clone(), endpoint: format!("mem://{id}") })
            .collect();
        let map = Arc::new(ShardMap::build(version, nodes, 2));
        for node in map.nodes() {
            rest.post(&format!("{}/store/map", node.endpoint), &map.to_json()).unwrap();
        }
        client.set_map(map);
    }
}

/// Mean kill-to-first-acked-write latency: drop a key's primary, then
/// time the map republish plus the first write acknowledged by the
/// new primary.
fn shard_failover_ns(iters: usize) -> f64 {
    let mut fleet = Fleet::start();
    let client = StoreClient::new(fleet.net.clone() as Arc<dyn Transport>);
    let mut version = 1;
    fleet.publish(&client, version);

    let mut total_ns = 0.0;
    for iter in 0..iters {
        let key = format!("failover-{iter}");
        let value: Value = json!({ "iter": (iter as i64) });
        client.put(&key, &value).unwrap();
        let primary = client.map().primary(&key).unwrap().id.clone();
        let idx = fleet.ids.iter().position(|id| *id == primary).unwrap();
        fleet.net.unhost(&primary);
        fleet.nodes[idx] = None;

        let start = Instant::now();
        version += 1;
        fleet.publish(&client, version);
        while client.put(&key, &value).is_err() {
            std::thread::yield_now();
        }
        total_ns += start.elapsed().as_secs_f64() * 1e9;

        // Bring the node back (same WAL dir) for the next round.
        fleet.open(idx);
        version += 1;
        fleet.publish(&client, version);
    }
    let ns = total_ns / iters as f64;
    println!("{:<26} {ns:>12.1} ns/op   ({iters} failovers)", "shard_failover");
    ns
}

/// Mean kill-to-first-acked-write latency when *nothing* republishes
/// the map by hand: each node keeps a registry lease, a rebalancer
/// watches the lease table, and failover is lease expiry (TTL-bound)
/// plus the next tick's re-election. This is the live-elasticity path —
/// the one production runs — so its ceiling is asserted too.
fn failover_under_rebalance_ns(iters: usize) -> f64 {
    let net = Arc::new(MemNetwork::new());
    let (dir_svc, _dir_state) = DirectoryService::new(Repository::new(), vec![]);
    net.host("bench-dir", dir_svc);
    let directory = DirectoryClient::new(net.clone() as Arc<dyn Transport>, "mem://bench-dir");

    let ids: Vec<String> = (0..3).map(|i| format!("bench-elastic-{i}")).collect();
    let dirs: Vec<TempDir> = (0..3).map(|i| TempDir::new(&format!("bench-elastic-{i}"))).collect();
    let mut nodes: Vec<Option<StoreNode>> = vec![None, None, None];
    let mut keepers: Vec<Option<LeaseKeeper>> = vec![None, None, None];
    let open = |idx: usize, net: &Arc<MemNetwork>, directory: &DirectoryClient| {
        let node = StoreNode::open(
            StoreNodeConfig::new(&ids[idx]),
            dirs[idx].path(),
            net.clone() as Arc<dyn Transport>,
        )
        .unwrap();
        net.host(&ids[idx], node.router());
        let keeper = node.start_lease_keeper(
            directory.clone(),
            &format!("mem://{}", ids[idx]),
            REBALANCE_LEASE_TTL,
            REBALANCE_LEASE_TTL / 5,
        );
        (node, keeper)
    };
    for idx in 0..3 {
        let (node, keeper) = open(idx, &net, &directory);
        nodes[idx] = Some(node);
        keepers[idx] = Some(keeper);
    }

    let reb = Rebalancer::new(
        directory.clone(),
        net.clone() as Arc<dyn Transport>,
        RebalanceConfig {
            replication: 2,
            lease_ttl: REBALANCE_LEASE_TTL,
            backoff_base: std::time::Duration::from_millis(1),
            backoff_max: std::time::Duration::from_millis(10),
            ..RebalanceConfig::default()
        },
    );
    let settle = |reb: &Rebalancer, want: usize| {
        while {
            let _ = reb.tick();
            reb.map().nodes().len() != want
        } {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    };
    settle(&reb, 3);
    let client = StoreClient::new(net.clone() as Arc<dyn Transport>);
    client.set_map(reb.map());

    let mut total_ns = 0.0;
    for iter in 0..iters {
        let key = format!("elastic-failover-{iter}");
        let value: Value = json!({ "iter": (iter as i64) });
        client.put(&key, &value).unwrap();
        let primary = client.map().primary(&key).unwrap().id.clone();
        let idx = ids.iter().position(|id| *id == primary).unwrap();
        keepers[idx] = None;
        net.unhost(&primary);
        nodes[idx] = None;

        let start = Instant::now();
        settle(&reb, 2);
        client.set_map(reb.map());
        while client.put(&key, &value).is_err() {
            std::thread::yield_now();
        }
        total_ns += start.elapsed().as_secs_f64() * 1e9;

        // Revive against the same WAL for the next round; its renewed
        // lease folds it back into the map.
        let (node, keeper) = open(idx, &net, &directory);
        nodes[idx] = Some(node);
        keepers[idx] = Some(keeper);
        settle(&reb, 3);
        client.set_map(reb.map());
    }
    let ns = total_ns / iters as f64;
    println!(
        "{:<26} {ns:>12.1} ns/op   ({iters} lease-driven failovers)",
        "failover_under_rebalance"
    );
    ns
}

fn main() {
    println!("durable state plane");
    println!("{:<26} {:>15}", "operation", "cost");

    let always_ns = {
        let tmp = TempDir::new("bench-always");
        let (wal, _) = Wal::open_with(tmp.path(), wal_config(FsyncPolicy::Always)).unwrap();
        bench("wal_append_fsync_always", 256, || {
            wal.append(&PAYLOAD).unwrap();
        })
    };
    let group_ns = group_commit_ns();
    let concurrent_ns = concurrent_append_ns();
    let replay_rate = recovery_replay_rate(20_000, 5);
    let failover_ns = shard_failover_ns(8);
    let rebalance_failover_ns = failover_under_rebalance_ns(4);

    let ratio = always_ns / group_ns;
    let concurrent_ratio = always_ns / concurrent_ns;
    println!(
        "\ngroup-commit amortization: {ratio:.1}x pipelined, \
         {concurrent_ratio:.1}x concurrent, over fsync-per-record"
    );

    assert!(
        ratio >= BUDGET_GROUP_COMMIT_RATIO,
        "group commit at {group_ns:.0} ns/op is only {ratio:.1}x over \
         fsync-per-record ({always_ns:.0} ns/op) — the floor is {BUDGET_GROUP_COMMIT_RATIO}x"
    );
    assert!(
        concurrent_ratio >= BUDGET_CONCURRENT_RATIO,
        "concurrent appends at {concurrent_ns:.0} ns/op are only {concurrent_ratio:.1}x over \
         fsync-per-record ({always_ns:.0} ns/op) — the floor is {BUDGET_CONCURRENT_RATIO}x"
    );
    assert!(
        replay_rate >= BUDGET_REPLAY_RECORDS_PER_S,
        "recovery replays {replay_rate:.0} records/s — the floor is \
         {BUDGET_REPLAY_RECORDS_PER_S}"
    );
    assert!(
        failover_ns <= BUDGET_FAILOVER_NS,
        "shard failover at {failover_ns:.0} ns — the ceiling is {BUDGET_FAILOVER_NS}"
    );
    assert!(
        rebalance_failover_ns <= BUDGET_REBALANCE_FAILOVER_NS,
        "lease-driven failover at {rebalance_failover_ns:.0} ns — the ceiling is \
         {BUDGET_REBALANCE_FAILOVER_NS}"
    );
    println!("budgets: all within bounds");
}
