//! A minimal HTML template engine: `{{var}}` substitution (HTML-escaped
//! by default, `{{{var}}}` for raw) and `{{#if var}}…{{else}}…{{/if}}`
//! blocks. Escaping-by-default is the dependability unit's XSS lesson.

use std::collections::HashMap;

/// Template variables.
pub type Vars = HashMap<String, String>;

/// Escape text for HTML element content and attribute values.
pub fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

/// Render `template` with `vars`. Unknown variables render empty.
pub fn render(template: &str, vars: &Vars) -> String {
    render_section(template, vars)
}

fn truthy(vars: &Vars, key: &str) -> bool {
    vars.get(key).map(|v| !v.is_empty() && v != "false" && v != "0").unwrap_or(false)
}

fn render_section(mut rest: &str, vars: &Vars) -> String {
    let mut out = String::with_capacity(rest.len());
    while let Some(start) = rest.find("{{") {
        out.push_str(&rest[..start]);
        rest = &rest[start..];
        if let Some(cond_key) = rest.strip_prefix("{{#if ").and_then(|r| r.split_once("}}")) {
            let (key, after) = cond_key;
            let key = key.trim();
            // Find the matching {{/if}} (no nesting of ifs with the same
            // key needed for our pages; support simple nesting anyway).
            let Some((body, tail)) = split_if_block(after) else {
                out.push_str("{{");
                rest = &rest[2..];
                continue;
            };
            let (then_part, else_part) = match split_top_level(body, "{{else}}") {
                Some((t, e)) => (t, e),
                None => (body, ""),
            };
            if truthy(vars, key) {
                out.push_str(&render_section(then_part, vars));
            } else {
                out.push_str(&render_section(else_part, vars));
            }
            rest = tail;
        } else if let Some(after) = rest.strip_prefix("{{{") {
            match after.find("}}}") {
                Some(end) => {
                    let key = after[..end].trim();
                    if let Some(v) = vars.get(key) {
                        out.push_str(v);
                    }
                    rest = &after[end + 3..];
                }
                None => {
                    out.push_str("{{{");
                    rest = after;
                }
            }
        } else {
            let after = &rest[2..];
            match after.find("}}") {
                Some(end) => {
                    let key = after[..end].trim();
                    if let Some(v) = vars.get(key) {
                        out.push_str(&html_escape(v));
                    }
                    rest = &after[end + 2..];
                }
                None => {
                    out.push_str("{{");
                    rest = after;
                }
            }
        }
    }
    out.push_str(rest);
    out
}

/// Split `body` at the matching `{{/if}}`, accounting for nested ifs.
fn split_if_block(body: &str) -> Option<(&str, &str)> {
    let mut depth = 1;
    let mut idx = 0;
    let bytes = body.as_bytes();
    while idx < bytes.len() {
        if body[idx..].starts_with("{{#if ") {
            depth += 1;
            idx += 6;
        } else if body[idx..].starts_with("{{/if}}") {
            depth -= 1;
            if depth == 0 {
                return Some((&body[..idx], &body[idx + 7..]));
            }
            idx += 7;
        } else {
            idx += 1;
        }
    }
    None
}

/// Split at a top-level (not nested in an if) occurrence of `sep`.
fn split_top_level<'a>(body: &'a str, sep: &str) -> Option<(&'a str, &'a str)> {
    let mut depth = 0;
    let mut idx = 0;
    while idx < body.len() {
        if body[idx..].starts_with("{{#if ") {
            depth += 1;
            idx += 6;
        } else if body[idx..].starts_with("{{/if}}") {
            depth -= 1;
            idx += 7;
        } else if depth == 0 && body[idx..].starts_with(sep) {
            return Some((&body[..idx], &body[idx + sep.len()..]));
        } else {
            idx += 1;
        }
    }
    None
}

/// Build vars from pairs (test/readability helper).
pub fn vars(pairs: &[(&str, &str)]) -> Vars {
    pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitution_escapes_by_default() {
        let out = render("<p>Hello {{name}}</p>", &vars(&[("name", "<script>alert(1)</script>")]));
        assert_eq!(out, "<p>Hello &lt;script&gt;alert(1)&lt;/script&gt;</p>");
    }

    #[test]
    fn raw_substitution_with_triple_braces() {
        let out = render("{{{html}}}", &vars(&[("html", "<b>bold</b>")]));
        assert_eq!(out, "<b>bold</b>");
    }

    #[test]
    fn unknown_vars_render_empty() {
        assert_eq!(render("a{{missing}}b", &vars(&[])), "ab");
    }

    #[test]
    fn if_blocks() {
        let t = "{{#if err}}<p class='err'>{{err}}</p>{{/if}}ok";
        assert_eq!(render(t, &vars(&[("err", "bad input")])), "<p class='err'>bad input</p>ok");
        assert_eq!(render(t, &vars(&[])), "ok");
        assert_eq!(render(t, &vars(&[("err", "")])), "ok");
    }

    #[test]
    fn if_else_blocks() {
        let t = "{{#if user}}Hi {{user}}{{else}}Please log in{{/if}}";
        assert_eq!(render(t, &vars(&[("user", "ann")])), "Hi ann");
        assert_eq!(render(t, &vars(&[])), "Please log in");
    }

    #[test]
    fn nested_if_blocks() {
        let t = "{{#if a}}A{{#if b}}B{{/if}}{{else}}none{{/if}}";
        assert_eq!(render(t, &vars(&[("a", "1"), ("b", "1")])), "AB");
        assert_eq!(render(t, &vars(&[("a", "1")])), "A");
        assert_eq!(render(t, &vars(&[])), "none");
    }

    #[test]
    fn unterminated_constructs_degrade_gracefully() {
        assert_eq!(render("{{oops", &vars(&[])), "{{oops");
        assert_eq!(render("{{#if x}}no close", &vars(&[("x", "1")])), "{{#if x}}no close");
    }

    #[test]
    fn html_escape_covers_quotes() {
        assert_eq!(html_escape(r#"a"b'c"#), "a&quot;b&#39;c");
    }
}
