/root/repo/target/debug/deps/soc_registry-8f8f879461b6066f.d: crates/soc-registry/src/lib.rs crates/soc-registry/src/crawler.rs crates/soc-registry/src/descriptor.rs crates/soc-registry/src/directory.rs crates/soc-registry/src/monitor.rs crates/soc-registry/src/ontology.rs crates/soc-registry/src/repository.rs crates/soc-registry/src/search.rs Cargo.toml

/root/repo/target/debug/deps/libsoc_registry-8f8f879461b6066f.rmeta: crates/soc-registry/src/lib.rs crates/soc-registry/src/crawler.rs crates/soc-registry/src/descriptor.rs crates/soc-registry/src/directory.rs crates/soc-registry/src/monitor.rs crates/soc-registry/src/ontology.rs crates/soc-registry/src/repository.rs crates/soc-registry/src/search.rs Cargo.toml

crates/soc-registry/src/lib.rs:
crates/soc-registry/src/crawler.rs:
crates/soc-registry/src/descriptor.rs:
crates/soc-registry/src/directory.rs:
crates/soc-registry/src/monitor.rs:
crates/soc-registry/src/ontology.rs:
crates/soc-registry/src/repository.rs:
crates/soc-registry/src/search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
