/root/repo/target/debug/deps/soc_json-6c347f0b86246b31.d: crates/soc-json/src/lib.rs crates/soc-json/src/parse.rs crates/soc-json/src/pointer.rs crates/soc-json/src/ser.rs crates/soc-json/src/value.rs

/root/repo/target/debug/deps/libsoc_json-6c347f0b86246b31.rlib: crates/soc-json/src/lib.rs crates/soc-json/src/parse.rs crates/soc-json/src/pointer.rs crates/soc-json/src/ser.rs crates/soc-json/src/value.rs

/root/repo/target/debug/deps/libsoc_json-6c347f0b86246b31.rmeta: crates/soc-json/src/lib.rs crates/soc-json/src/parse.rs crates/soc-json/src/pointer.rs crates/soc-json/src/ser.rs crates/soc-json/src/value.rs

crates/soc-json/src/lib.rs:
crates/soc-json/src/parse.rs:
crates/soc-json/src/pointer.rs:
crates/soc-json/src/ser.rs:
crates/soc-json/src/value.rs:
