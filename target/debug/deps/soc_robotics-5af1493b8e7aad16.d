/root/repo/target/debug/deps/soc_robotics-5af1493b8e7aad16.d: crates/soc-robotics/src/lib.rs crates/soc-robotics/src/algorithms.rs crates/soc-robotics/src/maze.rs crates/soc-robotics/src/raas.rs crates/soc-robotics/src/robot.rs crates/soc-robotics/src/sync.rs

/root/repo/target/debug/deps/soc_robotics-5af1493b8e7aad16: crates/soc-robotics/src/lib.rs crates/soc-robotics/src/algorithms.rs crates/soc-robotics/src/maze.rs crates/soc-robotics/src/raas.rs crates/soc-robotics/src/robot.rs crates/soc-robotics/src/sync.rs

crates/soc-robotics/src/lib.rs:
crates/soc-robotics/src/algorithms.rs:
crates/soc-robotics/src/maze.rs:
crates/soc-robotics/src/raas.rs:
crates/soc-robotics/src/robot.rs:
crates/soc-robotics/src/sync.rs:
