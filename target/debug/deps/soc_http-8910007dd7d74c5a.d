/root/repo/target/debug/deps/soc_http-8910007dd7d74c5a.d: crates/soc-http/src/lib.rs crates/soc-http/src/client.rs crates/soc-http/src/codec.rs crates/soc-http/src/cookies.rs crates/soc-http/src/mem.rs crates/soc-http/src/server.rs crates/soc-http/src/types.rs crates/soc-http/src/url.rs

/root/repo/target/debug/deps/soc_http-8910007dd7d74c5a: crates/soc-http/src/lib.rs crates/soc-http/src/client.rs crates/soc-http/src/codec.rs crates/soc-http/src/cookies.rs crates/soc-http/src/mem.rs crates/soc-http/src/server.rs crates/soc-http/src/types.rs crates/soc-http/src/url.rs

crates/soc-http/src/lib.rs:
crates/soc-http/src/client.rs:
crates/soc-http/src/codec.rs:
crates/soc-http/src/cookies.rs:
crates/soc-http/src/mem.rs:
crates/soc-http/src/server.rs:
crates/soc-http/src/types.rs:
crates/soc-http/src/url.rs:
