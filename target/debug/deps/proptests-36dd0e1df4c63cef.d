/root/repo/target/debug/deps/proptests-36dd0e1df4c63cef.d: crates/soc-registry/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-36dd0e1df4c63cef.rmeta: crates/soc-registry/tests/proptests.rs Cargo.toml

crates/soc-registry/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
