/root/repo/target/release/deps/soc_bench-5d5a7376a840e120.d: crates/soc-bench/src/lib.rs

/root/repo/target/release/deps/libsoc_bench-5d5a7376a840e120.rlib: crates/soc-bench/src/lib.rs

/root/repo/target/release/deps/libsoc_bench-5d5a7376a840e120.rmeta: crates/soc-bench/src/lib.rs

crates/soc-bench/src/lib.rs:
