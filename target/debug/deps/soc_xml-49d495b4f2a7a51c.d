/root/repo/target/debug/deps/soc_xml-49d495b4f2a7a51c.d: crates/soc-xml/src/lib.rs crates/soc-xml/src/dom.rs crates/soc-xml/src/error.rs crates/soc-xml/src/escape.rs crates/soc-xml/src/name.rs crates/soc-xml/src/reader.rs crates/soc-xml/src/sax.rs crates/soc-xml/src/schema.rs crates/soc-xml/src/writer.rs crates/soc-xml/src/xpath.rs crates/soc-xml/src/xslt.rs Cargo.toml

/root/repo/target/debug/deps/libsoc_xml-49d495b4f2a7a51c.rmeta: crates/soc-xml/src/lib.rs crates/soc-xml/src/dom.rs crates/soc-xml/src/error.rs crates/soc-xml/src/escape.rs crates/soc-xml/src/name.rs crates/soc-xml/src/reader.rs crates/soc-xml/src/sax.rs crates/soc-xml/src/schema.rs crates/soc-xml/src/writer.rs crates/soc-xml/src/xpath.rs crates/soc-xml/src/xslt.rs Cargo.toml

crates/soc-xml/src/lib.rs:
crates/soc-xml/src/dom.rs:
crates/soc-xml/src/error.rs:
crates/soc-xml/src/escape.rs:
crates/soc-xml/src/name.rs:
crates/soc-xml/src/reader.rs:
crates/soc-xml/src/sax.rs:
crates/soc-xml/src/schema.rs:
crates/soc-xml/src/writer.rs:
crates/soc-xml/src/xpath.rs:
crates/soc-xml/src/xslt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
