//! A TBB-style linear pipeline.
//!
//! The course presents TBB as "turning synchronous calls into
//! asynchronous calls and converting large methods into smaller ones" —
//! a pipeline of small stages connected by bounded buffers is the
//! canonical instance. Serial stages run on one thread and preserve
//! order; parallel stages fan out over several threads (item order at
//! the output is then arrival order).

use std::sync::Arc;
use std::thread;

use crate::sync::BoundedBuffer;

/// Concurrency of a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// One thread, input order preserved end-to-end.
    Serial,
    /// `n` threads working the stage concurrently.
    Parallel(usize),
}

type StageFn<T> = Arc<dyn Fn(T) -> Option<T> + Send + Sync>;

/// A linear pipeline processing items of type `T` through boxed
/// transformation stages.
pub struct Pipeline<T: Send + 'static> {
    stages: Vec<(StageKind, StageFn<T>)>,
    buffer_capacity: usize,
}

impl<T: Send + 'static> Pipeline<T> {
    /// Start a pipeline whose inter-stage buffers hold `buffer_capacity`
    /// in-flight items (backpressure bound).
    pub fn new(buffer_capacity: usize) -> Self {
        Pipeline { stages: Vec::new(), buffer_capacity: buffer_capacity.max(1) }
    }

    /// Append a stage. Returning `None` from the stage filters the item
    /// out of the stream.
    pub fn stage(
        mut self,
        kind: StageKind,
        f: impl Fn(T) -> Option<T> + Send + Sync + 'static,
    ) -> Self {
        self.stages.push((kind, Arc::new(f)));
        self
    }

    /// Feed `input` through all stages, collecting the survivors.
    ///
    /// Spawns `sum(stage widths)` threads for the duration of the run —
    /// the pipeline is the explicit-threads teaching model, distinct
    /// from the pooled data-parallel loops in [`crate::par_iter`].
    pub fn run(self, input: Vec<T>) -> Vec<T> {
        if self.stages.is_empty() {
            return input;
        }
        let mut buffers: Vec<Arc<BoundedBuffer<T>>> = Vec::new();
        for _ in 0..=self.stages.len() {
            buffers.push(Arc::new(BoundedBuffer::new(self.buffer_capacity)));
        }

        let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
        for (i, (kind, f)) in self.stages.iter().enumerate() {
            let width = match kind {
                StageKind::Serial => 1,
                StageKind::Parallel(n) => (*n).max(1),
            };
            // A stage closes its output once all its workers are done;
            // track the remaining workers per stage.
            let remaining = Arc::new(std::sync::atomic::AtomicUsize::new(width));
            for _ in 0..width {
                let input = buffers[i].clone();
                let output = buffers[i + 1].clone();
                let f = f.clone();
                let remaining = remaining.clone();
                workers.push(thread::spawn(move || {
                    while let Some(item) = input.take() {
                        if let Some(out) = f(item) {
                            if output.put(out).is_err() {
                                break;
                            }
                        }
                    }
                    if remaining.fetch_sub(1, std::sync::atomic::Ordering::AcqRel) == 1 {
                        output.close();
                    }
                }));
            }
        }

        // Collector drains the last buffer while we feed the first, so
        // bounded buffers cannot deadlock the feeder.
        let last = buffers[self.stages.len()].clone();
        let collector = thread::spawn(move || {
            let mut out = Vec::new();
            while let Some(item) = last.take() {
                out.push(item);
            }
            out
        });

        let first = buffers[0].clone();
        for item in input {
            if first.put(item).is_err() {
                break;
            }
        }
        first.close();

        for w in workers {
            let _ = w.join();
        }
        collector.join().expect("pipeline collector panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_stages_preserve_order() {
        let out = Pipeline::new(4)
            .stage(StageKind::Serial, |x: i64| Some(x * 2))
            .stage(StageKind::Serial, |x| Some(x + 1))
            .run((0..100).collect());
        assert_eq!(out, (0..100).map(|x| x * 2 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn filtering_drops_items() {
        let out = Pipeline::new(4)
            .stage(StageKind::Serial, |x: i64| if x % 2 == 0 { Some(x) } else { None })
            .run((0..10).collect());
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn parallel_stage_processes_everything() {
        let mut out = Pipeline::new(4)
            .stage(StageKind::Parallel(3), |x: i64| Some(x * x))
            .run((0..200).collect());
        out.sort_unstable();
        assert_eq!(out, (0..200).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn mixed_pipeline() {
        let mut out = Pipeline::new(2)
            .stage(StageKind::Parallel(2), |x: i64| Some(x + 1000))
            .stage(StageKind::Serial, |x| if x % 3 == 0 { Some(x) } else { None })
            .stage(StageKind::Parallel(2), |x| Some(x - 1000))
            .run((0..60).collect());
        out.sort_unstable();
        let expect: Vec<i64> = (0..60).filter(|x| (x + 1000) % 3 == 0).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let out = Pipeline::new(4).run(vec![1, 2, 3]);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out = Pipeline::new(4).stage(StageKind::Serial, |x: i64| Some(x)).run(vec![]);
        assert!(out.is_empty());
    }

    #[test]
    fn more_items_than_buffer_capacity() {
        // Backpressure: 1-slot buffers with 1000 items must still drain.
        let out = Pipeline::new(1)
            .stage(StageKind::Serial, |x: i64| Some(x))
            .stage(StageKind::Serial, Some)
            .run((0..1000).collect());
        assert_eq!(out.len(), 1000);
    }
}
