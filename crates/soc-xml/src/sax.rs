//! Push-style SAX driver.
//!
//! The classic SAX model from the course: you hand a [`SaxHandler`] to
//! [`parse`] and receive callbacks as the document streams by, never
//! materializing a tree. Ideal for large documents and for extracting a
//! few fields.
//!
//! Callbacks receive the reader's borrowed data — [`RawName`] slices and
//! `&str` payloads — so a handler that only inspects (like
//! [`Statistics`]) processes a clean document with zero allocations.

use crate::error::XmlResult;
use crate::name::RawName;
use crate::reader::{Attribute, XmlEvent, XmlReader};

/// Callbacks invoked by the SAX driver. All methods have no-op defaults
/// so handlers implement only what they need.
pub trait SaxHandler {
    /// Document parsing has begun.
    fn start_document(&mut self) {}
    /// Document parsed to completion.
    fn end_document(&mut self) {}
    /// An element opened. `depth` is 0 for the root.
    fn start_element(&mut self, name: RawName<'_>, attributes: &[Attribute<'_>], depth: usize) {
        let _ = (name, attributes, depth);
    }
    /// An element closed.
    fn end_element(&mut self, name: RawName<'_>, depth: usize) {
        let _ = (name, depth);
    }
    /// Character data (text or CDATA).
    fn characters(&mut self, text: &str) {
        let _ = text;
    }
    /// A comment.
    fn comment(&mut self, text: &str) {
        let _ = text;
    }
    /// A processing instruction.
    fn processing_instruction(&mut self, target: &str, data: &str) {
        let _ = (target, data);
    }
}

/// Drive `handler` over `input`, returning the first well-formedness
/// error encountered, if any.
pub fn parse<H: SaxHandler>(input: &str, handler: &mut H) -> XmlResult<()> {
    let mut reader = XmlReader::new(input);
    handler.start_document();
    let mut depth = 0usize;
    loop {
        match reader.next_event()? {
            XmlEvent::StartDocument { .. } | XmlEvent::Doctype(_) => {}
            XmlEvent::StartElement { name } => {
                handler.start_element(name, reader.attributes(), depth);
                depth += 1;
            }
            XmlEvent::EndElement { name } => {
                depth -= 1;
                handler.end_element(name, depth);
            }
            XmlEvent::Text(t) => handler.characters(&t),
            XmlEvent::CData(t) => handler.characters(t),
            XmlEvent::Comment(t) => handler.comment(t),
            XmlEvent::ProcessingInstruction { target, data } => {
                handler.processing_instruction(target, data)
            }
            XmlEvent::EndDocument => {
                handler.end_document();
                return Ok(());
            }
        }
    }
}

/// A small ready-made handler that counts structural features of a
/// document — handy for streaming statistics and used by the XML bench.
/// Runs allocation-free on documents without entity references.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Statistics {
    /// Number of elements.
    pub elements: usize,
    /// Number of attributes across all elements.
    pub attributes: usize,
    /// Total character-data bytes.
    pub text_bytes: usize,
    /// Maximum element nesting depth (root = 1).
    pub max_depth: usize,
}

impl SaxHandler for Statistics {
    fn start_element(&mut self, _name: RawName<'_>, attributes: &[Attribute<'_>], depth: usize) {
        self.elements += 1;
        self.attributes += attributes.len();
        self.max_depth = self.max_depth.max(depth + 1);
    }

    fn characters(&mut self, text: &str) {
        self.text_bytes += text.len();
    }
}

/// Compute [`Statistics`] for a document in one streaming pass.
pub fn statistics(input: &str) -> XmlResult<Statistics> {
    let mut stats = Statistics::default();
    parse(input, &mut stats)?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Collector {
        log: Vec<String>,
    }

    impl SaxHandler for Collector {
        fn start_document(&mut self) {
            self.log.push("start-doc".into());
        }
        fn end_document(&mut self) {
            self.log.push("end-doc".into());
        }
        fn start_element(&mut self, name: RawName<'_>, attrs: &[Attribute<'_>], depth: usize) {
            self.log.push(format!("+{name}@{depth}({})", attrs.len()));
        }
        fn end_element(&mut self, name: RawName<'_>, depth: usize) {
            self.log.push(format!("-{name}@{depth}"));
        }
        fn characters(&mut self, text: &str) {
            self.log.push(format!("t:{text}"));
        }
    }

    #[test]
    fn callback_order_and_depths() {
        let mut c = Collector::default();
        parse("<a x='1'><b>t</b></a>", &mut c).unwrap();
        assert_eq!(
            c.log,
            vec!["start-doc", "+a@0(1)", "+b@1(0)", "t:t", "-b@1", "-a@0", "end-doc"]
        );
    }

    #[test]
    fn cdata_reaches_characters() {
        let mut c = Collector::default();
        parse("<a><![CDATA[<raw>]]></a>", &mut c).unwrap();
        assert!(c.log.contains(&"t:<raw>".to_string()));
    }

    #[test]
    fn statistics_counts() {
        let s = statistics("<a i='1' j='2'><b><c>xyz</c></b><b/></a>").unwrap();
        assert_eq!(s.elements, 4);
        assert_eq!(s.attributes, 2);
        assert_eq!(s.text_bytes, 3);
        assert_eq!(s.max_depth, 3);
    }

    #[test]
    fn malformed_input_propagates_error() {
        let mut c = Collector::default();
        assert!(parse("<a><b></a>", &mut c).is_err());
    }
}
