//! XML processing models head to head (CSE445 unit 4): streaming SAX
//! statistics vs DOM construction vs XPath querying vs serialization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use soc_xml::{sax, xpath, Document};

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(150))
}

fn bench_xml(c: &mut Criterion) {
    let mut group = c.benchmark_group("xml");

    for (label, breadth, depth) in [("small", 4usize, 3usize), ("medium", 6, 4), ("large", 8, 5)] {
        let xml = soc_bench::synthetic_xml(breadth, depth);
        group.throughput(Throughput::Bytes(xml.len() as u64));

        group.bench_with_input(BenchmarkId::new("sax_statistics", label), &xml, |b, xml| {
            b.iter(|| sax::statistics(std::hint::black_box(xml)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dom_parse", label), &xml, |b, xml| {
            b.iter(|| Document::parse_str(std::hint::black_box(xml)).unwrap())
        });

        let doc = Document::parse_str(&xml).unwrap();
        group.bench_with_input(BenchmarkId::new("xpath_descendants", label), &doc, |b, doc| {
            b.iter(|| xpath::eval("//n1[@id]", std::hint::black_box(doc)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("serialize", label), &doc, |b, doc| {
            b.iter(|| std::hint::black_box(doc).to_xml())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_xml
}
criterion_main!(benches);
