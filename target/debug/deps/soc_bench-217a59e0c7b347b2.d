/root/repo/target/debug/deps/soc_bench-217a59e0c7b347b2.d: crates/soc-bench/src/lib.rs

/root/repo/target/debug/deps/libsoc_bench-217a59e0c7b347b2.rlib: crates/soc-bench/src/lib.rs

/root/repo/target/debug/deps/libsoc_bench-217a59e0c7b347b2.rmeta: crates/soc-bench/src/lib.rs

crates/soc-bench/src/lib.rs:
