//! Spans: timed units of work with status and attributes.
//!
//! A [`Span`] is a guard — it stamps its start on creation and records
//! itself into the global [`crate::SpanStore`] on drop. Unsampled spans
//! still carry a [`TraceContext`] (so the decision propagates
//! downstream) but skip all bookkeeping: no allocation, no store
//! write — the sub-microsecond path the `observe` bench budgets.

use std::sync::OnceLock;
use std::time::Instant;

use soc_json::Value;

use crate::context::{self, ContextGuard, SpanId, TraceContext, TraceId};

/// What side of a hop a span describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanKind {
    /// Outbound request: the caller's view of a hop.
    Client,
    /// Inbound request: the callee's view of a hop.
    Server,
    /// Work local to one process (workflow steps, gateway logic).
    Internal,
}

impl SpanKind {
    /// Stable lowercase label.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Client => "client",
            SpanKind::Server => "server",
            SpanKind::Internal => "internal",
        }
    }
}

/// Terminal status of a span.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanStatus {
    /// Completed without a recorded error.
    Ok,
    /// [`Span::set_error`] was called.
    Error,
}

impl SpanStatus {
    /// Stable lowercase label.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanStatus::Ok => "ok",
            SpanStatus::Error => "error",
        }
    }
}

/// A finished span as kept by the [`crate::SpanStore`].
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: TraceId,
    /// This span's id.
    pub span_id: SpanId,
    /// Parent span id, `None` for a trace root.
    pub parent: Option<SpanId>,
    /// Operation name, e.g. `"gateway.attempt"`.
    pub name: String,
    /// Client / server / internal.
    pub kind: SpanKind,
    /// Start time, microseconds since process start.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub duration_us: u64,
    /// Terminal status.
    pub status: SpanStatus,
    /// Error detail when `status == Error`.
    pub error: Option<String>,
    /// Key/value attributes in insertion order.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// JSON form used by `/observe/traces/{id}`.
    pub fn to_json(&self) -> Value {
        let mut v = Value::Object(vec![]);
        v.set("span_id", self.span_id.to_hex());
        match self.parent {
            Some(p) => v.set("parent_span_id", p.to_hex()),
            None => v.set("parent_span_id", Value::Null),
        }
        v.set("name", self.name.as_str());
        v.set("kind", self.kind.as_str());
        v.set("start_us", self.start_us as i64);
        v.set("duration_us", self.duration_us as i64);
        v.set("status", self.status.as_str());
        if let Some(e) = &self.error {
            v.set("error", e.as_str());
        }
        let mut attrs = Value::Object(vec![]);
        for (k, val) in &self.attrs {
            attrs.set(k.clone(), val.as_str());
        }
        v.set("attrs", attrs);
        v
    }
}

/// Recording state carried only by sampled spans.
struct ActiveSpan {
    parent: Option<SpanId>,
    name: &'static str,
    kind: SpanKind,
    start_us: u64,
    started: Instant,
    status: SpanStatus,
    error: Option<String>,
    attrs: Vec<(String, String)>,
}

/// A live span guard. Records itself into the global store when
/// dropped (or via [`Span::finish`]).
pub struct Span {
    ctx: TraceContext,
    active: Option<Box<ActiveSpan>>,
    /// Head-unsampled but recorded anyway because tail sampling is on:
    /// the finished record goes to the tail buffer, not the store.
    tail_only: bool,
}

impl Span {
    fn start(
        ctx: TraceContext,
        parent: Option<SpanId>,
        name: &'static str,
        kind: SpanKind,
    ) -> Span {
        let tail_only = !ctx.sampled && crate::global().tail_keep_errors();
        let active = if ctx.sampled || tail_only {
            Some(Box::new(ActiveSpan {
                parent,
                name,
                kind,
                start_us: now_us(),
                started: Instant::now(),
                status: SpanStatus::Ok,
                error: None,
                attrs: Vec::new(),
            }))
        } else {
            None
        };
        Span { ctx, active, tail_only }
    }

    /// This span's propagated context (fresh span id under the parent's
    /// trace, or a fresh trace for roots).
    pub fn context(&self) -> TraceContext {
        self.ctx
    }

    /// Whether the span was sampled in — attribute and status calls on
    /// an unsampled span are no-ops, so callers can skip building
    /// attribute strings entirely.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// Attach a key/value attribute (no-op when unsampled).
    pub fn set_attr(&mut self, key: &str, value: impl Into<String>) {
        if let Some(a) = self.active.as_deref_mut() {
            a.attrs.push((key.to_string(), value.into()));
        }
    }

    /// Mark the span failed with a detail message (no-op when
    /// unsampled).
    pub fn set_error(&mut self, detail: impl Into<String>) {
        if let Some(a) = self.active.as_deref_mut() {
            a.status = SpanStatus::Error;
            a.error = Some(detail.into());
        }
    }

    /// Make this span the thread's current context until the guard
    /// drops — outbound transports then inject it, and child spans
    /// parent to it.
    pub fn activate(&self) -> ContextGuard {
        context::set_current(self.ctx)
    }

    /// Stop the clock and record the span now (equivalent to dropping
    /// it, but reads as intent at call sites).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            let duration_us = a.started.elapsed().as_micros().min(u64::MAX as u128) as u64;
            let record = SpanRecord {
                trace_id: self.ctx.trace_id,
                span_id: self.ctx.span_id,
                parent: a.parent,
                name: a.name.to_string(),
                kind: a.kind,
                start_us: a.start_us,
                duration_us,
                status: a.status,
                error: a.error,
                attrs: a.attrs,
            };
            if self.tail_only {
                // Buffered until the trace's fate is known; an error
                // anywhere in the trace flushes it into the store.
                for flushed in crate::global().tail.offer(record) {
                    crate::global().store().record(flushed);
                }
            } else {
                crate::global().store().record(record);
            }
        }
    }
}

/// Start a root span: fresh trace id, sampling decided by the global
/// sample rate.
pub fn root_span(name: &'static str, kind: SpanKind) -> Span {
    let ctx = TraceContext {
        trace_id: TraceId::generate(),
        span_id: SpanId::generate(),
        sampled: crate::global().sample(),
    };
    Span::start(ctx, None, name, kind)
}

/// Start a child of an explicit parent context (same trace, inherits
/// the parent's sampling decision). Used when the parent lives on
/// another thread or arrived over the wire.
pub fn child_span(parent: TraceContext, name: &'static str, kind: SpanKind) -> Span {
    let ctx = TraceContext {
        trace_id: parent.trace_id,
        span_id: SpanId::generate(),
        sampled: parent.sampled,
    };
    Span::start(ctx, Some(parent.span_id), name, kind)
}

/// Start a span under the thread's current context, or a new root if
/// none is active.
pub fn span(name: &'static str, kind: SpanKind) -> Span {
    match context::current() {
        Some(parent) => child_span(parent, name, kind),
        None => root_span(name, kind),
    }
}

/// Microseconds since process start (monotonic).
pub(crate) fn now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros().min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_root_records_into_store() {
        let mut s = root_span("test.sampled_root", SpanKind::Internal);
        assert!(s.is_recording());
        let trace = s.context().trace_id;
        s.set_attr("k", "v");
        s.finish();
        let spans = crate::global().store().trace(trace);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "test.sampled_root");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].attrs, vec![("k".to_string(), "v".to_string())]);
        assert_eq!(spans[0].status, SpanStatus::Ok);
    }

    /// Tests that flip the global tail-sampling flag (or assert that
    /// unsampled spans vanish) serialize here so they don't race.
    fn tail_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn unsampled_parent_disables_recording_but_propagates() {
        let _serial = tail_lock();
        let parent = TraceContext {
            trace_id: TraceId::generate(),
            span_id: SpanId::generate(),
            sampled: false,
        };
        let mut child = child_span(parent, "test.unsampled", SpanKind::Client);
        assert!(!child.is_recording());
        assert_eq!(child.context().trace_id, parent.trace_id);
        assert!(!child.context().sampled);
        child.set_attr("ignored", "yes");
        child.set_error("ignored");
        let trace = child.context().trace_id;
        child.finish();
        assert!(crate::global().store().trace(trace).is_empty());
    }

    #[test]
    fn activation_parents_nested_spans() {
        let root = root_span("test.parent", SpanKind::Internal);
        let root_ctx = root.context();
        let child_ctx = {
            let _g = root.activate();
            let child = span("test.child", SpanKind::Internal);
            child.context()
        };
        drop(root);
        assert_eq!(child_ctx.trace_id, root_ctx.trace_id);
        let spans = crate::global().store().trace(root_ctx.trace_id);
        assert_eq!(spans.len(), 2);
        let child_rec = spans.iter().find(|s| s.name == "test.child").unwrap();
        assert_eq!(child_rec.parent, Some(root_ctx.span_id));
    }

    #[test]
    fn tail_sampling_keeps_error_traces_and_drops_clean_ones() {
        let _serial = tail_lock();
        struct Off;
        impl Drop for Off {
            fn drop(&mut self) {
                crate::set_tail_keep_errors(false);
            }
        }
        let _off = Off;
        crate::set_tail_keep_errors(true);

        let unsampled = || TraceContext {
            trace_id: TraceId::generate(),
            span_id: SpanId::generate(),
            sampled: false,
        };

        // Clean head-unsampled trace: buffered, never stored.
        let clean = unsampled();
        child_span(clean, "test.tail_clean", SpanKind::Internal).finish();
        assert!(crate::global().store().trace(clean.trace_id).is_empty());

        // Erroring head-unsampled trace: sibling + parent + error span
        // all end up in the store.
        let parent = unsampled();
        child_span(parent, "test.tail_sibling", SpanKind::Internal).finish();
        let mut failing = child_span(parent, "test.tail_error", SpanKind::Client);
        failing.set_error("downstream reset");
        failing.finish();
        // A span finishing *after* promotion records directly.
        child_span(parent, "test.tail_late", SpanKind::Internal).finish();
        let spans = crate::global().store().trace(parent.trace_id);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"test.tail_sibling"), "{names:?}");
        assert!(names.contains(&"test.tail_error"), "{names:?}");
        assert!(names.contains(&"test.tail_late"), "{names:?}");
        let err = spans.iter().find(|s| s.name == "test.tail_error").unwrap();
        assert_eq!(err.status, SpanStatus::Error);
    }

    #[test]
    fn error_status_is_recorded() {
        let mut s = root_span("test.error", SpanKind::Server);
        let trace = s.context().trace_id;
        s.set_error("upstream exploded");
        drop(s);
        let spans = crate::global().store().trace(trace);
        assert_eq!(spans[0].status, SpanStatus::Error);
        assert_eq!(spans[0].error.as_deref(), Some("upstream exploded"));
    }
}
