/root/repo/target/debug/deps/soc_gateway-25def12041849bbd.d: crates/soc-gateway/src/lib.rs crates/soc-gateway/src/balance.rs crates/soc-gateway/src/breaker.rs crates/soc-gateway/src/limit.rs crates/soc-gateway/src/resolver.rs crates/soc-gateway/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libsoc_gateway-25def12041849bbd.rmeta: crates/soc-gateway/src/lib.rs crates/soc-gateway/src/balance.rs crates/soc-gateway/src/breaker.rs crates/soc-gateway/src/limit.rs crates/soc-gateway/src/resolver.rs crates/soc-gateway/src/stats.rs Cargo.toml

crates/soc-gateway/src/lib.rs:
crates/soc-gateway/src/balance.rs:
crates/soc-gateway/src/breaker.rs:
crates/soc-gateway/src/limit.rs:
crates/soc-gateway/src/resolver.rs:
crates/soc-gateway/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
