/root/repo/target/debug/examples/quickstart-199d20bed6ca34b2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-199d20bed6ca34b2: examples/quickstart.rs

examples/quickstart.rs:
