//! Finite state machines — Figure 2 of the paper expresses the
//! two-distance maze algorithm as an FSM "to be implemented in VPL
//! environment"; `soc-robotics` implements it on this module.
//!
//! States and events are strings; transitions carry optional guards and
//! actions over a typed context `C`.

use std::collections::HashMap;

type Guard<C> = Box<dyn Fn(&C) -> bool + Send + Sync>;
type ActionFn<C> = Box<dyn Fn(&mut C) + Send + Sync>;

/// A transition: on `event` in `from`, if `guard(ctx)`, run
/// `action(ctx)` and move to `to`.
struct Transition<C> {
    from: String,
    event: String,
    to: String,
    guard: Option<Guard<C>>,
    action: Option<ActionFn<C>>,
}

/// Builder for [`Fsm`].
pub struct FsmBuilder<C> {
    initial: String,
    states: Vec<String>,
    transitions: Vec<Transition<C>>,
}

impl<C: 'static> FsmBuilder<C> {
    /// Start building with the initial state.
    pub fn new(initial: &str) -> Self {
        FsmBuilder {
            initial: initial.to_string(),
            states: vec![initial.to_string()],
            transitions: Vec::new(),
        }
    }

    /// Declare a state (idempotent; transitions auto-declare too).
    pub fn state(mut self, name: &str) -> Self {
        if !self.states.iter().any(|s| s == name) {
            self.states.push(name.to_string());
        }
        self
    }

    /// Unconditional transition.
    pub fn on(self, from: &str, event: &str, to: &str) -> Self {
        self.transition(from, event, to, None::<fn(&C) -> bool>, None::<fn(&mut C)>)
    }

    /// Guarded transition.
    pub fn on_if(
        self,
        from: &str,
        event: &str,
        to: &str,
        guard: impl Fn(&C) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.transition(from, event, to, Some(guard), None::<fn(&mut C)>)
    }

    /// Transition with an action.
    pub fn on_do(
        self,
        from: &str,
        event: &str,
        to: &str,
        action: impl Fn(&mut C) + Send + Sync + 'static,
    ) -> Self {
        self.transition(from, event, to, None::<fn(&C) -> bool>, Some(action))
    }

    /// Fully general transition.
    pub fn transition(
        mut self,
        from: &str,
        event: &str,
        to: &str,
        guard: Option<impl Fn(&C) -> bool + Send + Sync + 'static>,
        action: Option<impl Fn(&mut C) + Send + Sync + 'static>,
    ) -> Self {
        for s in [from, to] {
            if !self.states.iter().any(|st| st == s) {
                self.states.push(s.to_string());
            }
        }
        self.transitions.push(Transition {
            from: from.to_string(),
            event: event.to_string(),
            to: to.to_string(),
            guard: guard.map(|g| Box::new(g) as Guard<C>),
            action: action.map(|a| Box::new(a) as ActionFn<C>),
        });
        self
    }

    /// Finish building.
    pub fn build(self) -> Fsm<C> {
        Fsm {
            state: self.initial.clone(),
            initial: self.initial,
            states: self.states,
            transitions: self.transitions,
            trace: Vec::new(),
        }
    }
}

/// A runnable state machine over context `C`.
pub struct Fsm<C> {
    initial: String,
    state: String,
    states: Vec<String>,
    transitions: Vec<Transition<C>>,
    trace: Vec<(String, String, String)>,
}

impl<C> Fsm<C> {
    /// Current state name.
    pub fn state(&self) -> &str {
        &self.state
    }

    /// All declared states.
    pub fn states(&self) -> &[String] {
        &self.states
    }

    /// `(from, event, to)` history of taken transitions.
    pub fn trace(&self) -> &[(String, String, String)] {
        &self.trace
    }

    /// Reset to the initial state, clearing the trace.
    pub fn reset(&mut self) {
        self.state = self.initial.clone();
        self.trace.clear();
    }

    /// Deliver an event. The first transition whose source, event, and
    /// guard match is taken; returns `true` if any fired. Unmatched
    /// events are ignored (Harel-style).
    pub fn dispatch(&mut self, event: &str, ctx: &mut C) -> bool {
        for t in &self.transitions {
            if t.from == self.state && t.event == event && t.guard.as_ref().is_none_or(|g| g(ctx)) {
                if let Some(a) = &t.action {
                    a(ctx);
                }
                self.trace.push((self.state.clone(), event.to_string(), t.to.clone()));
                self.state = t.to.clone();
                return true;
            }
        }
        false
    }

    /// Events accepted in the current state (guards not evaluated).
    pub fn accepted_events(&self) -> Vec<&str> {
        let mut evs: Vec<&str> = self
            .transitions
            .iter()
            .filter(|t| t.from == self.state)
            .map(|t| t.event.as_str())
            .collect();
        evs.sort();
        evs.dedup();
        evs
    }

    /// Static reachability check: which states cannot be reached from
    /// the initial state by any event sequence (guards ignored)?
    pub fn unreachable_states(&self) -> Vec<String> {
        let mut reach: HashMap<&str, bool> =
            self.states.iter().map(|s| (s.as_str(), false)).collect();
        let mut stack = vec![self.initial.as_str()];
        while let Some(s) = stack.pop() {
            if std::mem::replace(reach.get_mut(s).expect("declared"), true) {
                continue;
            }
            for t in &self.transitions {
                if t.from == s {
                    stack.push(&t.to);
                }
            }
        }
        let mut out: Vec<String> =
            self.states.iter().filter(|s| !reach[s.as_str()]).cloned().collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy turnstile: locked → (coin) → unlocked → (push) → locked.
    fn turnstile() -> Fsm<u32> {
        FsmBuilder::new("locked")
            .on_do("locked", "coin", "unlocked", |count| *count += 1)
            .on("unlocked", "push", "locked")
            .on("locked", "push", "locked")
            .build()
    }

    #[test]
    fn transitions_and_actions() {
        let mut fsm = turnstile();
        let mut coins = 0u32;
        assert_eq!(fsm.state(), "locked");
        assert!(fsm.dispatch("coin", &mut coins));
        assert_eq!(fsm.state(), "unlocked");
        assert_eq!(coins, 1);
        assert!(fsm.dispatch("push", &mut coins));
        assert_eq!(fsm.state(), "locked");
    }

    #[test]
    fn unmatched_events_ignored() {
        let mut fsm = turnstile();
        let mut c = 0u32;
        assert!(!fsm.dispatch("kick", &mut c));
        assert_eq!(fsm.state(), "locked");
    }

    #[test]
    fn guards_select_transitions() {
        let mut fsm: Fsm<i32> = FsmBuilder::new("idle")
            .on_if("idle", "go", "fast", |&v| v > 10)
            .on_if("idle", "go", "slow", |&v| v <= 10)
            .build();
        let mut v = 5;
        fsm.dispatch("go", &mut v);
        assert_eq!(fsm.state(), "slow");
        fsm.reset();
        let mut v = 50;
        fsm.dispatch("go", &mut v);
        assert_eq!(fsm.state(), "fast");
    }

    #[test]
    fn trace_records_history() {
        let mut fsm = turnstile();
        let mut c = 0u32;
        fsm.dispatch("coin", &mut c);
        fsm.dispatch("push", &mut c);
        assert_eq!(
            fsm.trace(),
            &[
                ("locked".to_string(), "coin".to_string(), "unlocked".to_string()),
                ("unlocked".to_string(), "push".to_string(), "locked".to_string()),
            ]
        );
        fsm.reset();
        assert!(fsm.trace().is_empty());
        assert_eq!(fsm.state(), "locked");
    }

    #[test]
    fn accepted_events_listed() {
        let fsm = turnstile();
        assert_eq!(fsm.accepted_events(), vec!["coin", "push"]);
    }

    #[test]
    fn unreachable_state_detection() {
        let fsm: Fsm<()> = FsmBuilder::new("a").on("a", "e", "b").state("island").build();
        assert_eq!(fsm.unreachable_states(), vec!["island"]);
        let fsm2 = turnstile();
        assert!(fsm2.unreachable_states().is_empty());
    }
}
