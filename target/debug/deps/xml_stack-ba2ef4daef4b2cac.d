/root/repo/target/debug/deps/xml_stack-ba2ef4daef4b2cac.d: tests/xml_stack.rs

/root/repo/target/debug/deps/xml_stack-ba2ef4daef4b2cac: tests/xml_stack.rs

tests/xml_stack.rs:
