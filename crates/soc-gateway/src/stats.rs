//! Gateway observability: per-upstream counters and latency
//! histograms, snapshotted as JSON on `/gateway/stats`.
//!
//! The histogram implementation lives in [`soc_observe`] — the gateway
//! was its first customer and the type moved down the stack when the
//! metrics plane was unified. The alias keeps the original name; the
//! per-upstream histograms are registered in the process-wide
//! [`soc_observe::MetricsRegistry`], so the same series the JSON
//! snapshot reports also shows up as
//! `soc_gateway_upstream_latency_us{upstream="…"}` on
//! `/observe/metrics`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use soc_json::Value;

pub use soc_observe::{Histogram as LatencyHistogram, LATENCY_BUCKETS_US};

/// Counters for one upstream replica.
#[derive(Default)]
pub struct UpstreamStats {
    /// Proxied requests sent (including retries).
    pub requests: AtomicU64,
    /// Requests answered without an upstream failure.
    pub successes: AtomicU64,
    /// 5xx answers and transport errors.
    pub failures: AtomicU64,
    /// Requests that were retry attempts (second try onward).
    pub retries: AtomicU64,
    /// Requests in flight right now.
    pub in_flight: AtomicUsize,
    /// Latency of every proxied request; shared with the global metrics
    /// registry.
    pub histogram: Arc<LatencyHistogram>,
}

/// Gateway-wide counters plus the per-upstream table.
#[derive(Default)]
pub struct GatewayStats {
    upstreams: RwLock<HashMap<String, Arc<UpstreamStats>>>,
    /// Requests admitted past rate limiting and the concurrency cap.
    pub admitted: AtomicU64,
    /// Requests shed by the token bucket.
    pub shed_rate: AtomicU64,
    /// Requests shed by the concurrency cap.
    pub shed_load: AtomicU64,
    /// Requests shed by a per-service admission quota.
    pub shed_service: AtomicU64,
    /// Requests that ran out of deadline inside the gateway.
    pub deadline_exceeded: AtomicU64,
    /// Requests for services with no known replicas.
    pub no_upstream: AtomicU64,
    /// Backup requests launched because a primary crossed its hedge
    /// delay.
    pub hedges_launched: AtomicU64,
    /// Hedged requests where the backup's answer won the race.
    pub hedges_won: AtomicU64,
    /// Outlier-ejection events (re-ejections after re-admission count
    /// again).
    pub ejections: AtomicU64,
    /// Shard-map publishes rejected because their version was older
    /// than the map already routing (a delayed rebalance publish).
    pub shard_map_rejects: AtomicU64,
    /// `not_primary` redirect hops followed for shard-keyed requests.
    pub shard_redirects: AtomicU64,
}

impl GatewayStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stats cell for `endpoint`, created on first use.
    pub fn upstream(&self, endpoint: &str) -> Arc<UpstreamStats> {
        if let Some(s) = self.upstreams.read().get(endpoint) {
            return s.clone();
        }
        self.upstreams
            .write()
            .entry(endpoint.to_string())
            .or_insert_with(|| {
                Arc::new(UpstreamStats {
                    histogram: soc_observe::metrics()
                        .histogram("soc_gateway_upstream_latency_us", &[("upstream", endpoint)]),
                    ..UpstreamStats::default()
                })
            })
            .clone()
    }

    /// Endpoints seen so far, sorted.
    pub fn upstream_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.upstreams.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Total requests shed for any reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_rate.load(Ordering::Relaxed)
            + self.shed_load.load(Ordering::Relaxed)
            + self.shed_service.load(Ordering::Relaxed)
    }

    /// Snapshot as JSON. `breaker_label` supplies each upstream's
    /// breaker state ("closed" / "open" / "half-open"); `ejected`
    /// whether the replica is currently held out of balancing.
    pub fn to_json(
        &self,
        policy: &str,
        breaker_label: impl Fn(&str) -> &'static str,
        ejected: impl Fn(&str) -> bool,
    ) -> Value {
        let mut shed = Value::Object(vec![]);
        shed.set("rate", self.shed_rate.load(Ordering::Relaxed) as i64);
        shed.set("load", self.shed_load.load(Ordering::Relaxed) as i64);
        shed.set("service_quota", self.shed_service.load(Ordering::Relaxed) as i64);
        shed.set("total", self.shed_total() as i64);

        let mut hedges = Value::Object(vec![]);
        hedges.set("launched", self.hedges_launched.load(Ordering::Relaxed) as i64);
        hedges.set("won", self.hedges_won.load(Ordering::Relaxed) as i64);

        let mut upstreams = Value::Object(vec![]);
        for name in self.upstream_names() {
            let s = self.upstream(&name);
            let mut u = Value::Object(vec![]);
            u.set("requests", s.requests.load(Ordering::Relaxed) as i64);
            u.set("successes", s.successes.load(Ordering::Relaxed) as i64);
            u.set("failures", s.failures.load(Ordering::Relaxed) as i64);
            u.set("retries", s.retries.load(Ordering::Relaxed) as i64);
            u.set("in_flight", s.in_flight.load(Ordering::Relaxed) as i64);
            u.set("breaker", breaker_label(&name));
            u.set("ejected", ejected(&name));
            u.set("mean_latency_us", s.histogram.mean_us() as i64);
            if let Some(p50) = s.histogram.quantile_us(0.50) {
                u.set("p50_latency_us", p50 as i64);
            }
            if let Some(p99) = s.histogram.quantile_us(0.99) {
                u.set("p99_latency_us", p99 as i64);
            }
            let buckets: Vec<Value> = s
                .histogram
                .buckets()
                .into_iter()
                .map(|(bound, n)| {
                    Value::Array(vec![
                        bound.map(|b| Value::from(b as i64)).unwrap_or(Value::Null),
                        Value::from(n as i64),
                    ])
                })
                .collect();
            u.set("latency_buckets_us", Value::Array(buckets));
            upstreams.set(name, u);
        }

        let mut root = Value::Object(vec![]);
        root.set("policy", policy);
        root.set("admitted", self.admitted.load(Ordering::Relaxed) as i64);
        root.set("shed", shed);
        root.set("deadline_exceeded", self.deadline_exceeded.load(Ordering::Relaxed) as i64);
        root.set("no_upstream", self.no_upstream.load(Ordering::Relaxed) as i64);
        root.set("hedges", hedges);
        root.set("ejections", self.ejections.load(Ordering::Relaxed) as i64);
        let mut shard = Value::Object(vec![]);
        shard.set("map_rejects", self.shard_map_rejects.load(Ordering::Relaxed) as i64);
        shard.set("redirects", self.shard_redirects.load(Ordering::Relaxed) as i64);
        root.set("shard", shard);
        root.set("upstreams", upstreams);
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::new();
        for ms in [1u64, 1, 1, 2, 4, 9, 40, 400] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 8);
        // Rank 4 of 8: three 1 ms samples fill the 1000 µs bucket, the
        // 2 ms sample tips the median into the 2500 µs bucket.
        assert_eq!(h.quantile_us(0.5), Some(2_500));
        assert_eq!(h.quantile_us(1.0), Some(500_000));
        assert!(h.mean_us() > 0);
        let total: u64 = h.buckets().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_secs(5));
        let buckets = h.buckets();
        assert_eq!(buckets, vec![(None, 1)]);
        assert_eq!(h.quantile_us(0.5), Some(1_000_000));
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), None);
        assert_eq!(h.mean_us(), 0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn stats_json_snapshot() {
        let stats = GatewayStats::new();
        stats.admitted.fetch_add(3, Ordering::Relaxed);
        stats.shed_rate.fetch_add(1, Ordering::Relaxed);
        stats.shed_service.fetch_add(2, Ordering::Relaxed);
        stats.hedges_launched.fetch_add(4, Ordering::Relaxed);
        stats.hedges_won.fetch_add(1, Ordering::Relaxed);
        stats.ejections.fetch_add(1, Ordering::Relaxed);
        let up = stats.upstream("mem://a");
        up.requests.fetch_add(3, Ordering::Relaxed);
        up.successes.fetch_add(2, Ordering::Relaxed);
        up.failures.fetch_add(1, Ordering::Relaxed);
        up.histogram.record(Duration::from_millis(2));
        let v = stats.to_json("round-robin", |_| "closed", |_| true);
        let text = v.to_string();
        assert!(text.contains("\"policy\""));
        let parsed = Value::parse(&text).unwrap();
        assert_eq!(
            parsed.pointer("/upstreams/mem:~1~1a/requests").and_then(Value::as_i64),
            Some(3)
        );
        assert_eq!(v.pointer("/admitted").and_then(Value::as_i64), Some(3));
        assert_eq!(v.pointer("/shed/service_quota").and_then(Value::as_i64), Some(2));
        assert_eq!(v.pointer("/shed/total").and_then(Value::as_i64), Some(3));
        assert_eq!(v.pointer("/hedges/launched").and_then(Value::as_i64), Some(4));
        assert_eq!(v.pointer("/hedges/won").and_then(Value::as_i64), Some(1));
        assert_eq!(v.pointer("/ejections").and_then(Value::as_i64), Some(1));
        assert_eq!(
            v.pointer("/upstreams/mem:~1~1a/breaker").and_then(Value::as_str),
            Some("closed")
        );
        assert_eq!(v.pointer("/upstreams/mem:~1~1a/ejected").and_then(Value::as_bool), Some(true));
    }
}
