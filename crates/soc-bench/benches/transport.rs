//! Binding and transport overhead: the same logical call as REST-JSON
//! vs SOAP-XML, over the in-memory network vs real TCP sockets, plus
//! raw codec costs.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use soc_http::mem::Transport;
use soc_http::{HttpClient, HttpServer, MemNetwork, Request};
use soc_json::json;
use soc_rest::RestClient;
use soc_soap::client::SoapClient;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(150))
}

fn bench_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport");

    // Shared provider on the virtual network.
    let net = MemNetwork::new();
    soc_services::bindings::host_all(&net, 3);
    let mem_transport: Arc<dyn Transport> = Arc::new(net);

    // REST vs SOAP for the same operation (credit score).
    let rest = RestClient::new(mem_transport.clone());
    group.bench_function("mem/rest_credit_score", |b| {
        b.iter(|| rest.get("mem://services.asu/credit/score?ssn=123-45-6789").unwrap())
    });
    let soap = SoapClient::new(mem_transport.clone());
    let contract = soc_services::bindings::credit_score_contract();
    group.bench_function("mem/soap_credit_score", |b| {
        b.iter(|| {
            soap.call("mem://soap.asu/credit", &contract, "GetScore", &[("ssn", "123-45-6789")])
                .unwrap()
        })
    });

    // Raw envelope codec costs (the overhead source).
    group.bench_function("codec/soap_envelope_roundtrip", |b| {
        b.iter(|| {
            let xml = soc_soap::envelope::encode(
                "urn:x",
                "Op",
                &[("a".to_string(), "1".to_string()), ("b".to_string(), "two".to_string())],
            );
            soc_soap::envelope::decode(std::hint::black_box(&xml)).unwrap()
        })
    });
    group.bench_function("codec/json_roundtrip", |b| {
        let v = json!({ "a": 1, "b": "two", "nested": { "xs": [1, 2, 3] } });
        b.iter(|| soc_json::Value::parse(&std::hint::black_box(&v).to_compact()).unwrap())
    });

    // In-memory vs TCP for the same REST call.
    let server =
        HttpServer::bind("127.0.0.1:0", 2, soc_services::bindings::ServiceHost::new(3)).unwrap();
    let url = format!("{}/credit/score?ssn=123-45-6789", server.url());
    let tcp = HttpClient::new();
    group.bench_function("tcp/rest_credit_score", |b| {
        b.iter(|| tcp.send(Request::get(url.clone())).unwrap())
    });
    group.bench_function("mem/raw_request", |b| {
        b.iter(|| {
            mem_transport
                .send(Request::get("mem://services.asu/credit/score?ssn=123-45-6789"))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_transport
}
criterion_main!(benches);
