/root/repo/target/release/examples/gateway_marketplace-77ee01e4ef7262f0.d: examples/gateway_marketplace.rs

/root/repo/target/release/examples/gateway_marketplace-77ee01e4ef7262f0: examples/gateway_marketplace.rs

examples/gateway_marketplace.rs:
