/root/repo/target/debug/deps/proptests-68e573ac500e5338.d: crates/soc-robotics/tests/proptests.rs

/root/repo/target/debug/deps/proptests-68e573ac500e5338: crates/soc-robotics/tests/proptests.rs

crates/soc-robotics/tests/proptests.rs:
