//! Hedged requests: racing a backup attempt against a slow primary.
//!
//! "The Tail at Scale" observation: when one replica in a set stalls,
//! waiting it out costs the caller the whole stall, while sending a
//! *backup* request to a second replica after a p95-shaped delay costs
//! ~5% extra load and collapses the tail. The gateway arms a hedge
//! per attempt: if the picked replica's observed p95 elapses with no
//! answer, a second, breaker-admitted replica gets the same request
//! and the first success wins.
//!
//! Cancellation is cooperative-by-neglect: the blocking transports
//! here cannot abort an in-flight send, so the losing arm simply runs
//! to completion on the gateway's hedge [`ThreadPool`] and its result
//! is dropped. Each arm therefore carries its *own* accounting
//! (breaker, monitor, stats) inside its closure — a loser still
//! reports its outcome, it just doesn't answer the caller.

use std::sync::mpsc::{self, RecvTimeoutError};
use std::time::{Duration, Instant};

use soc_parallel::ThreadPool;

/// Tuning for request hedging.
#[derive(Debug, Clone)]
pub struct HedgeConfig {
    /// Master switch; `false` never hedges.
    pub enabled: bool,
    /// Worker threads in the gateway's hedge pool. Arms *block* on
    /// their sends, so this is sized for concurrent in-flight arms
    /// (including losers sleeping out a stall), not for CPU cores —
    /// on a 1-core host a cores-sized pool could never run a backup
    /// while its primary blocks.
    pub threads: usize,
    /// Observed-latency samples a replica needs before its p95 is
    /// trusted as a hedge trigger. Below this, no hedge arms.
    pub min_samples: usize,
    /// Floor on the hedge delay: even a microsecond-fast replica set
    /// waits at least this long before spending a backup request.
    pub min_delay: Duration,
    /// Ceiling on the hedge delay, so one pathological p95 cannot
    /// defer hedging past the request deadline.
    pub max_delay: Duration,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            enabled: true,
            threads: 8,
            min_samples: 8,
            min_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(250),
        }
    }
}

impl HedgeConfig {
    /// The delay after which a hedge fires for a replica whose recent
    /// p95 is `p95` over `samples` observations, or `None` when the
    /// evidence is too thin (or hedging is off).
    pub fn hedge_delay(&self, p95: Option<Duration>, samples: usize) -> Option<Duration> {
        if !self.enabled || samples < self.min_samples {
            return None;
        }
        Some(p95?.clamp(self.min_delay, self.max_delay))
    }
}

/// What [`hedged_race`] produced.
pub enum HedgeOutcome<R> {
    /// An arm delivered `result`. `hedged` says whether a backup was
    /// launched at all; `backup_won` whether the backup's answer is
    /// the one returned.
    Finished { result: R, hedged: bool, backup_won: bool },
    /// The deadline lapsed with no arm finished. Any in-flight arms
    /// keep running detached and report to their own accounting.
    DeadlineExpired { hedged: bool },
}

/// Run `primary` on `pool`; if it hasn't answered within
/// `hedge_after`, obtain a backup arm from `backup` (which returns
/// `None` when no second replica can be admitted) and race both,
/// returning the first result `is_success` likes. A failing arm is
/// held until the other arm answers — a fast failure never beats a
/// slow success unless both fail. Past `deadline`, gives up.
pub fn hedged_race<R, P, B>(
    pool: &ThreadPool,
    primary: P,
    hedge_after: Duration,
    deadline: Instant,
    backup: impl FnOnce() -> Option<B>,
    is_success: impl Fn(&R) -> bool,
) -> HedgeOutcome<R>
where
    R: Send + 'static,
    P: FnOnce() -> R + Send + 'static,
    B: FnOnce() -> R + Send + 'static,
{
    let (tx, rx) = mpsc::channel::<(bool, R)>();

    let primary_tx = tx.clone();
    pool.spawn_detached(move || {
        let _ = primary_tx.send((false, primary()));
    });

    let first_wait = hedge_after.min(deadline.saturating_duration_since(Instant::now()));
    match rx.recv_timeout(first_wait) {
        // Fast answer — success or failure — before the hedge point:
        // return it; failures are the retry loop's business, not a
        // reason to spend a backup request.
        Ok((_, result)) => {
            return HedgeOutcome::Finished { result, hedged: false, backup_won: false }
        }
        Err(RecvTimeoutError::Timeout) => {}
        Err(RecvTimeoutError::Disconnected) => unreachable!("race holds a sender"),
    }
    if Instant::now() >= deadline {
        return HedgeOutcome::DeadlineExpired { hedged: false };
    }

    // Hedge point: the primary is officially slow.
    let hedged = match backup() {
        Some(arm) => {
            let backup_tx = tx.clone();
            pool.spawn_detached(move || {
                let _ = backup_tx.send((true, arm()));
            });
            true
        }
        None => false,
    };
    drop(tx);

    let mut pending = if hedged { 2u8 } else { 1 };
    let mut last_failure: Option<(bool, R)> = None;
    while pending > 0 {
        let wait = deadline.saturating_duration_since(Instant::now());
        if wait.is_zero() {
            break;
        }
        match rx.recv_timeout(wait) {
            Ok((backup_won, result)) => {
                pending -= 1;
                if is_success(&result) || pending == 0 {
                    return HedgeOutcome::Finished { result, hedged, backup_won };
                }
                last_failure = Some((backup_won, result));
            }
            Err(_) => break,
        }
    }
    match last_failure {
        Some((backup_won, result)) => HedgeOutcome::Finished { result, hedged, backup_won },
        None => HedgeOutcome::DeadlineExpired { hedged },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn far() -> Instant {
        Instant::now() + Duration::from_secs(10)
    }

    // A private pool per test: arms block (sleep) in these tests, and
    // sharing the fixed-size global pool with other tests would let an
    // unrelated sleeping arm delay this race's backup.
    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    fn ok(v: i32) -> Result<i32, i32> {
        Ok(v)
    }

    #[test]
    fn fast_primary_never_hedges() {
        let p = pool();
        let out = hedged_race(
            &p,
            || ok(1),
            Duration::from_millis(50),
            far(),
            || Some(|| ok(2)),
            |r| r.is_ok(),
        );
        match out {
            HedgeOutcome::Finished { result, hedged, backup_won } => {
                assert_eq!(result, Ok(1));
                assert!(!hedged);
                assert!(!backup_won);
            }
            _ => panic!("expected a finish"),
        }
    }

    #[test]
    fn slow_primary_loses_to_the_backup() {
        let p = pool();
        let out = hedged_race(
            &p,
            || {
                std::thread::sleep(Duration::from_millis(100));
                ok(1)
            },
            Duration::from_millis(5),
            far(),
            || Some(|| ok(2)),
            |r| r.is_ok(),
        );
        match out {
            HedgeOutcome::Finished { result, hedged, backup_won } => {
                assert_eq!(result, Ok(2));
                assert!(hedged);
                assert!(backup_won);
            }
            _ => panic!("expected a finish"),
        }
    }

    #[test]
    fn failing_backup_waits_for_the_slow_primary() {
        let p = pool();
        let out = hedged_race(
            &p,
            || {
                std::thread::sleep(Duration::from_millis(40));
                ok(1)
            },
            Duration::from_millis(5),
            far(),
            || Some(|| Err(9)),
            |r: &Result<i32, i32>| r.is_ok(),
        );
        match out {
            HedgeOutcome::Finished { result, hedged, backup_won } => {
                assert_eq!(result, Ok(1), "a fast failure must not beat a slow success");
                assert!(hedged);
                assert!(!backup_won);
            }
            _ => panic!("expected a finish"),
        }
    }

    #[test]
    fn both_failing_returns_a_failure() {
        let p = pool();
        let out = hedged_race(
            &p,
            || {
                std::thread::sleep(Duration::from_millis(20));
                Err::<i32, i32>(1)
            },
            Duration::from_millis(5),
            far(),
            || Some(|| Err(2)),
            |r| r.is_ok(),
        );
        match out {
            HedgeOutcome::Finished { result, hedged, .. } => {
                assert!(result.is_err());
                assert!(hedged);
            }
            _ => panic!("expected a finish"),
        }
    }

    #[test]
    fn no_admissible_backup_still_waits_for_the_primary() {
        let p = pool();
        let out = hedged_race(
            &p,
            || {
                std::thread::sleep(Duration::from_millis(30));
                ok(7)
            },
            Duration::from_millis(5),
            far(),
            || None::<fn() -> Result<i32, i32>>,
            |r| r.is_ok(),
        );
        match out {
            HedgeOutcome::Finished { result, hedged, backup_won } => {
                assert_eq!(result, Ok(7));
                assert!(!hedged, "no backup was admitted");
                assert!(!backup_won);
            }
            _ => panic!("expected a finish"),
        }
    }

    #[test]
    fn deadline_expiry_abandons_the_race() {
        let p = pool();
        let out = hedged_race(
            &p,
            || {
                std::thread::sleep(Duration::from_millis(200));
                ok(1)
            },
            Duration::from_millis(5),
            Instant::now() + Duration::from_millis(30),
            || {
                Some(|| {
                    std::thread::sleep(Duration::from_millis(200));
                    ok(2)
                })
            },
            |r| r.is_ok(),
        );
        assert!(matches!(out, HedgeOutcome::DeadlineExpired { hedged: true }));
    }

    #[test]
    fn hedge_delay_gates_on_evidence() {
        let cfg = HedgeConfig::default();
        let p95 = Some(Duration::from_millis(10));
        assert_eq!(cfg.hedge_delay(p95, 100), Some(Duration::from_millis(10)));
        assert_eq!(cfg.hedge_delay(p95, 3), None, "thin evidence must not arm a hedge");
        assert_eq!(cfg.hedge_delay(None, 100), None);
        // Clamping at both ends.
        assert_eq!(cfg.hedge_delay(Some(Duration::from_micros(5)), 100), Some(cfg.min_delay));
        assert_eq!(cfg.hedge_delay(Some(Duration::from_secs(5)), 100), Some(cfg.max_delay));
        let off = HedgeConfig { enabled: false, ..cfg };
        assert_eq!(off.hedge_delay(p95, 100), None);
    }
}
