//! The service crawler: breadth-first discovery across peer directories.
//!
//! The paper: *"We also developed a service directory that lists services
//! offered by other service directories and repositories using a service
//! crawler that discovers available services online."* The crawler walks
//! the `peers` graph, pulls every reachable directory's service list,
//! deduplicates by id, and hands the result to the search engine.
//! Offline directories (a fact of life in the paper's free-service
//! world) are recorded, not fatal.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use soc_http::mem::Transport;

use crate::descriptor::ServiceDescriptor;
use crate::directory::DirectoryClient;
use crate::search::SearchEngine;

/// Limits for a crawl.
#[derive(Debug, Clone, Copy)]
pub struct CrawlConfig {
    /// Maximum number of directories visited.
    pub max_directories: usize,
    /// Maximum BFS depth from the seed (seed = depth 0).
    pub max_depth: usize,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig { max_directories: 64, max_depth: 8 }
    }
}

/// What a crawl found.
#[derive(Debug)]
pub struct CrawlReport {
    /// Unique services discovered, in discovery order.
    pub services: Vec<ServiceDescriptor>,
    /// Directories successfully visited.
    pub visited: Vec<String>,
    /// Directories that could not be reached, with the error text.
    pub unreachable: Vec<(String, String)>,
    /// Duplicate ids skipped (same service listed by several
    /// directories).
    pub duplicates: usize,
}

impl CrawlReport {
    /// Build a search engine over everything discovered.
    pub fn into_search_engine(self) -> SearchEngine {
        SearchEngine::build(self.services)
    }
}

/// The crawler itself.
pub struct Crawler {
    transport: Arc<dyn Transport>,
    config: CrawlConfig,
}

impl Crawler {
    /// Crawler over a transport with default limits.
    pub fn new(transport: Arc<dyn Transport>) -> Self {
        Crawler { transport, config: CrawlConfig::default() }
    }

    /// Override limits.
    pub fn with_config(mut self, config: CrawlConfig) -> Self {
        self.config = config;
        self
    }

    /// Crawl starting from `seed` directory URLs.
    pub fn crawl(&self, seeds: &[&str]) -> CrawlReport {
        let mut queue: VecDeque<(String, usize)> =
            seeds.iter().map(|s| (s.to_string(), 0)).collect();
        let mut enqueued: HashSet<String> = seeds.iter().map(|s| s.to_string()).collect();
        let mut seen_ids: HashSet<String> = HashSet::new();
        let mut report = CrawlReport {
            services: Vec::new(),
            visited: Vec::new(),
            unreachable: Vec::new(),
            duplicates: 0,
        };

        while let Some((dir_url, depth)) = queue.pop_front() {
            if report.visited.len() >= self.config.max_directories {
                break;
            }
            let client = DirectoryClient::new(self.transport.clone(), &dir_url);
            let services = match client.list() {
                Ok(s) => s,
                Err(e) => {
                    report.unreachable.push((dir_url, e.to_string()));
                    continue;
                }
            };
            report.visited.push(dir_url.clone());
            for d in services {
                if seen_ids.insert(d.id.clone()) {
                    report.services.push(d);
                } else {
                    report.duplicates += 1;
                }
            }
            if depth < self.config.max_depth {
                if let Ok(peers) = client.peers() {
                    for peer in peers {
                        if enqueued.insert(peer.clone()) {
                            queue.push_back((peer, depth + 1));
                        }
                    }
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::Binding;
    use crate::directory::DirectoryService;
    use crate::repository::Repository;
    use soc_http::mem::FaultConfig;
    use soc_http::MemNetwork;

    fn svc(id: &str, desc: &str) -> ServiceDescriptor {
        ServiceDescriptor::new(id, id, &format!("mem://svc/{id}"), Binding::Rest).describe(desc)
    }

    /// Three directories: a → b → c, with one service shared by a and c.
    fn topology() -> MemNetwork {
        let net = MemNetwork::new();
        let repo_a = Repository::new();
        repo_a.publish(svc("enc", "encryption")).unwrap();
        repo_a.publish(svc("shared", "listed twice")).unwrap();
        let (dir_a, _) = DirectoryService::new(repo_a, vec!["mem://dir-b".into()]);
        net.host("dir-a", dir_a);

        let repo_b = Repository::new();
        repo_b.publish(svc("cart", "shopping cart")).unwrap();
        let (dir_b, _) =
            DirectoryService::new(repo_b, vec!["mem://dir-c".into(), "mem://dir-a".into()]);
        net.host("dir-b", dir_b);

        let repo_c = Repository::new();
        repo_c.publish(svc("img", "captcha image verifier")).unwrap();
        repo_c.publish(svc("shared", "listed twice")).unwrap();
        let (dir_c, _) = DirectoryService::new(repo_c, vec![]);
        net.host("dir-c", dir_c);
        net
    }

    #[test]
    fn discovers_transitively_and_dedups() {
        let net = topology();
        let report = Crawler::new(Arc::new(net)).crawl(&["mem://dir-a"]);
        assert_eq!(report.visited.len(), 3);
        let ids: Vec<&str> = report.services.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(ids, vec!["enc", "shared", "cart", "img"]);
        assert_eq!(report.duplicates, 1);
        assert!(report.unreachable.is_empty());
    }

    #[test]
    fn cycles_do_not_loop() {
        // b links back to a; crawl must terminate with 3 visits.
        let net = topology();
        let report = Crawler::new(Arc::new(net)).crawl(&["mem://dir-b"]);
        assert_eq!(report.visited.len(), 3);
    }

    #[test]
    fn offline_directory_recorded_not_fatal() {
        let net = topology();
        net.set_fault("dir-b", FaultConfig { offline: true, ..Default::default() });
        let report = Crawler::new(Arc::new(net)).crawl(&["mem://dir-a"]);
        assert_eq!(report.visited, vec!["mem://dir-a".to_string()]);
        assert_eq!(report.unreachable.len(), 1);
        // Only dir-a's services found; the b→c edge was unreachable.
        assert_eq!(report.services.len(), 2);
    }

    #[test]
    fn depth_limit() {
        let net = topology();
        let crawler = Crawler::new(Arc::new(net))
            .with_config(CrawlConfig { max_depth: 0, max_directories: 64 });
        let report = crawler.crawl(&["mem://dir-a"]);
        assert_eq!(report.visited, vec!["mem://dir-a".to_string()]);
    }

    #[test]
    fn directory_count_limit() {
        let net = topology();
        let crawler = Crawler::new(Arc::new(net))
            .with_config(CrawlConfig { max_depth: 8, max_directories: 2 });
        let report = crawler.crawl(&["mem://dir-a"]);
        assert_eq!(report.visited.len(), 2);
    }

    #[test]
    fn crawl_feeds_the_search_engine() {
        let net = topology();
        let report = Crawler::new(Arc::new(net)).crawl(&["mem://dir-a"]);
        let engine = report.into_search_engine();
        let hits = engine.search("captcha", 5);
        assert_eq!(hits[0].service.id, "img");
    }

    #[test]
    fn empty_seed_list() {
        let net = topology();
        let report = Crawler::new(Arc::new(net)).crawl(&[]);
        assert!(report.services.is_empty());
        assert!(report.visited.is_empty());
    }
}
