//! Activity blocks: the vocabulary workflows are composed from.

use std::collections::HashMap;
use std::sync::Arc;

use soc_gateway::Gateway;
use soc_http::mem::Transport;
use soc_http::Request;
use soc_json::Value;

/// Why an activity failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ActivityError {
    /// A declared input was not supplied.
    MissingInput(String),
    /// The activity's own logic rejected the inputs.
    Failed(String),
    /// A service invocation failed.
    Service(String),
}

impl std::fmt::Display for ActivityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ActivityError::MissingInput(p) => write!(f, "missing input port {p:?}"),
            ActivityError::Failed(d) => write!(f, "activity failed: {d}"),
            ActivityError::Service(d) => write!(f, "service call failed: {d}"),
        }
    }
}

/// Values present on an activity's input ports at fire time.
pub type Ports = HashMap<String, Value>;

/// A workflow block: declared ports plus an execute function.
pub trait Activity: Send + Sync {
    /// Input port names.
    fn inputs(&self) -> Vec<String>;
    /// Output port names.
    fn outputs(&self) -> Vec<String>;
    /// Fire the block. All declared inputs are guaranteed present.
    /// Outputs may omit ports (e.g. an `If` fires only one branch).
    fn execute(&self, inputs: &Ports) -> Result<Ports, ActivityError>;
}

/// Emits a constant on port `out`.
pub struct Const {
    value: Value,
}

impl Const {
    /// A constant block.
    pub fn new(value: impl Into<Value>) -> Self {
        Const { value: value.into() }
    }
}

impl Activity for Const {
    fn inputs(&self) -> Vec<String> {
        vec![]
    }
    fn outputs(&self) -> Vec<String> {
        vec!["out".into()]
    }
    fn execute(&self, _inputs: &Ports) -> Result<Ports, ActivityError> {
        Ok(HashMap::from([("out".to_string(), self.value.clone())]))
    }
}

type ComputeFn = Box<dyn Fn(&Ports) -> Result<Value, String> + Send + Sync>;

/// A pure computation over named inputs, producing port `out`.
pub struct Compute {
    input_ports: Vec<String>,
    f: ComputeFn,
}

impl Compute {
    /// Build from input port names and a function.
    pub fn new(
        inputs: &[&str],
        f: impl Fn(&Ports) -> Result<Value, String> + Send + Sync + 'static,
    ) -> Self {
        Compute { input_ports: inputs.iter().map(|s| s.to_string()).collect(), f: Box::new(f) }
    }
}

impl Activity for Compute {
    fn inputs(&self) -> Vec<String> {
        self.input_ports.clone()
    }
    fn outputs(&self) -> Vec<String> {
        vec!["out".into()]
    }
    fn execute(&self, inputs: &Ports) -> Result<Ports, ActivityError> {
        let v = (self.f)(inputs).map_err(ActivityError::Failed)?;
        Ok(HashMap::from([("out".to_string(), v)]))
    }
}

/// Routes its `value` input to `then` or `else` depending on a
/// predicate over the `cond` input — VPL's If block.
pub struct If {
    predicate: Box<dyn Fn(&Value) -> bool + Send + Sync>,
}

impl If {
    /// Build from a predicate over the `cond` port.
    pub fn new(predicate: impl Fn(&Value) -> bool + Send + Sync + 'static) -> Self {
        If { predicate: Box::new(predicate) }
    }

    /// Convenience: condition is a boolean value.
    pub fn truthy() -> Self {
        If::new(|v| v.as_bool().unwrap_or(false))
    }
}

impl Activity for If {
    fn inputs(&self) -> Vec<String> {
        vec!["cond".into(), "value".into()]
    }
    fn outputs(&self) -> Vec<String> {
        vec!["then".into(), "else".into()]
    }
    fn execute(&self, inputs: &Ports) -> Result<Ports, ActivityError> {
        let cond = inputs.get("cond").ok_or_else(|| ActivityError::MissingInput("cond".into()))?;
        let value = inputs.get("value").cloned().unwrap_or(Value::Null);
        let port = if (self.predicate)(cond) { "then" } else { "else" };
        Ok(HashMap::from([(port.to_string(), value)]))
    }
}

/// Forwards whichever of its inputs arrived (first-wins if both) —
/// VPL's Merge block, used to rejoin If branches.
pub struct Merge;

impl Activity for Merge {
    fn inputs(&self) -> Vec<String> {
        vec!["a".into(), "b".into()]
    }
    fn outputs(&self) -> Vec<String> {
        vec!["out".into()]
    }
    fn execute(&self, inputs: &Ports) -> Result<Ports, ActivityError> {
        let v = inputs
            .get("a")
            .or_else(|| inputs.get("b"))
            .cloned()
            .ok_or_else(|| ActivityError::MissingInput("a|b".into()))?;
        Ok(HashMap::from([("out".to_string(), v)]))
    }
}

/// Where a [`ServiceCall`] sends its request.
#[derive(Clone)]
enum Target {
    /// Straight at one endpoint over a transport.
    Endpoint { transport: Arc<dyn Transport>, endpoint: String },
    /// Through a [`Gateway`] to whichever replica of `service` it
    /// picks — the composed activity inherits balancing, retries,
    /// breakers, and hedging for free.
    Gateway { gateway: Gateway, service: String, path: String },
}

/// Calls a REST service: GETs (or POSTs its `body` input to) the
/// target, emitting the parsed JSON response on `out`. This is the
/// block that turns a workflow into a *service composition*.
///
/// Built with [`ServiceCall::get`]/[`ServiceCall::post`] it calls one
/// fixed endpoint; with [`ServiceCall::get_via_gateway`]/
/// [`ServiceCall::post_via_gateway`] it calls a *service* through a
/// QoS-aware gateway, so the workflow survives a replica dying
/// mid-process.
#[derive(Clone)]
pub struct ServiceCall {
    target: Target,
    post: bool,
    // Distinguishes this block from other blocks posting the same
    // body in the same trace; part of the idempotency key.
    instance: u64,
}

fn next_instance() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl ServiceCall {
    /// GET the endpoint when fired (the `trigger` input gates firing).
    pub fn get(transport: Arc<dyn Transport>, endpoint: &str) -> Self {
        ServiceCall {
            target: Target::Endpoint { transport, endpoint: endpoint.to_string() },
            post: false,
            instance: next_instance(),
        }
    }

    /// POST the `body` input as JSON.
    pub fn post(transport: Arc<dyn Transport>, endpoint: &str) -> Self {
        ServiceCall {
            target: Target::Endpoint { transport, endpoint: endpoint.to_string() },
            post: true,
            instance: next_instance(),
        }
    }

    /// GET `path` on a replica of `service`, picked by `gateway`.
    pub fn get_via_gateway(gateway: Gateway, service: &str, path: &str) -> Self {
        ServiceCall {
            target: Target::Gateway {
                gateway,
                service: service.to_string(),
                path: path.to_string(),
            },
            post: false,
            instance: next_instance(),
        }
    }

    /// POST the `body` input as JSON to `path` on a replica of
    /// `service`, picked by `gateway`.
    pub fn post_via_gateway(gateway: Gateway, service: &str, path: &str) -> Self {
        ServiceCall {
            target: Target::Gateway {
                gateway,
                service: service.to_string(),
                path: path.to_string(),
            },
            post: true,
            instance: next_instance(),
        }
    }

    /// The idempotency key this block sends under `ctx`'s trace. The
    /// key doubles as the submission's server-side identifier, so a
    /// compensator can cancel *by reservation* — undoing a submission
    /// whose response was lost before the caller ever learned an id —
    /// as long as it runs within the same trace.
    pub fn idempotency_key_in(&self, ctx: &soc_observe::TraceContext) -> String {
        format!("wf-{:x}-{}", self.instance, ctx.trace_id.to_hex())
    }
}

impl Activity for ServiceCall {
    fn inputs(&self) -> Vec<String> {
        if self.post {
            vec!["body".into()]
        } else {
            vec!["trigger".into()]
        }
    }
    fn outputs(&self) -> Vec<String> {
        vec!["out".into()]
    }
    fn execute(&self, inputs: &Ports) -> Result<Ports, ActivityError> {
        // For a gateway target the request target is just the path;
        // Gateway::call treats it as the path on the chosen replica.
        let target = match &self.target {
            Target::Endpoint { endpoint, .. } => endpoint.as_str(),
            Target::Gateway { path, .. } => path.as_str(),
        };
        let req = if self.post {
            let body =
                inputs.get("body").ok_or_else(|| ActivityError::MissingInput("body".into()))?;
            // The key is stable per block instance within one trace:
            // gateway retries/hedges AND workflow-level re-fires of
            // the same logical request (saga retries after a lost
            // response) all dedupe at the origin, while a new run —
            // a new trace — is a new logical request.
            let key = match soc_observe::context::current() {
                Some(ctx) => self.idempotency_key_in(&ctx),
                None => soc_http::fresh_idempotency_key(),
            };
            Request::post(target, Vec::new())
                .with_text("application/json", &body.to_compact())
                .with_idempotency_key(&key)
        } else {
            Request::get(target)
        };
        let resp = match &self.target {
            Target::Endpoint { transport, .. } => {
                transport.send(req).map_err(|e| ActivityError::Service(e.to_string()))?
            }
            Target::Gateway { gateway, service, .. } => gateway.call(service, req),
        };
        if !resp.status.is_success() {
            return Err(ActivityError::Service(format!("status {}", resp.status)));
        }
        let text = resp.text_body().map_err(|e| ActivityError::Service(e.to_string()))?;
        let value = if text.trim().is_empty() {
            Value::Null
        } else {
            Value::parse(text).map_err(|e| ActivityError::Service(e.to_string()))?
        };
        Ok(HashMap::from([("out".to_string(), value)]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_http::{MemNetwork, Response};
    use soc_json::json;

    #[test]
    fn const_emits_value() {
        let c = Const::new(42);
        let out = c.execute(&HashMap::new()).unwrap();
        assert_eq!(out["out"].as_i64(), Some(42));
    }

    #[test]
    fn compute_runs_function() {
        let add = Compute::new(&["a", "b"], |p| {
            Ok(Value::from(
                p["a"].as_i64().ok_or("a not int")? + p["b"].as_i64().ok_or("b not int")?,
            ))
        });
        let mut ports = HashMap::new();
        ports.insert("a".to_string(), Value::from(2));
        ports.insert("b".to_string(), Value::from(40));
        assert_eq!(add.execute(&ports).unwrap()["out"].as_i64(), Some(42));
    }

    #[test]
    fn compute_error_is_failed() {
        let bad = Compute::new(&["x"], |_| Err("nope".into()));
        let mut ports = HashMap::new();
        ports.insert("x".to_string(), Value::Null);
        assert!(matches!(bad.execute(&ports), Err(ActivityError::Failed(_))));
    }

    #[test]
    fn if_routes_by_condition() {
        let block = If::truthy();
        let mut ports = HashMap::new();
        ports.insert("cond".to_string(), Value::Bool(true));
        ports.insert("value".to_string(), Value::from("x"));
        let out = block.execute(&ports).unwrap();
        assert_eq!(out.get("then").and_then(Value::as_str), Some("x"));
        assert!(!out.contains_key("else"));

        ports.insert("cond".to_string(), Value::Bool(false));
        let out = block.execute(&ports).unwrap();
        assert!(out.contains_key("else"));
    }

    #[test]
    fn merge_forwards_either_input() {
        let m = Merge;
        let mut ports = HashMap::new();
        ports.insert("b".to_string(), Value::from(7));
        assert_eq!(m.execute(&ports).unwrap()["out"].as_i64(), Some(7));
        assert!(matches!(m.execute(&HashMap::new()), Err(ActivityError::MissingInput(_))));
    }

    #[test]
    fn service_call_get_and_post() {
        let net = MemNetwork::new();
        net.host("svc", |req: Request| {
            if req.method == soc_http::Method::Post {
                Response::json(req.text().unwrap())
            } else {
                Response::json("{\"pong\":true}")
            }
        });
        let transport: Arc<dyn Transport> = Arc::new(net);

        let get = ServiceCall::get(transport.clone(), "mem://svc/ping");
        let mut trigger = HashMap::new();
        trigger.insert("trigger".to_string(), Value::Null);
        let out = get.execute(&trigger).unwrap();
        assert_eq!(out["out"].get("pong"), Some(&Value::Bool(true)));

        let post = ServiceCall::post(transport, "mem://svc/echo");
        let mut body = HashMap::new();
        body.insert("body".to_string(), json!({ "n": 5 }));
        let out = post.execute(&body).unwrap();
        assert_eq!(out["out"].pointer("/n").and_then(Value::as_i64), Some(5));
    }

    #[test]
    fn service_call_via_gateway_survives_a_dead_replica() {
        use soc_gateway::GatewayConfig;
        let net = MemNetwork::new();
        net.host("alive", |_req: Request| Response::json("{\"who\":\"alive\"}"));
        net.host("dead", |_req: Request| {
            Response::error(soc_http::Status::SERVICE_UNAVAILABLE, "down")
        });
        let gw = Gateway::new(Arc::new(net.clone()), GatewayConfig::default());
        gw.register("quote", &["mem://alive", "mem://dead"]);

        let call = ServiceCall::get_via_gateway(gw, "quote", "latest");
        let mut trigger = HashMap::new();
        trigger.insert("trigger".to_string(), Value::Null);
        // Round-robin alternates onto the dead replica; retries must
        // carry every firing to the live one.
        for _ in 0..4 {
            let out = call.execute(&trigger).unwrap();
            assert_eq!(out["out"].pointer("/who").and_then(Value::as_str), Some("alive"));
        }
        assert!(net.hits("dead") > 0, "gateway never even tried the dead replica");
    }

    #[test]
    fn service_call_error_statuses() {
        let net = MemNetwork::new();
        net.host("err", |_req: Request| {
            Response::error(soc_http::Status::SERVICE_UNAVAILABLE, "down")
        });
        let call = ServiceCall::get(Arc::new(net), "mem://err/");
        let mut trigger = HashMap::new();
        trigger.insert("trigger".to_string(), Value::Null);
        assert!(matches!(call.execute(&trigger), Err(ActivityError::Service(_))));
    }
}
