//! **Table 5 harness** — "CSE445/598 student evaluation scores", in the
//! paper's row format plus the summaries behind its "well received"
//! conclusion.
//!
//! ```sh
//! cargo run -p soc-bench --bin table5_evaluation
//! ```

use soc_curriculum::evaluation::{summary_445, summary_598, verbal_scale, TABLE5};

fn main() {
    println!("Table 5. CSE445/598 student evaluation scores");
    soc_bench::print_rule(48);
    println!("{:<6} {:<10} {:>10} {:>10}", "Year", "Semester", "445 score", "598 score");
    soc_bench::print_rule(48);
    for r in &TABLE5 {
        println!(
            "{:<6} {:<10} {:>10.2} {:>10.2}",
            r.year,
            r.semester.to_string(),
            r.cse445,
            r.cse598
        );
    }
    soc_bench::print_rule(48);

    let s445 = summary_445(&TABLE5).expect("data");
    let s598 = summary_598(&TABLE5).expect("data");
    println!("\nderived summaries (scale: 5.0 very good, 4.0 good, 3.0 fair, 2.0 poor):");
    println!(
        "  CSE445: mean {:.2} ({}) | min {:.2} | max {:.2} | first {:.2} → last {:.2}",
        s445.mean,
        verbal_scale(s445.mean),
        s445.min,
        s445.max,
        s445.first,
        s445.last
    );
    println!(
        "  CSE598: mean {:.2} ({}) | min {:.2} | max {:.2} | first {:.2} → last {:.2}",
        s598.mean,
        verbal_scale(s598.mean),
        s598.min,
        s598.max,
        s598.first,
        s598.last
    );
    println!("  598 ≥ 445 in every term: {}", TABLE5.iter().all(|r| r.cse598 >= r.cse445));
}
