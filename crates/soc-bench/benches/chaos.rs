//! Resilience-layer overheads: what the saga executor, retry machinery,
//! and fault-injection plane cost when nothing (and when everything)
//! goes wrong.
//!
//! The chaos harness proves the invariants hold; this harness proves
//! the machinery that upholds them is affordable. Each row is one hot
//! path — a clean saga run, a retry-to-recovery cycle, a full
//! compensation rollback, a seeded fault-verdict draw, an idempotency
//! key mint — and the coarse budgets are **asserted**, so
//! `cargo bench --bench chaos` is an executable acceptance check.
//!
//! Not a Criterion harness, for the same reason as `observe.rs`: the
//! budget asserts need a hard pass/fail, and the saga rows spawn real
//! activity threads, where a plain warm-up + timed-loop measurement is
//! steadier than statistical resampling.

use std::collections::HashMap;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use soc_http::fault::FaultRng;
use soc_json::Value;
use soc_workflow::activity::{Activity, ActivityError, Compute, Const, Ports};
use soc_workflow::graph::WorkflowGraph;
use soc_workflow::saga::{ResiliencePolicy, SagaConfig};

/// Coarse per-row budgets, in nanoseconds. The saga rows spawn one OS
/// thread per activity firing, so these are milliseconds-scale caps:
/// wide enough for a loaded CI box, tight enough to catch the executor
/// accidentally going quadratic or a stray sleep landing on a hot path.
const BUDGET_SAGA_NOOP_NS: f64 = 5_000_000.0;
const BUDGET_RETRY_NS: f64 = 10_000_000.0;
const BUDGET_COMPENSATION_NS: f64 = 10_000_000.0;
/// The fault plane's verdict draw sits on every in-memory send; it must
/// stay nanoseconds-cheap so a fault-configured network measures the
/// same as a clean one.
const BUDGET_VERDICT_NS: f64 = 1_000.0;

fn bench(name: &str, iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..(iters / 10).max(1) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
    println!("{name:<24} {ns:>12.1} ns/op   ({iters} iters)");
    ns
}

/// Fails on a fixed cadence: attempts 1 and 2 of every 3 error, the
/// third succeeds — so each saga run exercises exactly two retries.
struct FlakyTwice {
    attempts: AtomicU64,
}

impl Activity for FlakyTwice {
    fn inputs(&self) -> Vec<String> {
        vec!["in".into()]
    }
    fn outputs(&self) -> Vec<String> {
        vec!["out".into()]
    }
    fn execute(&self, inputs: &Ports) -> Result<Ports, ActivityError> {
        let n = self.attempts.fetch_add(1, Ordering::Relaxed);
        if n % 3 < 2 {
            return Err(ActivityError::Service("injected".into()));
        }
        Ok(HashMap::from([("out".to_string(), inputs["in"].clone())]))
    }
}

/// Always fails, so the saga must roll back whatever completed.
struct AlwaysFails;

impl Activity for AlwaysFails {
    fn inputs(&self) -> Vec<String> {
        vec!["in".into()]
    }
    fn outputs(&self) -> Vec<String> {
        vec!["out".into()]
    }
    fn execute(&self, _inputs: &Ports) -> Result<Ports, ActivityError> {
        Err(ActivityError::Service("injected".into()))
    }
}

/// Records nothing, succeeds instantly: the cheapest possible
/// compensator, so the row measures the executor's rollback path, not
/// the compensator body.
struct NoopCompensator;

impl Activity for NoopCompensator {
    fn inputs(&self) -> Vec<String> {
        vec!["out".into()]
    }
    fn outputs(&self) -> Vec<String> {
        vec!["out".into()]
    }
    fn execute(&self, inputs: &Ports) -> Result<Ports, ActivityError> {
        Ok(inputs.clone())
    }
}

fn noop_graph() -> WorkflowGraph {
    let mut g = WorkflowGraph::new();
    let a = g.add("a", Const::new(1));
    let b = g.add("b", Compute::new(&["in"], |p| Ok(Value::from(p["in"].as_i64().unwrap() + 1))));
    g.connect(a, "out", b, "in").unwrap();
    g
}

fn main() {
    println!("resilience-layer overhead");
    println!("{:<24} {:>15}", "operation", "cost");
    let saga = SagaConfig { deadline: Duration::from_secs(5), seed: 0xBE4C };

    // A clean two-node saga run: pure executor overhead (topo order,
    // per-node thread, completion log) with no retries, no rollback.
    let noop = noop_graph();
    let saga_noop = bench("saga_noop", 500, || {
        let out = noop.run_saga(&HashMap::new(), &saga).unwrap();
        assert!(black_box(&out).is_completed());
    });

    // Two injected failures absorbed by the policy, then success: the
    // retry loop with (tiny) backoff + jitter, three attempts per run.
    let retry_graph = {
        let mut g = WorkflowGraph::new();
        let a = g.add("a", Const::new(7));
        let f = g.add("flaky", FlakyTwice { attempts: AtomicU64::new(0) });
        g.connect(a, "out", f, "in").unwrap();
        g.set_policy(
            f,
            ResiliencePolicy::retries(4)
                .with_backoff(Duration::from_micros(20), Duration::from_micros(100)),
        )
        .unwrap();
        g
    };
    let retry = bench("saga_retry_recovery", 300, || {
        let out = retry_graph.run_saga(&HashMap::new(), &saga).unwrap();
        assert!(black_box(&out).is_completed());
    });

    // Forward step completes, the next node fails terminally, the
    // completed step is compensated: the full rollback round trip.
    let comp_graph = {
        let mut g = WorkflowGraph::new();
        let a = g.add("a", Const::new(7));
        let step = g.add("step", Compute::new(&["in"], |p| Ok(p["in"].clone())));
        let doomed = g.add("doomed", AlwaysFails);
        g.connect(a, "out", step, "in").unwrap();
        g.connect(step, "out", doomed, "in").unwrap();
        g.set_compensation(step, NoopCompensator).unwrap();
        g
    };
    let compensation = bench("saga_compensation", 300, || {
        let out = comp_graph.run_saga(&HashMap::new(), &saga).unwrap();
        assert!(!black_box(&out).is_completed());
    });

    // The per-send price of a fault-configured MemNetwork: one seeded
    // draw per injected decision.
    let mut rng = FaultRng::new(0xD1CE);
    let verdict = bench("fault_verdict_draw", 200_000, || {
        black_box(rng.chance(black_box(0.2)));
    });

    // Minting the Idempotency-Key a ServiceCall attaches to POSTs.
    bench("idempotency_key_mint", 200_000, || {
        black_box(soc_http::fresh_idempotency_key());
    });

    for (name, got, budget) in [
        ("saga_noop", saga_noop, BUDGET_SAGA_NOOP_NS),
        ("saga_retry_recovery", retry, BUDGET_RETRY_NS),
        ("saga_compensation", compensation, BUDGET_COMPENSATION_NS),
        ("fault_verdict_draw", verdict, BUDGET_VERDICT_NS),
    ] {
        assert!(got < budget, "{name} costs {got:.1} ns/op, over the {budget} ns budget");
    }
    println!("PASS: all rows within budget");
}
