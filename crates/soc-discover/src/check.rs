//! Static verification of composition plans.
//!
//! The checker is deliberately independent of the planner: it re-derives
//! every safety property from the [`Plan`] alone, so a planner bug (or a
//! hand-written plan) is caught before anything executes. A plan is
//! accepted only if:
//!
//! - every node input is wired exactly once, from a source that exists;
//! - every wire is type-correct end to end;
//! - every wanted goal output is delivered, with the right type;
//! - the node dependency graph is acyclic.
//!
//! [`crate::execute`] refuses to lower a plan that does not pass
//! [`verify`].

use std::collections::HashMap;
use std::fmt;

use soc_soap::contract::Param;

use crate::planner::{Goal, Plan, WireSource};

/// One reason a plan is unsafe to execute.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A node input has no wire.
    UnwiredInput {
        /// Consuming node index.
        node: usize,
        /// Unwired input name.
        port: String,
    },
    /// A node input has more than one wire.
    DoublyWiredInput {
        /// Consuming node index.
        node: usize,
        /// Over-wired input name.
        port: String,
    },
    /// A wire names a node or port that does not exist.
    UnknownSource {
        /// Consuming node index.
        node: usize,
        /// Input the bad wire feeds.
        port: String,
        /// What was wrong with the source.
        detail: String,
    },
    /// A wire connects a producer to a consumer of a different type.
    TypeMismatch {
        /// Consuming node index.
        node: usize,
        /// Input name.
        port: String,
        /// Type the consumer declares.
        expected: String,
        /// Type the producer delivers.
        found: String,
    },
    /// A wanted goal output is not delivered by the plan.
    MissingGoalOutput {
        /// The undelivered parameter, as `name: type`.
        name: String,
    },
    /// The node dependency graph has a cycle.
    Cycle,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnwiredInput { node, port } => {
                write!(f, "node {node}: input `{port}` is not wired")
            }
            Violation::DoublyWiredInput { node, port } => {
                write!(f, "node {node}: input `{port}` is wired more than once")
            }
            Violation::UnknownSource { node, port, detail } => {
                write!(f, "node {node}: input `{port}` wired from unknown source ({detail})")
            }
            Violation::TypeMismatch { node, port, expected, found } => {
                write!(f, "node {node}: input `{port}` expects {expected} but is fed {found}")
            }
            Violation::MissingGoalOutput { name } => {
                write!(f, "goal output `{name}` is not delivered")
            }
            Violation::Cycle => write!(f, "plan dependency graph has a cycle"),
        }
    }
}

/// The producing parameter a wire source delivers, or an error
/// description when the source does not exist.
fn source_type<'p>(
    plan: &'p Plan,
    goal: &'p Goal,
    source: &WireSource,
) -> Result<&'p Param, String> {
    match source {
        WireSource::Goal(name) => goal
            .have
            .iter()
            .find(|h| h.name == *name)
            .ok_or_else(|| format!("goal has no input `{name}`")),
        WireSource::Node { node, port } => {
            let n = plan.nodes.get(*node).ok_or_else(|| format!("no node #{node}"))?;
            n.outputs
                .iter()
                .find(|o| o.name == *port)
                .ok_or_else(|| format!("node #{node} has no output `{port}`"))
        }
    }
}

/// Check every safety property; an empty result means the plan is
/// accepted.
pub fn check(plan: &Plan, goal: &Goal) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Wiring counts per (node, input port).
    let mut wired: HashMap<(usize, &str), usize> = HashMap::new();
    for wire in &plan.wires {
        *wired.entry((wire.node, wire.port.as_str())).or_insert(0) += 1;
    }
    for (ni, node) in plan.nodes.iter().enumerate() {
        for input in &node.inputs {
            match wired.get(&(ni, input.name.as_str())).copied().unwrap_or(0) {
                0 => {
                    violations.push(Violation::UnwiredInput { node: ni, port: input.name.clone() })
                }
                1 => {}
                _ => violations
                    .push(Violation::DoublyWiredInput { node: ni, port: input.name.clone() }),
            }
        }
    }

    // Each wire: known consumer port, known producer, matching types.
    for wire in &plan.wires {
        let Some(node) = plan.nodes.get(wire.node) else {
            violations.push(Violation::UnknownSource {
                node: wire.node,
                port: wire.port.clone(),
                detail: format!("no node #{}", wire.node),
            });
            continue;
        };
        let Some(sink) = node.inputs.iter().find(|i| i.name == wire.port) else {
            violations.push(Violation::UnknownSource {
                node: wire.node,
                port: wire.port.clone(),
                detail: format!("node has no input `{}`", wire.port),
            });
            continue;
        };
        match source_type(plan, goal, &wire.source) {
            Err(detail) => violations.push(Violation::UnknownSource {
                node: wire.node,
                port: wire.port.clone(),
                detail,
            }),
            Ok(produced) if produced.ty != sink.ty => violations.push(Violation::TypeMismatch {
                node: wire.node,
                port: wire.port.clone(),
                expected: sink.ty.xsd_name().to_string(),
                found: produced.ty.xsd_name().to_string(),
            }),
            Ok(_) => {}
        }
    }

    // Every want is delivered with the right type.
    for want in &goal.want {
        let described = format!("{}: {}", want.name, want.ty.xsd_name());
        match plan.outputs.iter().find(|(name, _)| *name == want.name) {
            None => violations.push(Violation::MissingGoalOutput { name: described }),
            Some((_, source)) => match source_type(plan, goal, source) {
                Ok(p) if p.ty == want.ty => {}
                _ => violations.push(Violation::MissingGoalOutput { name: described }),
            },
        }
    }

    // Acyclicity (Kahn over node→node dependencies).
    let n = plan.nodes.len();
    let mut indegree = vec![0usize; n];
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for wire in &plan.wires {
        if let WireSource::Node { node: from, .. } = &wire.source {
            if *from < n && wire.node < n {
                out_edges[*from].push(wire.node);
                indegree[wire.node] += 1;
            }
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut seen = 0;
    while let Some(i) = ready.pop() {
        seen += 1;
        for &next in &out_edges[i] {
            indegree[next] -= 1;
            if indegree[next] == 0 {
                ready.push(next);
            }
        }
    }
    if seen != n {
        violations.push(Violation::Cycle);
    }

    violations
}

/// [`check`], as a hard gate.
pub fn verify(plan: &Plan, goal: &Goal) -> Result<(), Vec<Violation>> {
    let violations = check(plan, goal);
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{PlanNode, Wire};
    use soc_registry::Binding;
    use soc_soap::XsdType;

    fn param(name: &str, ty: XsdType) -> Param {
        Param { name: name.to_string(), ty }
    }

    fn node(
        service: &str,
        op: &str,
        inputs: &[(&str, XsdType)],
        outputs: &[(&str, XsdType)],
    ) -> PlanNode {
        PlanNode {
            service_id: service.into(),
            operation: op.into(),
            binding: Binding::Rest,
            namespace: String::new(),
            base_path: "/api".into(),
            replicas: vec![format!("mem://{service}")],
            inputs: inputs.iter().map(|(n, t)| param(n, *t)).collect(),
            outputs: outputs.iter().map(|(n, t)| param(n, *t)).collect(),
        }
    }

    fn goal() -> Goal {
        Goal::new().have("ssn", XsdType::String).want("score", XsdType::Int)
    }

    fn good_plan() -> Plan {
        Plan {
            nodes: vec![node(
                "credit",
                "Score",
                &[("ssn", XsdType::String)],
                &[("score", XsdType::Int)],
            )],
            wires: vec![Wire {
                node: 0,
                port: "ssn".into(),
                source: WireSource::Goal("ssn".into()),
            }],
            outputs: vec![("score".into(), WireSource::Node { node: 0, port: "score".into() })],
        }
    }

    #[test]
    fn a_sound_plan_is_accepted() {
        assert!(verify(&good_plan(), &goal()).is_ok());
    }

    #[test]
    fn unwired_and_doubly_wired_inputs_are_caught() {
        let mut p = good_plan();
        p.wires.clear();
        assert!(check(&p, &goal())
            .iter()
            .any(|v| matches!(v, Violation::UnwiredInput { node: 0, .. })));

        let mut p = good_plan();
        p.wires.push(p.wires[0].clone());
        assert!(check(&p, &goal())
            .iter()
            .any(|v| matches!(v, Violation::DoublyWiredInput { node: 0, .. })));
    }

    #[test]
    fn type_mismatches_are_caught() {
        let mut p = good_plan();
        // Feed the string-typed ssn input from an int-typed output.
        p.nodes.push(node("other", "Mint", &[], &[("ssn", XsdType::Int)]));
        p.wires[0].source = WireSource::Node { node: 1, port: "ssn".into() };
        let vs = check(&p, &goal());
        assert!(vs.iter().any(|v| matches!(v, Violation::TypeMismatch { .. })), "{vs:?}");
    }

    #[test]
    fn unknown_sources_and_missing_outputs_are_caught() {
        let mut p = good_plan();
        p.wires[0].source = WireSource::Node { node: 7, port: "x".into() };
        assert!(check(&p, &goal()).iter().any(|v| matches!(v, Violation::UnknownSource { .. })));

        let mut p = good_plan();
        p.outputs.clear();
        assert!(check(&p, &goal())
            .iter()
            .any(|v| matches!(v, Violation::MissingGoalOutput { .. })));

        // Delivered with the wrong type is as bad as not delivered.
        let mut p = good_plan();
        p.nodes[0].outputs[0].ty = XsdType::Double;
        assert!(check(&p, &goal())
            .iter()
            .any(|v| matches!(v, Violation::MissingGoalOutput { .. })));
    }

    #[test]
    fn cycles_are_caught() {
        let g = Goal::new().want("b", XsdType::Int);
        let p = Plan {
            nodes: vec![
                node("s1", "F", &[("a", XsdType::Int)], &[("b", XsdType::Int)]),
                node("s2", "G", &[("b", XsdType::Int)], &[("a", XsdType::Int)]),
            ],
            wires: vec![
                Wire {
                    node: 0,
                    port: "a".into(),
                    source: WireSource::Node { node: 1, port: "a".into() },
                },
                Wire {
                    node: 1,
                    port: "b".into(),
                    source: WireSource::Node { node: 0, port: "b".into() },
                },
            ],
            outputs: vec![("b".into(), WireSource::Node { node: 0, port: "b".into() })],
        };
        assert!(check(&p, &g).contains(&Violation::Cycle));
    }
}
