//! Cross-crate integration tests: whole topologies of the paper's
//! system — provider + broker + consumer, crawler federations, workflow
//! compositions, and the dependability scenarios — exercised through
//! the public API only.

use std::sync::Arc;

use soc::http::mem::{FaultConfig, Transport};
use soc::http::MemNetwork;
use soc::json::{json, Value};
use soc::registry::crawler::Crawler;
use soc::registry::directory::{DirectoryClient, DirectoryService};
use soc::registry::monitor::QosMonitor;
use soc::registry::Repository;
use soc::rest::RestClient;
use soc::soap::client::SoapClient;

/// Build the standard topology: services + a directory listing them.
fn marketplace() -> (MemNetwork, Arc<dyn Transport>) {
    let net = MemNetwork::new();
    let catalog = soc::services::bindings::host_all(&net, 1);
    let repo = Repository::new();
    for d in catalog {
        repo.publish(d).unwrap();
    }
    let (dir, _) = DirectoryService::new(repo, vec![]);
    net.host("directory", dir);
    let t: Arc<dyn Transport> = Arc::new(net.clone());
    (net, t)
}

#[test]
fn discover_then_invoke_rest_service() {
    let (_net, transport) = marketplace();
    // Discovery: find the cart service by free-text search.
    let dir = DirectoryClient::new(transport.clone(), "mem://directory");
    let hits = dir.search("shopping cart totals").unwrap();
    assert_eq!(hits[0].id, "cart");
    // Invocation: drive the discovered endpoint's API root.
    let rest = RestClient::new(transport);
    let created = rest.post("mem://services.asu/carts", &json!({})).unwrap();
    let id = created.get("cart").and_then(Value::as_i64).unwrap();
    rest.post(
        &format!("mem://services.asu/carts/{id}/items"),
        &json!({ "sku": "x", "name": "textbook", "unit_price": 100, "quantity": 3 }),
    )
    .unwrap();
    let receipt =
        rest.post(&format!("mem://services.asu/carts/{id}/checkout"), &json!({})).unwrap();
    assert_eq!(receipt.get("total").and_then(Value::as_i64), Some(300));
}

#[test]
fn discover_then_invoke_soap_service() {
    let (_net, transport) = marketplace();
    let dir = DirectoryClient::new(transport.clone(), "mem://directory");
    let hits = dir.search("credit score soap wsdl").unwrap();
    let soap_hit = hits.iter().find(|h| h.id == "credit-soap").expect("soap service found");
    // WSDL-driven call against the *discovered* endpoint.
    let soap = SoapClient::new(transport);
    let out =
        soap.discover_and_call(&soap_hit.endpoint, "GetScore", &[("ssn", "111-22-3333")]).unwrap();
    let score: u32 = out["score"].parse().unwrap();
    assert_eq!(score, soc::services::mortgage::CreditScoreService::score("111-22-3333"));
}

#[test]
fn rest_and_soap_bindings_of_encryption_interoperate() {
    let (_net, transport) = marketplace();
    let rest = RestClient::new(transport.clone());
    let soap = SoapClient::new(transport);
    // Encrypt over SOAP, decrypt over REST.
    let contract = soc::services::bindings::encryption_contract();
    let enc = soap
        .call(
            "mem://soap.asu/crypto",
            &contract,
            "Encrypt",
            &[("passphrase", "pw"), ("plaintext", "cross-binding payload")],
        )
        .unwrap();
    let dec = rest
        .post(
            "mem://services.asu/crypto/decrypt",
            &json!({ "passphrase": "pw", "ciphertext": (enc["ciphertext"].clone()) }),
        )
        .unwrap();
    assert_eq!(dec.get("plaintext").and_then(Value::as_str), Some("cross-binding payload"));
}

#[test]
fn crawler_feeds_search_feeds_invocation() {
    // Federation: directory A (services) ← peer — directory B (empty).
    let net = MemNetwork::new();
    let catalog = soc::services::bindings::host_all(&net, 2);
    let repo_a = Repository::new();
    for d in catalog {
        repo_a.publish(d).unwrap();
    }
    let (dir_a, _) = DirectoryService::new(repo_a, vec!["mem://dir-b".into()]);
    net.host("dir-a", dir_a);
    let (dir_b, _) = DirectoryService::new(Repository::new(), vec!["mem://dir-a".into()]);
    net.host("dir-b", dir_b);

    let transport: Arc<dyn Transport> = Arc::new(net);
    let report = Crawler::new(transport.clone()).crawl(&["mem://dir-b"]);
    assert_eq!(report.visited.len(), 2);
    assert_eq!(report.services.len(), 12);

    let engine = report.into_search_engine();
    let hit = &engine.search("guessing game", 1)[0].service;
    // The discovered endpoint is live: start a game through it.
    let rest = RestClient::new(transport);
    let base = hit.endpoint.trim_end_matches("/guess/start");
    let v = rest.post(&format!("{base}/guess/start"), &json!({ "max": 10 })).unwrap();
    assert!(v.get("game").and_then(Value::as_i64).is_some());
}

#[test]
fn qos_monitor_detects_degradation_after_fault_injection() {
    let (net, transport) = marketplace();
    let monitor = QosMonitor::new(transport);
    monitor.probe_n("svc", "mem://services.asu/health", 10);
    assert!((monitor.report("svc").unwrap().availability - 1.0).abs() < 1e-9);
    // Now the provider degrades (every 2nd request fails).
    net.set_fault("services.asu", FaultConfig { fail_every: 2, ..Default::default() });
    monitor.probe_n("svc", "mem://services.asu/health", 10);
    let r = monitor.report("svc").unwrap();
    assert_eq!(r.probes, 20);
    assert!(r.availability < 0.8 && r.availability > 0.6, "{}", r.availability);
}

#[test]
fn workflow_invokes_discovered_service() {
    use soc::workflow::bpel::{Process, Scope, Step};
    let (_net, transport) = marketplace();
    // A BPEL process that calls the credit service then branches.
    let process = Process::new(
        Step::Sequence(vec![
            Step::Invoke {
                endpoint: "mem://services.asu/credit/score?ssn=123-45-6789".into(),
                input_var: None,
                output_var: "credit".into(),
            },
            Step::If {
                cond: Arc::new(|s: &Scope| {
                    s["credit"].get("score").and_then(Value::as_i64).unwrap_or(0) >= 600
                }),
                then: Box::new(Step::set("verdict", "qualified")),
                otherwise: Box::new(Step::set("verdict", "not qualified")),
            },
        ]),
        transport,
    );
    let scope = process.run(Scope::new()).unwrap();
    let expected = if soc::services::mortgage::CreditScoreService::score("123-45-6789") >= 600 {
        "qualified"
    } else {
        "not qualified"
    };
    assert_eq!(scope["verdict"].as_str(), Some(expected));
}

#[test]
fn robot_service_composes_with_directory() {
    let net = MemNetwork::new();
    net.host("robot", soc::robotics::raas::RaasService::new());
    let repo = Repository::new();
    repo.publish(
        soc::registry::ServiceDescriptor::new(
            "raas",
            "Robot as a Service",
            "mem://robot/sessions",
            soc::registry::Binding::Rest,
        )
        .describe("maze robot sessions: sensors, moves, and whole algorithms")
        .category("robotics"),
    )
    .unwrap();
    let (dir, _) = DirectoryService::new(repo, vec![]);
    net.host("directory", dir);

    let transport: Arc<dyn Transport> = Arc::new(net);
    let hits =
        DirectoryClient::new(transport.clone(), "mem://directory").search("maze robot").unwrap();
    let rest = RestClient::new(transport);
    let session =
        rest.post(&hits[0].endpoint, &json!({ "width": 9, "height": 9, "seed": 5 })).unwrap();
    let id = session.get("id").and_then(Value::as_i64).unwrap();
    let run = rest
        .post(
            &format!("mem://robot/sessions/{id}/run"),
            &json!({ "algorithm": "wall-follow-right", "max_ticks": 4000 }),
        )
        .unwrap();
    assert_eq!(run.get("reached").and_then(Value::as_bool), Some(true));
}

#[test]
fn offline_provider_breaks_consumers_until_rehosted() {
    let (net, transport) = marketplace();
    let rest = RestClient::new(transport);
    assert!(rest.get("mem://services.asu/health").is_ok());
    net.unhost("services.asu");
    assert!(rest.get("mem://services.asu/health").is_err());
    // Re-publish ("maintain the server to keep the high availability").
    soc::services::bindings::host_all(&net, 1);
    assert!(rest.get("mem://services.asu/health").is_ok());
}

#[test]
fn xml_documents_flow_through_the_whole_stack() {
    // Repository → XML → re-load → directory → search: the registry
    // document format is an interchange format, not just persistence.
    let catalog = {
        let net = MemNetwork::new();
        soc::services::bindings::host_all(&net, 3)
    };
    let repo = Repository::new();
    for d in catalog {
        repo.publish(d).unwrap();
    }
    let xml = repo.to_xml();
    assert!(xml.contains("<repository>"));
    let restored = Repository::from_xml(&xml).unwrap();
    assert_eq!(restored.list(), repo.list());
    // XPath over the document finds the SOAP services.
    let doc = soc::xml::Document::parse_str(&xml).unwrap();
    let soap_nodes = soc::xml::xpath::eval("/repository/service[@binding='soap']", &doc).unwrap();
    assert_eq!(soap_nodes.len(), 2);
}

#[test]
fn middleware_hardens_a_directory() {
    use soc::rest::middleware;
    use std::collections::HashMap;
    // A directory wrapped with auth: the registration flow then needs a
    // key, reads stay open (split: auth only guards the POST router).
    let net = MemNetwork::new();
    let repo = Repository::new();
    let (dir, _) = DirectoryService::new(repo, vec![]);
    // Wrap the whole directory behind an API key.
    let mut keys = HashMap::new();
    keys.insert("k-1".to_string(), "staff".to_string());
    let mut guard = soc::rest::router::Router::new();
    guard.wrap(middleware::api_key_auth(keys));
    // Delegate everything to the directory.
    let dir = Arc::new(dir);
    {
        let dir = dir.clone();
        guard.get("/{rest...}", move |req, _p| soc::http::Handler::handle(&*dir, req));
    }
    {
        let dir = dir.clone();
        guard.post("/{rest...}", move |req, _p| soc::http::Handler::handle(&*dir, req));
    }
    net.host("secure-dir", guard);

    let transport: Arc<dyn Transport> = Arc::new(net);
    let anon = RestClient::new(transport.clone());
    assert!(anon.get("mem://secure-dir/services").is_err());
    let staff = RestClient::new(transport).with_api_key("k-1");
    assert!(staff.get("mem://secure-dir/services").is_ok());
}

#[test]
fn semantic_discovery_finds_what_keywords_miss() {
    // The ASU catalog tags the captcha service "security"; the ontology
    // knows "security" ⊑ "service" and "cryptography" ⊑ "security".
    let net = MemNetwork::new();
    let catalog = soc::services::bindings::host_all(&net, 21);
    let repo = Repository::new();
    for mut d in catalog {
        // Re-tag the crypto services with the *subclass* category.
        if d.id.starts_with("crypto") {
            d.category = "cryptography".to_string();
        }
        repo.publish(d).unwrap();
    }
    let (dir, _) = DirectoryService::new(repo, vec![]);
    net.host("directory", dir);
    let client = DirectoryClient::new(Arc::new(net), "mem://directory");
    // Exact-category listing misses the re-tagged services…
    let exact: Vec<_> =
        client.list().unwrap().into_iter().filter(|d| d.category == "security").collect();
    // …while the semantic search subsumes cryptography under security.
    let semantic = client.semantic_search("security").unwrap();
    assert!(semantic.len() > exact.len());
    assert!(semantic.iter().any(|d| d.category == "cryptography"));
}
