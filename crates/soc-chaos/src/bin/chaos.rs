//! Seed-sweeping chaos driver.
//!
//! ```sh
//! cargo run -p soc-chaos --bin chaos --release -- --seeds 32
//! cargo run -p soc-chaos --bin chaos --release -- --seeds 8 --tcp
//! cargo run -p soc-chaos --bin chaos --release -- --start 7 --seeds 1 --fault-pct 0.4
//! ```
//!
//! Exits non-zero if any campaign violates an invariant or the sweep's
//! aggregate success-or-clean-compensation ratio drops below the floor.

use std::time::Duration;

use soc_chaos::{run_mem_chaos, run_tcp_chaos, ChaosConfig};

struct Args {
    seeds: u64,
    start: u64,
    runs: usize,
    fault_pct: f64,
    tcp: bool,
    floor: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { seeds: 8, start: 1, runs: 24, fault_pct: 0.2, tcp: false, floor: 0.99 };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--seeds" => args.seeds = value("--seeds")?.parse().map_err(|e| format!("{e}"))?,
            "--start" => args.start = value("--start")?.parse().map_err(|e| format!("{e}"))?,
            "--runs" => args.runs = value("--runs")?.parse().map_err(|e| format!("{e}"))?,
            "--fault-pct" => {
                args.fault_pct = value("--fault-pct")?.parse().map_err(|e| format!("{e}"))?
            }
            "--floor" => args.floor = value("--floor")?.parse().map_err(|e| format!("{e}"))?,
            "--tcp" => args.tcp = true,
            "--help" | "-h" => {
                println!(
                    "usage: chaos [--seeds N] [--start S] [--runs R] [--fault-pct P] \
                     [--floor F] [--tcp]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chaos: {e}");
            std::process::exit(2);
        }
    };

    let mut total_runs = 0usize;
    let mut total_good = 0usize;
    let mut failed = false;
    for seed in args.start..args.start + args.seeds {
        let cfg = ChaosConfig {
            seed,
            runs: args.runs,
            fault_pct: args.fault_pct,
            deadline: Duration::from_secs(5),
            ..ChaosConfig::default()
        };
        let report = if args.tcp {
            let (report, open_tunnels) = run_tcp_chaos(&cfg);
            if open_tunnels.iter().any(|&n| n != 0) {
                eprintln!("seed {seed:#x}: leaked proxy tunnels: {open_tunnels:?}");
                failed = true;
            }
            report
        } else {
            run_mem_chaos(&cfg)
        };
        println!("{}", report.summary());
        let violations = report.violations();
        for v in &violations {
            eprintln!("seed {seed:#x}: INVARIANT VIOLATED: {v}");
        }
        failed |= !violations.is_empty();
        total_runs += report.outcomes.len();
        total_good += report.completed() + report.compensated_clean();
    }

    let ratio = if total_runs == 0 { 1.0 } else { total_good as f64 / total_runs as f64 };
    println!(
        "sweep: {total_good}/{total_runs} runs ok ({:.2}%, floor {:.2}%)",
        ratio * 100.0,
        args.floor * 100.0
    );
    if ratio < args.floor {
        eprintln!("sweep below success floor");
        failed = true;
    }
    std::process::exit(if failed { 1 } else { 0 });
}
