//! The maze navigation algorithms the course compares, plus the racing
//! harness. The two teaching algorithms are exactly the paper's:
//! *"a short-distance-based greedy algorithm and a wall-following
//! algorithm"*; the greedy one is expressed as a finite state machine
//! (Figure 2) on top of [`soc_workflow::fsm`].

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soc_workflow::fsm::{Fsm, FsmBuilder};

use crate::maze::{Direction, Maze};
use crate::robot::{Action, Robot, Sensors};

/// Everything a navigator perceives per tick: the distance sensors plus
/// the coarse state the paper's Web environment displays (robot pose and
/// goal cell on the rendered maze).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Percept {
    /// Distance sensor readings.
    pub sensors: Sensors,
    /// Current cell.
    pub position: (usize, usize),
    /// Current heading.
    pub heading: Direction,
    /// The goal cell.
    pub exit: (usize, usize),
}

/// A navigation policy: percept in, one action out, once per tick.
pub trait Navigator: Send {
    /// Display name (used in benches and reports).
    fn name(&self) -> &'static str;
    /// Choose the next action.
    fn decide(&mut self, percept: Percept) -> Action;
    /// Clear internal state before a new run.
    fn reset(&mut self) {}
}

/// Which hand the wall follower keeps on the wall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hand {
    /// Keep the left hand on the wall.
    Left,
    /// Keep the right hand on the wall.
    Right,
}

/// The wall-following algorithm: prefer turning toward the tracked
/// hand, then straight, then away; a turn is always followed by a move
/// attempt. Complete on perfect (simply connected) mazes, and needs
/// *only* the sensors — it never reads the pose or the goal.
pub struct WallFollower {
    hand: Hand,
    /// After a turn, attempt to move before re-evaluating the rule.
    move_next: bool,
}

impl WallFollower {
    /// Follower for the given hand.
    pub fn new(hand: Hand) -> Self {
        WallFollower { hand, move_next: false }
    }
}

impl Navigator for WallFollower {
    fn name(&self) -> &'static str {
        match self.hand {
            Hand::Left => "wall-follow-left",
            Hand::Right => "wall-follow-right",
        }
    }

    fn decide(&mut self, p: Percept) -> Action {
        let s = p.sensors;
        if self.move_next && s.front > 0 {
            self.move_next = false;
            return Action::Forward;
        }
        self.move_next = false;
        let (toward, away) = match self.hand {
            Hand::Right => (s.right, s.left),
            Hand::Left => (s.left, s.right),
        };
        let turn_toward = match self.hand {
            Hand::Right => Action::TurnRight,
            Hand::Left => Action::TurnLeft,
        };
        let turn_away = match self.hand {
            Hand::Right => Action::TurnLeft,
            Hand::Left => Action::TurnRight,
        };
        if toward > 0 {
            self.move_next = true;
            turn_toward
        } else if s.front > 0 {
            Action::Forward
        } else if away > 0 {
            self.move_next = true;
            turn_away
        } else {
            // Dead end: turn around (two turns; the second via the rule).
            turn_away
        }
    }

    fn reset(&mut self) {
        self.move_next = false;
    }
}

/// Where the desired direction lies relative to the heading.
fn relative(heading: Direction, desired: Direction) -> &'static str {
    if desired == heading {
        "ahead"
    } else if desired == heading.left() {
        "to-left"
    } else if desired == heading.right() {
        "to-right"
    } else {
        "behind"
    }
}

/// Context shared with the greedy FSM: only the action slot — the
/// machine's job is sequencing motion, the comparison result arrives as
/// the event name, exactly like Figure 2's labeled arrows.
#[derive(Debug, Default, Clone, Copy)]
struct GreedyCtx {
    action: Option<Action>,
}

/// Figure 2's two-distance greedy algorithm as a finite state machine.
///
/// The "two distances" are the row and column distances to the goal
/// (Δy, Δx): the robot greedily moves to shrink the larger component
/// first. When every distance-reducing direction is walled, it falls
/// back to the least-visited open neighbor (the behavior students add
/// after watching pure greedy ping-pong between two corridors).
/// The FSM sequences the decision into motion states:
/// `decide --ahead--> forward`, `decide --to-left--> turn-left`,
/// `decide --behind--> reverse-1 → reverse-2`, each returning to
/// `decide` on `done`.
pub struct TwoDistanceGreedy {
    fsm: Fsm<GreedyCtx>,
    visits: HashMap<(usize, usize), u32>,
    /// Wall knowledge learned from sensor readings:
    /// `(cell, direction) → edge is open`. The rear is only trusted when
    /// it has been sensed (or traversed) before — assuming it open makes
    /// the robot reverse into walls forever.
    edges: HashMap<((usize, usize), Direction), bool>,
    prev_position: Option<(usize, usize)>,
}

impl TwoDistanceGreedy {
    /// Build the Figure 2 machine.
    pub fn new() -> Self {
        let fsm = FsmBuilder::<GreedyCtx>::new("decide")
            .on_do("decide", "ahead", "forward", |c: &mut GreedyCtx| {
                c.action = Some(Action::Forward)
            })
            .on_do("decide", "to-left", "turn-left", |c: &mut GreedyCtx| {
                c.action = Some(Action::TurnLeft)
            })
            .on_do("decide", "to-right", "turn-right", |c: &mut GreedyCtx| {
                c.action = Some(Action::TurnRight)
            })
            .on_do("decide", "behind", "reverse-1", |c: &mut GreedyCtx| {
                c.action = Some(Action::TurnRight)
            })
            .on_do("reverse-1", "done", "reverse-2", |c: &mut GreedyCtx| {
                c.action = Some(Action::TurnRight)
            })
            .on("reverse-2", "done", "decide")
            .on("forward", "done", "decide")
            .on("turn-left", "done", "decide")
            .on("turn-right", "done", "decide")
            .build();
        TwoDistanceGreedy {
            fsm,
            visits: HashMap::new(),
            edges: HashMap::new(),
            prev_position: None,
        }
    }

    /// Expose the FSM trace (for the Figure 2 harness).
    pub fn trace(&self) -> &[(String, String, String)] {
        self.fsm.trace()
    }

    /// The greedy comparison: pick the open direction whose target cell
    /// best shrinks the larger of (Δrow, Δcolumn); least-visited breaks
    /// ties and rescues blocked greedy choices.
    fn choose(&self, p: Percept) -> Direction {
        let (x, y) = p.position;
        let (ex, ey) = p.exit;
        let open = |d: Direction| -> bool {
            match d {
                d if d == p.heading => p.sensors.front > 0,
                d if d == p.heading.left() => p.sensors.left > 0,
                d if d == p.heading.right() => p.sensors.right > 0,
                // No rear sensor: trust only learned knowledge.
                d => self.edges.get(&(p.position, d)).copied().unwrap_or(false),
            }
        };
        let mut best: Option<(i64, Direction)> = None;
        for d in Direction::ALL {
            if !open(d) {
                continue;
            }
            let (dx, dy) = d.delta();
            let nx = x as i64 + dx as i64;
            let ny = y as i64 + dy as i64;
            let manhattan = (ex as i64 - nx).abs() + (ey as i64 - ny).abs();
            let visits =
                self.visits.get(&(nx.max(0) as usize, ny.max(0) as usize)).copied().unwrap_or(0)
                    as i64;
            // Distance-greedy with an escalating revisit penalty (breaks
            // corridor ping-pong) and a mild turn penalty.
            let turn_cost = if d == p.heading { 0 } else { 1 };
            let score = manhattan + 12 * visits + turn_cost;
            match &best {
                Some((bs, _)) if score >= *bs => {}
                _ => best = Some((score, d)),
            }
        }
        best.map(|(_, d)| d).unwrap_or_else(|| p.heading.opposite())
    }
}

impl Default for TwoDistanceGreedy {
    fn default() -> Self {
        TwoDistanceGreedy::new()
    }
}

impl Navigator for TwoDistanceGreedy {
    fn name(&self) -> &'static str {
        "two-distance-greedy"
    }

    fn decide(&mut self, p: Percept) -> Action {
        *self.visits.entry(p.position).or_insert(0) += 1;
        // Learn the three sensed edges, and the rear edge when we just
        // drove in from it.
        self.edges.insert((p.position, p.heading), p.sensors.front > 0);
        self.edges.insert((p.position, p.heading.left()), p.sensors.left > 0);
        self.edges.insert((p.position, p.heading.right()), p.sensors.right > 0);
        if let Some(prev) = self.prev_position {
            if prev != p.position {
                for d in Direction::ALL {
                    let (dx, dy) = d.delta();
                    if (p.position.0 as i64 + dx as i64, p.position.1 as i64 + dy as i64)
                        == (prev.0 as i64, prev.1 as i64)
                    {
                        self.edges.insert((p.position, d), true);
                    }
                }
            }
        }
        self.prev_position = Some(p.position);
        let mut ctx = GreedyCtx::default();
        if self.fsm.state() != "decide" {
            self.fsm.dispatch("done", &mut ctx);
            if let Some(a) = ctx.action {
                return a; // reverse-1 → reverse-2 emits the second turn
            }
        }
        let desired = self.choose(p);
        let event = relative(p.heading, desired);
        let mut ctx = GreedyCtx::default();
        self.fsm.dispatch(event, &mut ctx);
        ctx.action.unwrap_or(Action::TurnRight)
    }

    fn reset(&mut self) {
        self.fsm.reset();
        self.visits.clear();
        self.edges.clear();
        self.prev_position = None;
    }
}

/// Uniform random walk over open directions (seeded baseline).
pub struct RandomWalk {
    rng: StdRng,
    seed: u64,
}

impl RandomWalk {
    /// Baseline with a fixed seed.
    pub fn new(seed: u64) -> Self {
        RandomWalk { rng: StdRng::seed_from_u64(seed), seed }
    }
}

impl Navigator for RandomWalk {
    fn name(&self) -> &'static str {
        "random-walk"
    }

    fn decide(&mut self, p: Percept) -> Action {
        let s = p.sensors;
        let mut open = Vec::new();
        if s.front > 0 {
            open.push(Action::Forward);
        }
        if s.left > 0 {
            open.push(Action::TurnLeft);
        }
        if s.right > 0 {
            open.push(Action::TurnRight);
        }
        if open.is_empty() {
            return Action::TurnRight; // dead end: start reversing
        }
        open[self.rng.gen_range(0..open.len())]
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

/// Result of a navigation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// Did the robot reach the exit within the tick budget?
    pub reached: bool,
    /// Forward moves taken.
    pub steps: usize,
    /// Turns taken.
    pub turns: usize,
    /// Wall bumps.
    pub bumps: usize,
    /// Decision ticks consumed.
    pub ticks: usize,
}

/// Drive `navigator` from the maze start until the exit or `max_ticks`.
pub fn run(maze: &Maze, navigator: &mut dyn Navigator, max_ticks: usize) -> Outcome {
    navigator.reset();
    let mut robot = Robot::at_start(maze);
    let mut ticks = 0;
    while !robot.at_exit(maze) && ticks < max_ticks {
        let percept = Percept {
            sensors: robot.sense(maze),
            position: robot.position,
            heading: robot.heading,
            exit: maze.exit,
        };
        let action = navigator.decide(percept);
        robot.act(maze, action);
        ticks += 1;
    }
    Outcome {
        reached: robot.at_exit(maze),
        steps: robot.steps(),
        turns: robot.turns(),
        bumps: robot.bumps(),
        ticks,
    }
}

/// The BFS oracle: minimal number of forward moves start → exit.
pub fn oracle_steps(maze: &Maze) -> Option<usize> {
    maze.shortest_path(maze.start, maze.exit).map(|p| p.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget(m: &Maze) -> usize {
        m.width() * m.height() * 10
    }

    #[test]
    fn wall_followers_solve_perfect_mazes() {
        for seed in 0..10 {
            let m = Maze::generate(13, 9, seed);
            for hand in [Hand::Left, Hand::Right] {
                let out = run(&m, &mut WallFollower::new(hand), budget(&m));
                assert!(out.reached, "seed {seed} {hand:?} failed: {out:?}");
                assert_eq!(out.bumps, 0, "wall follower must never bump");
            }
        }
    }

    #[test]
    fn greedy_solves_perfect_mazes() {
        let mut solved = 0;
        for seed in 0..20 {
            let m = Maze::generate(11, 11, seed);
            let out = run(&m, &mut TwoDistanceGreedy::new(), budget(&m));
            if out.reached {
                solved += 1;
            }
        }
        assert!(solved >= 18, "greedy solved only {solved}/20");
    }

    #[test]
    fn algorithm_ordering_on_braided_mazes() {
        // With loops available, goal-directed greedy usually takes
        // shortcuts the wall follower cannot, and both crush the random
        // walk — the ordering the course's comparison lab demonstrates.
        let mut greedy_wins = 0;
        let mut greedy_total = 0usize;
        let mut random_total = 0usize;
        for seed in 0..10 {
            let mut m = Maze::generate(15, 15, seed);
            m.braid(0.5, seed);
            let g = run(&m, &mut TwoDistanceGreedy::new(), budget(&m));
            let w = run(&m, &mut WallFollower::new(Hand::Right), budget(&m) * 4);
            let r = run(&m, &mut RandomWalk::new(9), budget(&m) * 4);
            assert!(g.reached, "greedy failed on braided seed {seed}");
            if w.reached && g.steps < w.steps {
                greedy_wins += 1;
            }
            greedy_total += g.steps;
            random_total += r.steps;
        }
        assert!(greedy_wins >= 5, "greedy won only {greedy_wins}/10 braided runs");
        assert!(
            greedy_total * 4 < random_total,
            "greedy ({greedy_total}) must be far better than random ({random_total})"
        );
    }

    #[test]
    fn greedy_fsm_uses_figure2_states() {
        let m = Maze::generate(9, 9, 4);
        let mut nav = TwoDistanceGreedy::new();
        let _ = run(&m, &mut nav, budget(&m));
        let states: std::collections::HashSet<&str> =
            nav.trace().iter().map(|(from, _, _)| from.as_str()).collect();
        assert!(states.contains("decide"));
        assert!(states.len() >= 3, "trace explored too few states: {states:?}");
    }

    #[test]
    fn random_walk_is_seeded_deterministic() {
        let m = Maze::generate(9, 9, 2);
        let a = run(&m, &mut RandomWalk::new(7), budget(&m) * 4);
        let b = run(&m, &mut RandomWalk::new(7), budget(&m) * 4);
        assert_eq!(a, b);
    }

    #[test]
    fn oracle_lower_bounds_everything() {
        for seed in 0..8 {
            let m = Maze::generate(11, 7, seed);
            let min = oracle_steps(&m).unwrap();
            let navs: Vec<Box<dyn Navigator>> =
                vec![Box::new(WallFollower::new(Hand::Right)), Box::new(TwoDistanceGreedy::new())];
            for mut nav in navs {
                let out = run(&m, nav.as_mut(), budget(&m) * 4);
                if out.reached {
                    assert!(out.steps >= min, "seed {seed}: beat the oracle?");
                }
            }
        }
    }

    #[test]
    fn tick_budget_stops_runs() {
        let m = Maze::generate(15, 15, 0);
        let out = run(&m, &mut RandomWalk::new(1), 3);
        assert_eq!(out.ticks, 3);
        assert!(!out.reached);
    }

    #[test]
    fn reset_makes_runs_repeatable() {
        let m = Maze::generate(9, 9, 3);
        let mut nav = TwoDistanceGreedy::new();
        let a = run(&m, &mut nav, budget(&m));
        let b = run(&m, &mut nav, budget(&m));
        assert_eq!(a, b);
    }

    #[test]
    fn relative_direction_mapping() {
        use Direction::*;
        assert_eq!(relative(North, North), "ahead");
        assert_eq!(relative(North, West), "to-left");
        assert_eq!(relative(North, East), "to-right");
        assert_eq!(relative(North, South), "behind");
    }
}
