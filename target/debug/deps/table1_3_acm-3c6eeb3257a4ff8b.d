/root/repo/target/debug/deps/table1_3_acm-3c6eeb3257a4ff8b.d: crates/soc-bench/src/bin/table1_3_acm.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_3_acm-3c6eeb3257a4ff8b.rmeta: crates/soc-bench/src/bin/table1_3_acm.rs Cargo.toml

crates/soc-bench/src/bin/table1_3_acm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
