/root/repo/target/debug/deps/tcp_stack-76b45ff3ec8596d6.d: tests/tcp_stack.rs

/root/repo/target/debug/deps/tcp_stack-76b45ff3ec8596d6: tests/tcp_stack.rs

tests/tcp_stack.rs:
