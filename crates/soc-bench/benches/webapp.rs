//! Web application state-management costs (CSE445 unit 5): session
//! store operations, view-state round-trips, template rendering, cache
//! hit vs miss vs read-through, and a whole Figure 4 login round trip.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use soc_http::url::encode_form;
use soc_http::{MemNetwork, Request};
use soc_services::cache::CacheService;
use soc_webapp::account_app::AccountApp;
use soc_webapp::session::SessionStore;
use soc_webapp::templates::{render, vars};
use soc_webapp::viewstate;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(150))
}

fn bench_webapp(c: &mut Criterion) {
    let mut group = c.benchmark_group("webapp");

    // Session store ops.
    let store = SessionStore::new(10_000, 0xBEEF);
    let sid = store.create(0);
    group.bench_function("session/set_get", |b| {
        b.iter(|| {
            store.set(&sid, "k", "value", 1);
            store.get(&sid, "k", 1)
        })
    });

    // View state encode+decode (server-stateless alternative).
    let fields: Vec<(String, String)> =
        (0..8).map(|i| (format!("field{i}"), format!("value-{i}"))).collect();
    group.bench_function("viewstate/roundtrip", |b| {
        b.iter(|| {
            let token = viewstate::encode(42, std::hint::black_box(&fields));
            viewstate::decode(42, &token).unwrap()
        })
    });

    // Template rendering.
    let template = "<html>{{#if user}}Hi {{user}}, {{n}} new messages{{else}}log in{{/if}}</html>";
    let v = vars(&[("user", "ann"), ("n", "42")]);
    group.bench_function("template/render", |b| {
        b.iter(|| render(std::hint::black_box(template), &v))
    });

    // Cache hit vs miss vs read-through.
    let cache = CacheService::new(1024, 1_000_000);
    cache.put("hot", "cached-value", 0);
    group.bench_function("cache/hit", |b| b.iter(|| cache.get("hot", 1)));
    group.bench_function("cache/miss", |b| b.iter(|| cache.get("cold", 1)));
    group.bench_function("cache/read_through_hit", |b| {
        b.iter(|| cache.get_or_compute("hot", 1, || "recomputed".to_string()))
    });

    // Whole Figure 4 login round trip over the virtual network.
    let net = MemNetwork::new();
    soc_services::bindings::host_all(&net, 4);
    let app = AccountApp::new(Arc::new(net.clone()), "mem://services.asu/credit/score");
    let app_store = app.store();
    net.host("bank", app);
    let user = app_store.create("Bench User", "111-11-1111", "addr", "dob", 800);
    app_store.set_password(&user, "Str0ngPass");
    let body = encode_form(&[
        ("user".to_string(), user.clone()),
        ("password".to_string(), "Str0ngPass".to_string()),
    ]);
    group.bench_function("figure4/login_roundtrip", |b| {
        b.iter(|| {
            soc_http::mem::Transport::send(
                &net,
                Request::post("mem://bank/login", Vec::new())
                    .with_text("application/x-www-form-urlencoded", &body),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_webapp
}
criterion_main!(benches);
