/root/repo/target/debug/deps/proptests-5c36ed6527183370.d: crates/soc-http/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-5c36ed6527183370.rmeta: crates/soc-http/tests/proptests.rs Cargo.toml

crates/soc-http/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
