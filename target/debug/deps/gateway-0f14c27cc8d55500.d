/root/repo/target/debug/deps/gateway-0f14c27cc8d55500.d: crates/soc-bench/benches/gateway.rs Cargo.toml

/root/repo/target/debug/deps/libgateway-0f14c27cc8d55500.rmeta: crates/soc-bench/benches/gateway.rs Cargo.toml

crates/soc-bench/benches/gateway.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
