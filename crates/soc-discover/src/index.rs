//! The search side of discovery: an inverted index over everything the
//! crawler learned, ranked by a fusion of text relevance and *live*
//! QoS.
//!
//! Relevance alone reproduces the classic UDDI failure mode the paper
//! complains about: the top hit is a beautifully described service that
//! is slow or down. The index therefore scores
//! `relevance × health`, where health is read at query time from a
//! [`QosFeed`] — in production, [`GatewayQos`] taps the gateway's own
//! QoS monitor and outlier ejector, so the ranking reflects the last
//! few seconds of real traffic, not a static registration.
//!
//! The same index answers the planner's narrower question — *who can
//! produce a `score: int`?* — via [`SearchIndex::producers_of`], which
//! matches on exact `(name, type)` signatures.

use std::collections::HashMap;

use soc_gateway::Gateway;
use soc_soap::contract::Param;

use crate::catalog::{Catalog, DiscoveredService, TypedOperation};

/// A point-in-time health reading for one service.
#[derive(Debug, Clone, Default)]
pub struct QosSnapshot {
    /// Best recent p95 latency across replicas, in milliseconds.
    pub p95_ms: Option<f64>,
    /// Worst recent error rate across replicas, `0.0..=1.0`.
    pub error_rate: Option<f64>,
    /// Every replica is currently ejected — the service is effectively
    /// down as far as the gateway is concerned.
    pub ejected: bool,
}

impl QosSnapshot {
    /// The ranking multiplier this snapshot earns, in `(0, 1]`.
    /// Neutral (no data) is `1.0`; a fully ejected service is floored
    /// near zero so it ranks below any live alternative.
    pub fn health(&self) -> f64 {
        if self.ejected {
            return 0.01;
        }
        let latency = match self.p95_ms {
            Some(ms) => 100.0 / (100.0 + ms.max(0.0)),
            None => 1.0,
        };
        let errors = 1.0 - self.error_rate.unwrap_or(0.0).clamp(0.0, 1.0);
        (latency * errors).max(0.01)
    }
}

/// Source of live QoS readings, consulted at query/plan time.
pub trait QosFeed {
    /// Health of `service_id`, served by `replicas`.
    fn snapshot(&self, service_id: &str, replicas: &[String]) -> QosSnapshot;
}

/// A feed with no opinion: every service is healthy. Useful for tests
/// and for ranking a cold catalog before any traffic has flowed.
pub struct NoQos;

impl QosFeed for NoQos {
    fn snapshot(&self, _service_id: &str, _replicas: &[String]) -> QosSnapshot {
        QosSnapshot::default()
    }
}

/// Live QoS from a [`Gateway`]: recent p95 and error rate from its
/// [`QosMonitor`](soc_registry::QosMonitor) (keyed per replica
/// endpoint, exactly as the gateway records them) plus the outlier
/// ejector's verdict.
pub struct GatewayQos {
    gateway: Gateway,
}

impl GatewayQos {
    /// A feed over `gateway`'s monitor and ejector.
    pub fn new(gateway: Gateway) -> Self {
        GatewayQos { gateway }
    }
}

impl QosFeed for GatewayQos {
    fn snapshot(&self, service_id: &str, replicas: &[String]) -> QosSnapshot {
        let monitor = self.gateway.monitor();
        let mut best_p95: Option<f64> = None;
        let mut worst_err: Option<f64> = None;
        for replica in replicas {
            if let Some(p95) = monitor.recent_p95(replica) {
                let ms = p95.as_secs_f64() * 1_000.0;
                best_p95 = Some(best_p95.map_or(ms, |b: f64| b.min(ms)));
            }
            if let Some(err) = monitor.recent_error_rate(replica) {
                worst_err = Some(worst_err.map_or(err, |w: f64| w.max(err)));
            }
        }
        let ejected = if replicas.is_empty() {
            false
        } else {
            let out = self.gateway.ejected_endpoints(service_id);
            replicas.iter().all(|r| out.contains(r))
        };
        QosSnapshot { p95_ms: best_p95, error_rate: worst_err, ejected }
    }
}

/// One ranked search result.
#[derive(Debug, Clone)]
pub struct SearchHit {
    /// The matching service.
    pub service_id: String,
    /// Text relevance (tf·idf over names, operations, parameters,
    /// types, and descriptor metadata).
    pub relevance: f64,
    /// QoS multiplier in `(0, 1]` (see [`QosSnapshot::health`]).
    pub health: f64,
    /// Final score: `relevance × health`.
    pub score: f64,
}

struct Posting {
    service: usize,
    weight: f64,
}

/// The inverted index. Built from a [`Catalog`] snapshot; owns its own
/// copy of the catalog entries so searches and planning never touch
/// the network.
pub struct SearchIndex {
    services: Vec<DiscoveredService>,
    postings: HashMap<String, Vec<Posting>>,
    /// `(name, type)` signature key → `(service idx, op idx)`.
    producers: HashMap<String, Vec<(usize, usize)>>,
}

/// Signature key for exact-match production: lowercased name plus type.
pub(crate) fn param_key(p: &Param) -> String {
    format!("{}:{}", p.name.to_lowercase(), p.ty.xsd_name())
}

/// Lowercase word tokens, splitting on non-alphanumerics *and* on
/// camelCase boundaries (`GetQuote` → `getquote`, `get`, `quote`).
fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in text.split(|c: char| !c.is_ascii_alphanumeric()) {
        if raw.is_empty() {
            continue;
        }
        out.push(raw.to_lowercase());
        // Camel boundaries within the raw word.
        let mut word = String::new();
        let mut words = Vec::new();
        for ch in raw.chars() {
            if ch.is_ascii_uppercase() && !word.is_empty() {
                words.push(std::mem::take(&mut word));
            }
            word.push(ch.to_ascii_lowercase());
        }
        words.push(word);
        if words.len() > 1 {
            out.extend(words);
        }
    }
    out
}

impl SearchIndex {
    /// Index every service in `catalog`.
    pub fn build(catalog: &Catalog) -> Self {
        let services: Vec<DiscoveredService> = catalog.services().cloned().collect();
        let mut tf: Vec<HashMap<String, f64>> = vec![HashMap::new(); services.len()];
        let mut producers: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
        for (si, svc) in services.iter().enumerate() {
            let mut weigh = |text: &str, weight: f64| {
                for tok in tokenize(text) {
                    *tf[si].entry(tok).or_insert(0.0) += weight;
                }
            };
            let d = &svc.descriptor;
            weigh(&d.id, 2.0);
            weigh(&d.name, 2.0);
            weigh(&d.description, 1.0);
            weigh(&d.category, 1.0);
            for kw in &d.keywords {
                weigh(kw, 1.5);
            }
            for (oi, op) in svc.operations.iter().enumerate() {
                weigh(&op.name, 3.0);
                if let Some(doc) = &op.doc {
                    weigh(doc, 1.0);
                }
                for p in op.inputs.iter().chain(&op.outputs) {
                    weigh(&p.name, 2.0);
                    weigh(p.ty.xsd_name(), 0.5);
                }
                for p in &op.outputs {
                    producers.entry(param_key(p)).or_default().push((si, oi));
                }
            }
        }
        let mut postings: HashMap<String, Vec<Posting>> = HashMap::new();
        for (si, terms) in tf.into_iter().enumerate() {
            for (tok, weight) in terms {
                postings.entry(tok).or_default().push(Posting { service: si, weight });
            }
        }
        SearchIndex { services, postings, producers }
    }

    /// Number of indexed services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// The indexed entry for a service id.
    pub fn service(&self, id: &str) -> Option<&DiscoveredService> {
        self.services.iter().find(|s| s.descriptor.id == id)
    }

    /// Free-text search, ranked by `relevance × health`. Deterministic
    /// for a given index and feed: ties break on service id.
    pub fn search(&self, query: &str, qos: &dyn QosFeed, limit: usize) -> Vec<SearchHit> {
        let n = self.services.len().max(1) as f64;
        let mut relevance: HashMap<usize, f64> = HashMap::new();
        for tok in tokenize(query) {
            if let Some(posts) = self.postings.get(&tok) {
                let idf = (1.0 + n / posts.len() as f64).ln();
                for p in posts {
                    *relevance.entry(p.service).or_insert(0.0) += (1.0 + p.weight.ln()) * idf;
                }
            }
        }
        let mut hits: Vec<SearchHit> = relevance
            .into_iter()
            .map(|(si, rel)| {
                let svc = &self.services[si];
                let health = qos.snapshot(&svc.descriptor.id, &svc.replicas).health();
                SearchHit {
                    service_id: svc.descriptor.id.clone(),
                    relevance: rel,
                    health,
                    score: rel * health,
                }
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score.total_cmp(&a.score).then_with(|| a.service_id.cmp(&b.service_id))
        });
        hits.truncate(limit);
        hits
    }

    /// Every operation that produces an output exactly matching
    /// `param` (same name, case-insensitive, and same type), in
    /// catalog order.
    pub fn producers_of(&self, param: &Param) -> Vec<(&DiscoveredService, &TypedOperation)> {
        match self.producers.get(&param_key(param)) {
            Some(refs) => refs
                .iter()
                .map(|&(si, oi)| (&self.services[si], &self.services[si].operations[oi]))
                .collect(),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use soc_registry::{Binding, ServiceDescriptor};
    use soc_soap::XsdType;

    fn entry(id: &str, op: &str, outs: &[(&str, XsdType)]) -> DiscoveredService {
        DiscoveredService {
            descriptor: ServiceDescriptor::new(id, id, &format!("mem://{id}/api"), Binding::Rest)
                .describe("demo service")
                .keywords(&["lending"]),
            namespace: "urn:test".into(),
            base_path: "/api".into(),
            operations: vec![TypedOperation {
                name: op.into(),
                inputs: vec![],
                outputs: outs.iter().map(|(n, t)| Param { name: n.to_string(), ty: *t }).collect(),
                doc: None,
            }],
            replicas: vec![format!("mem://{id}")],
            directories: vec![],
        }
    }

    fn index() -> SearchIndex {
        let mut cat = Catalog::new();
        cat.merge(entry("risk-model", "AssessRisk", &[("risk", XsdType::Double)]));
        cat.merge(entry("risk-model-alt", "AssessRisk", &[("risk", XsdType::Double)]));
        cat.merge(entry("credit-check", "Score", &[("score", XsdType::Int)]));
        SearchIndex::build(&cat)
    }

    struct Down(&'static str);
    impl QosFeed for Down {
        fn snapshot(&self, id: &str, _replicas: &[String]) -> QosSnapshot {
            QosSnapshot { ejected: id == self.0, ..QosSnapshot::default() }
        }
    }

    #[test]
    fn camel_case_operations_match_plain_words() {
        let idx = index();
        let hits = idx.search("assess risk", &NoQos, 10);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|h| h.service_id.starts_with("risk-model")));
    }

    #[test]
    fn ejection_demotes_an_otherwise_equal_service() {
        let idx = index();
        let hits = idx.search("risk", &Down("risk-model"), 10);
        assert_eq!(hits[0].service_id, "risk-model-alt");
        assert!(hits[1].health < 0.1, "ejected service keeps only a floor score");
    }

    #[test]
    fn producers_match_on_name_and_type() {
        let idx = index();
        let both = idx.producers_of(&Param { name: "risk".into(), ty: XsdType::Double });
        assert_eq!(both.len(), 2);
        // Same name, wrong type: no producer.
        let none = idx.producers_of(&Param { name: "risk".into(), ty: XsdType::Int });
        assert!(none.is_empty());
    }
}
