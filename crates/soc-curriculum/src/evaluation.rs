//! Table 5: CSE445/598 student evaluation scores, and the trend
//! analysis behind the paper's "well received by students" claim.

use crate::enrollment::Semester;

/// One row of Table 5 (scores out of 5.0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvaluationRow {
    /// Calendar year.
    pub year: u16,
    /// Term.
    pub semester: Semester,
    /// CSE445 mean evaluation score.
    pub cse445: f64,
    /// CSE598 mean evaluation score.
    pub cse598: f64,
}

/// Table 5, transcribed verbatim.
pub const TABLE5: [EvaluationRow; 13] = [
    EvaluationRow { year: 2006, semester: Semester::Fall, cse445: 3.69, cse598: 4.37 },
    EvaluationRow { year: 2007, semester: Semester::Spring, cse445: 3.99, cse598: 4.13 },
    EvaluationRow { year: 2007, semester: Semester::Fall, cse445: 4.03, cse598: 4.33 },
    EvaluationRow { year: 2008, semester: Semester::Fall, cse445: 4.52, cse598: 4.81 },
    EvaluationRow { year: 2009, semester: Semester::Spring, cse445: 4.22, cse598: 4.37 },
    EvaluationRow { year: 2010, semester: Semester::Spring, cse445: 4.44, cse598: 4.46 },
    EvaluationRow { year: 2010, semester: Semester::Fall, cse445: 4.56, cse598: 4.63 },
    EvaluationRow { year: 2011, semester: Semester::Spring, cse445: 4.49, cse598: 4.52 },
    EvaluationRow { year: 2011, semester: Semester::Fall, cse445: 4.44, cse598: 4.53 },
    EvaluationRow { year: 2012, semester: Semester::Spring, cse445: 4.55, cse598: 4.66 },
    EvaluationRow { year: 2012, semester: Semester::Fall, cse445: 4.36, cse598: 4.6 },
    EvaluationRow { year: 2013, semester: Semester::Spring, cse445: 4.13, cse598: 4.50 },
    EvaluationRow { year: 2013, semester: Semester::Fall, cse445: 4.17, cse598: 4.63 },
];

/// Summary of one score column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// First row's score.
    pub first: f64,
    /// Last row's score.
    pub last: f64,
}

fn summarize(scores: impl Iterator<Item = f64> + Clone) -> Option<ScoreSummary> {
    let v: Vec<f64> = scores.collect();
    if v.is_empty() {
        return None;
    }
    Some(ScoreSummary {
        mean: v.iter().sum::<f64>() / v.len() as f64,
        min: v.iter().copied().fold(f64::INFINITY, f64::min),
        max: v.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        first: v[0],
        last: *v.last().expect("nonempty"),
    })
}

/// Summarize CSE445's column.
pub fn summary_445(rows: &[EvaluationRow]) -> Option<ScoreSummary> {
    summarize(rows.iter().map(|r| r.cse445))
}

/// Summarize CSE598's column.
pub fn summary_598(rows: &[EvaluationRow]) -> Option<ScoreSummary> {
    summarize(rows.iter().map(|r| r.cse598))
}

/// Map a score to the paper's verbal scale ("5.0 is very good, 4.0 is
/// good, 3.0 is fair, and 2.0 is poor").
pub fn verbal_scale(score: f64) -> &'static str {
    if score >= 4.5 {
        "very good"
    } else if score >= 3.5 {
        "good"
    } else if score >= 2.5 {
        "fair"
    } else {
        "poor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_bounds() {
        for r in &TABLE5 {
            assert!((2.0..=5.0).contains(&r.cse445), "{r:?}");
            assert!((2.0..=5.0).contains(&r.cse598), "{r:?}");
        }
        assert_eq!(TABLE5.len(), 13);
    }

    #[test]
    fn graduate_scores_consistently_higher() {
        // In every single term the 598 section scored at or above 445 —
        // a striking regularity of Table 5 worth asserting.
        for r in &TABLE5 {
            assert!(r.cse598 >= r.cse445, "{r:?}");
        }
    }

    #[test]
    fn summaries_support_well_received_claim() {
        let s445 = summary_445(&TABLE5).unwrap();
        let s598 = summary_598(&TABLE5).unwrap();
        // Mean scores are solidly "good" or better.
        assert!(s445.mean > 4.0 && s445.mean < 4.5, "{:.3}", s445.mean);
        assert!(s598.mean > 4.4, "{:.3}", s598.mean);
        // Scores improved from the first offering.
        assert!(s445.last > s445.first);
        assert_eq!(s445.min, 3.69);
        assert_eq!(s598.max, 4.81);
    }

    #[test]
    fn verbal_scale_mapping() {
        assert_eq!(verbal_scale(4.81), "very good");
        assert_eq!(verbal_scale(4.2), "good");
        assert_eq!(verbal_scale(3.0), "fair");
        assert_eq!(verbal_scale(2.0), "poor");
    }

    #[test]
    fn empty_summary_is_none() {
        assert!(summary_445(&[]).is_none());
    }
}
