/root/repo/target/debug/deps/soc_xml-4f3c04d21ce929ea.d: crates/soc-xml/src/lib.rs crates/soc-xml/src/dom.rs crates/soc-xml/src/error.rs crates/soc-xml/src/escape.rs crates/soc-xml/src/name.rs crates/soc-xml/src/reader.rs crates/soc-xml/src/sax.rs crates/soc-xml/src/schema.rs crates/soc-xml/src/writer.rs crates/soc-xml/src/xpath.rs crates/soc-xml/src/xslt.rs

/root/repo/target/debug/deps/soc_xml-4f3c04d21ce929ea: crates/soc-xml/src/lib.rs crates/soc-xml/src/dom.rs crates/soc-xml/src/error.rs crates/soc-xml/src/escape.rs crates/soc-xml/src/name.rs crates/soc-xml/src/reader.rs crates/soc-xml/src/sax.rs crates/soc-xml/src/schema.rs crates/soc-xml/src/writer.rs crates/soc-xml/src/xpath.rs crates/soc-xml/src/xslt.rs

crates/soc-xml/src/lib.rs:
crates/soc-xml/src/dom.rs:
crates/soc-xml/src/error.rs:
crates/soc-xml/src/escape.rs:
crates/soc-xml/src/name.rs:
crates/soc-xml/src/reader.rs:
crates/soc-xml/src/sax.rs:
crates/soc-xml/src/schema.rs:
crates/soc-xml/src/writer.rs:
crates/soc-xml/src/xpath.rs:
crates/soc-xml/src/xslt.rs:
