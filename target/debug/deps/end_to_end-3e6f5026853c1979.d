/root/repo/target/debug/deps/end_to_end-3e6f5026853c1979.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3e6f5026853c1979: tests/end_to_end.rs

tests/end_to_end.rs:
