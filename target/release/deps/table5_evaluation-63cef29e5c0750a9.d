/root/repo/target/release/deps/table5_evaluation-63cef29e5c0750a9.d: crates/soc-bench/src/bin/table5_evaluation.rs

/root/repo/target/release/deps/table5_evaluation-63cef29e5c0750a9: crates/soc-bench/src/bin/table5_evaluation.rs

crates/soc-bench/src/bin/table5_evaluation.rs:
