//! # soc-soap — SOAP 1.1 services with WSDL contracts
//!
//! The paper's CSE445 unit 3 teaches "service-oriented computing
//! standards and interfaces" — WSDL contracts, SOAP envelopes, service
//! providers and consumers. This crate implements the whole loop from
//! scratch on top of `soc-xml` and `soc-http`:
//!
//! - [`envelope`] — SOAP 1.1 envelope encode/decode and
//!   [`envelope::SoapFault`]s.
//! - [`contract`] — service contracts: named operations with typed
//!   parameters ([`contract::XsdType`]), validated on both ends.
//! - [`wsdl`] — WSDL 1.1 generation from a contract and parsing of
//!   (our dialect of) WSDL back into a contract — this is what the
//!   service *broker* stores and what consumers discover.
//! - [`service`] — [`service::SoapService`]: an HTTP handler that
//!   dispatches envelopes to registered operation implementations and
//!   serves `?wsdl`.
//! - [`client`] — [`client::SoapClient`]: typed calls over any
//!   transport, surfacing faults.
//!
//! ```
//! use soc_soap::contract::{Contract, Operation, XsdType};
//! use soc_soap::service::SoapService;
//! use soc_soap::client::SoapClient;
//! use soc_http::mem::MemNetwork;
//! use std::sync::Arc;
//!
//! let contract = Contract::new("Adder", "urn:soc:adder")
//!     .operation(Operation::new("Add")
//!         .input("a", XsdType::Int).input("b", XsdType::Int)
//!         .output("sum", XsdType::Int));
//! let mut svc = SoapService::new(contract.clone(), "mem://calc/soap");
//! svc.implement("Add", |params| {
//!     let a: i64 = params.get("a").unwrap().parse().unwrap();
//!     let b: i64 = params.get("b").unwrap().parse().unwrap();
//!     Ok(vec![("sum".to_string(), (a + b).to_string())])
//! });
//! let net = MemNetwork::new();
//! net.host("calc", svc);
//! let client = SoapClient::new(Arc::new(net));
//! let out = client.call("mem://calc/soap", &contract, "Add",
//!     &[("a", "2"), ("b", "40")]).unwrap();
//! assert_eq!(out.get("sum").map(String::as_str), Some("42"));
//! ```

pub mod client;
pub mod contract;
pub mod envelope;
pub mod service;
pub mod wsdl;

pub use client::SoapClient;
pub use contract::{Contract, Operation, XsdType};
pub use envelope::SoapFault;
pub use service::SoapService;

/// The SOAP 1.1 envelope namespace.
pub const SOAP_ENV_NS: &str = "http://schemas.xmlsoap.org/soap/envelope/";
/// XML Schema namespace (types).
pub const XSD_NS: &str = "http://www.w3.org/2001/XMLSchema";
/// WSDL 1.1 namespace.
pub const WSDL_NS: &str = "http://schemas.xmlsoap.org/wsdl/";
