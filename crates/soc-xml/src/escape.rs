//! Escaping and entity expansion for text and attribute content.
//!
//! Every entry point is zero-copy on the fast path: a byte scan proves
//! "nothing to rewrite" and the input comes back as [`Cow::Borrowed`];
//! an owned buffer is built only when an escape or entity reference
//! actually changes bytes. The `*_into` variants append straight into a
//! caller-provided buffer so the serializer never materializes an
//! intermediate `String`.

use std::borrow::Cow;

use crate::error::{Position, XmlError, XmlResult};

/// Offset of the first byte that must be rewritten in text content.
#[inline]
fn scan_text(bytes: &[u8]) -> Option<usize> {
    bytes.iter().position(|&b| matches!(b, b'<' | b'>' | b'&'))
}

/// Offset of the first byte that must be rewritten in an attribute value.
#[inline]
fn scan_attr(bytes: &[u8]) -> Option<usize> {
    bytes.iter().position(|&b| matches!(b, b'<' | b'>' | b'&' | b'"' | b'\'' | b'\n' | b'\t'))
}

/// Escape `<`, `>`, and `&` for element text content. Borrows the input
/// when nothing needs escaping.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    match scan_text(s.as_bytes()) {
        None => Cow::Borrowed(s),
        Some(i) => {
            let mut out = String::with_capacity(s.len() + 8);
            out.push_str(&s[..i]);
            escape_text_rest(&s[i..], &mut out);
            Cow::Owned(out)
        }
    }
}

/// Append `s` to `out`, escaping text content. The buffer-reuse twin of
/// [`escape_text`].
pub fn escape_text_into(s: &str, out: &mut String) {
    match scan_text(s.as_bytes()) {
        None => out.push_str(s),
        Some(i) => {
            out.push_str(&s[..i]);
            escape_text_rest(&s[i..], out);
        }
    }
}

fn escape_text_rest(s: &str, out: &mut String) {
    let mut last = 0;
    for (i, &b) in s.as_bytes().iter().enumerate() {
        let rep = match b {
            b'<' => "&lt;",
            b'>' => "&gt;",
            b'&' => "&amp;",
            _ => continue,
        };
        out.push_str(&s[last..i]);
        out.push_str(rep);
        last = i + 1;
    }
    out.push_str(&s[last..]);
}

/// Escape text for use inside a double-quoted attribute value. Borrows
/// the input when nothing needs escaping.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    match scan_attr(s.as_bytes()) {
        None => Cow::Borrowed(s),
        Some(i) => {
            let mut out = String::with_capacity(s.len() + 8);
            out.push_str(&s[..i]);
            escape_attr_rest(&s[i..], &mut out);
            Cow::Owned(out)
        }
    }
}

/// Append `s` to `out`, escaping attribute content. The buffer-reuse
/// twin of [`escape_attr`].
pub fn escape_attr_into(s: &str, out: &mut String) {
    match scan_attr(s.as_bytes()) {
        None => out.push_str(s),
        Some(i) => {
            out.push_str(&s[..i]);
            escape_attr_rest(&s[i..], out);
        }
    }
}

fn escape_attr_rest(s: &str, out: &mut String) {
    let mut last = 0;
    for (i, &b) in s.as_bytes().iter().enumerate() {
        let rep = match b {
            b'<' => "&lt;",
            b'>' => "&gt;",
            b'&' => "&amp;",
            b'"' => "&quot;",
            b'\'' => "&apos;",
            b'\n' => "&#10;",
            b'\t' => "&#9;",
            _ => continue,
        };
        out.push_str(&s[last..i]);
        out.push_str(rep);
        last = i + 1;
    }
    out.push_str(&s[last..]);
}

/// Expand the five predefined entities plus decimal/hex character
/// references in `s`. Borrows the input when it contains no `&` at all.
/// `pos` is used only for error reporting.
pub fn unescape(s: &str, pos: Position) -> XmlResult<Cow<'_, str>> {
    let Some(first) = s.as_bytes().iter().position(|&b| b == b'&') else {
        return Ok(Cow::Borrowed(s));
    };
    let mut out = String::with_capacity(s.len());
    out.push_str(&s[..first]);
    let mut rest = &s[first..];
    while let Some(amp) = rest.as_bytes().iter().position(|&b| b == b'&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let Some(end) = after.find(';') else {
            return Err(XmlError::BadEntity { pos, entity: after.chars().take(8).collect() });
        };
        let name = &after[..end];
        match name {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => {
                let code = if let Some(hex) =
                    name.strip_prefix("#x").or_else(|| name.strip_prefix("#X"))
                {
                    u32::from_str_radix(hex, 16).ok()
                } else if let Some(dec) = name.strip_prefix('#') {
                    dec.parse::<u32>().ok()
                } else {
                    None
                };
                match code.and_then(char::from_u32) {
                    Some(ch) => out.push(ch),
                    None => {
                        return Err(XmlError::BadEntity { pos, entity: name.to_string() });
                    }
                }
            }
        }
        rest = &after[end + 1..];
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Position {
        Position::start()
    }

    #[test]
    fn escape_then_unescape_text_round_trips() {
        let original = "a < b && c > d";
        let escaped = escape_text(original);
        assert_eq!(escaped, "a &lt; b &amp;&amp; c &gt; d");
        assert_eq!(unescape(&escaped, p()).unwrap(), original);
    }

    #[test]
    fn escape_attr_handles_quotes_and_whitespace() {
        assert_eq!(escape_attr("say \"hi\"\n"), "say &quot;hi&quot;&#10;");
        assert_eq!(unescape("say &quot;hi&quot;&#10;", p()).unwrap(), "say \"hi\"\n");
    }

    #[test]
    fn numeric_references_decimal_and_hex() {
        assert_eq!(unescape("&#65;&#x42;&#x63;", p()).unwrap(), "ABc");
    }

    #[test]
    fn unicode_references() {
        assert_eq!(unescape("&#x4E2D;&#x6587;", p()).unwrap(), "中文");
    }

    #[test]
    fn unknown_entity_is_an_error() {
        assert!(matches!(unescape("&nbsp;", p()), Err(XmlError::BadEntity { .. })));
    }

    #[test]
    fn unterminated_entity_is_an_error() {
        assert!(matches!(unescape("a&ltb", p()), Err(XmlError::BadEntity { .. })));
    }

    #[test]
    fn surrogate_char_reference_is_rejected() {
        assert!(matches!(unescape("&#xD800;", p()), Err(XmlError::BadEntity { .. })));
    }

    #[test]
    fn plain_string_borrows_without_copying() {
        assert!(matches!(unescape("hello world", p()).unwrap(), Cow::Borrowed(_)));
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
        assert!(matches!(escape_attr("hello world"), Cow::Borrowed(_)));
    }

    #[test]
    fn escaped_strings_are_owned_only_when_rewritten() {
        assert!(matches!(escape_text("a<b"), Cow::Owned(_)));
        assert!(matches!(unescape("&amp;", p()).unwrap(), Cow::Owned(_)));
    }

    #[test]
    fn into_variants_append_to_existing_buffers() {
        let mut buf = String::from("x=");
        escape_attr_into("a\"b", &mut buf);
        assert_eq!(buf, "x=a&quot;b");
        let mut buf = String::from("t:");
        escape_text_into("1<2", &mut buf);
        assert_eq!(buf, "t:1&lt;2");
    }
}
