/root/repo/target/debug/deps/soc_json-d018fef65e1d473d.d: crates/soc-json/src/lib.rs crates/soc-json/src/parse.rs crates/soc-json/src/pointer.rs crates/soc-json/src/ser.rs crates/soc-json/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libsoc_json-d018fef65e1d473d.rmeta: crates/soc-json/src/lib.rs crates/soc-json/src/parse.rs crates/soc-json/src/pointer.rs crates/soc-json/src/ser.rs crates/soc-json/src/value.rs Cargo.toml

crates/soc-json/src/lib.rs:
crates/soc-json/src/parse.rs:
crates/soc-json/src/pointer.rs:
crates/soc-json/src/ser.rs:
crates/soc-json/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
