/root/repo/target/debug/deps/soc_robotics-0281e264e0ee25ca.d: crates/soc-robotics/src/lib.rs crates/soc-robotics/src/algorithms.rs crates/soc-robotics/src/maze.rs crates/soc-robotics/src/raas.rs crates/soc-robotics/src/robot.rs crates/soc-robotics/src/sync.rs

/root/repo/target/debug/deps/libsoc_robotics-0281e264e0ee25ca.rlib: crates/soc-robotics/src/lib.rs crates/soc-robotics/src/algorithms.rs crates/soc-robotics/src/maze.rs crates/soc-robotics/src/raas.rs crates/soc-robotics/src/robot.rs crates/soc-robotics/src/sync.rs

/root/repo/target/debug/deps/libsoc_robotics-0281e264e0ee25ca.rmeta: crates/soc-robotics/src/lib.rs crates/soc-robotics/src/algorithms.rs crates/soc-robotics/src/maze.rs crates/soc-robotics/src/raas.rs crates/soc-robotics/src/robot.rs crates/soc-robotics/src/sync.rs

crates/soc-robotics/src/lib.rs:
crates/soc-robotics/src/algorithms.rs:
crates/soc-robotics/src/maze.rs:
crates/soc-robotics/src/raas.rs:
crates/soc-robotics/src/robot.rs:
crates/soc-robotics/src/sync.rs:
