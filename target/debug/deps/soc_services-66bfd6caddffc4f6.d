/root/repo/target/debug/deps/soc_services-66bfd6caddffc4f6.d: crates/soc-services/src/lib.rs crates/soc-services/src/access.rs crates/soc-services/src/bindings.rs crates/soc-services/src/buffer.rs crates/soc-services/src/cache.rs crates/soc-services/src/captcha.rs crates/soc-services/src/cart.rs crates/soc-services/src/crypto.rs crates/soc-services/src/guessing.rs crates/soc-services/src/image.rs crates/soc-services/src/mortgage.rs crates/soc-services/src/password.rs

/root/repo/target/debug/deps/libsoc_services-66bfd6caddffc4f6.rlib: crates/soc-services/src/lib.rs crates/soc-services/src/access.rs crates/soc-services/src/bindings.rs crates/soc-services/src/buffer.rs crates/soc-services/src/cache.rs crates/soc-services/src/captcha.rs crates/soc-services/src/cart.rs crates/soc-services/src/crypto.rs crates/soc-services/src/guessing.rs crates/soc-services/src/image.rs crates/soc-services/src/mortgage.rs crates/soc-services/src/password.rs

/root/repo/target/debug/deps/libsoc_services-66bfd6caddffc4f6.rmeta: crates/soc-services/src/lib.rs crates/soc-services/src/access.rs crates/soc-services/src/bindings.rs crates/soc-services/src/buffer.rs crates/soc-services/src/cache.rs crates/soc-services/src/captcha.rs crates/soc-services/src/cart.rs crates/soc-services/src/crypto.rs crates/soc-services/src/guessing.rs crates/soc-services/src/image.rs crates/soc-services/src/mortgage.rs crates/soc-services/src/password.rs

crates/soc-services/src/lib.rs:
crates/soc-services/src/access.rs:
crates/soc-services/src/bindings.rs:
crates/soc-services/src/buffer.rs:
crates/soc-services/src/cache.rs:
crates/soc-services/src/captcha.rs:
crates/soc-services/src/cart.rs:
crates/soc-services/src/crypto.rs:
crates/soc-services/src/guessing.rs:
crates/soc-services/src/image.rs:
crates/soc-services/src/mortgage.rs:
crates/soc-services/src/password.rs:
