//! BPEL-style structured process composition.
//!
//! Where [`crate::graph`] is the visual dataflow model, this is the
//! block-structured one taught alongside it: processes are trees of
//! `Sequence` / `Flow` / `While` / `If` / `Invoke` / `Assign` over a
//! shared variable scope, executed against a transport — CSE446's
//! "BPEL-based integration" project.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use soc_http::mem::Transport;
use soc_http::Request;
use soc_json::Value;

/// The variable scope a process runs over.
pub type Scope = HashMap<String, Value>;

/// Why a process failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ProcessError {
    /// An `Invoke` failed (transport or non-2xx).
    Invoke {
        /// Endpoint invoked.
        endpoint: String,
        /// Failure description.
        detail: String,
    },
    /// A `While` exceeded its iteration budget — almost certainly a
    /// non-terminating loop in the process definition.
    LoopBudget {
        /// The configured budget that was exceeded.
        budget: u32,
    },
    /// An expression referenced a missing variable.
    UnboundVariable(String),
}

impl std::fmt::Display for ProcessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcessError::Invoke { endpoint, detail } => {
                write!(f, "invoke {endpoint} failed: {detail}")
            }
            ProcessError::LoopBudget { budget } => {
                write!(f, "while loop exceeded {budget} iterations")
            }
            ProcessError::UnboundVariable(v) => write!(f, "unbound variable {v:?}"),
        }
    }
}

type Expr = Arc<dyn Fn(&Scope) -> Result<Value, ProcessError> + Send + Sync>;
type Cond = Arc<dyn Fn(&Scope) -> bool + Send + Sync>;

/// A structured process step.
#[derive(Clone)]
pub enum Step {
    /// Run steps one after another.
    Sequence(Vec<Step>),
    /// Run steps concurrently (BPEL `<flow>`); all must succeed.
    Flow(Vec<Step>),
    /// Evaluate an expression into a variable.
    Assign {
        /// Target variable.
        var: String,
        /// Expression over the current scope.
        expr: Expr,
    },
    /// Conditional.
    If {
        /// Branch condition.
        cond: Cond,
        /// Taken when true.
        then: Box<Step>,
        /// Taken when false (may be an empty sequence).
        otherwise: Box<Step>,
    },
    /// Loop while the condition holds (bounded by the engine's budget).
    While {
        /// Loop condition.
        cond: Cond,
        /// Loop body.
        body: Box<Step>,
    },
    /// Invoke a REST service: POST the value of `input_var` (or GET when
    /// `None`) and store the JSON reply into `output_var`.
    Invoke {
        /// Target endpoint.
        endpoint: String,
        /// Variable holding the request payload, if POSTing.
        input_var: Option<String>,
        /// Variable receiving the parsed response.
        output_var: String,
    },
}

impl Step {
    /// Helper: assign from a closure.
    pub fn assign(
        var: &str,
        f: impl Fn(&Scope) -> Result<Value, ProcessError> + Send + Sync + 'static,
    ) -> Step {
        Step::Assign { var: var.to_string(), expr: Arc::new(f) }
    }

    /// Helper: assign a constant.
    pub fn set(var: &str, value: impl Into<Value>) -> Step {
        let v = value.into();
        Step::assign(var, move |_| Ok(v.clone()))
    }
}

/// The process engine: a step tree plus execution policy.
pub struct Process {
    root: Step,
    transport: Arc<dyn Transport>,
    /// Iteration budget per `While` (defends against non-termination).
    pub loop_budget: u32,
    pool: Option<Arc<soc_parallel::ThreadPool>>,
}

impl Process {
    /// Build a process over a transport.
    pub fn new(root: Step, transport: Arc<dyn Transport>) -> Self {
        Process { root, transport, loop_budget: 10_000, pool: None }
    }

    /// Execute `Flow` steps on a pool instead of sequentially.
    pub fn with_pool(mut self, pool: Arc<soc_parallel::ThreadPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Run with an initial scope; returns the final scope.
    pub fn run(&self, mut scope: Scope) -> Result<Scope, ProcessError> {
        self.exec(&self.root, &mut scope)?;
        Ok(scope)
    }

    fn exec(&self, step: &Step, scope: &mut Scope) -> Result<(), ProcessError> {
        match step {
            Step::Sequence(steps) => {
                for s in steps {
                    self.exec(s, scope)?;
                }
                Ok(())
            }
            Step::Flow(steps) => {
                // Each branch runs on a snapshot; writes merge back in
                // declaration order (later branches win on conflicts) —
                // BPEL flows that race on a variable are a process bug,
                // but the engine stays deterministic about it.
                let snapshots: Vec<Result<Scope, ProcessError>> = match &self.pool {
                    Some(pool) if steps.len() > 1 => {
                        // Pool threads have no trace context of their
                        // own; re-activate the caller's so branch
                        // invokes stay in this process's trace.
                        let flow_ctx = soc_observe::context::current();
                        let out = Mutex::new(vec![None; steps.len()]);
                        pool.scope(|s| {
                            for (i, st) in steps.iter().enumerate() {
                                let out = &out;
                                let base = scope.clone();
                                s.spawn(move || {
                                    let _trace = flow_ctx.map(soc_observe::context::set_current);
                                    let mut local = base;
                                    let r = self.exec(st, &mut local).map(|()| local);
                                    out.lock()[i] = Some(r);
                                });
                            }
                        });
                        out.into_inner().into_iter().map(|o| o.expect("branch ran")).collect()
                    }
                    _ => steps
                        .iter()
                        .map(|st| {
                            let mut local = scope.clone();
                            self.exec(st, &mut local).map(|()| local)
                        })
                        .collect(),
                };
                for snap in snapshots {
                    let snap = snap?;
                    for (k, v) in snap {
                        scope.insert(k, v);
                    }
                }
                Ok(())
            }
            Step::Assign { var, expr } => {
                let v = expr(scope)?;
                scope.insert(var.clone(), v);
                Ok(())
            }
            Step::If { cond, then, otherwise } => {
                if cond(scope) {
                    self.exec(then, scope)
                } else {
                    self.exec(otherwise, scope)
                }
            }
            Step::While { cond, body } => {
                let mut iterations = 0u32;
                while cond(scope) {
                    iterations += 1;
                    if iterations > self.loop_budget {
                        return Err(ProcessError::LoopBudget { budget: self.loop_budget });
                    }
                    self.exec(body, scope)?;
                }
                Ok(())
            }
            Step::Invoke { endpoint, input_var, output_var } => {
                let mut span = soc_observe::span("bpel.invoke", soc_observe::SpanKind::Internal);
                span.set_attr("endpoint", endpoint.as_str());
                let req = match input_var {
                    Some(var) => {
                        let payload = scope
                            .get(var)
                            .ok_or_else(|| ProcessError::UnboundVariable(var.clone()))?;
                        Request::post(endpoint, Vec::new())
                            .with_text("application/json", &payload.to_compact())
                    }
                    None => Request::get(endpoint),
                };
                let result = {
                    let _in_span = span.activate();
                    self.transport.send(req)
                };
                let resp = result.map_err(|e| {
                    span.set_error(e.to_string());
                    ProcessError::Invoke { endpoint: endpoint.clone(), detail: e.to_string() }
                })?;
                if !resp.status.is_success() {
                    span.set_error(format!("status {}", resp.status));
                    return Err(ProcessError::Invoke {
                        endpoint: endpoint.clone(),
                        detail: format!("status {}", resp.status),
                    });
                }
                let text = resp.text_body().unwrap_or("null");
                let value = Value::parse(text).unwrap_or(Value::Null);
                scope.insert(output_var.clone(), value);
                Ok(())
            }
        }
    }
}

/// Fetch a variable as i64 or fail with [`ProcessError::UnboundVariable`].
pub fn int_var(scope: &Scope, name: &str) -> Result<i64, ProcessError> {
    scope
        .get(name)
        .and_then(Value::as_i64)
        .ok_or_else(|| ProcessError::UnboundVariable(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_http::{MemNetwork, Response};

    fn transport() -> Arc<dyn Transport> {
        let net = MemNetwork::new();
        net.host("math", |req: Request| {
            if req.path() == "/double" {
                let v = Value::parse(req.text().unwrap()).unwrap();
                let n = v.as_i64().unwrap();
                Response::json(&Value::from(n * 2).to_compact())
            } else {
                Response::json("7")
            }
        });
        Arc::new(net)
    }

    #[test]
    fn sequence_and_assign() {
        let p = Process::new(
            Step::Sequence(vec![
                Step::set("a", 2),
                Step::assign("b", |s| Ok(Value::from(int_var(s, "a")? + 40))),
            ]),
            transport(),
        );
        let out = p.run(Scope::new()).unwrap();
        assert_eq!(out["b"].as_i64(), Some(42));
    }

    #[test]
    fn invoke_get_and_post() {
        let p = Process::new(
            Step::Sequence(vec![
                Step::Invoke {
                    endpoint: "mem://math/seven".into(),
                    input_var: None,
                    output_var: "seven".into(),
                },
                Step::Invoke {
                    endpoint: "mem://math/double".into(),
                    input_var: Some("seven".into()),
                    output_var: "fourteen".into(),
                },
            ]),
            transport(),
        );
        let out = p.run(Scope::new()).unwrap();
        assert_eq!(out["fourteen"].as_i64(), Some(14));
    }

    #[test]
    fn while_loops_until_condition() {
        let p = Process::new(
            Step::Sequence(vec![
                Step::set("i", 0),
                Step::While {
                    cond: Arc::new(|s| s["i"].as_i64().unwrap() < 5),
                    body: Box::new(Step::assign("i", |s| Ok(Value::from(int_var(s, "i")? + 1)))),
                },
            ]),
            transport(),
        );
        assert_eq!(p.run(Scope::new()).unwrap()["i"].as_i64(), Some(5));
    }

    #[test]
    fn runaway_loop_hits_budget() {
        let mut p = Process::new(
            Step::While { cond: Arc::new(|_| true), body: Box::new(Step::set("x", 1)) },
            transport(),
        );
        p.loop_budget = 100;
        assert_eq!(p.run(Scope::new()), Err(ProcessError::LoopBudget { budget: 100 }));
    }

    #[test]
    fn if_branches() {
        let build = |n: i64| {
            Process::new(
                Step::Sequence(vec![
                    Step::set("n", n),
                    Step::If {
                        cond: Arc::new(|s| s["n"].as_i64().unwrap() > 10),
                        then: Box::new(Step::set("size", "big")),
                        otherwise: Box::new(Step::set("size", "small")),
                    },
                ]),
                transport(),
            )
            .run(Scope::new())
            .unwrap()
        };
        assert_eq!(build(20)["size"].as_str(), Some("big"));
        assert_eq!(build(2)["size"].as_str(), Some("small"));
    }

    #[test]
    fn flow_merges_branch_writes() {
        let p = Process::new(
            Step::Flow(vec![
                Step::set("a", 1),
                Step::set("b", 2),
                Step::Sequence(vec![Step::set("c", 3)]),
            ]),
            transport(),
        );
        let out = p.run(Scope::new()).unwrap();
        assert_eq!(out["a"].as_i64(), Some(1));
        assert_eq!(out["b"].as_i64(), Some(2));
        assert_eq!(out["c"].as_i64(), Some(3));
    }

    #[test]
    fn flow_parallel_matches_sequential() {
        let pool = Arc::new(soc_parallel::ThreadPool::new(3));
        let branches: Vec<Step> = (0..6).map(|i| Step::set(&format!("v{i}"), i as i64)).collect();
        let seq =
            Process::new(Step::Flow(branches.clone()), transport()).run(Scope::new()).unwrap();
        let par = Process::new(Step::Flow(branches), transport())
            .with_pool(pool)
            .run(Scope::new())
            .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn invoke_failure_reports_endpoint() {
        let p = Process::new(
            Step::Invoke {
                endpoint: "mem://ghost/x".into(),
                input_var: None,
                output_var: "out".into(),
            },
            transport(),
        );
        match p.run(Scope::new()) {
            Err(ProcessError::Invoke { endpoint, .. }) => assert_eq!(endpoint, "mem://ghost/x"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unbound_input_variable() {
        let p = Process::new(
            Step::Invoke {
                endpoint: "mem://math/double".into(),
                input_var: Some("missing".into()),
                output_var: "out".into(),
            },
            transport(),
        );
        assert!(matches!(p.run(Scope::new()), Err(ProcessError::UnboundVariable(_))));
    }
}
