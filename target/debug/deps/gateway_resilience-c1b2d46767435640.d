/root/repo/target/debug/deps/gateway_resilience-c1b2d46767435640.d: tests/gateway_resilience.rs Cargo.toml

/root/repo/target/debug/deps/libgateway_resilience-c1b2d46767435640.rmeta: tests/gateway_resilience.rs Cargo.toml

tests/gateway_resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
