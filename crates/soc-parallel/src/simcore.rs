//! A deterministic virtual-multicore scheduler for weighted task DAGs.
//!
//! Two of the paper's needs meet here:
//!
//! 1. **Substitution substrate.** Figure 3 was measured on Intel's
//!    32-core Manycore Testing Lab, which we do not have (this
//!    reproduction may even run on a single-core container). Simulating
//!    list scheduling of the same task graph on *k* virtual cores
//!    reproduces the figure's speedup/efficiency shape deterministically
//!    on any host.
//! 2. **Course topic.** Table 2 requires students to "understand that
//!    more processors does not always mean faster execution, e.g.
//!    inherent sequentiality of algorithmic structure, DAG
//!    representation with a sequential spine" — this module *is* that
//!    DAG model, with critical-path analysis built in.
//!
//! Costs are abstract time units; the simulator is exact and
//! reproducible (no wall clocks, no host-dependent noise).

/// Identifier of a task inside a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(usize);

#[derive(Debug, Clone)]
struct SimTask {
    cost: u64,
    deps: Vec<TaskId>,
}

/// A weighted DAG of tasks.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<SimTask>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Add a task costing `cost` units that starts only after `deps`.
    /// Panics if a dependency id is from the future (cycle-free by
    /// construction).
    pub fn add(&mut self, cost: u64, deps: &[TaskId]) -> TaskId {
        let id = TaskId(self.tasks.len());
        for d in deps {
            assert!(d.0 < id.0, "dependencies must precede the task");
        }
        self.tasks.push(SimTask { cost, deps: deps.to_vec() });
        id
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no tasks have been added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total work `T₁` (sum of all costs).
    pub fn total_work(&self) -> u64 {
        self.tasks.iter().map(|t| t.cost).sum()
    }

    /// Critical path `T∞` (longest cost-weighted dependency chain) —
    /// the lower bound on makespan with unlimited cores.
    pub fn critical_path(&self) -> u64 {
        let mut finish = vec![0u64; self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            let ready = t.deps.iter().map(|d| finish[d.0]).max().unwrap_or(0);
            finish[i] = ready + t.cost;
        }
        finish.into_iter().max().unwrap_or(0)
    }

    /// Build a fork/join graph: a serial prefix, `n` independent tasks
    /// with the given costs, and a serial suffix that joins them.
    /// This models the Figure 3 experiment: setup → parallel Collatz
    /// chunks → reduction.
    pub fn fork_join(prefix: u64, chunk_costs: &[u64], suffix: u64) -> Self {
        let mut g = TaskGraph::new();
        let pre = g.add(prefix, &[]);
        let chunks: Vec<TaskId> = chunk_costs.iter().map(|&c| g.add(c, &[pre])).collect();
        g.add(suffix, &chunks);
        g
    }

    /// Build a "sequential spine" graph: `spine_len` serial tasks, each
    /// forking `width` parallel children that must rejoin before the
    /// next spine step — the Table 2 scalability cautionary tale.
    pub fn sequential_spine(
        spine_len: usize,
        spine_cost: u64,
        width: usize,
        child_cost: u64,
    ) -> Self {
        let mut g = TaskGraph::new();
        let mut prev: Vec<TaskId> = Vec::new();
        for _ in 0..spine_len {
            let spine = g.add(spine_cost, &prev);
            prev = (0..width).map(|_| g.add(child_cost, &[spine])).collect();
        }
        g
    }
}

/// Result of simulating a graph on `cores` virtual cores.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Virtual core count used.
    pub cores: usize,
    /// Completion time of the last task.
    pub makespan: u64,
    /// Busy time per core (sum ≤ cores × makespan).
    pub busy: Vec<u64>,
    /// Mean core utilization in [0, 1].
    pub utilization: f64,
}

/// Greedy list scheduling (earliest-finishing core gets the next ready
/// task; ties broken by task id, so results are fully deterministic).
/// `per_task_overhead` is added to every task's cost, modeling scheduler
/// and synchronization overhead — the term that makes measured
/// efficiency fall below 1 as cores grow, exactly as in Figure 3.
pub fn simulate(graph: &TaskGraph, cores: usize, per_task_overhead: u64) -> SimResult {
    assert!(cores > 0, "need at least one core");
    let n = graph.tasks.len();
    let mut indegree: Vec<usize> = graph.tasks.iter().map(|t| t.deps.len()).collect();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, t) in graph.tasks.iter().enumerate() {
        for d in &t.deps {
            dependents[d.0].push(i);
        }
    }
    // Ready tasks become eligible at the max finish time of their deps.
    let mut ready_at = vec![0u64; n];
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
        std::collections::BinaryHeap::new();
    for (i, t) in graph.tasks.iter().enumerate() {
        if t.deps.is_empty() {
            ready.push(std::cmp::Reverse((0, i)));
        }
    }
    let mut core_free = vec![0u64; cores];
    let mut busy = vec![0u64; cores];
    let mut finish = vec![0u64; n];
    let mut scheduled = 0usize;

    while let Some(std::cmp::Reverse((eligible, task))) = ready.pop() {
        // Earliest-free core (ties → lowest index).
        let (core, &free) =
            core_free.iter().enumerate().min_by_key(|&(i, &f)| (f, i)).expect("at least one core");
        let start = free.max(eligible);
        let cost = graph.tasks[task].cost + per_task_overhead;
        let end = start + cost;
        core_free[core] = end;
        busy[core] += cost;
        finish[task] = end;
        scheduled += 1;
        for &dep in &dependents[task] {
            ready_at[dep] = ready_at[dep].max(end);
            indegree[dep] -= 1;
            if indegree[dep] == 0 {
                ready.push(std::cmp::Reverse((ready_at[dep], dep)));
            }
        }
    }
    assert_eq!(scheduled, n, "graph contained unreachable (cyclic?) tasks");

    let makespan = finish.iter().copied().max().unwrap_or(0);
    let total_busy: u64 = busy.iter().sum();
    let utilization =
        if makespan == 0 { 1.0 } else { total_busy as f64 / (makespan as f64 * cores as f64) };
    SimResult { cores, makespan, busy, utilization }
}

/// Simulate the same graph over several core counts and return
/// `(cores, speedup, efficiency)` rows against the 1-core makespan —
/// the exact series Figure 3 plots.
pub fn scaling_series(
    graph: &TaskGraph,
    core_counts: &[usize],
    per_task_overhead: u64,
) -> Vec<(usize, f64, f64)> {
    let t1 = simulate(graph, 1, per_task_overhead).makespan.max(1);
    core_counts
        .iter()
        .map(|&c| {
            let tp = simulate(graph, c, per_task_overhead).makespan.max(1);
            let s = t1 as f64 / tp as f64;
            (c, s, s / c as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_task() {
        let mut g = TaskGraph::new();
        g.add(10, &[]);
        let r = simulate(&g, 4, 0);
        assert_eq!(r.makespan, 10);
        assert_eq!(g.critical_path(), 10);
        assert_eq!(g.total_work(), 10);
    }

    #[test]
    fn independent_tasks_scale_perfectly() {
        let mut g = TaskGraph::new();
        for _ in 0..8 {
            g.add(5, &[]);
        }
        assert_eq!(simulate(&g, 1, 0).makespan, 40);
        assert_eq!(simulate(&g, 4, 0).makespan, 10);
        assert_eq!(simulate(&g, 8, 0).makespan, 5);
        // More cores than tasks: bounded by the critical path.
        assert_eq!(simulate(&g, 100, 0).makespan, 5);
    }

    #[test]
    fn chain_cannot_parallelize() {
        let mut g = TaskGraph::new();
        let a = g.add(3, &[]);
        let b = g.add(3, &[a]);
        let _c = g.add(3, &[b]);
        assert_eq!(g.critical_path(), 9);
        assert_eq!(simulate(&g, 32, 0).makespan, 9);
    }

    #[test]
    fn fork_join_respects_prefix_and_suffix() {
        let g = TaskGraph::fork_join(4, &[10, 10, 10, 10], 6);
        // 1 core: 4 + 40 + 6.
        assert_eq!(simulate(&g, 1, 0).makespan, 50);
        // 4 cores: 4 + 10 + 6.
        assert_eq!(simulate(&g, 4, 0).makespan, 20);
        assert_eq!(g.critical_path(), 20);
    }

    #[test]
    fn makespan_never_beats_critical_path_or_work_bound() {
        let g = TaskGraph::fork_join(2, &[7, 3, 9, 5, 1, 8], 4);
        for cores in [1, 2, 3, 4, 8, 64] {
            let r = simulate(&g, cores, 0);
            assert!(r.makespan >= g.critical_path());
            assert!(r.makespan as f64 >= g.total_work() as f64 / cores as f64);
            // Greedy list scheduling honors Graham's bound: T_p ≤ T1/p + T∞.
            assert!(
                r.makespan as f64
                    <= g.total_work() as f64 / cores as f64 + g.critical_path() as f64
            );
        }
    }

    #[test]
    fn overhead_degrades_efficiency() {
        let chunk_costs = vec![100u64; 32];
        let g = TaskGraph::fork_join(10, &chunk_costs, 10);
        let series_free = scaling_series(&g, &[1, 4, 8, 16, 32], 0);
        let series_overhead = scaling_series(&g, &[1, 4, 8, 16, 32], 5);
        // Efficiency is monotonically non-increasing in cores and the
        // overhead run is never more efficient at 32 cores.
        let eff = |s: &[(usize, f64, f64)]| s.last().unwrap().2;
        assert!(eff(&series_overhead) <= eff(&series_free) + 1e-9);
        for w in series_free.windows(2) {
            assert!(w[1].2 <= w[0].2 + 1e-9);
        }
    }

    #[test]
    fn sequential_spine_limits_speedup() {
        // Heavy spine, light children: speedup must saturate well below
        // the core count (Table 2's lesson).
        let g = TaskGraph::sequential_spine(10, 50, 4, 10);
        let series = scaling_series(&g, &[1, 4, 32], 0);
        let s32 = series.last().unwrap().1;
        assert!(s32 < 4.0, "spine-bound graph must not scale: {s32}");
    }

    #[test]
    fn utilization_in_bounds() {
        let g = TaskGraph::fork_join(1, &[5, 5, 5], 1);
        for cores in [1, 2, 4] {
            let r = simulate(&g, cores, 0);
            assert!(r.utilization > 0.0 && r.utilization <= 1.0);
        }
        assert!((simulate(&g, 1, 0).utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic() {
        let g = TaskGraph::fork_join(3, &[9, 2, 7, 4, 6], 3);
        let a = simulate(&g, 3, 1);
        let b = simulate(&g, 3, 1);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "dependencies must precede")]
    fn forward_dependency_rejected() {
        let mut g = TaskGraph::new();
        let a = g.add(1, &[]);
        let _ = g.add(1, &[TaskId(a.0 + 5)]);
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new();
        assert_eq!(simulate(&g, 2, 0).makespan, 0);
        assert_eq!(g.critical_path(), 0);
    }
}
