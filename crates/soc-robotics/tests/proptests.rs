//! Property tests for the robotics stack: maze structural invariants,
//! sensor/oracle consistency, and navigator guarantees across random
//! mazes.

use proptest::prelude::*;
use soc_robotics::algorithms::{self, Hand, TwoDistanceGreedy, WallFollower};
use soc_robotics::maze::{Direction, Maze};
use soc_robotics::robot::{Action, Robot};

fn maze_params() -> impl Strategy<Value = (usize, usize, u64)> {
    (3usize..18, 3usize..14, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_mazes_are_perfect((w, h, seed) in maze_params()) {
        let m = Maze::generate(w, h, seed);
        // Spanning tree: passages = cells - 1.
        let mut passages = 0;
        for y in 0..h {
            for x in 0..w {
                if !m.has_wall((x, y), Direction::East) {
                    passages += 1;
                }
                if !m.has_wall((x, y), Direction::South) {
                    passages += 1;
                }
            }
        }
        prop_assert_eq!(passages, w * h - 1);
        // Every cell reachable, exactly one path start→exit exists.
        prop_assert!(m.shortest_path(m.start, m.exit).is_some());
    }

    #[test]
    fn walls_are_always_symmetric((w, h, seed) in maze_params()) {
        let m = Maze::generate(w, h, seed);
        for y in 0..h {
            for x in 0..w {
                for d in Direction::ALL {
                    if let Some(n) = m.neighbor((x, y), d) {
                        prop_assert_eq!(
                            m.has_wall((x, y), d),
                            m.has_wall(n, d.opposite()),
                            "asymmetric wall at ({},{}) {:?}", x, y, d
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn braiding_never_disconnects((w, h, seed) in maze_params(), fraction in 0.0f64..1.0) {
        let mut m = Maze::generate(w, h, seed);
        let before = m.shortest_path(m.start, m.exit).unwrap().len();
        m.braid(fraction, seed ^ 1);
        let after = m.shortest_path(m.start, m.exit).unwrap().len();
        // Braiding removes walls only: paths can only get shorter.
        prop_assert!(after <= before);
    }

    #[test]
    fn sensors_agree_with_walls((w, h, seed) in maze_params()) {
        let m = Maze::generate(w, h, seed);
        let robot = Robot::at_start(&m);
        let s = robot.sense(&m);
        prop_assert_eq!(s.front == 0, m.has_wall(robot.position, robot.heading));
        prop_assert_eq!(s.left == 0, m.has_wall(robot.position, robot.heading.left()));
        prop_assert_eq!(s.right == 0, m.has_wall(robot.position, robot.heading.right()));
    }

    #[test]
    fn robot_never_escapes_the_maze((w, h, seed) in maze_params(), actions in proptest::collection::vec(0u8..3, 0..64)) {
        let m = Maze::generate(w, h, seed);
        let mut robot = Robot::at_start(&m);
        for a in actions {
            let action = match a {
                0 => Action::Forward,
                1 => Action::TurnLeft,
                _ => Action::TurnRight,
            };
            robot.act(&m, action);
            prop_assert!(robot.position.0 < w && robot.position.1 < h);
        }
        // Trace length = forward moves + 1.
        prop_assert_eq!(robot.trace().len(), robot.steps() + 1);
    }

    #[test]
    fn wall_follower_always_solves_perfect_mazes((w, h, seed) in maze_params()) {
        let m = Maze::generate(w, h, seed);
        let budget = w * h * 16 + 64;
        let out = algorithms::run(&m, &mut WallFollower::new(Hand::Right), budget);
        prop_assert!(out.reached, "failed on {}x{} seed {}: {:?}", w, h, seed, out);
        prop_assert_eq!(out.bumps, 0);
    }

    #[test]
    fn greedy_never_bumps_and_respects_oracle((w, h, seed) in maze_params()) {
        let m = Maze::generate(w, h, seed);
        let budget = w * h * 20 + 64;
        let out = algorithms::run(&m, &mut TwoDistanceGreedy::new(), budget);
        prop_assert_eq!(out.bumps, 0, "greedy bumped: {:?}", out);
        if out.reached {
            let min = algorithms::oracle_steps(&m).unwrap();
            prop_assert!(out.steps >= min, "beat the BFS oracle");
        }
    }

    #[test]
    fn bfs_paths_are_minimal_and_legal((w, h, seed) in maze_params()) {
        let m = Maze::generate(w, h, seed);
        let path = m.shortest_path(m.start, m.exit).unwrap();
        // Legal adjacency along the whole path.
        for win in path.windows(2) {
            let ok = Direction::ALL.into_iter().any(|d| {
                m.neighbor(win[0], d) == Some(win[1]) && !m.has_wall(win[0], d)
            });
            prop_assert!(ok, "illegal hop {:?} -> {:?}", win[0], win[1]);
        }
        // In a perfect maze the unique path is minimal by construction;
        // check symmetry instead: reverse path has the same length.
        let back = m.shortest_path(m.exit, m.start).unwrap();
        prop_assert_eq!(back.len(), path.len());
    }
}
