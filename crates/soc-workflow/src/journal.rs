//! Durable saga execution: the coordinator's completion log on the
//! `soc-store` write-ahead log.
//!
//! [`SagaJournal`] records three event kinds per saga — `begin`,
//! `node` (a completed forward step with its outputs), and `end` — so
//! a coordinator that crashes mid-saga reopens to the exact set of
//! sagas that began but never finished, each with the nodes it is
//! *known* to have completed. The restarted coordinator then either
//! **resumes** ([`WorkflowGraph::resume_saga`]: seed the journalled
//! completions, execute only the remaining suffix) or **compensates**
//! ([`WorkflowGraph::compensate_saga`]: run the compensators of every
//! journalled completion in reverse topological order) — the paper's
//! dependability story carried across a process boundary.
//!
//! The journal trails reality by at most one in-flight node: a node's
//! completion is logged *before* its outputs are routed, so a crash
//! between a side effect landing and the `node` event reaching disk
//! loses only that one step — which is why compensators must be safe
//! to run when the effect never landed (the same contract in-run
//! compensation already demands of the failed node).
//!
//! Snapshot = the open-saga table only; `end` events delete their saga,
//! so compaction naturally discards finished history.

use std::collections::HashMap;

use soc_json::Value;
use soc_parallel::ThreadPool;
use soc_store::wal::{Lsn, WalConfig};
use soc_store::{Durable, StateMachine, StoreResult};

use crate::activity::Ports;
use crate::graph::{WorkflowError, WorkflowGraph};
use crate::saga::{SagaConfig, SagaHook, WorkflowOutcome};

/// What the journal knows about one unfinished saga.
#[derive(Debug, Clone, Default)]
pub struct SagaRecord {
    /// Completed nodes in completion order: `(node name, outputs)`.
    pub completed: Vec<(String, Ports)>,
}

/// The replayable open-saga table.
#[derive(Default)]
struct JournalMachine {
    open: HashMap<String, SagaRecord>,
}

fn ports_to_value(ports: &Ports) -> Value {
    let mut obj = Value::object();
    let mut names: Vec<&String> = ports.keys().collect();
    names.sort();
    for name in names {
        obj.set(name.as_str(), ports[name].clone());
    }
    obj
}

fn ports_from_value(v: &Value) -> Ports {
    let mut ports = Ports::new();
    if let Value::Object(entries) = v {
        for (k, val) in entries {
            ports.insert(k.clone(), val.clone());
        }
    }
    ports
}

impl JournalMachine {
    fn begin_event(saga: &str) -> Vec<u8> {
        let mut ev = Value::object();
        ev.set("ev", "begin");
        ev.set("saga", saga);
        ev.to_compact().into_bytes()
    }

    fn node_event(saga: &str, node: &str, outputs: &Ports) -> Vec<u8> {
        let mut ev = Value::object();
        ev.set("ev", "node");
        ev.set("saga", saga);
        ev.set("node", node);
        ev.set("outputs", ports_to_value(outputs));
        ev.to_compact().into_bytes()
    }

    fn end_event(saga: &str) -> Vec<u8> {
        let mut ev = Value::object();
        ev.set("ev", "end");
        ev.set("saga", saga);
        ev.to_compact().into_bytes()
    }
}

impl StateMachine for JournalMachine {
    fn apply(&mut self, _lsn: Lsn, command: &[u8]) {
        let Ok(text) = std::str::from_utf8(command) else { return };
        let Ok(ev) = Value::parse(text) else { return };
        let saga = ev.get("saga").and_then(Value::as_str).unwrap_or_default().to_string();
        match ev.get("ev").and_then(Value::as_str) {
            Some("begin") => {
                self.open.entry(saga).or_default();
            }
            Some("node") => {
                let node = ev.get("node").and_then(Value::as_str).unwrap_or_default().to_string();
                let outputs = ev.get("outputs").map(ports_from_value).unwrap_or_default();
                self.open.entry(saga).or_default().completed.push((node, outputs));
            }
            Some("end") => {
                self.open.remove(&saga);
            }
            _ => {}
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut ids: Vec<&String> = self.open.keys().collect();
        ids.sort();
        let sagas: Vec<Value> = ids
            .into_iter()
            .map(|id| {
                let rec = &self.open[id];
                let completed: Vec<Value> = rec
                    .completed
                    .iter()
                    .map(|(node, ports)| {
                        let mut step = Value::object();
                        step.set("node", node.as_str());
                        step.set("outputs", ports_to_value(ports));
                        step
                    })
                    .collect();
                let mut saga = Value::object();
                saga.set("saga", id.as_str());
                saga.set("completed", Value::Array(completed));
                saga
            })
            .collect();
        let mut snap = Value::object();
        snap.set("open", Value::Array(sagas));
        snap.to_compact().into_bytes()
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), String> {
        let text = std::str::from_utf8(snapshot).map_err(|e| e.to_string())?;
        let snap = Value::parse(text).map_err(|e| e.to_string())?;
        self.open.clear();
        for saga in snap.get("open").and_then(Value::as_array).ok_or("missing open sagas")? {
            let id = saga.get("saga").and_then(Value::as_str).ok_or("saga missing id")?.to_string();
            let mut rec = SagaRecord::default();
            for step in saga.get("completed").and_then(Value::as_array).unwrap_or(&[]) {
                let node = step.get("node").and_then(Value::as_str).unwrap_or_default().to_string();
                let outputs = step.get("outputs").map(ports_from_value).unwrap_or_default();
                rec.completed.push((node, outputs));
            }
            self.open.insert(id, rec);
        }
        Ok(())
    }
}

/// The coordinator's completion log. One journal serves many sagas,
/// keyed by caller-chosen ids (e.g. the gateway request id).
pub struct SagaJournal {
    store: Durable<JournalMachine>,
}

impl SagaJournal {
    /// Open (or recover) the journal in `dir`.
    pub fn open(dir: impl AsRef<std::path::Path>, cfg: WalConfig) -> StoreResult<Self> {
        Ok(SagaJournal { store: Durable::open(dir, cfg, JournalMachine::default())? })
    }

    /// Ids of sagas that began but never ended — the restart worklist.
    pub fn incomplete(&self) -> Vec<String> {
        self.store.query(|m| {
            let mut ids: Vec<String> = m.open.keys().cloned().collect();
            ids.sort();
            ids
        })
    }

    /// What a crashed run is known to have completed for `saga`.
    pub fn record(&self, saga: &str) -> Option<SagaRecord> {
        self.store.query(|m| m.open.get(saga).cloned())
    }

    /// Snapshot-then-truncate: only open sagas survive compaction.
    pub fn compact(&self) -> StoreResult<Lsn> {
        self.store.compact()
    }

    fn log(&self, event: &[u8]) {
        self.store.execute(event).expect("saga journal lost durability");
    }
}

impl WorkflowGraph {
    /// [`WorkflowGraph::run_saga`] with its completion log journalled:
    /// `begin` before the first wave, each completed node as it lands,
    /// `end` when the outcome (completed *or* compensated in-run) is
    /// final. A process that dies in between leaves the saga in
    /// [`SagaJournal::incomplete`] for [`WorkflowGraph::resume_saga`]
    /// or [`WorkflowGraph::compensate_saga`] to settle.
    pub fn run_saga_durable(
        &self,
        journal: &SagaJournal,
        saga_id: &str,
        inputs: &HashMap<String, Value>,
        config: &SagaConfig,
    ) -> Result<WorkflowOutcome, WorkflowError> {
        journal.log(&JournalMachine::begin_event(saga_id));
        self.finish_durable(journal, saga_id, SagaRecord::default(), None, inputs, config)
    }

    /// Continue an interrupted saga forward: journalled completions are
    /// seeded (their activities do **not** re-run), the remaining
    /// suffix executes under the same saga semantics, and the journal
    /// entry is closed. If the remainder fails, the compensators of
    /// *all* completed nodes — journalled and new — run as usual.
    pub fn resume_saga(
        &self,
        journal: &SagaJournal,
        saga_id: &str,
        inputs: &HashMap<String, Value>,
        config: &SagaConfig,
    ) -> Result<WorkflowOutcome, WorkflowError> {
        let record = journal.record(saga_id).unwrap_or_default();
        self.finish_durable(journal, saga_id, record, None, inputs, config)
    }

    /// Like [`WorkflowGraph::resume_saga`], on a pool.
    pub fn resume_saga_parallel(
        &self,
        pool: &ThreadPool,
        journal: &SagaJournal,
        saga_id: &str,
        inputs: &HashMap<String, Value>,
        config: &SagaConfig,
    ) -> Result<WorkflowOutcome, WorkflowError> {
        let record = journal.record(saga_id).unwrap_or_default();
        self.finish_durable(journal, saga_id, record, Some(pool), inputs, config)
    }

    /// Abort an interrupted saga: run the compensators of every
    /// journalled completion in reverse topological order, then close
    /// the journal entry. Returns `(compensated, errors)` exactly like
    /// the in-run rollback.
    pub fn compensate_saga(
        &self,
        journal: &SagaJournal,
        saga_id: &str,
    ) -> (Vec<String>, Vec<(String, String)>) {
        let record = journal.record(saga_id).unwrap_or_default();
        let completed: Vec<(usize, Ports)> = record
            .completed
            .iter()
            .filter_map(|(name, ports)| {
                self.nodes.iter().position(|n| n.name == *name).map(|i| (i, ports.clone()))
            })
            .collect();
        let mut span = soc_observe::span("workflow.recover", soc_observe::SpanKind::Internal);
        span.set_attr("saga", saga_id);
        span.set_attr("mode", "compensate");
        let _active = span.activate();
        let result = self.compensate(&completed, None, span.context());
        journal.log(&JournalMachine::end_event(saga_id));
        result
    }

    fn finish_durable(
        &self,
        journal: &SagaJournal,
        saga_id: &str,
        record: SagaRecord,
        pool: Option<&ThreadPool>,
        inputs: &HashMap<String, Value>,
        config: &SagaConfig,
    ) -> Result<WorkflowOutcome, WorkflowError> {
        let completed: HashMap<String, Ports> = record.completed.into_iter().collect();
        let on_complete = |node: &str, outputs: &Ports| {
            journal.log(&JournalMachine::node_event(saga_id, node, outputs));
        };
        let hook = SagaHook { completed, on_complete: &on_complete };
        let outcome = self.run_saga_inner(inputs, pool, config, Some(&hook))?;
        // Compensated outcomes rolled back in-run; either way the saga
        // is settled and leaves the open table.
        journal.log(&JournalMachine::end_event(saga_id));
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{Compute, Const};
    use soc_store::TempDir;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    /// a -> b -> c, where every node counts executions and a/b register
    /// compensators into `undone`.
    fn chain(
        runs: &Arc<AtomicU32>,
        undone: &Arc<parking_lot::Mutex<Vec<String>>>,
    ) -> WorkflowGraph {
        let mut g = WorkflowGraph::new();
        let a = g.add("a", Const::new(1));
        let rb = runs.clone();
        let b = g.add(
            "b",
            Compute::new(&["x"], move |p| {
                rb.fetch_add(1, Ordering::SeqCst);
                Ok(Value::from(p["x"].as_i64().unwrap_or(0) + 10))
            }),
        );
        let rc = runs.clone();
        let c = g.add(
            "c",
            Compute::new(&["x"], move |p| {
                rc.fetch_add(1, Ordering::SeqCst);
                Ok(Value::from(p["x"].as_i64().unwrap_or(0) * 2))
            }),
        );
        g.connect(a, "out", b, "x").unwrap();
        g.connect(b, "out", c, "x").unwrap();
        for (id, name) in [(a, "a"), (b, "b")] {
            let undone = undone.clone();
            let name = name.to_string();
            g.set_compensation(
                id,
                Compute::new(&[], move |_| {
                    undone.lock().push(name.clone());
                    Ok(Value::Null)
                }),
            )
            .unwrap();
        }
        g
    }

    #[test]
    fn completed_saga_leaves_no_open_entry() {
        let tmp = TempDir::new("saga-journal");
        let journal = SagaJournal::open(tmp.path(), WalConfig::default()).unwrap();
        let runs = Arc::new(AtomicU32::new(0));
        let undone = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let g = chain(&runs, &undone);
        let out = g
            .run_saga_durable(&journal, "saga-1", &HashMap::new(), &SagaConfig::default())
            .unwrap();
        assert_eq!(out.outputs().unwrap()["c.out"].as_i64(), Some(22));
        assert!(journal.incomplete().is_empty());
    }

    #[test]
    fn crashed_saga_resumes_without_rerunning_completed_nodes() {
        let tmp = TempDir::new("saga-resume");
        // "Crash" after a and b complete: journal begin + two node
        // events by hand, exactly what a killed coordinator leaves.
        {
            let journal = SagaJournal::open(tmp.path(), WalConfig::default()).unwrap();
            journal.log(&JournalMachine::begin_event("saga-9"));
            let a_out: Ports = [("out".to_string(), Value::from(1))].into();
            journal.log(&JournalMachine::node_event("saga-9", "a", &a_out));
            let b_out: Ports = [("out".to_string(), Value::from(11))].into();
            journal.log(&JournalMachine::node_event("saga-9", "b", &b_out));
        }
        let journal = SagaJournal::open(tmp.path(), WalConfig::default()).unwrap();
        assert_eq!(journal.incomplete(), vec!["saga-9"]);
        let runs = Arc::new(AtomicU32::new(0));
        let undone = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let g = chain(&runs, &undone);
        let out =
            g.resume_saga(&journal, "saga-9", &HashMap::new(), &SagaConfig::default()).unwrap();
        // Only c ran; a and b were adopted from the journal.
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        assert_eq!(out.outputs().unwrap()["c.out"].as_i64(), Some(22));
        assert!(journal.incomplete().is_empty());
    }

    #[test]
    fn crashed_saga_compensates_journalled_completions_in_reverse() {
        let tmp = TempDir::new("saga-comp");
        {
            let journal = SagaJournal::open(tmp.path(), WalConfig::default()).unwrap();
            journal.log(&JournalMachine::begin_event("saga-2"));
            let a_out: Ports = [("out".to_string(), Value::from(1))].into();
            journal.log(&JournalMachine::node_event("saga-2", "a", &a_out));
            let b_out: Ports = [("out".to_string(), Value::from(11))].into();
            journal.log(&JournalMachine::node_event("saga-2", "b", &b_out));
        }
        let journal = SagaJournal::open(tmp.path(), WalConfig::default()).unwrap();
        let runs = Arc::new(AtomicU32::new(0));
        let undone = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let g = chain(&runs, &undone);
        let (compensated, errors) = g.compensate_saga(&journal, "saga-2");
        assert_eq!(compensated, vec!["b".to_string(), "a".to_string()]);
        assert!(errors.is_empty());
        assert_eq!(runs.load(Ordering::SeqCst), 0, "forward path must not re-run");
        assert_eq!(*undone.lock(), vec!["b".to_string(), "a".to_string()]);
        assert!(journal.incomplete().is_empty());
    }

    #[test]
    fn journal_compaction_keeps_only_open_sagas() {
        let tmp = TempDir::new("saga-compact");
        {
            let journal = SagaJournal::open(tmp.path(), WalConfig::default()).unwrap();
            for i in 0..5 {
                journal.log(&JournalMachine::begin_event(&format!("done-{i}")));
                journal.log(&JournalMachine::end_event(&format!("done-{i}")));
            }
            journal.log(&JournalMachine::begin_event("stuck"));
            let out: Ports = [("out".to_string(), Value::from(7))].into();
            journal.log(&JournalMachine::node_event("stuck", "a", &out));
            journal.compact().unwrap();
        }
        let journal = SagaJournal::open(tmp.path(), WalConfig::default()).unwrap();
        assert_eq!(journal.incomplete(), vec!["stuck"]);
        let rec = journal.record("stuck").unwrap();
        assert_eq!(rec.completed.len(), 1);
        assert_eq!(rec.completed[0].0, "a");
        assert_eq!(rec.completed[0].1["out"].as_i64(), Some(7));
    }

    #[test]
    fn failure_after_resume_compensates_adopted_nodes_too() {
        // Journal says a completed; the remaining node always fails, so
        // the resume must roll back the adopted completion.
        let tmp = TempDir::new("saga-resume-fail");
        let mut g = WorkflowGraph::new();
        let a = g.add("a", Const::new(1));
        let boom = g.add("boom", Compute::new(&["x"], |_| Err("kaput".into())));
        g.connect(a, "out", boom, "x").unwrap();
        let undone = Arc::new(AtomicU32::new(0));
        let u = undone.clone();
        g.set_compensation(
            a,
            Compute::new(&[], move |_| {
                u.fetch_add(1, Ordering::SeqCst);
                Ok(Value::Null)
            }),
        )
        .unwrap();
        let journal = SagaJournal::open(tmp.path(), WalConfig::default()).unwrap();
        journal.log(&JournalMachine::begin_event("s"));
        let a_out: Ports = [("out".to_string(), Value::from(1))].into();
        journal.log(&JournalMachine::node_event("s", "a", &a_out));
        let out = g.resume_saga(&journal, "s", &HashMap::new(), &SagaConfig::default()).unwrap();
        match out {
            WorkflowOutcome::Compensated { failed_at, compensated, .. } => {
                assert_eq!(failed_at, "boom");
                assert_eq!(compensated, vec!["a".to_string()]);
                assert_eq!(undone.load(Ordering::SeqCst), 1);
            }
            other => panic!("expected compensation, got {other:?}"),
        }
        assert!(journal.incomplete().is_empty());
    }
}
