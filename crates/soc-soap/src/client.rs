//! The SOAP consumer side: typed calls plus WSDL-driven discovery.

use std::collections::HashMap;
use std::sync::Arc;

use soc_http::mem::Transport;
use soc_http::{Request, Status};

use crate::contract::Contract;
use crate::envelope::{self, Decoded, SoapFault};
use crate::wsdl::{self, ParsedWsdl};

/// Errors a SOAP consumer can see.
#[derive(Debug)]
pub enum SoapError {
    /// Transport-level failure.
    Transport(soc_http::HttpError),
    /// The service returned a fault envelope.
    Fault(SoapFault),
    /// The response was not a valid envelope.
    BadResponse(String),
    /// Local argument validation failed before sending.
    BadArguments(String),
}

impl std::fmt::Display for SoapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SoapError::Transport(e) => write!(f, "transport: {e}"),
            SoapError::Fault(fault) => write!(f, "soap fault: {fault}"),
            SoapError::BadResponse(d) => write!(f, "bad response: {d}"),
            SoapError::BadArguments(d) => write!(f, "bad arguments: {d}"),
        }
    }
}

impl std::error::Error for SoapError {}

/// A SOAP client bound to a transport.
#[derive(Clone)]
pub struct SoapClient {
    transport: Arc<dyn Transport>,
}

impl SoapClient {
    /// Wrap a transport.
    pub fn new(transport: Arc<dyn Transport>) -> Self {
        SoapClient { transport }
    }

    /// Fetch and parse a service's WSDL (service discovery).
    pub fn discover(&self, endpoint: &str) -> Result<ParsedWsdl, SoapError> {
        // Normalize through the URL parser so endpoints without a path
        // (`http://host:port`) gain one before the query is appended.
        let url = soc_http::Url::parse(endpoint).map_err(SoapError::Transport)?;
        let sep = if url.query.is_some() { "&" } else { "?" };
        let resp = self
            .transport
            .send(Request::get(format!("{url}{sep}wsdl")))
            .map_err(SoapError::Transport)?;
        if !resp.status.is_success() {
            return Err(SoapError::BadResponse(format!("wsdl fetch returned {}", resp.status)));
        }
        wsdl::parse(resp.text_body().map_err(|e| SoapError::BadResponse(e.to_string()))?)
            .map_err(SoapError::BadResponse)
    }

    /// Call `operation` with `(name, value)` arguments, validating them
    /// against `contract` before anything touches the wire.
    pub fn call(
        &self,
        endpoint: &str,
        contract: &Contract,
        operation: &str,
        args: &[(&str, &str)],
    ) -> Result<HashMap<String, String>, SoapError> {
        let owned: Vec<(String, String)> =
            args.iter().map(|(n, v)| (n.to_string(), v.to_string())).collect();
        contract.validate_inputs(operation, &owned).map_err(SoapError::BadArguments)?;

        let body = envelope::encode(&contract.namespace, operation, &owned);
        let req = Request::post(endpoint, Vec::new())
            .with_text("text/xml; charset=utf-8", &body)
            .with_header("SOAPAction", &format!("{}#{}", contract.namespace, operation));
        let resp = self.transport.send(req).map_err(SoapError::Transport)?;

        let text = resp.text_body().map_err(|e| SoapError::BadResponse(e.to_string()))?;
        match envelope::decode(text) {
            Ok(Decoded::Fault(f)) => Err(SoapError::Fault(f)),
            Ok(Decoded::Body(b)) => {
                if resp.status != Status::OK {
                    return Err(SoapError::BadResponse(format!(
                        "non-fault body with status {}",
                        resp.status
                    )));
                }
                if b.element != format!("{operation}Response") {
                    return Err(SoapError::BadResponse(format!(
                        "expected {operation}Response, got {}",
                        b.element
                    )));
                }
                Ok(b.params.into_iter().collect())
            }
            Err(e) => Err(SoapError::BadResponse(e.to_string())),
        }
    }

    /// Discover, then call, in one step: the broker → consumer flow the
    /// course diagrams.
    pub fn discover_and_call(
        &self,
        endpoint: &str,
        operation: &str,
        args: &[(&str, &str)],
    ) -> Result<HashMap<String, String>, SoapError> {
        let parsed = self.discover(endpoint)?;
        self.call(&parsed.endpoint, &parsed.contract, operation, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{Operation, XsdType};
    use crate::service::SoapService;
    use soc_http::MemNetwork;

    fn net_with_calc() -> (MemNetwork, Contract) {
        let contract = Contract::new("Calc", "urn:soc:calc").operation(
            Operation::new("Add")
                .input("a", XsdType::Int)
                .input("b", XsdType::Int)
                .output("sum", XsdType::Int),
        );
        let mut svc = SoapService::new(contract.clone(), "mem://calc/soap");
        svc.implement("Add", |p| {
            let a: i64 = p["a"].parse().unwrap();
            let b: i64 = p["b"].parse().unwrap();
            Ok(vec![("sum".to_string(), (a + b).to_string())])
        });
        let net = MemNetwork::new();
        net.host("calc", svc);
        (net, contract)
    }

    #[test]
    fn typed_call_round_trip() {
        let (net, contract) = net_with_calc();
        let client = SoapClient::new(Arc::new(net));
        let out =
            client.call("mem://calc/soap", &contract, "Add", &[("a", "20"), ("b", "22")]).unwrap();
        assert_eq!(out["sum"], "42");
    }

    #[test]
    fn local_validation_blocks_bad_args() {
        let (net, contract) = net_with_calc();
        let hits_before = net.hits("calc");
        let client = SoapClient::new(Arc::new(net.clone()));
        let err = client
            .call("mem://calc/soap", &contract, "Add", &[("a", "x"), ("b", "2")])
            .unwrap_err();
        assert!(matches!(err, SoapError::BadArguments(_)));
        // Nothing was sent.
        assert_eq!(net.hits("calc"), hits_before);
    }

    #[test]
    fn fault_surfaces_as_error() {
        let (net, _) = net_with_calc();
        let contract = Contract::new("Calc", "urn:wrong").operation(
            Operation::new("Add")
                .input("a", XsdType::Int)
                .input("b", XsdType::Int)
                .output("sum", XsdType::Int),
        );
        let client = SoapClient::new(Arc::new(net));
        let err = client
            .call("mem://calc/soap", &contract, "Add", &[("a", "1"), ("b", "2")])
            .unwrap_err();
        assert!(matches!(err, SoapError::Fault(f) if f.code == "soap:Client"));
    }

    #[test]
    fn discovery_then_call() {
        let (net, _) = net_with_calc();
        let client = SoapClient::new(Arc::new(net));
        let out =
            client.discover_and_call("mem://calc/soap", "Add", &[("a", "40"), ("b", "2")]).unwrap();
        assert_eq!(out["sum"], "42");
    }

    #[test]
    fn discovery_of_missing_service_fails() {
        let (net, _) = net_with_calc();
        let client = SoapClient::new(Arc::new(net));
        assert!(matches!(client.discover("mem://ghost/soap"), Err(SoapError::Transport(_))));
    }
}
