/root/repo/target/release/deps/soc_json-f217996f96cc2082.d: crates/soc-json/src/lib.rs crates/soc-json/src/parse.rs crates/soc-json/src/pointer.rs crates/soc-json/src/ser.rs crates/soc-json/src/value.rs

/root/repo/target/release/deps/libsoc_json-f217996f96cc2082.rlib: crates/soc-json/src/lib.rs crates/soc-json/src/parse.rs crates/soc-json/src/pointer.rs crates/soc-json/src/ser.rs crates/soc-json/src/value.rs

/root/repo/target/release/deps/libsoc_json-f217996f96cc2082.rmeta: crates/soc-json/src/lib.rs crates/soc-json/src/parse.rs crates/soc-json/src/pointer.rs crates/soc-json/src/ser.rs crates/soc-json/src/value.rs

crates/soc-json/src/lib.rs:
crates/soc-json/src/parse.rs:
crates/soc-json/src/pointer.rs:
crates/soc-json/src/ser.rs:
crates/soc-json/src/value.rs:
