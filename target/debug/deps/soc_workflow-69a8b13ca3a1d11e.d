/root/repo/target/debug/deps/soc_workflow-69a8b13ca3a1d11e.d: crates/soc-workflow/src/lib.rs crates/soc-workflow/src/activity.rs crates/soc-workflow/src/bpel.rs crates/soc-workflow/src/fsm.rs crates/soc-workflow/src/graph.rs Cargo.toml

/root/repo/target/debug/deps/libsoc_workflow-69a8b13ca3a1d11e.rmeta: crates/soc-workflow/src/lib.rs crates/soc-workflow/src/activity.rs crates/soc-workflow/src/bpel.rs crates/soc-workflow/src/fsm.rs crates/soc-workflow/src/graph.rs Cargo.toml

crates/soc-workflow/src/lib.rs:
crates/soc-workflow/src/activity.rs:
crates/soc-workflow/src/bpel.rs:
crates/soc-workflow/src/fsm.rs:
crates/soc-workflow/src/graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
