//! The access-control service: users, roles, salted password hashing,
//! and bearer tokens — the dependability unit's "security mechanisms
//! that safeguard the Web applications".

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::crypto::hex_encode;

/// FNV-1a 64-bit hash (course-grade; clearly documented as such).
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Iterated, salted password hash. Not a KDF you should ship — but the
/// *shape* (salt, iterations, constant-time compare) is the lesson.
pub fn hash_password(password: &str, salt: &str, iterations: u32) -> String {
    let mut state = format!("{salt}:{password}").into_bytes();
    for i in 0..iterations.max(1) {
        let h = fnv1a(&state) ^ (i as u64).rotate_left(17);
        state.extend_from_slice(&h.to_be_bytes());
        let h2 = fnv1a(&state);
        state = h.to_be_bytes().iter().chain(h2.to_be_bytes().iter()).copied().collect();
    }
    hex_encode(&state)
}

/// Constant-time string comparison (no early exit on mismatch).
pub fn constant_time_eq(a: &str, b: &str) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.bytes().zip(b.bytes()).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

/// Why an access-control operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessError {
    /// Username already registered.
    UserExists,
    /// Unknown user or wrong password.
    BadCredentials,
    /// Token unknown or expired.
    BadToken,
    /// Authenticated but not allowed.
    Forbidden {
        /// The role the action required.
        required: String,
    },
    /// Password failed the policy.
    WeakPassword(String),
}

impl std::fmt::Display for AccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessError::UserExists => write!(f, "user already exists"),
            AccessError::BadCredentials => write!(f, "invalid credentials"),
            AccessError::BadToken => write!(f, "invalid or expired token"),
            AccessError::Forbidden { required } => write!(f, "requires role {required:?}"),
            AccessError::WeakPassword(why) => write!(f, "weak password: {why}"),
        }
    }
}

/// Password policy from the Figure 4 project ("Strong?" check).
pub fn check_password_strength(password: &str) -> Result<(), AccessError> {
    if password.len() < 8 {
        return Err(AccessError::WeakPassword("must be at least 8 characters".into()));
    }
    let has_lower = password.chars().any(|c| c.is_ascii_lowercase());
    let has_upper = password.chars().any(|c| c.is_ascii_uppercase());
    let has_digit = password.chars().any(|c| c.is_ascii_digit());
    if !(has_lower && has_upper && has_digit) {
        return Err(AccessError::WeakPassword(
            "must mix lower case, upper case, and digits".into(),
        ));
    }
    Ok(())
}

struct User {
    salt: String,
    password_hash: String,
    roles: Vec<String>,
}

/// Token record: owner plus expiry tick.
struct TokenInfo {
    user: String,
    expires_at: u64,
}

/// The access-control service. Time is a logical tick counter supplied
/// by the caller, keeping tests and benches deterministic.
pub struct AccessControl {
    users: RwLock<HashMap<String, User>>,
    tokens: RwLock<HashMap<String, TokenInfo>>,
    iterations: u32,
    token_ttl: u64,
    token_counter: std::sync::atomic::AtomicU64,
}

impl AccessControl {
    /// Service with a token time-to-live in ticks.
    pub fn new(token_ttl: u64) -> Self {
        AccessControl {
            users: RwLock::new(HashMap::new()),
            tokens: RwLock::new(HashMap::new()),
            iterations: 64,
            token_ttl,
            token_counter: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// Register a user with roles; enforces the password policy.
    pub fn register(
        &self,
        username: &str,
        password: &str,
        roles: &[&str],
    ) -> Result<(), AccessError> {
        check_password_strength(password)?;
        let mut users = self.users.write();
        if users.contains_key(username) {
            return Err(AccessError::UserExists);
        }
        // Per-user salt derived from the name + a counter; unique enough
        // for the teaching model.
        let salt = hex_encode(&fnv1a(format!("salt:{username}").as_bytes()).to_be_bytes());
        let password_hash = hash_password(password, &salt, self.iterations);
        users.insert(
            username.to_string(),
            User { salt, password_hash, roles: roles.iter().map(|r| r.to_string()).collect() },
        );
        Ok(())
    }

    /// Verify credentials and issue a bearer token valid until
    /// `now + ttl`.
    pub fn login(&self, username: &str, password: &str, now: u64) -> Result<String, AccessError> {
        let users = self.users.read();
        let Some(user) = users.get(username) else {
            // Hash anyway so the timing doesn't reveal user existence.
            let _ = hash_password(password, "dummy", self.iterations);
            return Err(AccessError::BadCredentials);
        };
        let presented = hash_password(password, &user.salt, self.iterations);
        if !constant_time_eq(&presented, &user.password_hash) {
            return Err(AccessError::BadCredentials);
        }
        drop(users);
        let n = self.token_counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let token = hex_encode(&fnv1a(format!("token:{username}:{n}").as_bytes()).to_be_bytes())
            + &hex_encode(&fnv1a(format!("{n}:{username}").as_bytes()).to_be_bytes());
        self.tokens.write().insert(
            token.clone(),
            TokenInfo { user: username.to_string(), expires_at: now + self.token_ttl },
        );
        Ok(token)
    }

    /// Resolve a token to its user at logical time `now`.
    pub fn authenticate(&self, token: &str, now: u64) -> Result<String, AccessError> {
        let tokens = self.tokens.read();
        match tokens.get(token) {
            Some(info) if info.expires_at > now => Ok(info.user.clone()),
            _ => Err(AccessError::BadToken),
        }
    }

    /// Authorize: the token's user must hold `role`.
    pub fn authorize(&self, token: &str, role: &str, now: u64) -> Result<String, AccessError> {
        let user = self.authenticate(token, now)?;
        let users = self.users.read();
        let has = users.get(&user).is_some_and(|u| u.roles.iter().any(|r| r == role));
        if has {
            Ok(user)
        } else {
            Err(AccessError::Forbidden { required: role.to_string() })
        }
    }

    /// Invalidate a token (logout).
    pub fn revoke(&self, token: &str) -> bool {
        self.tokens.write().remove(token).is_some()
    }

    /// Drop expired tokens; returns how many lapsed.
    pub fn expire_tokens(&self, now: u64) -> usize {
        let mut tokens = self.tokens.write();
        let before = tokens.len();
        tokens.retain(|_, info| info.expires_at > now);
        before - tokens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc() -> AccessControl {
        let ac = AccessControl::new(100);
        ac.register("ann", "Str0ngPass", &["user", "admin"]).unwrap();
        ac.register("bob", "An0therPass", &["user"]).unwrap();
        ac
    }

    #[test]
    fn register_login_authenticate() {
        let ac = svc();
        let token = ac.login("ann", "Str0ngPass", 0).unwrap();
        assert_eq!(ac.authenticate(&token, 50).unwrap(), "ann");
    }

    #[test]
    fn wrong_password_rejected() {
        let ac = svc();
        assert_eq!(ac.login("ann", "WrongPass1", 0), Err(AccessError::BadCredentials));
        assert_eq!(ac.login("ghost", "Str0ngPass", 0), Err(AccessError::BadCredentials));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let ac = svc();
        assert_eq!(ac.register("ann", "Val1dPassword", &[]), Err(AccessError::UserExists));
    }

    #[test]
    fn weak_passwords_rejected() {
        let ac = AccessControl::new(10);
        assert!(matches!(ac.register("x", "short1A", &[]), Err(AccessError::WeakPassword(_))));
        assert!(matches!(
            ac.register("x", "alllowercase1", &[]),
            Err(AccessError::WeakPassword(_))
        ));
        assert!(matches!(ac.register("x", "NoDigitsHere", &[]), Err(AccessError::WeakPassword(_))));
        assert!(ac.register("x", "G00dPassword", &[]).is_ok());
    }

    #[test]
    fn tokens_expire() {
        let ac = svc();
        let token = ac.login("ann", "Str0ngPass", 0).unwrap();
        assert!(ac.authenticate(&token, 99).is_ok());
        assert_eq!(ac.authenticate(&token, 100), Err(AccessError::BadToken));
        assert_eq!(ac.expire_tokens(100), 1);
    }

    #[test]
    fn roles_enforced() {
        let ac = svc();
        let ann = ac.login("ann", "Str0ngPass", 0).unwrap();
        let bob = ac.login("bob", "An0therPass", 0).unwrap();
        assert!(ac.authorize(&ann, "admin", 1).is_ok());
        assert_eq!(
            ac.authorize(&bob, "admin", 1),
            Err(AccessError::Forbidden { required: "admin".into() })
        );
        assert!(ac.authorize(&bob, "user", 1).is_ok());
    }

    #[test]
    fn revoke_invalidates() {
        let ac = svc();
        let token = ac.login("ann", "Str0ngPass", 0).unwrap();
        assert!(ac.revoke(&token));
        assert!(!ac.revoke(&token));
        assert_eq!(ac.authenticate(&token, 1), Err(AccessError::BadToken));
    }

    #[test]
    fn tokens_are_unique_per_login() {
        let ac = svc();
        let t1 = ac.login("ann", "Str0ngPass", 0).unwrap();
        let t2 = ac.login("ann", "Str0ngPass", 0).unwrap();
        assert_ne!(t1, t2);
        // Both valid simultaneously (multi-device).
        assert!(ac.authenticate(&t1, 1).is_ok());
        assert!(ac.authenticate(&t2, 1).is_ok());
    }

    #[test]
    fn hash_depends_on_salt_and_iterations() {
        let a = hash_password("pw", "s1", 32);
        let b = hash_password("pw", "s2", 32);
        let c = hash_password("pw", "s1", 33);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, hash_password("pw", "s1", 32));
    }

    #[test]
    fn constant_time_eq_basics() {
        assert!(constant_time_eq("abc", "abc"));
        assert!(!constant_time_eq("abc", "abd"));
        assert!(!constant_time_eq("abc", "abcd"));
    }
}
