//! The mortgage application/approval service and the credit-score
//! service it consumes — the provider-calls-a-provider pattern of the
//! Figure 4 project ("Check credit score" via a "Credit score Web
//! service").
//!
//! The credit bureau is proprietary in real life; here it is a
//! deterministic synthetic service: the score is a stable function of
//! the SSN, so tests, workflows, and the web app all agree.

/// The synthetic credit-score service (also bound over SOAP in
/// [`crate::bindings`]).
pub struct CreditScoreService;

impl CreditScoreService {
    /// Score range low end.
    pub const MIN: u32 = 300;
    /// Score range high end.
    pub const MAX: u32 = 850;

    /// Deterministic score for an SSN-like id. Same input, same score —
    /// the substitution contract for the paper's third-party bureau.
    pub fn score(ssn: &str) -> u32 {
        let digits: Vec<u8> = ssn.bytes().filter(|b| b.is_ascii_digit()).collect();
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
        for &d in &digits {
            h ^= d as u64;
            h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9).rotate_left(13);
        }
        Self::MIN + (h % (Self::MAX - Self::MIN + 1) as u64) as u32
    }

    /// Is an SSN well-formed (9 digits, optionally dashed)?
    pub fn valid_ssn(ssn: &str) -> bool {
        let digits = ssn.bytes().filter(|b| b.is_ascii_digit()).count();
        let valid_chars = ssn.bytes().all(|b| b.is_ascii_digit() || b == b'-' || b == b' ');
        digits == 9 && valid_chars
    }
}

/// A mortgage application.
#[derive(Debug, Clone, PartialEq)]
pub struct Application {
    /// Applicant name.
    pub name: String,
    /// Applicant SSN (drives the synthetic credit score).
    pub ssn: String,
    /// Annual gross income in dollars.
    pub annual_income: u64,
    /// Requested loan principal in dollars.
    pub loan_amount: u64,
    /// Term in years.
    pub term_years: u32,
}

/// The decision on an application.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Approved with a rate (basis points) reflecting the score.
    Approved {
        /// Credit score used.
        score: u32,
        /// Annual rate in basis points (e.g. 450 = 4.50%).
        rate_bps: u32,
        /// Computed monthly payment in dollars (rounded up).
        monthly_payment: u64,
    },
    /// Rejected with the failed rules.
    Rejected {
        /// Credit score used (when the SSN was at least valid).
        score: Option<u32>,
        /// Human-readable reasons.
        reasons: Vec<String>,
    },
}

/// The approval service: validation + the underwriting rules from the
/// course project (score floor, debt-to-income cap).
pub struct MortgageService {
    /// Minimum acceptable credit score.
    pub min_score: u32,
    /// Maximum loan/income ratio ×100 (e.g. 400 = 4× income).
    pub max_loan_to_income_pct: u64,
}

impl Default for MortgageService {
    fn default() -> Self {
        MortgageService { min_score: 620, max_loan_to_income_pct: 400 }
    }
}

impl MortgageService {
    /// Underwrite one application.
    pub fn decide(&self, app: &Application) -> Decision {
        let mut reasons = Vec::new();
        if app.name.trim().is_empty() {
            reasons.push("name is required".to_string());
        }
        if !CreditScoreService::valid_ssn(&app.ssn) {
            reasons.push("SSN must contain nine digits".to_string());
            return Decision::Rejected { score: None, reasons };
        }
        if app.loan_amount == 0 || app.term_years == 0 || app.term_years > 40 {
            reasons.push("loan amount and term must be positive (term ≤ 40 years)".to_string());
        }

        let score = CreditScoreService::score(&app.ssn);
        if score < self.min_score {
            reasons.push(format!("credit score {score} below minimum {}", self.min_score));
        }
        if app.annual_income == 0
            || app.loan_amount * 100 > app.annual_income * self.max_loan_to_income_pct
        {
            reasons.push(format!("loan exceeds {}% of annual income", self.max_loan_to_income_pct));
        }
        if !reasons.is_empty() {
            return Decision::Rejected { score: Some(score), reasons };
        }

        // Risk-based pricing: 850 → 3.00%, min_score → 7.00%.
        let span = (CreditScoreService::MAX - self.min_score).max(1);
        let rate_bps = 300 + (700 - 300) * (CreditScoreService::MAX - score) / span;
        let monthly_payment = monthly_payment(app.loan_amount, rate_bps, app.term_years);
        Decision::Approved { score, rate_bps, monthly_payment }
    }
}

/// Standard amortized monthly payment, integer math on cents, rounded
/// up to whole dollars.
pub fn monthly_payment(principal_dollars: u64, rate_bps: u32, term_years: u32) -> u64 {
    let n = (term_years * 12) as f64;
    let p = principal_dollars as f64;
    let r = rate_bps as f64 / 10_000.0 / 12.0;
    if r == 0.0 {
        return (p / n).ceil() as u64;
    }
    let factor = (1.0 + r).powf(n);
    ((p * r * factor) / (factor - 1.0)).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good_app(ssn: &str) -> Application {
        Application {
            name: "Ann Example".into(),
            ssn: ssn.into(),
            annual_income: 90_000,
            loan_amount: 250_000,
            term_years: 30,
        }
    }

    /// Find SSNs with scores in a range (the deterministic service makes
    /// this a plain search).
    fn ssn_with_score(pred: impl Fn(u32) -> bool) -> String {
        for i in 0..100_000u32 {
            let ssn = format!("{:09}", i);
            if pred(CreditScoreService::score(&ssn)) {
                return ssn;
            }
        }
        panic!("no SSN found in range");
    }

    #[test]
    fn scores_are_deterministic_and_in_range() {
        for ssn in ["123-45-6789", "987654321", "000000001"] {
            let a = CreditScoreService::score(ssn);
            let b = CreditScoreService::score(ssn);
            assert_eq!(a, b);
            assert!((CreditScoreService::MIN..=CreditScoreService::MAX).contains(&a));
        }
        // Dashes don't change the score.
        assert_eq!(
            CreditScoreService::score("123-45-6789"),
            CreditScoreService::score("123456789")
        );
    }

    #[test]
    fn scores_spread_across_range() {
        let mut lows = 0;
        let mut highs = 0;
        for i in 0..200u32 {
            let s = CreditScoreService::score(&format!("{:09}", i * 7919));
            if s < 575 {
                lows += 1;
            }
            if s > 575 {
                highs += 1;
            }
        }
        assert!(lows > 20 && highs > 20, "degenerate distribution: {lows}/{highs}");
    }

    #[test]
    fn ssn_validation() {
        assert!(CreditScoreService::valid_ssn("123-45-6789"));
        assert!(CreditScoreService::valid_ssn("123456789"));
        assert!(!CreditScoreService::valid_ssn("12345678"));
        assert!(!CreditScoreService::valid_ssn("12345678a"));
        assert!(!CreditScoreService::valid_ssn(""));
    }

    #[test]
    fn high_score_applications_approved() {
        let svc = MortgageService::default();
        let ssn = ssn_with_score(|s| s >= 750);
        match svc.decide(&good_app(&ssn)) {
            Decision::Approved { score, rate_bps, monthly_payment } => {
                assert!(score >= 750);
                assert!((300..=700).contains(&rate_bps));
                assert!(monthly_payment > 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn low_score_applications_rejected() {
        let svc = MortgageService::default();
        let ssn = ssn_with_score(|s| s < 620);
        match svc.decide(&good_app(&ssn)) {
            Decision::Rejected { score: Some(s), reasons } => {
                assert!(s < 620);
                assert!(reasons.iter().any(|r| r.contains("credit score")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn better_scores_get_better_rates() {
        let svc = MortgageService::default();
        let low = ssn_with_score(|s| (620..650).contains(&s));
        let high = ssn_with_score(|s| s > 820);
        let rate = |ssn: &str| match svc.decide(&good_app(ssn)) {
            Decision::Approved { rate_bps, .. } => rate_bps,
            other => panic!("{other:?}"),
        };
        assert!(rate(&high) < rate(&low));
    }

    #[test]
    fn dti_cap_enforced() {
        let svc = MortgageService::default();
        let ssn = ssn_with_score(|s| s > 700);
        let mut app = good_app(&ssn);
        app.loan_amount = 500_000; // > 4 × 90k
        match svc.decide(&app) {
            Decision::Rejected { reasons, .. } => {
                assert!(reasons.iter().any(|r| r.contains("income")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn invalid_ssn_short_circuits() {
        let svc = MortgageService::default();
        let mut app = good_app("123");
        app.name = String::new();
        match svc.decide(&app) {
            Decision::Rejected { score: None, reasons } => {
                assert!(reasons.iter().any(|r| r.contains("SSN")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn payment_math() {
        // 0% APR: simple division.
        assert_eq!(monthly_payment(360_000, 0, 30), 1000);
        // Known ballpark: $250k at 4.5% for 30y ≈ $1,267/mo.
        let p = monthly_payment(250_000, 450, 30);
        assert!((1260..=1275).contains(&p), "payment {p}");
        // Higher rate → higher payment.
        assert!(monthly_payment(250_000, 700, 30) > p);
    }
}
