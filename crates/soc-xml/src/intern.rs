//! Per-document qualified-name interning.
//!
//! Element and attribute names repeat heavily in real documents (a
//! thousand `<service>` rows share one name). Interning stores each
//! distinct name once and hands out a copyable [`Atom`]; equality is a
//! single `u32` compare and the DOM never clones a `QName` per node.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::name::QName;

/// Id of an interned name inside one [`NameInterner`]. Atoms from
/// different interners (different documents) must not be mixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom(u32);

impl Atom {
    /// The raw index (for diagnostics).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// FNV-1a: tiny, deterministic, and fast on the short strings names
/// are — SipHash's DoS resistance buys nothing for per-document tables.
#[derive(Default)]
pub struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = h;
    }
}

type FnvBuild = BuildHasherDefault<FnvHasher>;

/// Interns `prefix:local` names, resolving each [`Atom`] back to a
/// stable [`QName`].
#[derive(Debug, Clone, Default)]
pub struct NameInterner {
    names: Vec<QName>,
    map: HashMap<Box<str>, Atom, FnvBuild>,
}

impl NameInterner {
    /// Empty interner.
    pub fn new() -> Self {
        NameInterner::default()
    }

    /// Intern a name in its serialized `prefix:local` form. Allocates
    /// only on first sight of a distinct name.
    pub fn intern(&mut self, raw: &str) -> Atom {
        if let Some(&a) = self.map.get(raw) {
            return a;
        }
        let atom = Atom(u32::try_from(self.names.len()).expect("more than u32::MAX names"));
        self.names.push(QName::parse(raw));
        self.map.insert(raw.into(), atom);
        atom
    }

    /// Intern an already-built [`QName`].
    pub fn intern_qname(&mut self, q: &QName) -> Atom {
        if q.prefix.is_empty() {
            self.intern(&q.local)
        } else {
            self.intern(&format!("{}:{}", q.prefix, q.local))
        }
    }

    /// Resolve an atom back to its name.
    pub fn resolve(&self, atom: Atom) -> &QName {
        &self.names[atom.0 as usize]
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_atom() {
        let mut i = NameInterner::new();
        let a = i.intern("soap:Body");
        let b = i.intern("soap:Body");
        let c = i.intern("soap:Envelope");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), &QName::prefixed("soap", "Body"));
    }

    #[test]
    fn qname_and_raw_forms_agree() {
        let mut i = NameInterner::new();
        let a = i.intern("m:Add");
        let b = i.intern_qname(&QName::prefixed("m", "Add"));
        assert_eq!(a, b);
        let c = i.intern("name");
        let d = i.intern_qname(&QName::local("name"));
        assert_eq!(c, d);
    }
}
