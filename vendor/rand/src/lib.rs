//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of rand 0.8's API this workspace uses:
//! [`rngs::StdRng`] (seedable, deterministic), the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`). The generator is
//! xoshiro256** seeded via SplitMix64 — not cryptographic, statistically
//! fine for simulations and tests. Streams differ from the real crate's
//! ChaCha-based `StdRng`, which this workspace never relies on.

/// Core random source: 64 random bits at a time.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's full range.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Uniform integer below `n` by rejection-free modulo (bias negligible
// for the small ranges this workspace draws).
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    rng.next_u64() % n
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A value sampled from the type's full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{Rng, RngCore};

    /// `shuffle`/`choose` on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub use rngs::StdRng as _StdRngForDocs;

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..7);
            assert!((3..7).contains(&v));
            let w: u32 = rng.gen_range(1..=4);
            assert!((1..=4).contains(&w));
            let f = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v != sorted, "shuffle of 50 elements left them sorted");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
