/root/repo/target/debug/deps/fig2_fsm-397925cb36768f13.d: crates/soc-bench/src/bin/fig2_fsm.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_fsm-397925cb36768f13.rmeta: crates/soc-bench/src/bin/fig2_fsm.rs Cargo.toml

crates/soc-bench/src/bin/fig2_fsm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
