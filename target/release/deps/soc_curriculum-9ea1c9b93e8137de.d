/root/repo/target/release/deps/soc_curriculum-9ea1c9b93e8137de.d: crates/soc-curriculum/src/lib.rs crates/soc-curriculum/src/acm.rs crates/soc-curriculum/src/chart.rs crates/soc-curriculum/src/enrollment.rs crates/soc-curriculum/src/evaluation.rs

/root/repo/target/release/deps/libsoc_curriculum-9ea1c9b93e8137de.rlib: crates/soc-curriculum/src/lib.rs crates/soc-curriculum/src/acm.rs crates/soc-curriculum/src/chart.rs crates/soc-curriculum/src/enrollment.rs crates/soc-curriculum/src/evaluation.rs

/root/repo/target/release/deps/libsoc_curriculum-9ea1c9b93e8137de.rmeta: crates/soc-curriculum/src/lib.rs crates/soc-curriculum/src/acm.rs crates/soc-curriculum/src/chart.rs crates/soc-curriculum/src/enrollment.rs crates/soc-curriculum/src/evaluation.rs

crates/soc-curriculum/src/lib.rs:
crates/soc-curriculum/src/acm.rs:
crates/soc-curriculum/src/chart.rs:
crates/soc-curriculum/src/enrollment.rs:
crates/soc-curriculum/src/evaluation.rs:
