//! Bounded, sharded in-memory span storage.
//!
//! Spans are kept in per-shard rings (oldest evicted first). Sharding
//! is by trace id, so all spans of one trace land in one shard and a
//! trace lookup scans a single ring under a single short lock.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::context::TraceId;
use crate::span::SpanRecord;

/// Default number of shards in the global store.
pub const DEFAULT_SHARDS: usize = 16;
/// Default per-shard ring capacity (total retention = shards × this).
pub const DEFAULT_SHARD_CAPACITY: usize = 2048;

struct Shard {
    ring: Mutex<VecDeque<SpanRecord>>,
}

/// A sharded ring buffer of finished spans.
pub struct SpanStore {
    shards: Vec<Shard>,
    shard_capacity: usize,
}

impl SpanStore {
    /// A store with `shards` rings of `shard_capacity` spans each.
    pub fn new(shards: usize, shard_capacity: usize) -> SpanStore {
        let shards = shards.max(1);
        SpanStore {
            shards: (0..shards).map(|_| Shard { ring: Mutex::new(VecDeque::new()) }).collect(),
            shard_capacity: shard_capacity.max(1),
        }
    }

    fn shard(&self, trace_id: TraceId) -> &Shard {
        let h = (trace_id.0 as u64) ^ ((trace_id.0 >> 64) as u64);
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Append a finished span, evicting the shard's oldest span when
    /// the ring is full.
    pub fn record(&self, rec: SpanRecord) {
        let mut ring = self.shard(rec.trace_id).ring.lock();
        if ring.len() == self.shard_capacity {
            ring.pop_front();
        }
        ring.push_back(rec);
    }

    /// All retained spans of `trace_id`, ordered by start time (ties
    /// broken by span id for determinism).
    pub fn trace(&self, trace_id: TraceId) -> Vec<SpanRecord> {
        let ring = self.shard(trace_id).ring.lock();
        let mut spans: Vec<SpanRecord> =
            ring.iter().filter(|s| s.trace_id == trace_id).cloned().collect();
        drop(ring);
        spans.sort_by_key(|s| (s.start_us, s.span_id.0));
        spans
    }

    /// Distinct retained trace ids with their span counts, most spans
    /// first (ties by id for determinism).
    pub fn trace_ids(&self) -> Vec<(TraceId, usize)> {
        let mut counts: std::collections::HashMap<TraceId, usize> =
            std::collections::HashMap::new();
        for shard in &self.shards {
            for s in shard.ring.lock().iter() {
                *counts.entry(s.trace_id).or_default() += 1;
            }
        }
        let mut out: Vec<(TraceId, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        out
    }

    /// Total spans currently retained.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.ring.lock().len()).sum()
    }

    /// Whether no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every retained span.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.ring.lock().clear();
        }
    }
}

impl Default for SpanStore {
    fn default() -> Self {
        SpanStore::new(DEFAULT_SHARDS, DEFAULT_SHARD_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SpanId;
    use crate::span::{SpanKind, SpanStatus};

    fn rec(trace: u128, span: u64, start_us: u64) -> SpanRecord {
        SpanRecord {
            trace_id: TraceId(trace),
            span_id: SpanId(span),
            parent: None,
            name: "t".into(),
            kind: SpanKind::Internal,
            start_us,
            duration_us: 1,
            status: SpanStatus::Ok,
            error: None,
            attrs: vec![],
        }
    }

    #[test]
    fn trace_lookup_filters_and_sorts() {
        let store = SpanStore::new(4, 16);
        store.record(rec(7, 2, 20));
        store.record(rec(7, 1, 10));
        store.record(rec(9, 3, 5));
        let spans = store.trace(TraceId(7));
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].span_id, SpanId(1));
        assert_eq!(spans[1].span_id, SpanId(2));
        assert_eq!(store.trace(TraceId(1234)).len(), 0);
    }

    #[test]
    fn ring_evicts_oldest() {
        let store = SpanStore::new(1, 3);
        for i in 0..5 {
            store.record(rec(42, i + 1, i));
        }
        assert_eq!(store.len(), 3);
        let spans = store.trace(TraceId(42));
        assert_eq!(spans.iter().map(|s| s.span_id.0).collect::<Vec<_>>(), vec![3, 4, 5]);
    }

    #[test]
    fn trace_ids_counts() {
        let store = SpanStore::new(4, 16);
        store.record(rec(1, 1, 0));
        store.record(rec(1, 2, 1));
        store.record(rec(2, 3, 2));
        let ids = store.trace_ids();
        assert_eq!(ids[0], (TraceId(1), 2));
        assert_eq!(ids[1], (TraceId(2), 1));
        store.clear();
        assert!(store.is_empty());
    }
}
