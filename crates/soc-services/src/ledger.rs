//! The mortgage submission ledger — the "bank's database".
//!
//! POST `/mortgage/apply` is the stack's canonical non-idempotent
//! operation: submitting twice opens two applications. This ledger
//! makes the operation replay-safe *and* auditable:
//!
//! - **Dedupe**: the first submission under an `Idempotency-Key`
//!   executes the decision logic and caches the response; replays of
//!   the same key (gateway retries, hedges, workflow re-fires after a
//!   lost response) return the cached response without executing
//!   again.
//! - **Audit**: the ledger counts every *actual execution* per key and
//!   per request body, plus cancellations, so a chaos harness can
//!   assert the real invariants — no logical application executed
//!   twice, compensations exactly balance completed submissions — not
//!   just "the client saw no duplicates".
//! - **Reservation cancels**: because the idempotency key doubles as
//!   the application id, a caller that never saw a response can still
//!   compensate by the key it chose up front
//!   ([`SubmissionLedger::cancel_reservation`]); if the submission
//!   never landed, a tombstone refuses any straggling retry that
//!   arrives later.
//!
//! Replicas of the service share one ledger ([`crate::bindings::ServiceHost::with_ledger`])
//! the way real replicas share a database, so a retry that lands on a
//! different replica still dedupes.
//!
//! ## Durability
//!
//! [`SubmissionLedger::durable`] binds the ledger to a write-ahead log:
//! every mutation is journalled as a *decided event* — the decision
//! closure runs first and its response is what gets logged, never
//! re-run — and acknowledged only once durable. Reopening the same
//! directory replays the journal (and the newest snapshot, after
//! [`SubmissionLedger::compact`]) to the exact pre-crash state, which
//! is what lets the chaos harness `kill -9` the host mid-campaign and
//! still assert no application executed twice and no cancel orphaned.
//! A ledger built with [`SubmissionLedger::new`] keeps the old
//! in-memory behavior.

use std::collections::HashMap;

use parking_lot::Mutex;
use soc_json::Value;
use soc_store::wal::{Lsn, Wal, WalConfig};
use soc_store::{StoreError, StoreResult};

/// Audit record for one application id (idempotency key).
#[derive(Debug, Clone)]
pub struct LedgerEntry {
    /// Times the decision logic actually executed for this key.
    pub executions: u64,
    /// Times a replay was served from cache instead of executing.
    pub deduped: u64,
    /// Times this application was cancelled (compensation).
    pub cancellations: u64,
    /// Cached response body.
    pub response: String,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<String, LedgerEntry>,
    // Decision executions per request body — catches duplicates that
    // slipped past the key (e.g. two keys for one logical request).
    by_content: HashMap<String, u64>,
    // Keys cancelled *before* any submission arrived (reservation
    // cancels): a late-landing submission under a tombstoned key is
    // refused instead of opening an application.
    tombstones: std::collections::HashSet<String>,
    keyless: u64,
    orphan_cancels: u64,
}

impl Inner {
    /// The deterministic core of [`SubmissionLedger::apply`], shared by
    /// the live path (where `response` was just decided) and journal
    /// replay (where it was decided before the crash).
    fn apply_submission(&mut self, key: &str, content: &str, response: &str) -> (String, bool) {
        if let Some(entry) = self.entries.get_mut(key) {
            entry.deduped += 1;
            return (entry.response.clone(), true);
        }
        // A reservation cancel got here first (the original caller gave
        // up on a lost response and compensated): refuse to open the
        // application, recording an already-cancelled entry so the
        // audit shows what happened.
        if self.tombstones.remove(key) {
            let response = format!("{{\"application_id\":{:?},\"cancelled\":true}}", key);
            self.entries.insert(
                key.to_string(),
                LedgerEntry {
                    executions: 0,
                    deduped: 0,
                    cancellations: 1,
                    response: response.clone(),
                },
            );
            return (response, true);
        }
        self.entries.insert(
            key.to_string(),
            LedgerEntry {
                executions: 1,
                deduped: 0,
                cancellations: 0,
                response: response.to_string(),
            },
        );
        *self.by_content.entry(content.to_string()).or_insert(0) += 1;
        (response.to_string(), false)
    }

    fn apply_keyless(&mut self, content: &str) {
        self.keyless += 1;
        *self.by_content.entry(content.to_string()).or_insert(0) += 1;
    }

    fn apply_cancel_reservation(&mut self, key: &str) -> bool {
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.cancellations += 1;
                true
            }
            None => {
                self.tombstones.insert(key.to_string());
                false
            }
        }
    }

    fn apply_cancel(&mut self, key: &str) -> bool {
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.cancellations += 1;
                true
            }
            None => {
                self.orphan_cancels += 1;
                false
            }
        }
    }

    /// Replay one journalled event.
    fn apply_event(&mut self, payload: &[u8]) -> Result<(), String> {
        let text = std::str::from_utf8(payload).map_err(|e| e.to_string())?;
        let ev = Value::parse(text).map_err(|e| e.to_string())?;
        let key = ev.get("key").and_then(Value::as_str).unwrap_or_default();
        let content = ev.get("content").and_then(Value::as_str).unwrap_or_default();
        match ev.get("ev").and_then(Value::as_str) {
            Some("apply") => {
                let response = ev.get("response").and_then(Value::as_str).unwrap_or_default();
                self.apply_submission(key, content, response);
            }
            Some("keyless") => self.apply_keyless(content),
            Some("cancel_reservation") => {
                self.apply_cancel_reservation(key);
            }
            Some("cancel") => {
                self.apply_cancel(key);
            }
            other => return Err(format!("unknown ledger event {other:?}")),
        }
        Ok(())
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut keys: Vec<&String> = self.entries.keys().collect();
        keys.sort();
        let entries: Vec<Value> = keys
            .into_iter()
            .map(|k| {
                let e = &self.entries[k];
                let mut item = Value::object();
                item.set("key", k.as_str());
                item.set("executions", e.executions as i64);
                item.set("deduped", e.deduped as i64);
                item.set("cancellations", e.cancellations as i64);
                item.set("response", e.response.as_str());
                item
            })
            .collect();
        let mut contents: Vec<(&String, &u64)> = self.by_content.iter().collect();
        contents.sort();
        let by_content: Vec<Value> = contents
            .into_iter()
            .map(|(c, n)| {
                let mut item = Value::object();
                item.set("content", c.as_str());
                item.set("n", *n as i64);
                item
            })
            .collect();
        let mut tombstones: Vec<&String> = self.tombstones.iter().collect();
        tombstones.sort();
        let mut snap = Value::object();
        snap.set("entries", Value::Array(entries));
        snap.set("by_content", Value::Array(by_content));
        snap.set(
            "tombstones",
            Value::Array(tombstones.into_iter().map(|t| Value::from(t.as_str())).collect()),
        );
        snap.set("keyless", self.keyless as i64);
        snap.set("orphan_cancels", self.orphan_cancels as i64);
        snap.to_compact().into_bytes()
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), String> {
        let text = std::str::from_utf8(snapshot).map_err(|e| e.to_string())?;
        let snap = Value::parse(text).map_err(|e| e.to_string())?;
        *self = Inner::default();
        for item in snap.get("entries").and_then(Value::as_array).ok_or("missing entries")? {
            let key = item.get("key").and_then(Value::as_str).ok_or("entry missing key")?;
            self.entries.insert(
                key.to_string(),
                LedgerEntry {
                    executions: item.get("executions").and_then(Value::as_i64).unwrap_or(0) as u64,
                    deduped: item.get("deduped").and_then(Value::as_i64).unwrap_or(0) as u64,
                    cancellations: item.get("cancellations").and_then(Value::as_i64).unwrap_or(0)
                        as u64,
                    response: item
                        .get("response")
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_string(),
                },
            );
        }
        for item in snap.get("by_content").and_then(Value::as_array).unwrap_or(&[]) {
            let content = item.get("content").and_then(Value::as_str).unwrap_or_default();
            let n = item.get("n").and_then(Value::as_i64).unwrap_or(0) as u64;
            self.by_content.insert(content.to_string(), n);
        }
        for t in snap.get("tombstones").and_then(Value::as_array).unwrap_or(&[]) {
            if let Some(t) = t.as_str() {
                self.tombstones.insert(t.to_string());
            }
        }
        self.keyless = snap.get("keyless").and_then(Value::as_i64).unwrap_or(0) as u64;
        self.orphan_cancels =
            snap.get("orphan_cancels").and_then(Value::as_i64).unwrap_or(0) as u64;
        Ok(())
    }
}

/// Shared submission store for the mortgage service. See module docs.
#[derive(Default)]
pub struct SubmissionLedger {
    inner: Mutex<Inner>,
    wal: Option<Wal>,
}

impl SubmissionLedger {
    /// An empty, in-memory ledger (state dies with the process).
    pub fn new() -> Self {
        SubmissionLedger::default()
    }

    /// A ledger journalled to a write-ahead log in `dir`, recovered to
    /// its pre-crash state if the directory already holds a journal.
    pub fn durable(dir: impl AsRef<std::path::Path>, cfg: WalConfig) -> StoreResult<Self> {
        let (wal, recovery) = Wal::open_with(dir, cfg)?;
        let mut inner = Inner::default();
        if let Some((_, snap)) = &recovery.snapshot {
            inner.restore(snap).map_err(StoreError::Corrupt)?;
        }
        for (_, payload) in &recovery.records {
            inner.apply_event(payload).map_err(StoreError::Corrupt)?;
        }
        Ok(SubmissionLedger { inner: Mutex::new(inner), wal: Some(wal) })
    }

    /// Snapshot-then-truncate the journal (durable ledgers only).
    pub fn compact(&self) -> StoreResult<()> {
        let Some(wal) = &self.wal else { return Ok(()) };
        let inner = self.inner.lock();
        wal.snapshot(&inner.snapshot())?;
        Ok(())
    }

    /// The journal directory, when durable.
    pub fn wal_dir(&self) -> Option<&std::path::Path> {
        self.wal.as_ref().map(|w| w.dir())
    }

    /// Journal `ev` while still holding the ledger lock (so journal
    /// order equals apply order), returning the LSN to await.
    fn journal(&self, ev: &Value) -> Option<Lsn> {
        self.wal.as_ref().map(|w| {
            w.submit(ev.to_compact().as_bytes())
                .expect("submission ledger journal refused an event")
        })
    }

    /// Wait out durability after the lock is released. A ledger that
    /// can no longer persist fails loudly: acknowledging writes that
    /// would vanish on crash is exactly the lie this type exists to
    /// prevent.
    fn wait(&self, lsn: Option<Lsn>) {
        if let (Some(wal), Some(lsn)) = (&self.wal, lsn) {
            if let Err(e) = wal.wait_durable(lsn) {
                panic!("submission ledger lost durability: {e}");
            }
        }
    }

    /// Execute-or-replay: runs `decide` only if `key` is new, caching
    /// its response. Returns `(response, replayed)`. `content`
    /// identifies the logical request for duplicate auditing.
    pub fn apply(
        &self,
        key: &str,
        content: &str,
        decide: impl FnOnce() -> String,
    ) -> (String, bool) {
        let mut inner = self.inner.lock();
        // Decide before journalling — the journal records *results*, so
        // replay never re-runs the (non-deterministic) decision logic.
        // Execution stays under the lock: replicas share the ledger
        // like a database, and this serializes racing replays of a key.
        let fresh = !inner.entries.contains_key(key) && !inner.tombstones.contains(key);
        let response = if fresh { decide() } else { String::new() };
        let result = inner.apply_submission(key, content, &response);
        let mut ev = Value::object();
        ev.set("ev", "apply");
        ev.set("key", key);
        ev.set("content", content);
        ev.set("response", response.as_str());
        let lsn = self.journal(&ev);
        drop(inner);
        self.wait(lsn);
        result
    }

    /// Record a keyless submission (no dedupe possible).
    pub fn note_keyless(&self, content: &str) {
        let mut inner = self.inner.lock();
        inner.apply_keyless(content);
        let mut ev = Value::object();
        ev.set("ev", "keyless");
        ev.set("content", content);
        let lsn = self.journal(&ev);
        drop(inner);
        self.wait(lsn);
    }

    /// Cancel a submission that may not have arrived yet. An existing
    /// entry is cancelled like [`SubmissionLedger::cancel`]; an unknown
    /// key leaves a tombstone so a late-landing submission under it
    /// (a straggling retry whose caller already compensated) is
    /// refused. This is how a saga undoes a step whose response was
    /// lost before it ever learned a server-side id: it cancels by the
    /// idempotency key it chose up front. Returns whether a landed
    /// submission was cancelled.
    pub fn cancel_reservation(&self, key: &str) -> bool {
        let mut inner = self.inner.lock();
        let landed = inner.apply_cancel_reservation(key);
        let mut ev = Value::object();
        ev.set("ev", "cancel_reservation");
        ev.set("key", key);
        let lsn = self.journal(&ev);
        drop(inner);
        self.wait(lsn);
        landed
    }

    /// Tombstones from reservation cancels that no submission ever
    /// claimed.
    pub fn pending_tombstones(&self) -> u64 {
        self.inner.lock().tombstones.len() as u64
    }

    /// Cancel an application. Returns whether the id was known;
    /// unknown ids are recorded as orphan cancels (a compensation
    /// invariant violation if it ever happens).
    pub fn cancel(&self, key: &str) -> bool {
        let mut inner = self.inner.lock();
        let known = inner.apply_cancel(key);
        let mut ev = Value::object();
        ev.set("ev", "cancel");
        ev.set("key", key);
        let lsn = self.journal(&ev);
        drop(inner);
        self.wait(lsn);
        known
    }

    /// Audit record for one application id.
    pub fn entry(&self, key: &str) -> Option<LedgerEntry> {
        self.inner.lock().entries.get(key).cloned()
    }

    /// All application ids, sorted.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.inner.lock().entries.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Total decision executions (excludes deduped replays).
    pub fn total_executions(&self) -> u64 {
        let inner = self.inner.lock();
        inner.entries.values().map(|e| e.executions).sum::<u64>() + inner.keyless
    }

    /// Replays served from cache.
    pub fn total_deduped(&self) -> u64 {
        self.inner.lock().entries.values().map(|e| e.deduped).sum()
    }

    /// The worst duplication factor across logical requests: 1 means
    /// every distinct request body executed exactly once.
    pub fn max_executions_per_content(&self) -> u64 {
        self.inner.lock().by_content.values().copied().max().unwrap_or(0)
    }

    /// Applications executed and not (yet) cancelled.
    pub fn open_applications(&self) -> u64 {
        self.inner.lock().entries.values().filter(|e| e.cancellations == 0).count() as u64
    }

    /// Ids that were cancelled, sorted.
    pub fn cancelled_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .inner
            .lock()
            .entries
            .iter()
            .filter(|(_, e)| e.cancellations > 0)
            .map(|(k, _)| k.clone())
            .collect();
        keys.sort();
        keys
    }

    /// Cancels addressed at ids the ledger never saw.
    pub fn orphan_cancels(&self) -> u64 {
        self.inner.lock().orphan_cancels
    }

    /// Submissions that arrived without an idempotency key.
    pub fn keyless_submissions(&self) -> u64 {
        self.inner.lock().keyless
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_hit_cache_without_reexecuting() {
        let ledger = SubmissionLedger::new();
        let mut calls = 0;
        let (r1, cached1) = ledger.apply("k1", "app-a", || {
            calls += 1;
            "{\"ok\":1}".to_string()
        });
        assert!(!cached1);
        let (r2, cached2) = ledger.apply("k1", "app-a", || {
            calls += 1;
            "{\"ok\":2}".to_string()
        });
        assert!(cached2);
        assert_eq!(r1, r2);
        assert_eq!(calls, 1);
        assert_eq!(ledger.total_executions(), 1);
        assert_eq!(ledger.total_deduped(), 1);
        assert_eq!(ledger.max_executions_per_content(), 1);
    }

    #[test]
    fn distinct_keys_for_one_body_are_flagged_by_content() {
        let ledger = SubmissionLedger::new();
        ledger.apply("k1", "same-app", || "{}".to_string());
        ledger.apply("k2", "same-app", || "{}".to_string());
        assert_eq!(ledger.max_executions_per_content(), 2);
    }

    #[test]
    fn cancel_balances_and_flags_orphans() {
        let ledger = SubmissionLedger::new();
        ledger.apply("k1", "a", || "{}".to_string());
        ledger.apply("k2", "b", || "{}".to_string());
        assert_eq!(ledger.open_applications(), 2);
        assert!(ledger.cancel("k1"));
        assert!(ledger.cancel("k1")); // cancel is idempotent bookkeeping
        assert_eq!(ledger.open_applications(), 1);
        assert_eq!(ledger.cancelled_keys(), vec!["k1".to_string()]);
        assert!(!ledger.cancel("ghost"));
        assert_eq!(ledger.orphan_cancels(), 1);
    }

    #[test]
    fn reservation_cancel_tombstones_until_the_submission_lands() {
        let ledger = SubmissionLedger::new();
        // Cancel-before-apply: the saga compensated a lost response.
        assert!(!ledger.cancel_reservation("k1"));
        assert_eq!(ledger.pending_tombstones(), 1);
        assert_eq!(ledger.orphan_cancels(), 0, "a reservation cancel is not an orphan");
        // The straggling submission lands later: refused, not opened.
        let (resp, replayed) = ledger.apply("k1", "a", || "should not run".to_string());
        assert!(replayed);
        assert!(resp.contains("\"cancelled\":true"));
        assert_eq!(ledger.open_applications(), 0);
        assert_eq!(ledger.total_executions(), 0);
        assert_eq!(ledger.pending_tombstones(), 0);

        // Cancel-after-apply via the reservation path behaves like a
        // plain cancel.
        ledger.apply("k2", "b", || "{}".to_string());
        assert!(ledger.cancel_reservation("k2"));
        assert_eq!(ledger.open_applications(), 0);
    }

    #[test]
    fn durable_ledger_replays_to_pre_crash_state() {
        let tmp = soc_store::TempDir::new("ledger");
        {
            let ledger = SubmissionLedger::durable(tmp.path(), WalConfig::default()).unwrap();
            let mut calls = 0;
            ledger.apply("k1", "app-a", || {
                calls += 1;
                "{\"ok\":1}".to_string()
            });
            ledger.apply("k1", "app-a", || {
                calls += 1;
                "never".to_string()
            });
            ledger.apply("k2", "app-b", || "{\"ok\":2}".to_string());
            ledger.cancel("k2");
            ledger.cancel_reservation("k3"); // tombstone
            ledger.note_keyless("app-c");
            assert_eq!(calls, 1);
        } // crash
        let ledger = SubmissionLedger::durable(tmp.path(), WalConfig::default()).unwrap();
        assert_eq!(ledger.total_executions(), 3, "k1 + k2 + keyless");
        assert_eq!(ledger.total_deduped(), 1);
        assert_eq!(ledger.open_applications(), 1);
        assert_eq!(ledger.cancelled_keys(), vec!["k2".to_string()]);
        assert_eq!(ledger.pending_tombstones(), 1);
        assert_eq!(ledger.keyless_submissions(), 1);
        assert_eq!(ledger.orphan_cancels(), 0);
        // The decision logic is NOT re-run on a replayed key: the
        // cached response survives the crash.
        let (resp, replayed) = ledger.apply("k1", "app-a", || "re-decided".to_string());
        assert!(replayed);
        assert_eq!(resp, "{\"ok\":1}");
        // And the pre-crash tombstone still guards k3.
        let (resp, replayed) = ledger.apply("k3", "app-d", || "should not run".to_string());
        assert!(replayed);
        assert!(resp.contains("\"cancelled\":true"));
    }

    #[test]
    fn durable_ledger_compaction_preserves_audit() {
        let tmp = soc_store::TempDir::new("ledger-compact");
        {
            let ledger = SubmissionLedger::durable(tmp.path(), WalConfig::default()).unwrap();
            for i in 0..10 {
                ledger.apply(&format!("k{i}"), &format!("app-{i}"), || "{}".to_string());
            }
            ledger.cancel("k3");
            ledger.compact().unwrap();
            ledger.apply("k10", "app-10", || "{}".to_string());
        }
        let ledger = SubmissionLedger::durable(tmp.path(), WalConfig::default()).unwrap();
        assert_eq!(ledger.total_executions(), 11);
        assert_eq!(ledger.open_applications(), 10);
        assert_eq!(ledger.cancelled_keys(), vec!["k3".to_string()]);
        assert_eq!(ledger.max_executions_per_content(), 1);
    }

    #[test]
    fn keyless_submissions_still_audit_content() {
        let ledger = SubmissionLedger::new();
        ledger.note_keyless("app-a");
        ledger.note_keyless("app-a");
        assert_eq!(ledger.total_executions(), 2);
        assert_eq!(ledger.max_executions_per_content(), 2);
        assert_eq!(ledger.keyless_submissions(), 2);
    }
}
