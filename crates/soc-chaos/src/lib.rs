//! # soc-chaos — seeded chaos engineering for the whole stack
//!
//! The paper's running complaint about real-world service composition
//! is that the network is hostile: free public services are "too
//! slow... often offline". The rest of the stack grew the defenses —
//! gateway retries/breakers/hedging, saga workflows with compensation,
//! idempotency-keyed submissions — and this crate is the offense that
//! proves they work:
//!
//! - [`FaultProxy`] — a TCP byte tunnel that injects delay, mid-header
//!   connection cuts, and mid-body truncation on *real sockets*, with
//!   verdicts drawn deterministically from a seed;
//! - [`PartitionSchedule`] — seeded schedules of directional network
//!   cuts that always leave a connected majority, so a campaign stays
//!   survivable by construction;
//! - [`run_mem_chaos`] / [`run_tcp_chaos`] — full-stack campaigns:
//!   replicated mortgage services behind a QoS-aware gateway, driven by
//!   the mortgage saga under a seeded fault schedule;
//! - [`ChaosReport`] — the invariants that define correctness under
//!   faults (no duplicated submissions, compensation exactly balancing
//!   completed steps and running in reverse order, deadlines honored,
//!   breakers recovering), checked via [`ChaosReport::violations`];
//! - [`process`] — process-level chaos: `kill -9` a shard primary or a
//!   durable saga coordinator mid-campaign (the `victim` binary),
//!   restart it against the same WAL directory, and assert no
//!   acknowledged write is lost and no application is duplicated.
//!
//! The `chaos` binary sweeps seeds from the command line
//! (`scripts/chaos_sweep.sh` wraps it); `tests/chaos_stack.rs` pins a
//! seed matrix in CI.

pub mod elastic;
pub mod harness;
pub mod process;
pub mod proxy;
pub mod schedule;

pub use elastic::{
    run_mem_fencing, run_mem_rebalance, run_tcp_rebalance, FencingConfig, FencingReport,
    RebalanceChaosConfig, RebalanceChaosReport,
};
pub use harness::{
    live_threads, run_mem_chaos, run_tcp_chaos, CancelCall, ChaosConfig, ChaosReport, RunOutcome,
};
pub use process::{
    run_mem_coordinator_kill, run_mem_store_kill, run_tcp_coordinator_kill, run_tcp_store_kill,
    CoordKillConfig, CoordKillReport, RecoveryMode, StoreKillConfig, StoreKillReport, Victim,
};
pub use proxy::{FaultProxy, ProxyFaults, ProxyStats};
pub use schedule::{Cut, PartitionSchedule, PartitionStep};
