/root/repo/target/debug/deps/proptests-bba12223ab37e315.d: crates/soc-soap/tests/proptests.rs

/root/repo/target/debug/deps/proptests-bba12223ab37e315: crates/soc-soap/tests/proptests.rs

crates/soc-soap/tests/proptests.rs:
