//! Discovery over real sockets: crawl three federated TCP directories,
//! search the catalog, plan a composition, execute it through the
//! gateway — and pull the trace tree back over the wire to prove the
//! whole loop is one causally-linked story:
//! `discover.plan → workflow.run → gateway.request`.

use std::collections::HashMap;
use std::sync::Arc;

use soc::discover::{demo, AchieveConfig, CrawlConfig, Discovery, Goal};
use soc::gateway::GatewayConfig;
use soc::http::{HttpClient, HttpServer, Request};
use soc::json::Value;
use soc::soap::XsdType;

fn fetch_trace(client: &HttpClient, base: &str, trace_id: &str) -> Value {
    let resp = client.send(Request::get(format!("{base}/observe/traces/{trace_id}"))).unwrap();
    assert!(resp.status.is_success(), "trace {trace_id} not retrievable: {:?}", resp.status);
    Value::parse(resp.text_body().unwrap()).unwrap()
}

fn span_name(span: &Value) -> &str {
    span.pointer("/name").and_then(Value::as_str).unwrap()
}

fn span_id(span: &Value) -> &str {
    span.pointer("/span_id").and_then(Value::as_str).unwrap()
}

fn parent_id(span: &Value) -> Option<&str> {
    span.pointer("/parent_span_id").and_then(Value::as_str)
}

fn has_ancestor<'a>(by_id: &HashMap<&str, &'a Value>, mut span: &'a Value, target: &str) -> bool {
    while let Some(parent) = parent_id(span).and_then(|p| by_id.get(p).copied()) {
        if span_id(parent) == target {
            return true;
        }
        span = parent;
    }
    false
}

fn spans_named<'a>(tree: &'a Value, name: &str) -> Vec<&'a Value> {
    tree.pointer("/spans")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .filter(|s| span_name(s) == name)
        .collect()
}

#[test]
fn discovery_composes_and_traces_over_real_sockets() {
    let federation = demo::host_tcp(2).unwrap();
    let roots: Vec<&str> = federation.roots.iter().map(String::as_str).collect();

    let mut disc = Discovery::new(
        Arc::new(HttpClient::new()),
        GatewayConfig::default(),
        CrawlConfig::default(),
    );

    // Crawl: one root URL; referrals walk the other two directories and
    // the closing referral edge back to the first must not loop.
    let stats = disc.crawl(&roots);
    assert_eq!(stats.visited.len(), 3, "{stats:?}");
    assert!(stats.wsdl_errors.is_empty(), "{stats:?}");
    let catalog = disc.catalog();
    assert_eq!(catalog.len(), 4);
    let credit = catalog.get("credit-check").unwrap();
    assert_eq!(credit.replicas.len(), 2, "both TCP replicas merged: {:?}", credit.replicas);

    // Search: typed signatures from WSDL fetched over TCP are indexed.
    let hits = disc.search("underwriting approval", 5);
    assert_eq!(hits[0].service_id, "underwriting", "{hits:?}");

    // Plan + execute under a root span, so the whole attempt is one
    // trace we can fetch back over the wire.
    let goal = Goal::new()
        .have("ssn", XsdType::String)
        .have("amount", XsdType::Int)
        .have("income", XsdType::Int)
        .want("approved", XsdType::Boolean)
        .want("rate_bps", XsdType::Int);
    let inputs = HashMap::from([
        ("ssn".to_string(), Value::from("123-45-6789")),
        ("amount".to_string(), Value::from(25_000)),
        ("income".to_string(), Value::from(90_000)),
    ]);

    let root = soc::observe::root_span("test.discover", soc::observe::SpanKind::Internal);
    let trace_id = root.context().trace_id.to_hex();
    let root_sid = root.context().span_id.to_hex();
    let achieved = {
        let _active = root.activate();
        disc.achieve(&goal, &inputs, &AchieveConfig::default()).unwrap()
    };
    drop(root);
    assert_eq!(achieved.attempts, 1);
    assert_eq!(achieved.outputs["approved"].as_bool(), Some(true));
    assert!(achieved.outputs["rate_bps"].as_i64().is_some());

    // The trace tree, served over TCP by a standalone observability
    // host: discover.plan roots the attempt, the saga hangs under it,
    // and every service invocation rides a gateway.request below that.
    let obs = HttpServer::bind("127.0.0.1:0", 1, soc::http::ObserveEndpoints::new()).unwrap();
    let client = HttpClient::new();
    let tree = fetch_trace(&client, &obs.url(), &trace_id);

    let plans = spans_named(&tree, "discover.plan");
    assert_eq!(plans.len(), 1, "one attempt, one plan span");
    let plan_span = plans[0];
    assert_eq!(parent_id(plan_span), Some(root_sid.as_str()));
    assert_eq!(plan_span.pointer("/attrs/nodes").and_then(Value::as_str), Some("3"));

    let runs = spans_named(&tree, "workflow.run");
    assert_eq!(runs.len(), 1);
    let run = runs[0];
    assert_eq!(
        parent_id(run),
        Some(span_id(plan_span)),
        "the saga must execute inside the planning attempt's span"
    );
    assert_eq!(run.pointer("/attrs/saga").and_then(Value::as_str), Some("true"));

    // Three plan nodes → three service invocations, each a
    // gateway.request whose ancestry passes through workflow.run.
    let by_id: HashMap<&str, &Value> = tree
        .pointer("/spans")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .map(|s| (span_id(s), s))
        .collect();
    let requests = spans_named(&tree, "gateway.request");
    assert_eq!(requests.len(), 3, "one gateway dispatch per plan node");
    for req in &requests {
        assert!(
            has_ancestor(&by_id, req, span_id(run)),
            "gateway.request must descend from workflow.run: {tree}"
        );
    }

    // The federation's HTTP servers stay alive until here.
    drop(federation);
}
