//! The service repository: publication store with XML persistence.

use parking_lot::RwLock;
use soc_xml::Document;

use crate::descriptor::ServiceDescriptor;

/// A thread-safe repository of service descriptors — the in-process
/// model of the paper's `venus.eas.asu.edu/WSRepository/`.
#[derive(Default)]
pub struct Repository {
    services: RwLock<Vec<ServiceDescriptor>>,
}

impl Repository {
    /// Empty repository.
    pub fn new() -> Self {
        Repository::default()
    }

    /// Publish a descriptor. Fails if the id is taken (publishers must
    /// unpublish first — the registry's uniqueness contract).
    pub fn publish(&self, d: ServiceDescriptor) -> Result<(), String> {
        let mut services = self.services.write();
        if services.iter().any(|s| s.id == d.id) {
            return Err(format!("service id {:?} already published", d.id));
        }
        services.push(d);
        Ok(())
    }

    /// Replace an existing descriptor (same id), or publish if new.
    pub fn upsert(&self, d: ServiceDescriptor) {
        let mut services = self.services.write();
        if let Some(slot) = services.iter_mut().find(|s| s.id == d.id) {
            *slot = d;
        } else {
            services.push(d);
        }
    }

    /// Remove a service by id; `true` if it existed.
    pub fn unpublish(&self, id: &str) -> bool {
        let mut services = self.services.write();
        let before = services.len();
        services.retain(|s| s.id != id);
        services.len() != before
    }

    /// Look up by id.
    pub fn get(&self, id: &str) -> Option<ServiceDescriptor> {
        self.services.read().iter().find(|s| s.id == id).cloned()
    }

    /// All services, publication order.
    pub fn list(&self) -> Vec<ServiceDescriptor> {
        self.services.read().clone()
    }

    /// Services in a category.
    pub fn by_category(&self, category: &str) -> Vec<ServiceDescriptor> {
        self.services.read().iter().filter(|s| s.category == category).cloned().collect()
    }

    /// Distinct categories, sorted.
    pub fn categories(&self) -> Vec<String> {
        let mut cats: Vec<String> =
            self.services.read().iter().map(|s| s.category.clone()).collect();
        cats.sort();
        cats.dedup();
        cats
    }

    /// Number of published services.
    pub fn len(&self) -> usize {
        self.services.read().len()
    }

    /// Is the repository empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialize the whole repository as an XML document.
    pub fn to_xml(&self) -> String {
        let mut doc = Document::new("repository");
        let root = doc.root();
        for s in self.services.read().iter() {
            s.write_xml(&mut doc, root);
        }
        doc.to_pretty_xml()
    }

    /// Load a repository from its XML form.
    pub fn from_xml(xml: &str) -> Result<Self, String> {
        let doc = Document::parse_str(xml).map_err(|e| e.to_string())?;
        let root = doc.root();
        if doc.name(root).map(|q| q.local.as_str()) != Some("repository") {
            return Err("not a repository document".into());
        }
        let repo = Repository::new();
        for el in doc.find_children(root, "service") {
            let d = ServiceDescriptor::read_xml(&doc, el)?;
            repo.publish(d)?;
        }
        Ok(repo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::Binding;

    fn svc(id: &str, cat: &str) -> ServiceDescriptor {
        ServiceDescriptor::new(id, id, &format!("mem://svc/{id}"), Binding::Rest).category(cat)
    }

    #[test]
    fn publish_get_unpublish() {
        let repo = Repository::new();
        repo.publish(svc("a", "x")).unwrap();
        assert_eq!(repo.get("a").unwrap().id, "a");
        assert!(repo.unpublish("a"));
        assert!(!repo.unpublish("a"));
        assert!(repo.get("a").is_none());
    }

    #[test]
    fn duplicate_publish_rejected() {
        let repo = Repository::new();
        repo.publish(svc("a", "x")).unwrap();
        assert!(repo.publish(svc("a", "y")).is_err());
        assert_eq!(repo.len(), 1);
    }

    #[test]
    fn upsert_replaces() {
        let repo = Repository::new();
        repo.upsert(svc("a", "x"));
        repo.upsert(svc("a", "y"));
        assert_eq!(repo.len(), 1);
        assert_eq!(repo.get("a").unwrap().category, "y");
    }

    #[test]
    fn categories_and_filtering() {
        let repo = Repository::new();
        repo.publish(svc("a", "security")).unwrap();
        repo.publish(svc("b", "commerce")).unwrap();
        repo.publish(svc("c", "security")).unwrap();
        assert_eq!(repo.categories(), vec!["commerce", "security"]);
        assert_eq!(repo.by_category("security").len(), 2);
        assert!(repo.by_category("robotics").is_empty());
    }

    #[test]
    fn xml_persistence_round_trip() {
        let repo = Repository::new();
        repo.publish(svc("a", "security")).unwrap();
        repo.publish(svc("b", "commerce").describe("shopping cart & checkout").keywords(&["cart"]))
            .unwrap();
        let xml = repo.to_xml();
        let loaded = Repository::from_xml(&xml).unwrap();
        assert_eq!(loaded.list(), repo.list());
    }

    #[test]
    fn from_xml_rejects_other_documents() {
        assert!(Repository::from_xml("<services/>").is_err());
        assert!(Repository::from_xml("junk").is_err());
    }

    #[test]
    fn concurrent_publishers() {
        let repo = std::sync::Arc::new(Repository::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let repo = repo.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    repo.publish(svc(&format!("s-{t}-{i}"), "load")).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(repo.len(), 200);
    }
}
