//! Service directory performance: TF-IDF search latency vs repository
//! size, the ranked engine vs the naive scan, index build cost, and
//! crawler throughput across a directory federation.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soc_http::MemNetwork;
use soc_registry::crawler::Crawler;
use soc_registry::directory::DirectoryService;
use soc_registry::search::SearchEngine;
use soc_registry::Repository;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(150))
}

fn bench_registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry");

    for n in [100usize, 1000, 5000] {
        let catalog = soc_bench::synthetic_catalog(n, 9);
        group.bench_with_input(BenchmarkId::new("index_build", n), &catalog, |b, cat| {
            b.iter(|| SearchEngine::build(cat.iter().cloned()))
        });
        let engine = SearchEngine::build(catalog.iter().cloned());
        group.bench_with_input(BenchmarkId::new("tfidf_search_common", n), &engine, |b, e| {
            b.iter(|| e.search(std::hint::black_box("service cloud robot"), 10))
        });
        group.bench_with_input(BenchmarkId::new("tfidf_search", n), &engine, |b, e| {
            b.iter(|| e.search(std::hint::black_box("captcha"), 10))
        });
        group.bench_with_input(BenchmarkId::new("naive_scan", n), &engine, |b, e| {
            b.iter(|| e.naive_scan(std::hint::black_box("captcha")))
        });
    }

    // Crawler across a 4-directory chain.
    let net = MemNetwork::new();
    for i in 0..4 {
        let repo = Repository::new();
        for d in soc_bench::synthetic_catalog(50, i as u64) {
            let mut d = d;
            d.id = format!("dir{i}-{}", d.id);
            repo.publish(d).unwrap();
        }
        let peers = if i < 3 { vec![format!("mem://dir-{}", i + 1)] } else { vec![] };
        let (dir, _) = DirectoryService::new(repo, peers);
        net.host(&format!("dir-{i}"), dir);
    }
    let transport: Arc<dyn soc_http::mem::Transport> = Arc::new(net);
    group.bench_function("crawl_4_directories_200_services", |b| {
        b.iter(|| Crawler::new(transport.clone()).crawl(&["mem://dir-0"]))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_registry
}
criterion_main!(benches);
