/root/repo/target/debug/deps/soc_rest-44f70b4cc4efec87.d: crates/soc-rest/src/lib.rs crates/soc-rest/src/client.rs crates/soc-rest/src/middleware.rs crates/soc-rest/src/negotiate.rs crates/soc-rest/src/resource.rs crates/soc-rest/src/router.rs

/root/repo/target/debug/deps/soc_rest-44f70b4cc4efec87: crates/soc-rest/src/lib.rs crates/soc-rest/src/client.rs crates/soc-rest/src/middleware.rs crates/soc-rest/src/negotiate.rs crates/soc-rest/src/resource.rs crates/soc-rest/src/router.rs

crates/soc-rest/src/lib.rs:
crates/soc-rest/src/client.rs:
crates/soc-rest/src/middleware.rs:
crates/soc-rest/src/negotiate.rs:
crates/soc-rest/src/resource.rs:
crates/soc-rest/src/router.rs:
