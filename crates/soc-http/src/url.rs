//! URL parsing and percent-encoding.

use crate::types::{HttpError, HttpResult};

/// A parsed URL: `scheme://host[:port]/path[?query]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Url {
    /// `http` or `mem`.
    pub scheme: String,
    /// Host name (authority without the port).
    pub host: String,
    /// Explicit port, or the scheme default (http → 80, mem → 0).
    pub port: u16,
    /// Path beginning with `/` (never empty).
    pub path: String,
    /// Raw query string, without the `?`.
    pub query: Option<String>,
}

impl Url {
    /// Parse an absolute URL.
    pub fn parse(raw: &str) -> HttpResult<Url> {
        let (scheme, rest) = raw
            .split_once("://")
            .ok_or_else(|| HttpError::BadUrl(format!("missing scheme: {raw}")))?;
        if scheme.is_empty() || !scheme.chars().all(|c| c.is_ascii_alphanumeric() || c == '+') {
            return Err(HttpError::BadUrl(format!("bad scheme: {raw}")));
        }
        let (authority, path_query) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return Err(HttpError::BadUrl(format!("missing host: {raw}")));
        }
        let default_port = match scheme {
            "http" => 80,
            _ => 0,
        };
        let (host, port) = if let Some(bracketed) = authority.strip_prefix('[') {
            // IPv6 literal: `[::1]` or `[::1]:8080`. The colons inside
            // the brackets are part of the address, not a port
            // separator.
            let (host, after) = bracketed
                .split_once(']')
                .ok_or_else(|| HttpError::BadUrl(format!("unclosed '[' in {raw}")))?;
            if host.is_empty() {
                return Err(HttpError::BadUrl(format!("empty IPv6 host in {raw}")));
            }
            let port = match after.strip_prefix(':') {
                Some(p) => {
                    p.parse().map_err(|_| HttpError::BadUrl(format!("bad port in {raw}")))?
                }
                None if after.is_empty() => default_port,
                None => {
                    return Err(HttpError::BadUrl(format!("junk after ']' in {raw}")));
                }
            };
            (host.to_string(), port)
        } else {
            match authority.rsplit_once(':') {
                Some((h, p)) => {
                    let port: u16 =
                        p.parse().map_err(|_| HttpError::BadUrl(format!("bad port in {raw}")))?;
                    (h.to_string(), port)
                }
                None => (authority.to_string(), default_port),
            }
        };
        let (path, query) = match path_query.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (path_query.to_string(), None),
        };
        Ok(Url { scheme: scheme.to_string(), host, port, path, query })
    }

    /// `host:port` for connecting (http) or the bare host (mem).
    /// IPv6 literals come back bracketed, ready for a socket connect.
    pub fn authority(&self) -> String {
        if self.scheme == "http" {
            if self.host.contains(':') {
                format!("[{}]:{}", self.host, self.port)
            } else {
                format!("{}:{}", self.host, self.port)
            }
        } else {
            self.host.clone()
        }
    }

    /// Path plus query, as sent on the request line.
    pub fn path_and_query(&self) -> String {
        match &self.query {
            Some(q) => format!("{}?{}", self.path, q),
            None => self.path.clone(),
        }
    }
}

impl std::fmt::Display for Url {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}://{}{}", self.scheme, self.authority(), self.path_and_query())
    }
}

/// Percent-encode for a query/form component (RFC 3986 unreserved set
/// passes; space becomes `%20`).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Percent-decode; `+` decodes to space (form semantics). Invalid
/// escapes are passed through verbatim rather than failing, matching
/// browser behavior.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                // `get` handles a truncated escape at end-of-input
                // (e.g. a trailing "%2"): it yields None and the raw
                // bytes pass through verbatim.
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parse `k1=v1&k2=v2` (query strings and form bodies) with decoding.
pub fn parse_form(s: &str) -> Vec<(String, String)> {
    s.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Encode pairs as `k1=v1&k2=v2`.
pub fn encode_form(pairs: &[(String, String)]) -> String {
    pairs
        .iter()
        .map(|(k, v)| format!("{}={}", percent_encode(k), percent_encode(v)))
        .collect::<Vec<_>>()
        .join("&")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_url() {
        let u = Url::parse("http://venus.eas.asu.edu:8080/WSRepository/list?cat=all").unwrap();
        assert_eq!(u.scheme, "http");
        assert_eq!(u.host, "venus.eas.asu.edu");
        assert_eq!(u.port, 8080);
        assert_eq!(u.path, "/WSRepository/list");
        assert_eq!(u.query.as_deref(), Some("cat=all"));
        assert_eq!(u.path_and_query(), "/WSRepository/list?cat=all");
        assert_eq!(u.to_string(), "http://venus.eas.asu.edu:8080/WSRepository/list?cat=all");
    }

    #[test]
    fn defaults() {
        let u = Url::parse("http://example.com").unwrap();
        assert_eq!(u.port, 80);
        assert_eq!(u.path, "/");
        assert_eq!(u.query, None);
        let m = Url::parse("mem://registry/services").unwrap();
        assert_eq!(m.scheme, "mem");
        assert_eq!(m.authority(), "registry");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Url::parse("no-scheme").is_err());
        assert!(Url::parse("http://").is_err());
        assert!(Url::parse("http://h:port/").is_err());
        assert!(Url::parse("ht tp://h/").is_err());
    }

    #[test]
    fn ipv6_literal_hosts_round_trip() {
        let u = Url::parse("http://[::1]:8080/health?deep=1").unwrap();
        assert_eq!(u.host, "::1");
        assert_eq!(u.port, 8080);
        assert_eq!(u.path, "/health");
        assert_eq!(u.query.as_deref(), Some("deep=1"));
        assert_eq!(u.authority(), "[::1]:8080");
        assert_eq!(u.to_string(), "http://[::1]:8080/health?deep=1");

        // No port: the scheme default applies and the address survives.
        let bare = Url::parse("http://[2001:db8::7]/").unwrap();
        assert_eq!(bare.host, "2001:db8::7");
        assert_eq!(bare.port, 80);
        assert_eq!(bare.authority(), "[2001:db8::7]:80");
    }

    #[test]
    fn malformed_ipv6_authorities_are_rejected() {
        assert!(Url::parse("http://[::1/").is_err(), "unclosed bracket");
        assert!(Url::parse("http://[]/").is_err(), "empty address");
        assert!(Url::parse("http://[::1]8080/").is_err(), "junk between ']' and port");
        assert!(Url::parse("http://[::1]:port/").is_err(), "non-numeric port");
    }

    #[test]
    fn percent_round_trip() {
        for s in ["hello world", "a&b=c", "中文", "100%", "~_-."] {
            assert_eq!(percent_decode(&percent_encode(s)), s);
        }
    }

    #[test]
    fn plus_decodes_to_space() {
        assert_eq!(percent_decode("a+b"), "a b");
    }

    #[test]
    fn invalid_escapes_pass_through() {
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        // A truncated escape at end-of-input must not panic or eat
        // bytes.
        assert_eq!(percent_decode("%2"), "%2");
        assert_eq!(percent_decode("abc%A"), "abc%A");
    }

    #[test]
    fn form_round_trip() {
        let pairs = vec![
            ("user".to_string(), "ann marie".to_string()),
            ("q".to_string(), "a&b=c".to_string()),
            ("empty".to_string(), String::new()),
        ];
        let enc = encode_form(&pairs);
        assert_eq!(parse_form(&enc), pairs);
    }

    #[test]
    fn form_parsing_tolerates_bare_keys() {
        let pairs = parse_form("flag&x=1&&y");
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0], ("flag".to_string(), String::new()));
    }
}
