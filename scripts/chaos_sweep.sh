#!/usr/bin/env bash
# Run the seeded chaos sweep against the full stack and fail loudly if
# any campaign violates an invariant or the aggregate
# success-or-clean-compensation ratio drops below the floor.
#
# Usage:
#   scripts/chaos_sweep.sh                 # 32 mem-network seeds at 20% faults
#   scripts/chaos_sweep.sh --tcp           # 16 seeds over real sockets + fault proxy
#   scripts/chaos_sweep.sh --seeds 4 --fault-pct 0.4 --runs 48
#
# All flags after the script name are passed through to the chaos binary
# (see `cargo run -p soc-chaos --bin chaos -- --help`). The defaults
# here mirror the CI job: mem sweeps get 32 seeds, TCP sweeps 16.
# `SOC_HTTP_TRANSPORT=threaded` replays a TCP sweep on the blocking
# transport instead of the Linux-default reactor.
set -euo pipefail

cd "$(dirname "$0")/.."

args=("$@")
if [[ " ${args[*]-} " != *" --seeds "* ]]; then
    if [[ " ${args[*]-} " == *" --tcp "* || " ${args[*]-} " == *"--tcp"* ]]; then
        args=(--seeds 16 "${args[@]}")
    else
        args=(--seeds 32 "${args[@]}")
    fi
fi

exec cargo run -p soc-chaos --bin chaos --release --quiet -- "${args[@]}"
