/root/repo/target/debug/examples/quickstart-ce4f88f7f58e34bd.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ce4f88f7f58e34bd: examples/quickstart.rs

examples/quickstart.rs:
