//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `deque` module subset this workspace uses —
//! [`deque::Injector`], [`deque::Worker`], [`deque::Stealer`], and
//! [`deque::Steal`] — implemented over `Mutex<VecDeque>` instead of
//! lock-free buffers. Same API and ownership model (a `Worker` is the
//! queue's single owner, `Stealer`s are cloneable remote handles);
//! throughput is lower than real crossbeam but correctness and
//! work-stealing behaviour are equivalent.

pub mod deque {
    //! Work-stealing double-ended queues.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// A race occurred; the caller should retry.
        Retry,
    }

    fn lock<T>(m: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        match m.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// A global FIFO queue any thread can push to and steal from.
    pub struct Injector<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Injector<T> {
        /// New empty injector.
        pub fn new() -> Self {
            Injector { queue: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// Push a task onto the global queue.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Steal one task.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steal a batch into `dest`'s local queue and pop one task.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = lock(&self.queue);
            let first = match q.pop_front() {
                Some(t) => t,
                None => return Steal::Empty,
            };
            // Move up to half the remainder (capped) to the local queue.
            let batch = (q.len() / 2).min(16);
            if batch > 0 {
                let mut local = lock(&dest.queue);
                for _ in 0..batch {
                    match q.pop_front() {
                        Some(t) => local.push_back(t),
                        None => break,
                    }
                }
            }
            Steal::Success(first)
        }

        /// Is the queue currently empty?
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    /// A per-thread queue; only its owner pushes and pops.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// New FIFO worker queue.
        pub fn new_fifo() -> Self {
            Worker { queue: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// New LIFO worker queue. The lock-based shim pops from the
        /// front either way; order differs from real crossbeam but no
        /// caller in this workspace relies on LIFO order.
        pub fn new_lifo() -> Self {
            Self::new_fifo()
        }

        /// Push onto the local queue.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Pop the next local task.
        pub fn pop(&self) -> Option<T> {
            lock(&self.queue).pop_front()
        }

        /// A handle other threads can steal through.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { queue: Arc::clone(&self.queue) }
        }

        /// Is the queue currently empty?
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }
    }

    /// A remote handle for stealing from a [`Worker`].
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steal one task from the worker's queue.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { queue: Arc::clone(&self.queue) }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn injector_round_trips() {
            let inj = Injector::new();
            inj.push(1);
            inj.push(2);
            assert_eq!(inj.steal(), Steal::Success(1));
            assert_eq!(inj.steal(), Steal::Success(2));
            assert_eq!(inj.steal(), Steal::Empty::<i32>);
        }

        #[test]
        fn batch_moves_work_to_local_queue() {
            let inj = Injector::new();
            for i in 0..10 {
                inj.push(i);
            }
            let local = Worker::new_fifo();
            assert_eq!(inj.steal_batch_and_pop(&local), Steal::Success(0));
            // Half of the remaining nine went local.
            let mut drained = Vec::new();
            while let Some(v) = local.pop() {
                drained.push(v);
            }
            assert_eq!(drained, vec![1, 2, 3, 4]);
            assert_eq!(inj.steal(), Steal::Success(5));
        }

        #[test]
        fn stealer_sees_worker_pushes() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            assert_eq!(s.steal(), Steal::Empty::<u8>);
            w.push(7u8);
            assert_eq!(s.steal(), Steal::Success(7));
            assert_eq!(w.pop(), None);
        }

        #[test]
        fn concurrent_stealing_conserves_tasks() {
            let inj = std::sync::Arc::new(Injector::new());
            for i in 0..1000u32 {
                inj.push(i);
            }
            let total = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
            let mut handles = Vec::new();
            for _ in 0..4 {
                let inj = inj.clone();
                let total = total.clone();
                handles.push(std::thread::spawn(move || {
                    let local = Worker::new_fifo();
                    loop {
                        let task = match inj.steal_batch_and_pop(&local) {
                            Steal::Success(t) => Some(t),
                            Steal::Empty => local.pop(),
                            Steal::Retry => continue,
                        };
                        match task.or_else(|| local.pop()) {
                            Some(_) => {
                                total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            None => break,
                        }
                    }
                    // Drain anything left local.
                    while local.pop().is_some() {
                        total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 1000);
        }
    }
}
