//! The shopping-cart service: carts, line items, quantity math, and a
//! small promotion engine — the commerce staple of the repository.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Money in integer cents (floats and money don't mix — a unit-5 aside
/// the course makes too).
pub type Cents = i64;

/// One line of a cart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineItem {
    /// Stock-keeping id.
    pub sku: String,
    /// Display name.
    pub name: String,
    /// Unit price in cents.
    pub unit_price: Cents,
    /// Quantity (≥ 1 while in the cart).
    pub quantity: u32,
}

impl LineItem {
    /// Line total.
    pub fn total(&self) -> Cents {
        self.unit_price * self.quantity as i64
    }
}

/// Discounts applied at checkout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Promotion {
    /// Percent off the subtotal (1..=100).
    PercentOff(u32),
    /// Fixed amount off, floored at zero.
    AmountOff(Cents),
    /// Buy `buy` of a SKU, pay for `pay` of them.
    BuyNPayM {
        /// SKU the promotion applies to.
        sku: String,
        /// Units that must be in the cart.
        buy: u32,
        /// Units actually charged per `buy` group.
        pay: u32,
    },
}

/// A priced cart summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Receipt {
    /// Line items at checkout time.
    pub items: Vec<LineItem>,
    /// Sum of line totals.
    pub subtotal: Cents,
    /// Total discount (≥ 0).
    pub discount: Cents,
    /// Amount due.
    pub total: Cents,
}

/// The cart service: many carts by id.
pub struct CartService {
    carts: Mutex<HashMap<u64, Vec<LineItem>>>,
    next_id: AtomicU64,
}

impl Default for CartService {
    fn default() -> Self {
        Self::new()
    }
}

impl CartService {
    /// Empty service.
    pub fn new() -> Self {
        CartService { carts: Mutex::new(HashMap::new()), next_id: AtomicU64::new(1) }
    }

    /// Create an empty cart, returning its id.
    pub fn create(&self) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.carts.lock().insert(id, Vec::new());
        id
    }

    /// Add quantity of an item (merges with an existing line of the same
    /// SKU; the price of the existing line wins on conflict).
    pub fn add(&self, cart: u64, item: LineItem) -> Result<(), String> {
        if item.quantity == 0 {
            return Err("quantity must be at least 1".into());
        }
        if item.unit_price < 0 {
            return Err("price cannot be negative".into());
        }
        let mut carts = self.carts.lock();
        let lines = carts.get_mut(&cart).ok_or("no such cart")?;
        if let Some(line) = lines.iter_mut().find(|l| l.sku == item.sku) {
            line.quantity += item.quantity;
        } else {
            lines.push(item);
        }
        Ok(())
    }

    /// Remove up to `quantity` units of a SKU; the line disappears at 0.
    pub fn remove(&self, cart: u64, sku: &str, quantity: u32) -> Result<(), String> {
        let mut carts = self.carts.lock();
        let lines = carts.get_mut(&cart).ok_or("no such cart")?;
        let Some(pos) = lines.iter().position(|l| l.sku == sku) else {
            return Err(format!("sku {sku:?} not in cart"));
        };
        if lines[pos].quantity <= quantity {
            lines.remove(pos);
        } else {
            lines[pos].quantity -= quantity;
        }
        Ok(())
    }

    /// Current lines.
    pub fn items(&self, cart: u64) -> Result<Vec<LineItem>, String> {
        self.carts.lock().get(&cart).cloned().ok_or_else(|| "no such cart".into())
    }

    /// Price the cart with promotions; does not consume it.
    pub fn checkout(&self, cart: u64, promotions: &[Promotion]) -> Result<Receipt, String> {
        let items = self.items(cart)?;
        let subtotal: Cents = items.iter().map(LineItem::total).sum();
        let mut discount: Cents = 0;
        for promo in promotions {
            discount += match promo {
                Promotion::PercentOff(pct) => {
                    if *pct == 0 || *pct > 100 {
                        return Err("percent must be 1..=100".into());
                    }
                    subtotal * *pct as i64 / 100
                }
                Promotion::AmountOff(cents) => (*cents).max(0),
                Promotion::BuyNPayM { sku, buy, pay } => {
                    if pay > buy || *buy == 0 {
                        return Err("buy/pay promotion malformed".into());
                    }
                    match items.iter().find(|l| l.sku == *sku) {
                        Some(line) => {
                            let groups = line.quantity / buy;
                            (groups * (buy - pay)) as i64 * line.unit_price
                        }
                        None => 0,
                    }
                }
            };
        }
        let discount = discount.min(subtotal);
        Ok(Receipt { items, subtotal, discount, total: subtotal - discount })
    }

    /// Drop a cart; `true` if it existed.
    pub fn destroy(&self, cart: u64) -> bool {
        self.carts.lock().remove(&cart).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book() -> LineItem {
        LineItem { sku: "bk-1".into(), name: "SOC text".into(), unit_price: 4999, quantity: 1 }
    }

    fn pen() -> LineItem {
        LineItem { sku: "pn-1".into(), name: "pen".into(), unit_price: 150, quantity: 3 }
    }

    #[test]
    fn add_merge_and_totals() {
        let svc = CartService::new();
        let id = svc.create();
        svc.add(id, book()).unwrap();
        svc.add(id, book()).unwrap();
        svc.add(id, pen()).unwrap();
        let items = svc.items(id).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].quantity, 2);
        let receipt = svc.checkout(id, &[]).unwrap();
        assert_eq!(receipt.subtotal, 2 * 4999 + 3 * 150);
        assert_eq!(receipt.total, receipt.subtotal);
        assert_eq!(receipt.discount, 0);
    }

    #[test]
    fn remove_decrements_and_deletes() {
        let svc = CartService::new();
        let id = svc.create();
        svc.add(id, pen()).unwrap();
        svc.remove(id, "pn-1", 2).unwrap();
        assert_eq!(svc.items(id).unwrap()[0].quantity, 1);
        svc.remove(id, "pn-1", 5).unwrap();
        assert!(svc.items(id).unwrap().is_empty());
        assert!(svc.remove(id, "pn-1", 1).is_err());
    }

    #[test]
    fn percent_discount() {
        let svc = CartService::new();
        let id = svc.create();
        svc.add(id, book()).unwrap();
        let r = svc.checkout(id, &[Promotion::PercentOff(10)]).unwrap();
        assert_eq!(r.discount, 499);
        assert_eq!(r.total, 4999 - 499);
        assert!(svc.checkout(id, &[Promotion::PercentOff(0)]).is_err());
        assert!(svc.checkout(id, &[Promotion::PercentOff(101)]).is_err());
    }

    #[test]
    fn buy_n_pay_m() {
        let svc = CartService::new();
        let id = svc.create();
        let mut pens = pen();
        pens.quantity = 7; // 7 pens, buy 3 pay 2 → 2 groups → 2 free
        svc.add(id, pens).unwrap();
        let promo = Promotion::BuyNPayM { sku: "pn-1".into(), buy: 3, pay: 2 };
        let r = svc.checkout(id, &[promo]).unwrap();
        assert_eq!(r.discount, 2 * 150);
        // Promotion on an absent SKU is a no-op.
        let promo = Promotion::BuyNPayM { sku: "ghost".into(), buy: 3, pay: 2 };
        assert_eq!(svc.checkout(id, &[promo]).unwrap().discount, 0);
    }

    #[test]
    fn discount_never_exceeds_subtotal() {
        let svc = CartService::new();
        let id = svc.create();
        svc.add(id, pen()).unwrap();
        let r = svc.checkout(id, &[Promotion::AmountOff(1_000_000)]).unwrap();
        assert_eq!(r.total, 0);
        assert_eq!(r.discount, r.subtotal);
    }

    #[test]
    fn stacked_promotions_accumulate() {
        let svc = CartService::new();
        let id = svc.create();
        svc.add(id, book()).unwrap();
        let r = svc.checkout(id, &[Promotion::PercentOff(10), Promotion::AmountOff(500)]).unwrap();
        assert_eq!(r.discount, 499 + 500);
    }

    #[test]
    fn validation_errors() {
        let svc = CartService::new();
        let id = svc.create();
        assert!(svc.add(id, LineItem { quantity: 0, ..book() }).is_err());
        assert!(svc.add(id, LineItem { unit_price: -5, ..book() }).is_err());
        assert!(svc.add(999, book()).is_err());
        assert!(svc.items(999).is_err());
    }

    #[test]
    fn destroy_cart() {
        let svc = CartService::new();
        let id = svc.create();
        assert!(svc.destroy(id));
        assert!(!svc.destroy(id));
        assert!(svc.items(id).is_err());
    }
}
