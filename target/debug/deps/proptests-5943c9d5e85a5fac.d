/root/repo/target/debug/deps/proptests-5943c9d5e85a5fac.d: crates/soc-xml/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-5943c9d5e85a5fac.rmeta: crates/soc-xml/tests/proptests.rs Cargo.toml

crates/soc-xml/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
