//! Robot-as-a-Service maze navigation (paper Section II, Figures 1–2):
//! create a maze session over REST, watch the two-distance greedy FSM
//! race the wall follower and the random walk, and print the maze.
//!
//! ```sh
//! cargo run --example maze_navigation
//! ```

use std::sync::Arc;

use soc::http::MemNetwork;
use soc::json::{json, Value};
use soc::rest::RestClient;
use soc::robotics::algorithms::{self, Hand, RandomWalk, TwoDistanceGreedy, WallFollower};
use soc::robotics::maze::Maze;
use soc::robotics::raas::RaasService;

fn main() {
    // ---- Local (library) usage: race the algorithms -------------------
    let maze = Maze::generate(15, 11, 2014);
    println!("{}", maze.to_ascii(None));
    let oracle = algorithms::oracle_steps(&maze).expect("solvable");
    println!("BFS oracle: {oracle} steps\n");

    let budget = 15 * 11 * 10;
    let mut racers: Vec<Box<dyn algorithms::Navigator>> = vec![
        Box::new(TwoDistanceGreedy::new()),
        Box::new(WallFollower::new(Hand::Right)),
        Box::new(WallFollower::new(Hand::Left)),
        Box::new(RandomWalk::new(7)),
    ];
    println!("{:<22} {:>8} {:>7} {:>7} {:>6}", "algorithm", "reached", "steps", "turns", "ticks");
    for nav in racers.iter_mut() {
        let out = algorithms::run(&maze, nav.as_mut(), budget * 4);
        println!(
            "{:<22} {:>8} {:>7} {:>7} {:>6}",
            nav.name(),
            out.reached,
            out.steps,
            out.turns,
            out.ticks
        );
    }

    // ---- Remote (service) usage: Figure 1's web environment ----------
    let net = MemNetwork::new();
    net.host("robot", RaasService::new());
    let rest = RestClient::new(Arc::new(net));

    let session = rest
        .post("mem://robot/sessions", &json!({ "width": 15, "height": 11, "seed": 2014 }))
        .expect("create session");
    let id = session.get("id").and_then(Value::as_i64).unwrap();
    println!("\ncreated RaaS session {id}");

    let sensors = rest.get(&format!("mem://robot/sessions/{id}/sensors")).unwrap();
    println!("sensors: {sensors}");

    let run = rest
        .post(
            &format!("mem://robot/sessions/{id}/run"),
            &json!({ "algorithm": "two-distance-greedy", "max_ticks": 5000 }),
        )
        .expect("run");
    println!("service-side greedy run: {run}");

    let art = rest
        .send_raw(soc::http::Request::get(format!("mem://robot/sessions/{id}/render")))
        .unwrap();
    println!("\nfinal position (R marks the robot):\n{}", art.text_body().unwrap());
}
