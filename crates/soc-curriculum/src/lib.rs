//! # soc-curriculum — the paper's evaluation data and analytics
//!
//! The paper's quantitative content is curricular: enrollment counts
//! (Table 4, plotted as Figure 5), student evaluation scores (Table 5),
//! and the ACM CS curriculum coverage matrices (Tables 1–3). This crate
//! transcribes that data verbatim and implements the analytics and
//! rendering that regenerate each table/figure:
//!
//! - [`enrollment`] — Table 4 rows + growth statistics + the Figure 5
//!   series.
//! - [`evaluation`] — Table 5 rows + trend analysis.
//! - [`acm`] — Tables 1–3 topics, Bloom levels, and the mapping from
//!   each topic to the workspace module that implements it (checked by
//!   tests, so the "coverage" claim is executable).
//! - [`chart`] — ASCII chart rendering for terminal reproduction of
//!   Figure 5 (the image renderer lives in `soc-services::image`).

pub mod acm;
pub mod chart;
pub mod enrollment;
pub mod evaluation;
