//! Service contracts: the typed interface a WSDL document describes.

use std::fmt;

/// XML Schema simple types used in operation signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XsdType {
    /// `xsd:string`
    String,
    /// `xsd:int`
    Int,
    /// `xsd:double`
    Double,
    /// `xsd:boolean`
    Boolean,
}

impl XsdType {
    /// The `xsd:`-prefixed QName used in schemas.
    pub fn xsd_name(self) -> &'static str {
        match self {
            XsdType::String => "xsd:string",
            XsdType::Int => "xsd:int",
            XsdType::Double => "xsd:double",
            XsdType::Boolean => "xsd:boolean",
        }
    }

    /// Parse from the `xsd:*` QName.
    pub fn parse(name: &str) -> Option<Self> {
        Some(match name.trim_start_matches("xsd:").trim_start_matches("xs:") {
            "string" => XsdType::String,
            "int" | "integer" | "long" => XsdType::Int,
            "double" | "float" | "decimal" => XsdType::Double,
            "boolean" => XsdType::Boolean,
            _ => return None,
        })
    }

    /// Lexical validation of a value against the type.
    pub fn accepts(self, value: &str) -> bool {
        match self {
            XsdType::String => true,
            XsdType::Int => value.trim().parse::<i64>().is_ok(),
            XsdType::Double => value.trim().parse::<f64>().is_ok(),
            XsdType::Boolean => matches!(value.trim(), "true" | "false" | "1" | "0"),
        }
    }
}

impl fmt::Display for XsdType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.xsd_name())
    }
}

/// One named, typed parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name (element name on the wire).
    pub name: String,
    /// Parameter type.
    pub ty: XsdType,
}

/// One operation: a request message and a response message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// Operation name (the body's child element name).
    pub name: String,
    /// Input parameters in order.
    pub inputs: Vec<Param>,
    /// Output parameters in order.
    pub outputs: Vec<Param>,
    /// Optional human description (carried into WSDL documentation).
    pub doc: Option<String>,
}

impl Operation {
    /// New operation with no parameters yet.
    pub fn new(name: &str) -> Self {
        Operation { name: name.to_string(), inputs: Vec::new(), outputs: Vec::new(), doc: None }
    }

    /// Builder: add an input parameter.
    pub fn input(mut self, name: &str, ty: XsdType) -> Self {
        self.inputs.push(Param { name: name.to_string(), ty });
        self
    }

    /// Builder: add an output parameter.
    pub fn output(mut self, name: &str, ty: XsdType) -> Self {
        self.outputs.push(Param { name: name.to_string(), ty });
        self
    }

    /// Builder: attach documentation.
    pub fn doc(mut self, text: &str) -> Self {
        self.doc = Some(text.to_string());
        self
    }
}

/// A service contract: a named set of operations under a target
/// namespace. Everything a WSDL document encodes (minus transport
/// bindings, which the service adds when hosting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Contract {
    /// Service name (WSDL `service`/`portType` base name).
    pub name: String,
    /// Target namespace URI.
    pub namespace: String,
    /// Operations in declaration order.
    pub operations: Vec<Operation>,
}

impl Contract {
    /// New empty contract.
    pub fn new(name: &str, namespace: &str) -> Self {
        Contract {
            name: name.to_string(),
            namespace: namespace.to_string(),
            operations: Vec::new(),
        }
    }

    /// Builder: add an operation.
    pub fn operation(mut self, op: Operation) -> Self {
        self.operations.push(op);
        self
    }

    /// Look up an operation.
    pub fn find(&self, name: &str) -> Option<&Operation> {
        self.operations.iter().find(|o| o.name == name)
    }

    /// Validate `(name, value)` arguments against an operation's input
    /// signature. Returns a human-readable error on mismatch.
    pub fn validate_inputs(&self, op: &str, args: &[(String, String)]) -> Result<(), String> {
        let Some(op) = self.find(op) else {
            return Err(format!("unknown operation {op:?}"));
        };
        for p in &op.inputs {
            let Some((_, v)) = args.iter().find(|(n, _)| *n == p.name) else {
                return Err(format!("missing parameter {:?}", p.name));
            };
            if !p.ty.accepts(v) {
                return Err(format!("parameter {:?}={v:?} is not a valid {}", p.name, p.ty));
            }
        }
        for (n, _) in args {
            if !op.inputs.iter().any(|p| p.name == *n) {
                return Err(format!("unexpected parameter {n:?}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contract() -> Contract {
        Contract::new("Calc", "urn:calc").operation(
            Operation::new("Add")
                .input("a", XsdType::Int)
                .input("b", XsdType::Int)
                .output("sum", XsdType::Int)
                .doc("adds two integers"),
        )
    }

    #[test]
    fn xsd_type_lexing() {
        assert!(XsdType::Int.accepts("-3"));
        assert!(!XsdType::Int.accepts("3.5"));
        assert!(XsdType::Double.accepts("3.5e2"));
        assert!(XsdType::Boolean.accepts("true"));
        assert!(!XsdType::Boolean.accepts("yes"));
        assert!(XsdType::String.accepts("anything"));
        assert_eq!(XsdType::parse("xsd:int"), Some(XsdType::Int));
        assert_eq!(XsdType::parse("xs:double"), Some(XsdType::Double));
        assert_eq!(XsdType::parse("xsd:duration"), None);
    }

    #[test]
    fn validate_inputs_happy() {
        let c = contract();
        assert!(c
            .validate_inputs("Add", &[("a".into(), "1".into()), ("b".into(), "2".into())])
            .is_ok());
    }

    #[test]
    fn validate_inputs_failures() {
        let c = contract();
        assert!(c.validate_inputs("Sub", &[]).unwrap_err().contains("unknown operation"));
        assert!(c
            .validate_inputs("Add", &[("a".into(), "1".into())])
            .unwrap_err()
            .contains("missing parameter"));
        assert!(c
            .validate_inputs("Add", &[("a".into(), "x".into()), ("b".into(), "2".into())])
            .unwrap_err()
            .contains("not a valid"));
        assert!(c
            .validate_inputs(
                "Add",
                &[("a".into(), "1".into()), ("b".into(), "2".into()), ("c".into(), "3".into())]
            )
            .unwrap_err()
            .contains("unexpected"));
    }

    #[test]
    fn find_operations() {
        let c = contract();
        assert!(c.find("Add").is_some());
        assert!(c.find("add").is_none());
    }
}
