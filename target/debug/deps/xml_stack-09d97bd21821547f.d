/root/repo/target/debug/deps/xml_stack-09d97bd21821547f.d: tests/xml_stack.rs

/root/repo/target/debug/deps/xml_stack-09d97bd21821547f: tests/xml_stack.rs

tests/xml_stack.rs:
