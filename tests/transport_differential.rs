//! Differential testing of the two server transports.
//!
//! The reactor (epoll event loop) and threaded (blocking, one pool task
//! per connection) transports share the codec, the `Handler` trait, and
//! the connection-semantics rules — so for every wire-level scenario
//! they must produce byte-equivalent *observable* behavior: same status,
//! same body, same connection teardown decision. Each scenario below is
//! executed against a server on each transport and the transcripts are
//! compared, which catches semantics that drift into only one engine
//! (e.g. a keep-alive rule implemented in the reactor's state machine
//! but forgotten in the blocking loop).

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use soc_http::codec;
use soc_http::{HttpClient, HttpServer, Request, Response, ServerConfig, ServerTransport, Status};

/// The scenario handler: a tiny service with enough variety to exercise
/// methods, bodies, and error paths.
fn handler(req: Request) -> Response {
    match (req.method, req.path()) {
        (soc_http::Method::Get, "/ping") => Response::text("pong"),
        (soc_http::Method::Post, "/echo") => {
            Response::new(Status::OK).with_body_bytes(req.body.clone())
        }
        (soc_http::Method::Get, "/n") => {
            // Distinct payload per query so pipelining tests can check
            // response ordering.
            Response::text(req.query("q").unwrap_or_default())
        }
        _ => Response::error(Status::NOT_FOUND, "no such route"),
    }
}

fn bind(transport: ServerTransport) -> HttpServer {
    HttpServer::bind_with(
        "127.0.0.1:0",
        ServerConfig { workers: 2, transport, ..ServerConfig::default() },
        handler,
    )
    .expect("bind")
}

/// Read one response off a raw socket and render the parts a client can
/// observe. `Connection` is normalized through the token test so header
/// formatting differences don't count as divergence.
fn observe_response(reader: &mut BufReader<TcpStream>) -> String {
    match codec::read_response(reader, 1 << 20) {
        Ok(resp) => format!(
            "status={} close_token={} body={:?}",
            resp.status.0,
            resp.headers.has_token("Connection", "close"),
            String::from_utf8_lossy(&resp.body),
        ),
        Err(e) => format!("error={e}"),
    }
}

/// Does the server close the connection now? (Reads must see EOF within
/// the timeout.)
fn observe_eof(reader: &mut BufReader<TcpStream>) -> String {
    reader.get_ref().set_read_timeout(Some(Duration::from_secs(2))).ok();
    let mut byte = [0u8; 1];
    match reader.read(&mut byte) {
        Ok(0) => "eof".into(),
        Ok(_) => "open(data)".into(),
        Err(_) => "open(timeout)".into(),
    }
}

fn connect(server: &HttpServer) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    stream.set_nodelay(true).ok();
    BufReader::new(stream)
}

/// One scenario: a name plus a transcript of what a client observed.
type Scenario = (&'static str, String);

fn run_battery(transport: ServerTransport) -> Vec<Scenario> {
    let server = bind(transport);
    let mut out: Vec<Scenario> = Vec::new();

    // --- 1. Plain GET and POST echo through the high-level client. ---
    {
        let client = HttpClient::new();
        let get = client.get(&format!("{}/ping", server.url())).expect("get");
        let post = client
            .post(&format!("{}/echo", server.url()), "text/plain", "differential body")
            .expect("post");
        out.push((
            "client_get_post",
            format!(
                "get={}:{:?} post={}:{:?}",
                get.status.0,
                String::from_utf8_lossy(&get.body),
                post.status.0,
                String::from_utf8_lossy(&post.body),
            ),
        ));
    }

    // --- 2. Chunked upload: body arrives via Transfer-Encoding. ---
    {
        let mut conn = connect(&server);
        let mut wire =
            b"POST /echo HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        wire.extend_from_slice(&codec::encode_chunked(b"chunked payload crosses chunks", 7));
        conn.get_mut().write_all(&wire).unwrap();
        out.push(("chunked_upload", observe_response(&mut conn)));
    }

    // --- 3. Keep-alive: two requests on one connection. ---
    {
        let mut conn = connect(&server);
        conn.get_mut().write_all(b"GET /ping HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        let first = observe_response(&mut conn);
        conn.get_mut().write_all(b"GET /ping HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        let second = observe_response(&mut conn);
        out.push(("keep_alive", format!("first[{first}] second[{second}]")));
    }

    // --- 4. Pipelining: both requests written before any response is
    // read; responses must come back complete and in order. ---
    {
        let mut conn = connect(&server);
        conn.get_mut()
            .write_all(
                b"GET /n?q=a HTTP/1.1\r\nHost: h\r\n\r\nGET /n?q=b HTTP/1.1\r\nHost: h\r\n\r\n",
            )
            .unwrap();
        let first = observe_response(&mut conn);
        let second = observe_response(&mut conn);
        out.push(("pipelined", format!("first[{first}] second[{second}]")));
    }

    // --- 5. Garbage on the wire: a 400, then the connection dies. ---
    {
        let mut conn = connect(&server);
        conn.get_mut().write_all(b"NONSENSE\r\n\r\n").unwrap();
        let resp = observe_response(&mut conn);
        let after = observe_eof(&mut conn);
        out.push(("garbage_request", format!("resp[{resp}] then={after}")));
    }

    // --- 6. Oversized declared body: rejected before buffering. ---
    {
        let mut conn = connect(&server);
        conn.get_mut()
            .write_all(b"POST /echo HTTP/1.1\r\nHost: h\r\nContent-Length: 99999999999\r\n\r\n")
            .unwrap();
        let resp = observe_response(&mut conn);
        let after = observe_eof(&mut conn);
        out.push(("oversized_body", format!("resp[{resp}] then={after}")));
    }

    // --- 7. `Connection` token list: `TE, close` must close. ---
    {
        let mut conn = connect(&server);
        conn.get_mut()
            .write_all(b"GET /ping HTTP/1.1\r\nHost: h\r\nConnection: TE, close\r\n\r\n")
            .unwrap();
        let resp = observe_response(&mut conn);
        let after = observe_eof(&mut conn);
        out.push(("token_list_close", format!("resp[{resp}] then={after}")));
    }

    // --- 8. HTTP/1.0 defaults to close... ---
    {
        let mut conn = connect(&server);
        conn.get_mut().write_all(b"GET /ping HTTP/1.0\r\nHost: h\r\n\r\n").unwrap();
        let resp = observe_response(&mut conn);
        let after = observe_eof(&mut conn);
        out.push(("http10_default_close", format!("resp[{resp}] then={after}")));
    }

    // --- 9. ...unless the client opted into keep-alive. ---
    {
        let mut conn = connect(&server);
        conn.get_mut()
            .write_all(b"GET /ping HTTP/1.0\r\nHost: h\r\nConnection: keep-alive\r\n\r\n")
            .unwrap();
        let first = observe_response(&mut conn);
        conn.get_mut()
            .write_all(b"GET /ping HTTP/1.0\r\nHost: h\r\nConnection: keep-alive\r\n\r\n")
            .unwrap();
        let second = observe_response(&mut conn);
        out.push(("http10_keep_alive", format!("first[{first}] second[{second}]")));
    }

    // --- 10. Half-close mid-request: a truncated message is dropped
    // silently (no response bytes for a request that never finished). ---
    {
        let mut conn = connect(&server);
        conn.get_mut()
            .write_all(b"POST /echo HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\n\r\nabc")
            .unwrap();
        conn.get_mut().shutdown(std::net::Shutdown::Write).ok();
        let resp = observe_response(&mut conn);
        out.push(("truncated_request", resp));
    }

    out
}

/// The battery, reactor vs threaded, scenario by scenario.
#[test]
fn reactor_and_threaded_transports_agree_on_the_wire() {
    if !cfg!(target_os = "linux") {
        // No reactor off Linux — nothing to differentiate.
        return;
    }
    let reactor = run_battery(ServerTransport::Reactor);
    let threaded = run_battery(ServerTransport::Threaded);
    assert_eq!(reactor.len(), threaded.len());
    let mut diffs = Vec::new();
    for ((name, r), (_, t)) in reactor.iter().zip(threaded.iter()) {
        if r != t {
            diffs.push(format!("scenario {name}:\n  reactor:  {r}\n  threaded: {t}"));
        }
    }
    assert!(diffs.is_empty(), "transports diverged:\n{}", diffs.join("\n"));
}

/// The scenarios themselves assert sane absolute behavior on the default
/// transport (agreement alone would let both be wrong together).
#[test]
fn battery_baseline_expectations_hold() {
    let results = run_battery(ServerTransport::default_for_platform());
    let get = |name: &str| {
        results.iter().find(|(n, _)| *n == name).map(|(_, v)| v.clone()).unwrap_or_default()
    };
    assert!(get("client_get_post").contains("get=200:\"pong\""), "{}", get("client_get_post"));
    assert!(
        get("chunked_upload").contains("body=\"chunked payload crosses chunks\""),
        "{}",
        get("chunked_upload")
    );
    assert!(get("pipelined").contains("first[status=200 close_token=false body=\"a\"]"));
    assert!(get("pipelined").contains("second[status=200 close_token=false body=\"b\"]"));
    assert!(get("garbage_request").contains("status=400"), "{}", get("garbage_request"));
    assert!(get("garbage_request").contains("then=eof"), "{}", get("garbage_request"));
    assert!(get("oversized_body").contains("status=400"), "{}", get("oversized_body"));
    assert!(get("token_list_close").contains("close_token=true"), "{}", get("token_list_close"));
    assert!(get("token_list_close").contains("then=eof"), "{}", get("token_list_close"));
    assert!(get("http10_default_close").contains("then=eof"), "{}", get("http10_default_close"));
    assert!(get("http10_keep_alive").contains("second[status=200"), "{}", get("http10_keep_alive"));
    assert!(get("truncated_request").starts_with("error="), "{}", get("truncated_request"));
}
