//! JSON Pointer (RFC 6901) lookup.

use crate::value::Value;

/// Resolve `ptr` against `root`. The empty pointer selects the root;
/// each `/token` descends into an object member or array index.
/// `~0` decodes to `~` and `~1` to `/`.
pub fn lookup<'a>(root: &'a Value, ptr: &str) -> Option<&'a Value> {
    if ptr.is_empty() {
        return Some(root);
    }
    if !ptr.starts_with('/') {
        return None;
    }
    let mut cur = root;
    for token in ptr[1..].split('/') {
        let token = decode_token(token);
        cur = match cur {
            Value::Object(_) => cur.get(&token)?,
            Value::Array(items) => {
                // Array indices must be canonical: no leading zeros, no signs.
                if token == "0" {
                    items.first()?
                } else if token.starts_with('0') || token.starts_with('+') {
                    return None;
                } else {
                    items.get(token.parse::<usize>().ok()?)?
                }
            }
            _ => return None,
        };
    }
    Some(cur)
}

/// Decode `~1` → `/` and `~0` → `~` (in that order, per the RFC).
fn decode_token(token: &str) -> String {
    token.replace("~1", "/").replace("~0", "~")
}

/// Encode a raw member name as a pointer token.
pub fn encode_token(raw: &str) -> String {
    raw.replace('~', "~0").replace('/', "~1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn rfc_examples() {
        // The example document from RFC 6901 §5.
        let doc = json!({
            "foo": ["bar", "baz"],
            "": 0,
            "a/b": 1,
            "c%d": 2,
            "e^f": 3,
            "g|h": 4,
            "i\\j": 5,
            "k\"l": 6,
            " ": 7,
            "m~n": 8
        });
        assert_eq!(lookup(&doc, ""), Some(&doc));
        assert_eq!(lookup(&doc, "/foo/0").and_then(Value::as_str), Some("bar"));
        assert_eq!(lookup(&doc, "/").and_then(Value::as_i64), Some(0));
        assert_eq!(lookup(&doc, "/a~1b").and_then(Value::as_i64), Some(1));
        assert_eq!(lookup(&doc, "/m~0n").and_then(Value::as_i64), Some(8));
        assert_eq!(lookup(&doc, "/ ").and_then(Value::as_i64), Some(7));
    }

    #[test]
    fn missing_paths() {
        let doc = json!({ "a": [1] });
        assert_eq!(lookup(&doc, "/b"), None);
        assert_eq!(lookup(&doc, "/a/1"), None);
        assert_eq!(lookup(&doc, "/a/x"), None);
        assert_eq!(lookup(&doc, "/a/0/deep"), None);
        assert_eq!(lookup(&doc, "no-slash"), None);
    }

    #[test]
    fn non_canonical_indices_rejected() {
        let doc = json!([10, 20]);
        assert_eq!(lookup(&doc, "/01"), None);
        assert_eq!(lookup(&doc, "/+1"), None);
        assert_eq!(lookup(&doc, "/1").and_then(Value::as_i64), Some(20));
    }

    #[test]
    fn token_encoding_round_trip() {
        for raw in ["plain", "a/b", "m~n", "~1", "/~"] {
            assert_eq!(decode_token(&encode_token(raw)), raw);
        }
    }
}
