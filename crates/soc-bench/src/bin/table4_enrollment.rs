//! **Table 4 harness** — "CSE445/598 enrollments since Fall 2006",
//! printed in the paper's exact row format plus derived statistics.
//!
//! ```sh
//! cargo run -p soc-bench --bin table4_enrollment
//! ```

use soc_curriculum::enrollment::{growth_summary, TABLE4};

fn main() {
    println!("Table 4. CSE445/598 enrollments since Fall 2006");
    soc_bench::print_rule(58);
    println!(
        "{:<6} {:<10} {:>14} {:>14} {:>10}",
        "Year", "Semester", "445 enrollment", "598 enrollment", "Total"
    );
    soc_bench::print_rule(58);
    for r in &TABLE4 {
        println!(
            "{:<6} {:<10} {:>14} {:>14} {:>10}",
            r.year,
            r.semester.to_string(),
            r.cse445,
            r.cse598,
            r.total()
        );
    }
    soc_bench::print_rule(58);

    let sum445: u32 = TABLE4.iter().map(|r| r.cse445).sum();
    let sum598: u32 = TABLE4.iter().map(|r| r.cse598).sum();
    println!("{:<6} {:<10} {:>14} {:>14} {:>10}", "", "sum", sum445, sum598, sum445 + sum598);

    let g = growth_summary(&TABLE4).expect("data");
    println!(
        "\nderived: first total {} → last total {} (peak {} in {} {})",
        g.first_total, g.last_total, g.peak_total, g.peak_term.1, g.peak_term.0
    );
}
