//! Saga execution: per-activity resilience policies and compensation.
//!
//! The plain executor in [`crate::graph`] aborts on the first activity
//! error — acceptable for pure dataflow, wrong for compositions with
//! side effects (the paper's dependability unit). This module adds a
//! second executor, [`WorkflowGraph::run_saga`], that layers three
//! mechanisms on top of the same graph:
//!
//! - **[`ResiliencePolicy`]** — bounded retries with exponential
//!   backoff and seeded jitter under a whole-run deadline budget, plus
//!   an optional per-attempt timeout. A timed-out attempt is *not*
//!   retried (a second attempt could duplicate a side effect while the
//!   first is still running); the abandoned attempt is joined before
//!   the run returns, and if it turns out to have succeeded its node
//!   is compensated like any other completed step.
//! - **Fallbacks** — an alternate activity that runs once with the
//!   same inputs after the primary exhausts its policy.
//! - **Compensation** — any node may register a compensator
//!   ([`WorkflowGraph::set_compensation`]). On unrecoverable failure
//!   the engine finishes/joins the in-flight wave, then runs the
//!   compensators of every *completed* node in reverse topological
//!   order, exactly once each, and reports a structured
//!   [`WorkflowOutcome::Compensated`] instead of a bare error.
//!
//! Retries record `workflow.retry` spans and compensators record
//! `workflow.compensate` spans via `soc-observe`, so a chaos run's
//! recovery path is inspectable at `/observe/traces`.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use soc_json::Value;
use soc_parallel::ThreadPool;

use crate::activity::{Activity, ActivityError, Ports};
use crate::graph::{WorkflowError, WorkflowGraph};

/// Retry/timeout policy for one node, consulted only by
/// [`WorkflowGraph::run_saga`].
#[derive(Debug, Clone)]
pub struct ResiliencePolicy {
    /// Extra attempts after the first (0 = try once).
    pub max_retries: u32,
    /// First backoff; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Per-attempt wall-clock budget. Timeouts are terminal for the
    /// node (no retry) but a registered fallback still runs.
    pub timeout: Option<Duration>,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            max_retries: 0,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            timeout: None,
        }
    }
}

impl ResiliencePolicy {
    /// A policy with `n` retries and default backoff.
    pub fn retries(n: u32) -> Self {
        ResiliencePolicy { max_retries: n, ..ResiliencePolicy::default() }
    }

    /// Set the per-attempt timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Set the backoff range.
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> Self {
        self.base_backoff = base;
        self.max_backoff = max;
        self
    }
}

/// Whole-run settings for a saga execution.
#[derive(Debug, Clone)]
pub struct SagaConfig {
    /// Budget for the forward path (activities, retries, backoffs).
    /// Compensation runs after the deadline if need be — it must.
    pub deadline: Duration,
    /// Seeds backoff jitter; same seed + same graph = same schedule.
    pub seed: u64,
}

impl Default for SagaConfig {
    fn default() -> Self {
        SagaConfig { deadline: Duration::from_secs(30), seed: 0x5A6A }
    }
}

/// Structured result of a saga run.
#[derive(Debug)]
pub enum WorkflowOutcome {
    /// Every fired node succeeded; unconnected outputs keyed
    /// `"node.port"` as in [`WorkflowGraph::run`].
    Completed(HashMap<String, Value>),
    /// A node failed past its policy; completed nodes were rolled
    /// back.
    Compensated {
        /// Name of the node whose failure triggered the rollback.
        failed_at: String,
        /// The underlying failure.
        error: WorkflowError,
        /// Nodes whose compensators ran successfully, in execution
        /// order (reverse topological order of completion).
        compensated: Vec<String>,
        /// Compensators that themselves failed: `(node, error)`.
        compensation_errors: Vec<(String, String)>,
    },
}

impl WorkflowOutcome {
    /// Outputs when the run completed.
    pub fn outputs(&self) -> Option<&HashMap<String, Value>> {
        match self {
            WorkflowOutcome::Completed(out) => Some(out),
            WorkflowOutcome::Compensated { .. } => None,
        }
    }

    /// Whether the forward path finished without compensation.
    pub fn is_completed(&self) -> bool {
        matches!(self, WorkflowOutcome::Completed(_))
    }
}

/// xorshift64* seeded through a splitmix64 step (same generator the
/// gateway uses; duplicated to keep the crates decoupled).
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        XorShift64 { state: (z ^ (z >> 31)) | 1 }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Jitter factor in `[0.5, 1.5)`.
    fn jitter(&mut self) -> f64 {
        0.5 + (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Durable-execution hooks, used by [`crate::journal`]: nodes already
/// completed by a previous (crashed) run are seeded as fired with their
/// recorded outputs, and every newly completed node is reported before
/// its outputs are routed so the journal always trails reality by at
/// most one in-flight node.
pub(crate) struct SagaHook<'a> {
    /// `node name -> outputs` completed before this run started.
    pub(crate) completed: HashMap<String, Ports>,
    /// Called as each node completes (including joined stragglers).
    pub(crate) on_complete: &'a (dyn Fn(&str, &Ports) + Sync),
}

/// One attempt's result, distinguishing a timeout (terminal, attempt
/// still running) from the activity's own verdict.
enum Attempt {
    Done(Result<Ports, ActivityError>),
    TimedOut,
}

/// A timed-out attempt still running on its thread. Joined before the
/// saga returns so no work is leaked.
struct Straggler {
    node: usize,
    rx: mpsc::Receiver<Result<Ports, ActivityError>>,
    handle: std::thread::JoinHandle<()>,
}

impl WorkflowGraph {
    /// Run the workflow under saga semantics. Activity failures are
    /// absorbed into the outcome; `Err` is reserved for structural
    /// problems (cycles, bad seed keys, stalls).
    pub fn run_saga(
        &self,
        inputs: &HashMap<String, Value>,
        config: &SagaConfig,
    ) -> Result<WorkflowOutcome, WorkflowError> {
        self.run_saga_inner(inputs, None, config, None)
    }

    /// Like [`WorkflowGraph::run_saga`], firing independent ready
    /// nodes in parallel waves on `pool`.
    pub fn run_saga_parallel(
        &self,
        pool: &ThreadPool,
        inputs: &HashMap<String, Value>,
        config: &SagaConfig,
    ) -> Result<WorkflowOutcome, WorkflowError> {
        self.run_saga_inner(inputs, Some(pool), config, None)
    }

    pub(crate) fn run_saga_inner(
        &self,
        inputs: &HashMap<String, Value>,
        pool: Option<&ThreadPool>,
        config: &SagaConfig,
        hook: Option<&SagaHook<'_>>,
    ) -> Result<WorkflowOutcome, WorkflowError> {
        self.validate()?;
        // Same span name as the plain executor: a trace reads
        // `workflow.run` regardless of which engine ran the graph; the
        // `saga` attribute tells them apart.
        let mut run_span = soc_observe::span("workflow.run", soc_observe::SpanKind::Internal);
        run_span.set_attr("saga", "true");
        run_span.set_attr("nodes", self.nodes.len().to_string());
        let _active = run_span.activate();
        let run_ctx = run_span.context();
        let deadline = Instant::now() + config.deadline;

        let n = self.nodes.len();
        let mut pending = self.seed_pending(inputs)?;
        let mut fired = vec![false; n];
        let mut results: HashMap<String, Value> = HashMap::new();
        let connected_inputs = self.connected_inputs();
        // Outputs of every node that completed, kept for compensation.
        let mut completed: Vec<(usize, Ports)> = Vec::new();
        let stragglers: Mutex<Vec<Straggler>> = Mutex::new(Vec::new());

        // Resume: nodes a crashed run already completed (per the
        // journal) are seeded as fired and their recorded outputs
        // routed, so only the remaining suffix of the graph executes.
        if let Some(hook) = hook {
            for (name, ports) in &hook.completed {
                if let Some(i) = self.nodes.iter().position(|n| n.name == *name) {
                    fired[i] = true;
                    completed.push((i, ports.clone()));
                    self.route(i, ports.clone(), &mut pending, &mut results);
                }
            }
        }

        let failure: Option<(usize, ActivityError)> = loop {
            let ready: Vec<usize> = (0..n)
                .filter(|&i| !fired[i] && self.is_ready(i, &pending[i], &connected_inputs[i]))
                .collect();
            if ready.is_empty() {
                break None;
            }
            let exec = |i: usize| {
                self.fire_resilient(i, &pending[i], run_ctx, deadline, config, &stragglers)
            };
            let mut outputs: Vec<(usize, Result<Ports, ActivityError>)> = match pool {
                Some(pool) if ready.len() > 1 => {
                    let wave = parking_lot::Mutex::new(Vec::new());
                    pool.scope(|s| {
                        for &i in &ready {
                            let wave = &wave;
                            let exec = &exec;
                            s.spawn(move || {
                                let out = exec(i);
                                wave.lock().push((i, out));
                            });
                        }
                    });
                    wave.into_inner()
                }
                _ => ready.iter().map(|&i| (i, exec(i))).collect(),
            };
            // The wave is fully joined (`scope` blocks); record all of
            // it before acting on any failure so the completed-set the
            // saga compensates is exactly what ran.
            outputs.sort_by_key(|(i, _)| *i);
            let mut wave_error: Option<(usize, ActivityError)> = None;
            for (i, out) in outputs {
                fired[i] = true;
                match out {
                    Ok(ports) => {
                        if let Some(hook) = hook {
                            (hook.on_complete)(&self.nodes[i].name, &ports);
                        }
                        completed.push((i, ports.clone()));
                        self.route(i, ports, &mut pending, &mut results);
                    }
                    Err(error) => {
                        if wave_error.is_none() {
                            wave_error = Some((i, error));
                        }
                    }
                }
            }
            if wave_error.is_some() {
                break wave_error;
            }
        };

        // Join abandoned (timed-out) attempts: nothing may outlive the
        // run. One that eventually succeeded performed its side
        // effects, so it joins the completed set — unless its node
        // already completed via fallback (compensators must run at
        // most once per node).
        for s in stragglers.into_inner() {
            let res = s.rx.recv();
            let _ = s.handle.join();
            if let Ok(Ok(ports)) = res {
                if !completed.iter().any(|(i, _)| *i == s.node) {
                    if let Some(hook) = hook {
                        (hook.on_complete)(&self.nodes[s.node].name, &ports);
                    }
                    completed.push((s.node, ports));
                }
            }
        }

        match failure {
            None => {
                if results.is_empty() && fired.iter().any(|f| !f) {
                    let stalled: Vec<String> =
                        (0..n).filter(|&i| !fired[i]).map(|i| self.nodes[i].name.clone()).collect();
                    run_span.set_error(format!("stalled: {stalled:?}"));
                    return Err(WorkflowError::Stalled(stalled));
                }
                Ok(WorkflowOutcome::Completed(results))
            }
            Some((at, error)) => {
                let failed_at = self.nodes[at].name.clone();
                let error = WorkflowError::Activity { node: failed_at.clone(), error };
                run_span.set_error(error.to_string());
                let (compensated, compensation_errors) =
                    self.compensate(&completed, Some(at), run_ctx);
                Ok(WorkflowOutcome::Compensated {
                    failed_at,
                    error,
                    compensated,
                    compensation_errors,
                })
            }
        }
    }

    /// Propagate one node's outputs along edges; unconnected outputs
    /// become workflow results.
    fn route(
        &self,
        i: usize,
        out: Ports,
        pending: &mut [Ports],
        results: &mut HashMap<String, Value>,
    ) {
        for (port, value) in out {
            let mut routed = false;
            for e in &self.edges {
                if e.from == (i, port.clone()) {
                    pending[e.to.0].insert(e.to.1.clone(), value.clone());
                    routed = true;
                }
            }
            if !routed {
                results.insert(format!("{}.{}", self.nodes[i].name, port), value);
            }
        }
    }

    /// Execute node `i` under its policy: attempts with backoff+jitter
    /// inside the deadline budget, then the fallback if one is set.
    fn fire_resilient(
        &self,
        i: usize,
        ports: &Ports,
        run_ctx: soc_observe::TraceContext,
        deadline: Instant,
        config: &SagaConfig,
        stragglers: &Mutex<Vec<Straggler>>,
    ) -> Result<Ports, ActivityError> {
        let policy = self.policies.get(&i).cloned().unwrap_or_default();
        // Per-node RNG derived from the run seed: deterministic no
        // matter how pool threads interleave.
        let mut rng =
            XorShift64::new(config.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let name = self.nodes[i].name.as_str();
        let mut attempt = 0u32;
        let primary = loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break Err(ActivityError::Failed("saga deadline exhausted".into()));
            }
            let mut span = soc_observe::child_span(
                run_ctx,
                if attempt == 0 { "workflow.activity" } else { "workflow.retry" },
                soc_observe::SpanKind::Internal,
            );
            span.set_attr("node", name);
            if attempt > 0 {
                span.set_attr("attempt", attempt.to_string());
            }
            let res = match policy.timeout {
                Some(t) => self.fire_timed(i, ports, t.min(remaining), span.context(), stragglers),
                None => {
                    let _in_span = span.activate();
                    Attempt::Done(self.nodes[i].activity.execute(ports))
                }
            };
            match res {
                Attempt::Done(Ok(out)) => break Ok(out),
                Attempt::TimedOut => {
                    let e = ActivityError::Failed(format!(
                        "timed out after {:?}",
                        policy.timeout.unwrap_or_default()
                    ));
                    span.set_error(e.to_string());
                    // Terminal: retrying while the first attempt may
                    // still be running risks duplicated side effects.
                    break Err(e);
                }
                Attempt::Done(Err(e)) => {
                    span.set_error(e.to_string());
                    if attempt >= policy.max_retries {
                        break Err(e);
                    }
                    attempt += 1;
                    let exp = policy
                        .base_backoff
                        .saturating_mul(1u32 << (attempt - 1).min(16))
                        .min(policy.max_backoff);
                    let backoff = exp.mul_f64(rng.jitter()).min(remaining);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        };
        match primary {
            Ok(out) => Ok(out),
            Err(primary_err) => {
                let Some(fallback) = self.fallbacks.get(&i) else {
                    return Err(primary_err);
                };
                let mut span = soc_observe::child_span(
                    run_ctx,
                    "workflow.fallback",
                    soc_observe::SpanKind::Internal,
                );
                span.set_attr("node", name);
                let res = {
                    let _in_span = span.activate();
                    fallback.execute(ports)
                };
                match res {
                    Ok(out) => Ok(out),
                    Err(fe) => {
                        span.set_error(fe.to_string());
                        Err(ActivityError::Failed(format!(
                            "{primary_err}; fallback also failed: {fe}"
                        )))
                    }
                }
            }
        }
    }

    /// Run one attempt on its own thread with a wall-clock budget. On
    /// timeout the attempt keeps running and is parked as a straggler
    /// for the run to join later.
    fn fire_timed(
        &self,
        i: usize,
        ports: &Ports,
        timeout: Duration,
        span_ctx: soc_observe::TraceContext,
        stragglers: &Mutex<Vec<Straggler>>,
    ) -> Attempt {
        let act: Arc<dyn Activity> = self.nodes[i].activity.clone();
        let ports = ports.clone();
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::Builder::new()
            .name(format!("saga-{}", self.nodes[i].name))
            .spawn(move || {
                // Thread-locals don't cross threads: re-establish the
                // attempt span so nested service spans parent onto it.
                let _ctx = soc_observe::context::set_current(span_ctx);
                let _ = tx.send(act.execute(&ports));
            })
            .expect("spawn saga activity thread");
        match rx.recv_timeout(timeout) {
            Ok(res) => {
                let _ = handle.join();
                Attempt::Done(res)
            }
            Err(_) => {
                stragglers.lock().push(Straggler { node: i, rx, handle });
                Attempt::TimedOut
            }
        }
    }

    /// Run compensators of completed nodes in reverse topological
    /// order, exactly once each; failures are collected, not fatal.
    pub(crate) fn compensate(
        &self,
        completed: &[(usize, Ports)],
        failed: Option<usize>,
        run_ctx: soc_observe::TraceContext,
    ) -> (Vec<String>, Vec<(String, String)>) {
        let by_node: HashMap<usize, &Ports> = completed.iter().map(|(i, p)| (*i, p)).collect();
        let empty: Ports = Ports::new();
        let mut compensated = Vec::new();
        let mut errors = Vec::new();
        for &i in self.topo_order().iter().rev() {
            let Some(comp) = self.compensators.get(&i) else {
                continue;
            };
            // Completed nodes compensate with their recorded outputs.
            // The FAILED node compensates too — with empty ports —
            // because a request whose response was lost may still have
            // landed its side effect; its compensator must undo by an
            // identifier known before execution (e.g. the idempotency
            // key) and be safe to run when nothing landed. A node that
            // timed out but whose straggler later succeeded is in
            // `completed` by now and takes the normal path, exactly
            // once.
            let ports = match by_node.get(&i) {
                Some(ports) => *ports,
                None if failed == Some(i) => &empty,
                None => continue,
            };
            let name = self.nodes[i].name.clone();
            let mut span = soc_observe::child_span(
                run_ctx,
                "workflow.compensate",
                soc_observe::SpanKind::Internal,
            );
            span.set_attr("node", name.as_str());
            let res = {
                let _in_span = span.activate();
                comp.execute(ports)
            };
            match res {
                Ok(_) => compensated.push(name),
                Err(e) => {
                    span.set_error(e.to_string());
                    errors.push((name, e.to_string()));
                }
            }
        }
        (compensated, errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{Compute, Const};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn counter_activity(counter: Arc<AtomicU32>, fail_first: u32) -> Compute {
        Compute::new(&["x"], move |p| {
            let n = counter.fetch_add(1, Ordering::SeqCst);
            if n < fail_first {
                Err(format!("injected failure {n}"))
            } else {
                Ok(p["x"].clone())
            }
        })
    }

    #[test]
    fn retries_then_succeeds() {
        let mut g = WorkflowGraph::new();
        let c = g.add("c", Const::new(7));
        let calls = Arc::new(AtomicU32::new(0));
        let flaky = g.add("flaky", counter_activity(calls.clone(), 2));
        g.connect(c, "out", flaky, "x").unwrap();
        g.set_policy(flaky, ResiliencePolicy::retries(3)).unwrap();
        let out = g.run_saga(&HashMap::new(), &SagaConfig::default()).unwrap();
        assert!(out.is_completed());
        assert_eq!(out.outputs().unwrap()["flaky.out"].as_i64(), Some(7));
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn exhausted_retries_compensate_in_reverse_order() {
        // a -> b -> boom; a and b have compensators; boom always fails.
        let log: Arc<parking_lot::Mutex<Vec<String>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut g = WorkflowGraph::new();
        let a = g.add("a", Const::new(1));
        let b = g.add("b", Compute::new(&["x"], |p| Ok(p["x"].clone())));
        let boom = g.add("boom", Compute::new(&["x"], |_| Err("kaput".into())));
        g.connect(a, "out", b, "x").unwrap();
        g.connect(b, "out", boom, "x").unwrap();
        for (id, name) in [(a, "a"), (b, "b")] {
            let log = log.clone();
            let name = name.to_string();
            g.set_compensation(
                id,
                Compute::new(&[], move |_| {
                    log.lock().push(name.clone());
                    Ok(Value::Null)
                }),
            )
            .unwrap();
        }
        g.set_policy(boom, ResiliencePolicy::retries(2)).unwrap();
        let out = g.run_saga(&HashMap::new(), &SagaConfig::default()).unwrap();
        match out {
            WorkflowOutcome::Compensated {
                failed_at, compensated, compensation_errors, ..
            } => {
                assert_eq!(failed_at, "boom");
                assert_eq!(compensated, vec!["b".to_string(), "a".to_string()]);
                assert!(compensation_errors.is_empty());
            }
            other => panic!("expected compensation, got {other:?}"),
        }
        assert_eq!(*log.lock(), vec!["b".to_string(), "a".to_string()]);
    }

    #[test]
    fn fallback_rescues_failed_node() {
        let mut g = WorkflowGraph::new();
        let c = g.add("c", Const::new(1));
        let bad = g.add("bad", Compute::new(&["x"], |_| Err("down".into())));
        g.connect(c, "out", bad, "x").unwrap();
        g.set_fallback(bad, Compute::new(&["x"], |_| Ok(Value::from("fallback")))).unwrap();
        let out = g.run_saga(&HashMap::new(), &SagaConfig::default()).unwrap();
        assert_eq!(out.outputs().unwrap()["bad.out"].as_str(), Some("fallback"));
    }

    #[test]
    fn timeout_is_terminal_and_straggler_is_compensated() {
        let mut g = WorkflowGraph::new();
        let c = g.add("c", Const::new(1));
        let effects = Arc::new(AtomicU32::new(0));
        let slow_effects = effects.clone();
        let slow = g.add(
            "slow",
            Compute::new(&["x"], move |p| {
                std::thread::sleep(Duration::from_millis(80));
                slow_effects.fetch_add(1, Ordering::SeqCst);
                Ok(p["x"].clone())
            }),
        );
        g.connect(c, "out", slow, "x").unwrap();
        // Retries must NOT re-run a timed-out activity.
        g.set_policy(slow, ResiliencePolicy::retries(5).with_timeout(Duration::from_millis(5)))
            .unwrap();
        let undo = Arc::new(AtomicU32::new(0));
        let undo2 = undo.clone();
        g.set_compensation(
            slow,
            Compute::new(&[], move |_| {
                undo2.fetch_add(1, Ordering::SeqCst);
                Ok(Value::Null)
            }),
        )
        .unwrap();
        let out = g.run_saga(&HashMap::new(), &SagaConfig::default()).unwrap();
        match out {
            WorkflowOutcome::Compensated { failed_at, compensated, .. } => {
                assert_eq!(failed_at, "slow");
                // The straggler was joined, ran exactly once, and —
                // having succeeded after abandonment — was compensated.
                assert_eq!(effects.load(Ordering::SeqCst), 1);
                assert_eq!(compensated, vec!["slow".to_string()]);
                assert_eq!(undo.load(Ordering::SeqCst), 1);
            }
            other => panic!("expected compensation, got {other:?}"),
        }
    }

    #[test]
    fn parallel_wave_failure_keeps_completed_set_consistent() {
        // Two independent branches fire in the same wave; one fails,
        // the sibling's completion must still be compensated.
        let mut g = WorkflowGraph::new();
        let c = g.add("c", Const::new(1));
        let ok = g.add("ok", Compute::new(&["x"], |p| Ok(p["x"].clone())));
        let bad = g.add("bad", Compute::new(&["x"], |_| Err("dead".into())));
        g.connect(c, "out", ok, "x").unwrap();
        g.connect(c, "out", bad, "x").unwrap();
        let undone = Arc::new(AtomicU32::new(0));
        let undone2 = undone.clone();
        g.set_compensation(
            ok,
            Compute::new(&[], move |_| {
                undone2.fetch_add(1, Ordering::SeqCst);
                Ok(Value::Null)
            }),
        )
        .unwrap();
        let pool = ThreadPool::new(2);
        let out = g.run_saga_parallel(&pool, &HashMap::new(), &SagaConfig::default()).unwrap();
        match out {
            WorkflowOutcome::Compensated { failed_at, compensated, .. } => {
                assert_eq!(failed_at, "bad");
                assert!(compensated.contains(&"ok".to_string()));
                assert_eq!(undone.load(Ordering::SeqCst), 1);
            }
            other => panic!("expected compensation, got {other:?}"),
        }
    }

    #[test]
    fn deterministic_backoff_schedule_per_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        let mut c = XorShift64::new(43);
        let ja: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let jb: Vec<u64> = (0..8).map(|_| b.next()).collect();
        let jc: Vec<u64> = (0..8).map(|_| c.next()).collect();
        assert_eq!(ja, jb);
        assert_ne!(ja, jc);
        let j = XorShift64::new(1).jitter();
        assert!((0.5..1.5).contains(&j));
    }
}
