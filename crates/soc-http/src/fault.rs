//! Deterministic fault injection for the virtual network.
//!
//! The paper's free public services are "too slow... often offline or
//! removed without notice"; this module is the controllable stand-in.
//! A [`FaultConfig`] attached to a [`crate::mem::MemNetwork`] host can
//! inject — all deterministically per seed —
//!
//! - the legacy deterministic faults (`offline`, `latency`,
//!   `fail_every`),
//! - seeded probabilistic faults: pre-handler failures (503), response
//!   *resets* (the handler runs, its side effects happen, but the
//!   response is lost as an I/O error — the case idempotency keys
//!   exist for), response corruption and truncation,
//! - burst/windowed schedules ([`FaultWindow`]): faults confined to a
//!   periodic slice of the request counter, modelling outages that
//!   come and go,
//! - and, at the network level, directional host-pair partitions
//!   (see `MemNetwork::partition`).
//!
//! Determinism: each host entry owns one [`FaultRng`] seeded from
//! `FaultConfig::seed`, and every probabilistic knob draws from it in
//! a fixed order per request. The same seed, topology, and request
//! sequence replay the same faults.

use std::time::Duration;

/// A periodic fault schedule over a host's request counter: of every
/// `period` requests, the `faulty` ones starting at `offset` are
/// subject to the probabilistic faults (a burst). With every
/// probability at zero, a faulty slot fails outright — a scheduled
/// blackout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// Cycle length in requests; `0` disables the window.
    pub period: u64,
    /// How many requests per cycle are inside the burst.
    pub faulty: u64,
    /// Where in the cycle the burst starts.
    pub offset: u64,
}

impl FaultWindow {
    /// Whether the `n`-th request (1-based) falls inside the burst.
    pub fn is_faulty(&self, n: u64) -> bool {
        if self.period == 0 {
            return false;
        }
        let pos = (n + self.period - self.offset % self.period) % self.period;
        pos < self.faulty.min(self.period)
    }
}

/// Deterministic fault injection for a virtual host.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Every `n`-th request (1-based counter) returns 503. `0` disables.
    pub fail_every: u64,
    /// Added latency per request.
    pub latency: Duration,
    /// When set, the host answers nothing (connection refused
    /// equivalent: an `Io` error).
    pub offline: bool,
    /// Probability a request fails with 503 *before* the handler runs
    /// (no side effects).
    pub fail_prob: f64,
    /// Probability the response is lost after the handler ran: side
    /// effects happened, the client sees an I/O error.
    pub reset_prob: f64,
    /// Probability the response body is corrupted in flight.
    pub corrupt_prob: f64,
    /// Probability the response is cut off mid-body (`UnexpectedEof`)
    /// after the handler ran.
    pub truncate_prob: f64,
    /// Confine the probabilistic faults to a periodic burst.
    pub window: Option<FaultWindow>,
    /// Seed for the per-host fault RNG.
    pub seed: u64,
}

impl FaultConfig {
    /// An otherwise-clean config carrying a seed for the knobs below.
    pub fn seeded(seed: u64) -> Self {
        FaultConfig { seed, ..FaultConfig::default() }
    }

    /// Set the pre-handler failure probability.
    pub fn with_fail(mut self, p: f64) -> Self {
        self.fail_prob = p;
        self
    }

    /// Set the lost-response (reset) probability.
    pub fn with_reset(mut self, p: f64) -> Self {
        self.reset_prob = p;
        self
    }

    /// Set the body-corruption probability.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt_prob = p;
        self
    }

    /// Set the mid-body truncation probability.
    pub fn with_truncate(mut self, p: f64) -> Self {
        self.truncate_prob = p;
        self
    }

    /// Confine probabilistic faults to a burst schedule.
    pub fn with_window(mut self, window: FaultWindow) -> Self {
        self.window = Some(window);
        self
    }

    /// Add fixed per-request latency.
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Whether any probabilistic knob is set.
    pub fn has_probabilistic(&self) -> bool {
        self.fail_prob > 0.0
            || self.reset_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.truncate_prob > 0.0
    }
}

/// xorshift64* seeded through a splitmix64 step — the workhorse
/// generator used across the stack for deterministic jitter.
#[derive(Debug)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// A generator for `seed`; equal seeds replay equal streams.
    pub fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        FaultRng { state: (z ^ (z >> 31)) | 1 }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with probability `p`. Always consumes one draw
    /// so the stream stays aligned across knob settings.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// A value below `bound` (`0` when `bound` is `0`).
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// What the fault layer decided to do to one request, sampled before
/// and after the handler runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Pass the request through untouched.
    Clean,
    /// Fail before the handler: 503, no side effects.
    FailEarly,
    /// Run the handler, then drop the response (I/O error).
    Reset,
    /// Run the handler, then corrupt the response body.
    Corrupt,
    /// Run the handler, then cut the response off mid-body.
    Truncate,
}

impl FaultConfig {
    /// Sample this request's verdict. `n` is the host's 1-based
    /// request counter (drives the window); `rng` is the host's
    /// seeded generator. Draw order is fixed: fail, reset, corrupt,
    /// truncate.
    pub fn verdict(&self, n: u64, rng: &mut FaultRng) -> FaultVerdict {
        if let Some(w) = &self.window {
            if !w.is_faulty(n) {
                return FaultVerdict::Clean;
            }
            if !self.has_probabilistic() {
                // A window with no probabilities is a scheduled blackout.
                return FaultVerdict::FailEarly;
            }
        }
        if self.fail_prob > 0.0 && rng.chance(self.fail_prob) {
            return FaultVerdict::FailEarly;
        }
        if self.reset_prob > 0.0 && rng.chance(self.reset_prob) {
            return FaultVerdict::Reset;
        }
        if self.corrupt_prob > 0.0 && rng.chance(self.corrupt_prob) {
            return FaultVerdict::Corrupt;
        }
        if self.truncate_prob > 0.0 && rng.chance(self.truncate_prob) {
            return FaultVerdict::Truncate;
        }
        FaultVerdict::Clean
    }
}

/// Corrupt a response body in place (XOR — breaks any structured
/// payload, reversible for debugging).
pub fn corrupt_body(body: &mut [u8]) {
    for b in body.iter_mut() {
        *b ^= 0xA5;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_schedules_bursts() {
        let w = FaultWindow { period: 10, faulty: 3, offset: 2 };
        let faulty: Vec<u64> = (1..=20).filter(|&n| w.is_faulty(n)).collect();
        assert_eq!(faulty, vec![2, 3, 4, 12, 13, 14]);
        assert!(!FaultWindow { period: 0, faulty: 5, offset: 0 }.is_faulty(1));
        // faulty >= period means always faulty.
        let all = FaultWindow { period: 4, faulty: 9, offset: 0 };
        assert!((1..=8).all(|n| all.is_faulty(n)));
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = FaultRng::new(7);
        let mut b = FaultRng::new(7);
        let mut c = FaultRng::new(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn chance_rate_tracks_probability() {
        let mut rng = FaultRng::new(123);
        let hits = (0..10_000).filter(|_| rng.chance(0.2)).count();
        assert!((1_600..=2_400).contains(&hits), "got {hits}");
    }

    #[test]
    fn verdict_draw_order_is_stable() {
        let cfg = FaultConfig::seeded(9).with_fail(0.5).with_reset(0.5);
        let mut a = FaultRng::new(9);
        let mut b = FaultRng::new(9);
        let va: Vec<FaultVerdict> = (1..=32).map(|n| cfg.verdict(n, &mut a)).collect();
        let vb: Vec<FaultVerdict> = (1..=32).map(|n| cfg.verdict(n, &mut b)).collect();
        assert_eq!(va, vb);
        assert!(va.contains(&FaultVerdict::FailEarly));
        assert!(va.contains(&FaultVerdict::Reset));
    }

    #[test]
    fn windowed_blackout_and_windowed_probs() {
        let blackout =
            FaultConfig::default().with_window(FaultWindow { period: 5, faulty: 2, offset: 0 });
        let mut rng = FaultRng::new(1);
        let verdicts: Vec<FaultVerdict> = (1..=5).map(|n| blackout.verdict(n, &mut rng)).collect();
        // offset 0, period 5, faulty 2 → positions n%5 ∈ {0,1} burn.
        assert_eq!(
            verdicts,
            vec![
                FaultVerdict::FailEarly,
                FaultVerdict::Clean,
                FaultVerdict::Clean,
                FaultVerdict::Clean,
                FaultVerdict::FailEarly,
            ]
        );
        // Probabilistic faults only fire inside the window.
        let windowed = FaultConfig::seeded(2).with_fail(1.0).with_window(FaultWindow {
            period: 4,
            faulty: 1,
            offset: 1,
        });
        let mut rng = FaultRng::new(2);
        for n in 1..=8u64 {
            let v = windowed.verdict(n, &mut rng);
            if n % 4 == 1 {
                assert_eq!(v, FaultVerdict::FailEarly, "n={n}");
            } else {
                assert_eq!(v, FaultVerdict::Clean, "n={n}");
            }
        }
    }

    #[test]
    fn corruption_flips_bytes() {
        let mut body = b"{\"ok\":true}".to_vec();
        let orig = body.clone();
        corrupt_body(&mut body);
        assert_ne!(body, orig);
        corrupt_body(&mut body);
        assert_eq!(body, orig);
    }
}
