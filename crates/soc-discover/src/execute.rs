//! Lowering accepted plans onto the workflow engine.
//!
//! A verified [`Plan`] becomes a [`WorkflowGraph`]: goal inputs turn
//! into `Const` nodes, each plan node becomes an [`OperationCall`]
//! activity that invokes the discovered operation through the gateway
//! (REST or SOAP, per the descriptor's binding), and plan wires become
//! graph edges. The graph runs as a saga, so a mid-composition failure
//! compensates and surfaces as a
//! [`WorkflowOutcome::Compensated`](soc_workflow::WorkflowOutcome)
//! naming the failed node — which the [`Discovery`](crate::Discovery)
//! facade maps back to a service id and re-plans around.
//!
//! Resilience is derived, not configured: the goal's deadline is split
//! across the plan's critical path, and each node gets a retry policy
//! whose attempts fit inside its slice.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use soc_gateway::Gateway;
use soc_http::mem::Transport;
use soc_http::{HttpResult, Request, Response};
use soc_json::Value;
use soc_registry::Binding;
use soc_soap::contract::Param;
use soc_soap::{Contract, Operation, SoapClient, XsdType};
use soc_workflow::activity::{Const, Ports};
use soc_workflow::graph::NodeId;
use soc_workflow::{Activity, ActivityError, ResiliencePolicy, WorkflowError, WorkflowGraph};

use crate::planner::{Goal, Plan, PlanNode, WireSource};

/// A [`Transport`] that routes every request through
/// [`Gateway::call`] for a fixed service — protocol clients built for
/// a plain transport ([`SoapClient`] here) gain balancing, retries,
/// breakers, and tracing without knowing the gateway exists. Requests
/// must carry path-only targets, exactly what `Gateway::call` expects.
pub struct GatewayTransport {
    gateway: Gateway,
    service: String,
}

impl GatewayTransport {
    /// A transport pinned to `service` on `gateway`.
    pub fn new(gateway: Gateway, service: &str) -> Self {
        GatewayTransport { gateway, service: service.to_string() }
    }
}

impl Transport for GatewayTransport {
    fn send(&self, req: Request) -> HttpResult<Response> {
        Ok(self.gateway.call(&self.service, req))
    }
}

static INSTANCES: AtomicU64 = AtomicU64::new(1);

/// A workflow activity invoking one discovered operation through the
/// gateway. Ports are the operation's typed parameter names.
pub struct OperationCall {
    gateway: Gateway,
    service: String,
    binding: Binding,
    namespace: String,
    /// Full request path: `{base}/{op}` for REST, `{base}` for SOAP.
    path: String,
    operation: String,
    inputs: Vec<Param>,
    outputs: Vec<Param>,
    instance: u64,
}

impl OperationCall {
    /// An activity invoking `node`'s operation via `gateway`.
    pub fn for_node(gateway: Gateway, node: &PlanNode) -> Self {
        let base = node.base_path.trim_end_matches('/');
        let path = match node.binding {
            // REST convention: POST {base}/{operation, lowercased}
            // with a JSON body of the inputs.
            Binding::Rest | Binding::Workflow | Binding::InProcess => {
                format!("{base}/{}", node.operation.to_lowercase())
            }
            // SOAP envelopes post to the port address itself.
            Binding::Soap => {
                if base.is_empty() {
                    "/".to_string()
                } else {
                    base.to_string()
                }
            }
        };
        OperationCall {
            gateway,
            service: node.service_id.clone(),
            binding: node.binding,
            namespace: node.namespace.clone(),
            path,
            operation: node.operation.clone(),
            inputs: node.inputs.clone(),
            outputs: node.outputs.clone(),
            instance: INSTANCES.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Idempotency key stable per activity instance within one trace,
    /// mirroring [`soc_workflow::ServiceCall`]: gateway retries and
    /// saga re-fires dedupe at the origin, while a new run (new trace)
    /// is a new logical request.
    fn idempotency_key(&self) -> String {
        match soc_observe::context::current() {
            Some(ctx) => format!("disc-{:x}-{}", self.instance, ctx.trace_id.to_hex()),
            None => soc_http::fresh_idempotency_key(),
        }
    }

    fn execute_rest(&self, inputs: &Ports) -> Result<Ports, ActivityError> {
        let mut body = Value::object();
        for p in &self.inputs {
            let v =
                inputs.get(&p.name).ok_or_else(|| ActivityError::MissingInput(p.name.clone()))?;
            body.set(p.name.clone(), v.clone());
        }
        let req = Request::post(&self.path, Vec::new())
            .with_text("application/json", &body.to_compact())
            .with_idempotency_key(&self.idempotency_key());
        let resp = self.gateway.call(&self.service, req);
        if !resp.status.is_success() {
            return Err(ActivityError::Service(format!(
                "{} {}: status {}",
                self.service, self.operation, resp.status
            )));
        }
        let text = resp.text_body().map_err(|e| ActivityError::Service(e.to_string()))?;
        let parsed = Value::parse(text).map_err(|e| ActivityError::Service(e.to_string()))?;
        let mut out = Ports::new();
        for p in &self.outputs {
            match parsed.get(&p.name) {
                Some(v) => {
                    out.insert(p.name.clone(), v.clone());
                }
                None => {
                    return Err(ActivityError::Service(format!(
                        "{} {}: response missing output `{}`",
                        self.service, self.operation, p.name
                    )))
                }
            }
        }
        Ok(out)
    }

    fn execute_soap(&self, inputs: &Ports) -> Result<Ports, ActivityError> {
        let contract = Contract::new(&self.service, &self.namespace).operation(Operation {
            name: self.operation.clone(),
            inputs: self.inputs.clone(),
            outputs: self.outputs.clone(),
            doc: None,
        });
        let args: Vec<(String, String)> = self
            .inputs
            .iter()
            .map(|p| {
                let v = inputs
                    .get(&p.name)
                    .ok_or_else(|| ActivityError::MissingInput(p.name.clone()))?;
                let text = match v {
                    Value::String(s) => s.clone(),
                    other => other.to_compact(),
                };
                Ok((p.name.clone(), text))
            })
            .collect::<Result<_, ActivityError>>()?;
        let arg_refs: Vec<(&str, &str)> =
            args.iter().map(|(n, v)| (n.as_str(), v.as_str())).collect();
        let client =
            SoapClient::new(Arc::new(GatewayTransport::new(self.gateway.clone(), &self.service)));
        let result = client
            .call(&self.path, &contract, &self.operation, &arg_refs)
            .map_err(|e| ActivityError::Service(e.to_string()))?;
        let mut out = Ports::new();
        for p in &self.outputs {
            let raw = result.get(&p.name).ok_or_else(|| {
                ActivityError::Service(format!(
                    "{} {}: response missing output `{}`",
                    self.service, self.operation, p.name
                ))
            })?;
            let coerced = coerce(raw, p.ty).map_err(ActivityError::Service)?;
            out.insert(p.name.clone(), coerced);
        }
        Ok(out)
    }
}

/// A SOAP text value as the JSON value its schema type implies.
fn coerce(raw: &str, ty: XsdType) -> Result<Value, String> {
    match ty {
        XsdType::String => Ok(Value::from(raw)),
        XsdType::Int => {
            raw.trim().parse::<i64>().map(Value::from).map_err(|_| format!("`{raw}` is not an int"))
        }
        XsdType::Double => raw
            .trim()
            .parse::<f64>()
            .map(Value::from)
            .map_err(|_| format!("`{raw}` is not a double")),
        XsdType::Boolean => match raw.trim() {
            "true" | "1" => Ok(Value::from(true)),
            "false" | "0" => Ok(Value::from(false)),
            other => Err(format!("`{other}` is not a boolean")),
        },
    }
}

impl Activity for OperationCall {
    fn inputs(&self) -> Vec<String> {
        self.inputs.iter().map(|p| p.name.clone()).collect()
    }
    fn outputs(&self) -> Vec<String> {
        self.outputs.iter().map(|p| p.name.clone()).collect()
    }
    fn execute(&self, inputs: &Ports) -> Result<Ports, ActivityError> {
        match self.binding {
            Binding::Soap => self.execute_soap(inputs),
            _ => self.execute_rest(inputs),
        }
    }
}

/// Why lowering failed.
#[derive(Debug)]
pub enum LowerError {
    /// The goal declared a `have` the caller's inputs did not supply.
    MissingInput(String),
    /// Graph construction rejected the plan (should not happen for a
    /// verified plan).
    Workflow(WorkflowError),
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::MissingInput(name) => {
                write!(f, "goal input `{name}` was not supplied at execution time")
            }
            LowerError::Workflow(e) => write!(f, "workflow construction failed: {e}"),
        }
    }
}

impl From<WorkflowError> for LowerError {
    fn from(e: WorkflowError) -> Self {
        LowerError::Workflow(e)
    }
}

/// A plan lowered to an executable workflow.
pub struct LoweredPlan {
    /// The saga-ready graph.
    pub graph: WorkflowGraph,
    /// Wanted outputs delivered by node results, as
    /// `(want name, "node.port" output key)`.
    pub node_outputs: Vec<(String, String)>,
    /// Wanted outputs satisfied directly from the supplied inputs.
    pub direct_outputs: Vec<(String, Value)>,
    /// Graph node name → catalog service id, for mapping a saga
    /// failure back to the service to re-plan around.
    pub node_services: HashMap<String, String>,
}

/// Length of the longest dependency chain in the plan, in nodes.
fn critical_path(plan: &Plan) -> usize {
    let n = plan.nodes.len();
    let mut depth = vec![1usize; n];
    // Plan nodes are in dependency order (producers precede
    // consumers), so one forward pass suffices.
    for wire in &plan.wires {
        if let WireSource::Node { node: from, .. } = &wire.source {
            if *from < n && wire.node < n {
                depth[wire.node] = depth[wire.node].max(depth[*from] + 1);
            }
        }
    }
    depth.into_iter().max().unwrap_or(1)
}

/// The per-node [`ResiliencePolicy`] a deadline buys: the budget is
/// split evenly across the critical path, and each node's slice covers
/// its initial attempt plus `retries` retried ones with backoff.
pub fn derive_policy(deadline: Duration, critical_path_len: usize) -> ResiliencePolicy {
    let retries = 2u32;
    let slice = deadline / critical_path_len.max(1) as u32;
    let per_attempt = (slice / (retries + 1)).max(Duration::from_millis(25));
    ResiliencePolicy::retries(retries)
        .with_timeout(per_attempt)
        .with_backoff(Duration::from_millis(2), Duration::from_millis(20))
}

/// Lower a (verified) plan to a workflow graph. Registers every
/// node's replicas on `gateway` under the service id, builds `Const`
/// nodes for the goal inputs actually used, and derives per-node
/// resilience policies from the goal deadline.
pub fn lower(
    plan: &Plan,
    goal: &Goal,
    gateway: &Gateway,
    inputs: &HashMap<String, Value>,
) -> Result<LoweredPlan, LowerError> {
    let mut graph = WorkflowGraph::new();
    let mut node_services = HashMap::new();
    let policy = derive_policy(goal.deadline, critical_path(plan));

    // Const nodes for goal inputs, created on first use.
    let mut consts: HashMap<String, NodeId> = HashMap::new();
    let mut const_of = |graph: &mut WorkflowGraph, name: &str| -> Result<NodeId, LowerError> {
        if let Some(id) = consts.get(name) {
            return Ok(*id);
        }
        let value = inputs.get(name).ok_or_else(|| LowerError::MissingInput(name.to_string()))?;
        let id = graph.add(&format!("goal_{name}"), Const::new(value.clone()));
        consts.insert(name.to_string(), id);
        Ok(id)
    };

    let mut node_ids = Vec::with_capacity(plan.nodes.len());
    for (i, node) in plan.nodes.iter().enumerate() {
        let replicas: Vec<&str> = node.replicas.iter().map(String::as_str).collect();
        gateway.register(&node.service_id, &replicas);
        let name = format!("n{i}_{}", node.service_id);
        let id = graph.add(&name, OperationCall::for_node(gateway.clone(), node));
        graph.set_policy(id, policy.clone())?;
        node_services.insert(name, node.service_id.clone());
        node_ids.push(id);
    }

    for wire in &plan.wires {
        let (from, port) = match &wire.source {
            WireSource::Goal(name) => (const_of(&mut graph, name)?, "out".to_string()),
            WireSource::Node { node, port } => (node_ids[*node], port.clone()),
        };
        graph.connect(from, &port, node_ids[wire.node], &wire.port)?;
    }

    let mut node_outputs = Vec::new();
    let mut direct_outputs = Vec::new();
    for (name, source) in &plan.outputs {
        match source {
            WireSource::Goal(have) => {
                let value =
                    inputs.get(have).ok_or_else(|| LowerError::MissingInput(have.clone()))?;
                direct_outputs.push((name.clone(), value.clone()));
            }
            WireSource::Node { node, port } => {
                node_outputs.push((
                    name.clone(),
                    format!("n{node}_{}.{port}", plan.nodes[*node].service_id),
                ));
            }
        }
    }

    Ok(LoweredPlan { graph, node_outputs, direct_outputs, node_services })
}
