/root/repo/target/debug/examples/workflow_mortgage-39a071c65cdbf38f.d: examples/workflow_mortgage.rs

/root/repo/target/debug/examples/workflow_mortgage-39a071c65cdbf38f: examples/workflow_mortgage.rs

examples/workflow_mortgage.rs:
