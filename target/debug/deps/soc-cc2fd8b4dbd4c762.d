/root/repo/target/debug/deps/soc-cc2fd8b4dbd4c762.d: src/lib.rs

/root/repo/target/debug/deps/libsoc-cc2fd8b4dbd4c762.rlib: src/lib.rs

/root/repo/target/debug/deps/libsoc-cc2fd8b4dbd4c762.rmeta: src/lib.rs

src/lib.rs:
