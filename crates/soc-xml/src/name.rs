//! Qualified names (`prefix:local`) as used by elements and attributes.

use std::fmt;

/// A qualified XML name, split into optional prefix and local part.
///
/// Namespace *resolution* (mapping prefixes to URIs through in-scope
/// `xmlns` declarations) is performed by the DOM layer; the reader only
/// records the syntactic split.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QName {
    /// Namespace prefix, e.g. `soap` in `soap:Envelope`; empty when the
    /// name is unprefixed.
    pub prefix: String,
    /// Local part of the name.
    pub local: String,
}

impl QName {
    /// Build a name without a prefix.
    pub fn local(local: impl Into<String>) -> Self {
        QName { prefix: String::new(), local: local.into() }
    }

    /// Build a prefixed name.
    pub fn prefixed(prefix: impl Into<String>, local: impl Into<String>) -> Self {
        QName { prefix: prefix.into(), local: local.into() }
    }

    /// Parse `prefix:local` or `local` syntax. Does not validate NCName
    /// character rules (the reader does that while lexing).
    pub fn parse(raw: &str) -> Self {
        match raw.split_once(':') {
            Some((p, l)) => QName::prefixed(p, l),
            None => QName::local(raw),
        }
    }

    /// True if this is an `xmlns` or `xmlns:*` namespace declaration name.
    pub fn is_xmlns(&self) -> bool {
        (self.prefix.is_empty() && self.local == "xmlns") || self.prefix == "xmlns"
    }

    /// The prefix being declared when [`Self::is_xmlns`] is true:
    /// `xmlns="…"` declares the default (empty) prefix, `xmlns:p="…"`
    /// declares `p`.
    pub fn declared_prefix(&self) -> Option<&str> {
        if self.prefix == "xmlns" {
            Some(&self.local)
        } else if self.prefix.is_empty() && self.local == "xmlns" {
            Some("")
        } else {
            None
        }
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.prefix.is_empty() {
            f.write_str(&self.local)
        } else {
            write!(f, "{}:{}", self.prefix, self.local)
        }
    }
}

impl From<&str> for QName {
    fn from(raw: &str) -> Self {
        QName::parse(raw)
    }
}

/// A borrowed qualified name: zero-copy slices into the parsed input.
///
/// This is what the streaming reader hands out; nothing is allocated
/// until a consumer decides to keep the name (via [`RawName::to_qname`]
/// or a [`crate::intern::NameInterner`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawName<'a> {
    /// The full name as written (`prefix:local` or `local`).
    raw: &'a str,
    /// Namespace prefix; empty when unprefixed.
    pub prefix: &'a str,
    /// Local part of the name.
    pub local: &'a str,
}

impl<'a> RawName<'a> {
    /// Split `prefix:local` or `local` syntax without copying.
    pub fn parse(raw: &'a str) -> Self {
        match raw.split_once(':') {
            Some((p, l)) => RawName { raw, prefix: p, local: l },
            None => RawName { raw, prefix: "", local: raw },
        }
    }

    /// The name exactly as written in the source.
    pub fn as_str(&self) -> &'a str {
        self.raw
    }

    /// Allocate an owned [`QName`] with the same prefix and local part.
    pub fn to_qname(&self) -> QName {
        QName { prefix: self.prefix.into(), local: self.local.into() }
    }

    /// True if this is an `xmlns` or `xmlns:*` namespace declaration name.
    pub fn is_xmlns(&self) -> bool {
        (self.prefix.is_empty() && self.local == "xmlns") || self.prefix == "xmlns"
    }
}

impl fmt::Display for RawName<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.raw)
    }
}

impl PartialEq<QName> for RawName<'_> {
    fn eq(&self, other: &QName) -> bool {
        self.prefix == other.prefix && self.local == other.local
    }
}

impl PartialEq<RawName<'_>> for QName {
    fn eq(&self, other: &RawName<'_>) -> bool {
        other == self
    }
}

/// Compare a [`QName`] against its serialized `prefix:local` form
/// without allocating (the no-alloc twin of `q.to_string() == s`).
pub fn qname_matches(q: &QName, s: &str) -> bool {
    if q.prefix.is_empty() {
        q.local == s
    } else {
        s.len() == q.prefix.len() + 1 + q.local.len()
            && s.as_bytes()[q.prefix.len()] == b':'
            && s.starts_with(q.prefix.as_str())
            && s.ends_with(q.local.as_str())
    }
}

/// Is `c` a valid first character of an XML name? (Pragmatic subset of
/// the NameStartChar production.)
pub fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

/// Is `c` a valid continuation character of an XML name?
pub fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_splits_on_first_colon() {
        let q = QName::parse("soap:Envelope");
        assert_eq!(q.prefix, "soap");
        assert_eq!(q.local, "Envelope");
        assert_eq!(q.to_string(), "soap:Envelope");
    }

    #[test]
    fn parse_unprefixed() {
        let q = QName::parse("service");
        assert_eq!(q.prefix, "");
        assert_eq!(q.local, "service");
        assert_eq!(q.to_string(), "service");
    }

    #[test]
    fn xmlns_detection() {
        assert!(QName::parse("xmlns").is_xmlns());
        assert!(QName::parse("xmlns:soap").is_xmlns());
        assert!(!QName::parse("x:xmlns").is_xmlns());
        assert_eq!(QName::parse("xmlns").declared_prefix(), Some(""));
        assert_eq!(QName::parse("xmlns:soap").declared_prefix(), Some("soap"));
        assert_eq!(QName::parse("id").declared_prefix(), None);
    }

    #[test]
    fn raw_name_borrows_and_converts() {
        let r = RawName::parse("soap:Envelope");
        assert_eq!(r.prefix, "soap");
        assert_eq!(r.local, "Envelope");
        assert_eq!(r.as_str(), "soap:Envelope");
        assert_eq!(r.to_qname(), QName::prefixed("soap", "Envelope"));
        assert!(r == QName::prefixed("soap", "Envelope"));
        assert!(RawName::parse("xmlns:x").is_xmlns());
        assert!(!RawName::parse("a:b").is_xmlns());
    }

    #[test]
    fn qname_matches_without_alloc() {
        assert!(qname_matches(&QName::local("id"), "id"));
        assert!(qname_matches(&QName::prefixed("a", "b"), "a:b"));
        assert!(!qname_matches(&QName::prefixed("a", "b"), "a:c"));
        assert!(!qname_matches(&QName::prefixed("a", "b"), "b"));
        assert!(!qname_matches(&QName::local("b"), "a:b"));
    }

    #[test]
    fn name_char_classes() {
        assert!(is_name_start('a'));
        assert!(is_name_start('_'));
        assert!(!is_name_start('1'));
        assert!(is_name_char('1'));
        assert!(is_name_char('-'));
        assert!(!is_name_char(' '));
    }
}
