/root/repo/target/debug/deps/fig4_webapp-0dabdccaa906e82c.d: crates/soc-bench/src/bin/fig4_webapp.rs

/root/repo/target/debug/deps/fig4_webapp-0dabdccaa906e82c: crates/soc-bench/src/bin/fig4_webapp.rs

crates/soc-bench/src/bin/fig4_webapp.rs:
