//! The Figure 3 experiment, quickly: validate the Collatz conjecture in
//! parallel, measure real speedup on this host, and reproduce the
//! paper's 1–32-core curve on the deterministic virtual-multicore
//! simulator. (The full harness is `cargo run -p soc-bench --release
//! --bin fig3_collatz`.)
//!
//! ```sh
//! cargo run --release --example collatz_speedup
//! ```

use std::time::Instant;

use soc::parallel::simcore::scaling_series;
use soc::parallel::workloads::{collatz_task_graph, validate_parallel, validate_sequential};
use soc::parallel::{Schedule, ThreadPool};

fn main() {
    let limit = 200_000;

    // Real measurement on this host.
    let t0 = Instant::now();
    let seq = validate_sequential(limit);
    let t_seq = t0.elapsed();
    println!(
        "sequential: validated [1, {limit}] in {t_seq:?} (longest trajectory: {} steps at n={})",
        seq.max_steps, seq.argmax
    );

    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    for threads in [1, 2, 4, host_threads.max(1)] {
        let pool = ThreadPool::new(threads);
        let t0 = Instant::now();
        let par = validate_parallel(&pool, limit, Schedule::Dynamic { chunk: 512 });
        let t_par = t0.elapsed();
        assert_eq!(par, seq, "parallel result must equal sequential");
        println!(
            "  {threads:>2} thread(s): {t_par:?}  speedup {:.2}",
            t_seq.as_secs_f64() / t_par.as_secs_f64()
        );
    }

    // The paper's testbed had 32 cores; this host has {host_threads}.
    // The virtual-multicore simulator reproduces the curve's *shape*
    // deterministically (see DESIGN.md, substitution table).
    println!("\nsimulated 1–32-core scaling of the same task graph (Figure 3 shape):");
    let graph = collatz_task_graph(limit, 256);
    println!("  {:>6} {:>9} {:>11}", "cores", "speedup", "efficiency");
    for (cores, speedup, efficiency) in scaling_series(&graph, &[1, 4, 8, 16, 32], 1) {
        println!(
            "  {cores:>6} {speedup:>9.2} {efficiency:>10.1}%",
            efficiency = efficiency * 100.0
        );
    }
}
