//! The replicated store node and its shard-routing client.
//!
//! A [`StoreNode`] hosts one durable [`KvMachine`] for the shards it
//! primaries, plus one **replica stream** — a separate durable log —
//! per remote primary it replicates for. Streams are per-source because
//! LSNs are per-log: interleaving two primaries' records into one log
//! would break the `local lsn == source lsn` shipping invariant and
//! silently drop whichever stream is behind.
//!
//! Writes land on the key's **primary** (per the installed
//! [`ShardMap`]) and are pushed synchronously to the replica owners via
//! log shipping; reads merge the node's own state with its replica
//! streams and are version-gated: the node either proves the key's
//! authoritative stream has caught up to the reader's floor or refuses
//! with `behind`.
//!
//! A [`StoreClient`] routes by the same map: writes go to the primary
//! (retrying once on a stale-map `not_primary` hint), reads prefer the
//! furthest replica and fall back owner-by-owner toward the primary —
//! the read-your-writes schedule, since the client remembers the
//! version each of its own writes was assigned and demands at least
//! that from whichever owner answers.
//!
//! ## Routes
//!
//! | Route | Meaning |
//! |---|---|
//! | `PUT /store/{key}` | primary write (lease-fenced); body is the JSON value |
//! | `DELETE /store/{key}` | primary delete (lease-fenced) |
//! | `GET /store/{key}?min_version=N` | version-gated read |
//! | `POST /store/replicate` | apply shipped records (replica side, epoch-checked) |
//! | `GET /store/ship?after=N` | serve records for replica catch-up |
//! | `GET /store/snapshot` | full-state snapshot for replica bootstrap |
//! | `POST /store/sync` | pull catch-up from a peer (`{"from": endpoint}`) |
//! | `POST /store/promote` | adopt a source's replicated shards (`{"source": id}`) |
//! | `POST /store/map` | install a shard map (version CAS; older maps 409) |
//! | `GET /store/map` | the installed shard map (client refetch on redirect loops) |
//! | `POST /store/fence` | grant the node's fencing lease (`{"epoch": N, "ttl_ms": N}`) |
//! | `GET /store/status` | applied/durable LSNs, epoch, map version, checksums |

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use soc_http::mem::Transport;
use soc_http::url::{percent_decode, percent_encode};
use soc_http::{Response, Status};
use soc_json::Value;
use soc_registry::directory::DirectoryClient;
use soc_rest::{PathParams, RestClient, RestError, Router};

use crate::fence::Fence;
use crate::kv::KvMachine;
use crate::shard::ShardMap;
use crate::state::Durable;
use crate::wal::{Lsn, WalConfig};
use crate::{crc32, StoreError, StoreResult};

/// Identity and tuning for one [`StoreNode`].
#[derive(Debug, Clone)]
pub struct StoreNodeConfig {
    /// Stable node id — must match the node's lease id in the registry,
    /// since that is what the [`ShardMap`] ring is keyed on.
    pub id: String,
    /// WAL knobs for the node's durable machines (own log and every
    /// replica stream).
    pub wal: WalConfig,
}

impl StoreNodeConfig {
    /// Default WAL config under `id`.
    pub fn new(id: &str) -> StoreNodeConfig {
        StoreNodeConfig { id: id.to_string(), wal: WalConfig::default() }
    }
}

struct NodeInner {
    id: String,
    dir: PathBuf,
    wal_cfg: WalConfig,
    /// Shards this node primaries: its own log, its own LSNs.
    store: Durable<KvMachine>,
    /// One durable stream per remote primary, keyed by source node id.
    replicas: RwLock<HashMap<String, Arc<Durable<KvMachine>>>>,
    map: RwLock<Arc<ShardMap>>,
    peers: RestClient,
    /// This node's fencing lease (disarmed until the first grant).
    fence: Fence,
    /// Newest fencing epoch accepted per replication source — the
    /// replica-side half of the fence: older epochs are refused.
    source_epochs: Mutex<HashMap<String, u64>>,
    pushes: soc_observe::Counter,
    push_failures: soc_observe::Counter,
    map_rejects: soc_observe::Counter,
    fenced_writes: soc_observe::Counter,
    stale_shipments: soc_observe::Counter,
}

/// One replicated store node. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct StoreNode {
    inner: Arc<NodeInner>,
}

impl StoreNode {
    /// Open (or recover) the node's durable machines in `dir` — the own
    /// log at the top level plus any `replica-of-*` streams a previous
    /// incarnation left behind. `transport` carries replication pushes
    /// to peer endpoints.
    pub fn open(
        cfg: StoreNodeConfig,
        dir: impl AsRef<std::path::Path>,
        transport: Arc<dyn Transport>,
    ) -> StoreResult<StoreNode> {
        let dir = dir.as_ref().to_path_buf();
        let store = Durable::open(dir.join("own"), cfg.wal.clone(), KvMachine::new())?;
        let mut replicas = HashMap::new();
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some(enc) = name.strip_prefix("replica-of-") {
                    let source = percent_decode(enc);
                    let d = Durable::open(entry.path(), cfg.wal.clone(), KvMachine::new())?;
                    replicas.insert(source, Arc::new(d));
                }
            }
        }
        let metrics = soc_observe::metrics();
        Ok(StoreNode {
            inner: Arc::new(NodeInner {
                id: cfg.id,
                dir,
                wal_cfg: cfg.wal,
                store,
                replicas: RwLock::new(replicas),
                map: RwLock::new(Arc::new(ShardMap::build(0, Vec::new(), 1))),
                peers: RestClient::new(transport),
                fence: Fence::new(),
                source_epochs: Mutex::new(HashMap::new()),
                pushes: metrics.counter("soc_store_replication_pushes_total", &[]),
                push_failures: metrics.counter("soc_store_replication_failures_total", &[]),
                map_rejects: metrics.counter("soc_store_map_rejects_total", &[]),
                fenced_writes: metrics.counter("soc_store_fenced_writes_total", &[]),
                stale_shipments: metrics.counter("soc_store_stale_shipments_total", &[]),
            }),
        })
    }

    /// This node's id.
    pub fn id(&self) -> &str {
        &self.inner.id
    }

    /// Install a new shard map (typically rebuilt from a fresh lease
    /// snapshot). Consumers see it atomically. The install is a
    /// compare-and-swap on version: a map older than the one already
    /// installed is rejected (returns `false` and counts a reject), so
    /// two racing publishers can never regress a node's routing view.
    /// Installing a map this node belongs to also ratchets its fencing
    /// epoch — the map's version *is* the epoch.
    pub fn set_map(&self, map: Arc<ShardMap>) -> bool {
        let mut slot = self.inner.map.write();
        if map.version() < slot.version() {
            self.inner.map_rejects.inc();
            return false;
        }
        if map.nodes().iter().any(|n| n.id == self.inner.id) {
            self.inner.fence.observe_epoch(map.version());
        }
        *slot = map;
        true
    }

    /// The node's fencing lease.
    pub fn fence(&self) -> &Fence {
        &self.inner.fence
    }

    /// The currently installed shard map.
    pub fn map(&self) -> Arc<ShardMap> {
        self.inner.map.read().clone()
    }

    /// The node's own durable machine (primary shards only; replicated
    /// state lives in per-source streams).
    pub fn store(&self) -> &Durable<KvMachine> {
        &self.inner.store
    }

    /// The replica stream for `source`, opened on first use.
    fn replica_for(&self, source: &str) -> StoreResult<Arc<Durable<KvMachine>>> {
        if let Some(d) = self.inner.replicas.read().get(source) {
            return Ok(d.clone());
        }
        let mut replicas = self.inner.replicas.write();
        if let Some(d) = replicas.get(source) {
            return Ok(d.clone());
        }
        let dir = self.inner.dir.join(format!("replica-of-{}", percent_encode(source)));
        let d = Arc::new(Durable::open(dir, self.inner.wal_cfg.clone(), KvMachine::new())?);
        replicas.insert(source.to_string(), d.clone());
        Ok(d)
    }

    /// Highest LSN applied from `source`'s shipped stream.
    pub fn replica_applied(&self, source: &str) -> Lsn {
        self.inner.replicas.read().get(source).map(|d| d.applied_lsn()).unwrap_or(0)
    }

    /// Refuse unless this node is `key`'s primary (an empty map means
    /// standalone mode: every key is local).
    fn check_primary(&self, key: &str) -> StoreResult<()> {
        let map = self.map();
        if map.is_empty() {
            return Ok(());
        }
        match map.primary(key) {
            Some(p) if p.id == self.inner.id => Ok(()),
            p => Err(StoreError::NotPrimary {
                key: key.to_string(),
                primary: p.map(|n| n.endpoint.clone()),
            }),
        }
    }

    /// Refuse writes when the node's fencing lease has lapsed.
    fn check_fence(&self) -> StoreResult<()> {
        self.inner.fence.check_write().inspect_err(|_| self.inner.fenced_writes.inc())
    }

    /// Write `value` under `key` (primary only, lease-fenced). Returns
    /// the version.
    pub fn put(&self, key: &str, value: &Value) -> StoreResult<Lsn> {
        self.check_primary(key)?;
        self.check_fence()?;
        let cmd = KvMachine::put_command(key, value);
        self.inner.store.execute(&cmd)?;
        // The stored version can exceed the LSN after a promotion
        // re-log (versions never regress per key), so read it back.
        let version = self.inner.store.query(|m| m.get(key).map(|(_, l)| l)).unwrap_or_default();
        self.replicate(key, version.max(1), &cmd);
        Ok(version)
    }

    /// Delete `key` (primary only, lease-fenced). Returns the
    /// tombstone's version.
    pub fn delete(&self, key: &str) -> StoreResult<Lsn> {
        self.check_primary(key)?;
        self.check_fence()?;
        let cmd = KvMachine::del_command(key);
        let lsn = self.inner.store.execute(&cmd)?;
        self.replicate(key, lsn, &cmd);
        Ok(lsn)
    }

    /// Version-gated merged read. The value is the newest copy across
    /// the node's own state and its replica streams; the gate compares
    /// the reader's floor against the *key's authoritative stream* —
    /// our own log when we primary the key, otherwise the stream
    /// shipped from the key's primary.
    pub fn get(&self, key: &str, min_version: Lsn) -> StoreResult<Option<(Value, Lsn)>> {
        let map = self.map();
        let mut best: Option<(Value, Lsn)> =
            self.inner.store.query(|m| m.get(key).map(|(v, l)| (v.clone(), l)));
        let mut max_watermark = self.inner.store.applied_lsn();
        let replicas = self.inner.replicas.read();
        for d in replicas.values() {
            max_watermark = max_watermark.max(d.applied_lsn());
            if let Some((v, l)) = d.query(|m| m.get(key).map(|(v, l)| (v.clone(), l))) {
                if best.as_ref().map(|(_, bl)| l > *bl).unwrap_or(true) {
                    best = Some((v, l));
                }
            }
        }
        let watermark = match map.primary(key) {
            Some(p) if p.id != self.inner.id => {
                replicas.get(&p.id).map(|d| d.applied_lsn()).unwrap_or(0)
            }
            // We primary the key — or the map is empty and the best
            // cross-stream watermark is the honest answer.
            Some(_) => self.inner.store.applied_lsn(),
            None => max_watermark,
        };
        drop(replicas);
        match best {
            Some((v, l)) if l >= min_version => Ok(Some((v, l))),
            Some((_, l)) => Err(StoreError::Behind { have: l, want: min_version }),
            None if watermark >= min_version => Ok(None),
            None => Err(StoreError::Behind { have: watermark, want: min_version }),
        }
    }

    /// Push `lsn` to every replica owner of `key`. Best-effort: an
    /// unreachable replica is counted and skipped (it catches up later
    /// via [`StoreNode::sync_from`] or the next push's `behind` dance);
    /// a *behind* replica is caught up inline from this node's log.
    /// The fencing epoch this node ships under: the newest epoch it has
    /// held a lease at or seen in an installed map.
    fn ship_epoch(&self) -> u64 {
        self.inner.fence.epoch().max(self.map().version())
    }

    fn replicate(&self, key: &str, lsn: Lsn, cmd: &[u8]) {
        let map = self.map();
        let epoch = self.ship_epoch();
        for owner in map.owners(key).iter().skip(1) {
            if owner.id == self.inner.id {
                continue;
            }
            let records = vec![(lsn, cmd.to_vec())];
            match self.push_records(&owner.endpoint, epoch, &records) {
                Ok(()) => self.inner.pushes.inc(),
                Err(StoreError::Behind { have, .. }) => {
                    // Ship everything the replica is missing.
                    match self
                        .inner
                        .store
                        .wal()
                        .records_after(have)
                        .and_then(|recs| self.push_records(&owner.endpoint, epoch, &recs))
                    {
                        Ok(()) => self.inner.pushes.inc(),
                        Err(_) => self.inner.push_failures.inc(),
                    }
                }
                Err(_) => self.inner.push_failures.inc(),
            }
        }
    }

    /// POST a batch of our records to a peer's `/store/replicate`.
    fn push_records(
        &self,
        endpoint: &str,
        epoch: u64,
        records: &[(Lsn, Vec<u8>)],
    ) -> StoreResult<()> {
        let body = records_to_json(&self.inner.id, epoch, records);
        match self.inner.peers.post(&format!("{endpoint}/store/replicate"), &body) {
            Ok(_) => Ok(()),
            Err(e) => Err(rest_to_store(e)),
        }
    }

    /// Apply records shipped from primary `source` under fencing
    /// `epoch` into its replica stream. Returns the stream's applied
    /// LSN. Gaps surface as [`StoreError::Behind`] so the shipper knows
    /// where to resume; an epoch older than the newest this node has
    /// obeyed from `source` — or older than an installed map that no
    /// longer lists `source` — is refused with
    /// [`StoreError::StaleEpoch`]: that is a partitioned old primary
    /// talking past its fence.
    pub fn apply_shipped(
        &self,
        source: &str,
        epoch: u64,
        records: &[(Lsn, Vec<u8>)],
    ) -> StoreResult<Lsn> {
        self.check_source_epoch(source, epoch)?;
        let stream = self.replica_for(source)?;
        if records.is_empty() {
            return Ok(stream.applied_lsn());
        }
        // One group commit for the whole shipment: catch-up cost is a
        // single fsync, not one per record.
        stream.execute_shipped_batch(records)
    }

    /// The replica-side fence: refuse `source` shipping under `epoch`
    /// when we have already obeyed a newer epoch from it, or when the
    /// installed map has moved past that epoch *and dropped the
    /// source*. (A source still in the map may lag the map version
    /// briefly between a rebalance's publish and its next renewal —
    /// that is catch-up, not split-brain.) Accepting ratchets the
    /// per-source floor.
    fn check_source_epoch(&self, source: &str, epoch: u64) -> StoreResult<()> {
        let mut floors = self.inner.source_epochs.lock();
        let floor = floors.get(source).copied().unwrap_or(0);
        if epoch < floor {
            self.inner.stale_shipments.inc();
            return Err(StoreError::StaleEpoch { have: floor, got: epoch });
        }
        let map = self.map();
        if !map.is_empty() && epoch < map.version() && !map.nodes().iter().any(|n| n.id == source) {
            self.inner.stale_shipments.inc();
            return Err(StoreError::StaleEpoch { have: map.version(), got: epoch });
        }
        if epoch > floor {
            floors.insert(source.to_string(), epoch);
        }
        Ok(())
    }

    /// Pull-side catch-up: ask the peer who it is, fetch its records
    /// after our stream watermark, and apply them. When the peer's log
    /// has been compacted past our watermark (shipping answers
    /// `Corrupt`), falls back to a full snapshot bootstrap. Returns how
    /// many records were applied (a bootstrap counts as one).
    pub fn sync_from(&self, endpoint: &str) -> StoreResult<usize> {
        let status =
            self.inner.peers.get(&format!("{endpoint}/store/status")).map_err(rest_to_store)?;
        let source = status
            .get("id")
            .and_then(Value::as_str)
            .ok_or(StoreError::Remote("peer status missing id".into()))?
            .to_string();
        if source == self.inner.id {
            return Err(StoreError::Remote("refusing to sync from self".into()));
        }
        let after = self.replica_applied(&source);
        let resp = match self.inner.peers.get(&format!("{endpoint}/store/ship?after={after}")) {
            Ok(resp) => resp,
            Err(e) => match rest_to_store(e) {
                // The source compacted past our watermark: ship the
                // whole state instead of the (gone) log suffix.
                StoreError::Corrupt(_) => return self.bootstrap_from(endpoint, &source),
                other => return Err(other),
            },
        };
        let epoch = resp.get("epoch").and_then(Value::as_i64).unwrap_or(0) as u64;
        let records = records_from_json(&resp)?;
        let n = records.len();
        self.apply_shipped(&source, epoch, &records)?;
        Ok(n)
    }

    /// Replace the `source` replica stream with the peer's full state
    /// snapshot — the catch-up of last resort when log shipping cannot
    /// bridge the gap (compaction horizon or checksum divergence).
    pub fn bootstrap_from(&self, endpoint: &str, source: &str) -> StoreResult<usize> {
        let snap =
            self.inner.peers.get(&format!("{endpoint}/store/snapshot")).map_err(rest_to_store)?;
        let peer_id = snap.get("id").and_then(Value::as_str).unwrap_or_default();
        if peer_id != source {
            return Err(StoreError::Remote(format!(
                "snapshot from {endpoint} identifies as {peer_id:?}, wanted {source:?}"
            )));
        }
        let applied =
            snap.get("applied")
                .and_then(Value::as_i64)
                .ok_or(StoreError::Remote("snapshot missing applied".into()))? as Lsn;
        let state = snap
            .get("state")
            .and_then(Value::as_str)
            .ok_or(StoreError::Remote("snapshot missing state".into()))?;
        let stream = self.replica_for(source)?;
        if stream.applied_lsn() >= applied {
            return Ok(0);
        }
        stream.install_snapshot(applied, state.as_bytes())?;
        Ok(1)
    }

    /// Failover promotion: re-log `source`'s replicated state into our
    /// own log so we can primary its shards. Versions are carried over
    /// verbatim (they never regress per key), and keys we already hold
    /// at an equal-or-newer version are skipped. Returns how many keys
    /// were adopted.
    pub fn promote(&self, source: &str) -> StoreResult<usize> {
        self.promote_for_map(source, None)
    }

    /// Promotion filtered by a target map: adopt only the keys whose
    /// primary under `target` is this node. A rebalance uses this to
    /// flip primaries without every surviving node copying every key —
    /// each adopts exactly its new share.
    pub fn promote_for_map(&self, source: &str, target: Option<&ShardMap>) -> StoreResult<usize> {
        let Some(stream) = self.inner.replicas.read().get(source).cloned() else {
            return Ok(0);
        };
        let entries: Vec<(String, Value, Lsn)> = stream.query(|m| {
            m.keys().into_iter().filter_map(|k| m.get(&k).map(|(v, l)| (k, v.clone(), l))).collect()
        });
        let mut adopted = 0;
        for (key, value, version) in entries {
            if let Some(map) = target {
                match map.primary(&key) {
                    Some(p) if p.id == self.inner.id => {}
                    _ => continue,
                }
            }
            let have = self.inner.store.query(|m| m.get(&key).map(|(_, l)| l)).unwrap_or(0);
            if have >= version {
                continue;
            }
            let cmd = KvMachine::put_versioned_command(&key, &value, version);
            self.inner.store.execute(&cmd)?;
            adopted += 1;
        }
        Ok(adopted)
    }

    /// REST routes exposing this node.
    pub fn router(&self) -> Router {
        let mut r = Router::new();
        let node = self.clone();
        r.put("/store/{key}", move |req, p: PathParams| {
            let key = p.get("key").unwrap_or_default();
            let value = match req.text().ok().and_then(|t| Value::parse(t).ok()) {
                Some(v) => v,
                None => return Response::error(Status::BAD_REQUEST, "body must be JSON"),
            };
            match node.put(key, &value) {
                Ok(lsn) => version_response(lsn),
                Err(e) => store_error_response(e, node.map().version()),
            }
        });
        let node = self.clone();
        r.delete("/store/{key}", move |_req, p: PathParams| {
            match node.delete(p.get("key").unwrap_or_default()) {
                Ok(lsn) => version_response(lsn),
                Err(e) => store_error_response(e, node.map().version()),
            }
        });
        let node = self.clone();
        r.get("/store/ship", move |req, _p| {
            let after = req.query("after").and_then(|v| v.parse().ok()).unwrap_or(0);
            match node.inner.store.wal().records_after(after) {
                Ok(records) => Response::json_owned(
                    records_to_json(&node.inner.id, node.ship_epoch(), &records).to_compact(),
                ),
                // The requested suffix was compacted away: tell the
                // puller to bootstrap from a snapshot instead.
                Err(StoreError::Corrupt(_)) => {
                    let mut body = Value::object();
                    body.set("error", "compacted");
                    body.set("oldest", node.inner.store.applied_lsn() as i64);
                    Response::new(Status::CONFLICT)
                        .with_text("application/json", &body.to_compact())
                }
                Err(e) => store_error_response(e, node.map().version()),
            }
        });
        let node = self.clone();
        r.get("/store/snapshot", move |_req, _p| {
            let (applied, state) = node.inner.store.snapshot_state();
            let mut body = Value::object();
            body.set("id", node.inner.id.as_str());
            body.set("applied", applied as i64);
            // KV snapshots are deterministic JSON text, so they embed
            // as a string.
            body.set("state", String::from_utf8_lossy(&state).into_owned());
            Response::json_owned(body.to_compact())
        });
        let node = self.clone();
        r.get("/store/status", move |_req, _p| {
            let mut status = Value::object();
            status.set("id", node.inner.id.as_str());
            status.set("applied", node.inner.store.applied_lsn() as i64);
            status.set("durable", node.inner.store.wal().durable_lsn() as i64);
            status.set("map_version", node.map().version() as i64);
            status.set("epoch", node.inner.fence.epoch() as i64);
            status.set("fence_valid", node.inner.fence.is_valid());
            status.set("keys", node.inner.store.query(|m| m.len()) as i64);
            let (_, state) = node.inner.store.snapshot_state();
            status.set("state_crc", crc32(&state) as i64);
            let mut streams = Value::object();
            let mut stream_crcs = Value::object();
            for (source, d) in node.inner.replicas.read().iter() {
                let (lsn, snap) = d.snapshot_state();
                streams.set(source.as_str(), lsn as i64);
                stream_crcs.set(source.as_str(), crc32(&snap) as i64);
            }
            status.set("replica_streams", streams);
            status.set("stream_crcs", stream_crcs);
            Response::json_owned(status.to_compact())
        });
        let node = self.clone();
        r.post("/store/replicate", move |req, _p| {
            let body = match req.text().ok().and_then(|t| Value::parse(t).ok()) {
                Some(v) => v,
                None => return Response::error(Status::BAD_REQUEST, "body must be JSON"),
            };
            let Some(source) = body.get("source").and_then(Value::as_str).map(str::to_string)
            else {
                return Response::error(Status::BAD_REQUEST, "replicate body missing source");
            };
            let epoch = body.get("epoch").and_then(Value::as_i64).unwrap_or(0) as u64;
            let records = match records_from_json(&body) {
                Ok(r) => r,
                Err(_) => return Response::error(Status::BAD_REQUEST, "body must be records"),
            };
            match node.apply_shipped(&source, epoch, &records) {
                Ok(applied) => {
                    let mut ok = Value::object();
                    ok.set("applied", applied as i64);
                    Response::json_owned(ok.to_compact())
                }
                Err(e) => store_error_response(e, node.map().version()),
            }
        });
        let node = self.clone();
        r.post("/store/map", move |req, _p| {
            let body = match req.text().ok().and_then(|t| Value::parse(t).ok()) {
                Some(v) => v,
                None => return Response::error(Status::BAD_REQUEST, "body must be JSON"),
            };
            match ShardMap::from_json(&body) {
                Ok(map) => {
                    let version = map.version();
                    let have = node.map().version();
                    if !node.set_map(Arc::new(map)) {
                        let mut err = Value::object();
                        err.set("error", "stale_map");
                        err.set("have", have as i64);
                        err.set("got", version as i64);
                        return Response::new(Status::CONFLICT)
                            .with_text("application/json", &err.to_compact());
                    }
                    let mut ok = Value::object();
                    ok.set("map_version", version as i64);
                    Response::json_owned(ok.to_compact())
                }
                Err(e) => Response::error(Status::BAD_REQUEST, &format!("bad shard map: {e}")),
            }
        });
        let node = self.clone();
        r.get("/store/map", move |_req, _p| {
            Response::json_owned(node.map().to_json().to_compact())
        });
        let node = self.clone();
        r.post("/store/sync", move |req, _p| {
            let body = match req.text().ok().and_then(|t| Value::parse(t).ok()) {
                Some(v) => v,
                None => return Response::error(Status::BAD_REQUEST, "body must be JSON"),
            };
            let Some(from) = body.get("from").and_then(Value::as_str) else {
                return Response::error(Status::BAD_REQUEST, "sync body missing from");
            };
            match node.sync_from(from) {
                Ok(n) => {
                    let mut ok = Value::object();
                    ok.set("applied", n as i64);
                    Response::json_owned(ok.to_compact())
                }
                Err(e) => store_error_response(e, node.map().version()),
            }
        });
        let node = self.clone();
        r.post("/store/promote", move |req, _p| {
            let body = match req.text().ok().and_then(|t| Value::parse(t).ok()) {
                Some(v) => v,
                None => return Response::error(Status::BAD_REQUEST, "body must be JSON"),
            };
            let Some(source) = body.get("source").and_then(Value::as_str) else {
                return Response::error(Status::BAD_REQUEST, "promote body missing source");
            };
            let target = match body.get("map") {
                Some(m) => match ShardMap::from_json(m) {
                    Ok(map) => Some(map),
                    Err(e) => {
                        return Response::error(Status::BAD_REQUEST, &format!("bad shard map: {e}"))
                    }
                },
                None => None,
            };
            match node.promote_for_map(source, target.as_ref()) {
                Ok(adopted) => {
                    let mut ok = Value::object();
                    ok.set("adopted", adopted as i64);
                    Response::json_owned(ok.to_compact())
                }
                Err(e) => store_error_response(e, node.map().version()),
            }
        });
        let node = self.clone();
        r.post("/store/fence", move |req, _p| {
            let body = match req.text().ok().and_then(|t| Value::parse(t).ok()) {
                Some(v) => v,
                None => return Response::error(Status::BAD_REQUEST, "body must be JSON"),
            };
            let Some(epoch) = body.get("epoch").and_then(Value::as_i64) else {
                return Response::error(Status::BAD_REQUEST, "fence body missing epoch");
            };
            let ttl_ms = body.get("ttl_ms").and_then(Value::as_i64).unwrap_or(0).max(0) as u64;
            node.inner.fence.grant(epoch as u64, Duration::from_millis(ttl_ms));
            let mut ok = Value::object();
            ok.set("epoch", node.inner.fence.epoch() as i64);
            ok.set("valid", node.inner.fence.is_valid());
            Response::json_owned(ok.to_compact())
        });
        let node = self.clone();
        r.get("/store/{key}", move |req, p: PathParams| {
            let key = p.get("key").unwrap_or_default();
            let min = req.query("min_version").and_then(|v| v.parse().ok()).unwrap_or(0);
            match node.get(key, min) {
                Ok(Some((value, version))) => {
                    let mut body = Value::object();
                    body.set("key", key);
                    body.set("value", value);
                    body.set("version", version as i64);
                    Response::json_owned(body.to_compact())
                }
                Ok(None) => Response::error(Status::NOT_FOUND, &format!("no key {key:?}")),
                Err(e) => store_error_response(e, node.map().version()),
            }
        });
        r
    }

    /// Spawn the background lease keeper: renew this node's fenced
    /// lease in the registry every `interval`, granting the fence on
    /// each successful renewal. A node partitioned from the registry
    /// stops being granted, its lease lapses after `ttl`, and it
    /// self-fences — the write-refusal half of split-brain prevention.
    /// The keeper stops when the returned handle is dropped or stopped.
    pub fn start_lease_keeper(
        &self,
        directory: DirectoryClient,
        endpoint: &str,
        ttl: Duration,
        interval: Duration,
    ) -> LeaseKeeper {
        let stop = Arc::new(AtomicBool::new(false));
        let node = self.clone();
        let endpoint = endpoint.to_string();
        let stop_flag = stop.clone();
        let handle = std::thread::spawn(move || {
            let ttl_ms = ttl.as_millis().max(1) as u64;
            while !stop_flag.load(Ordering::Acquire) {
                // On an unreachable registry there is no grant; the
                // lease lapses on its own and the node self-fences.
                if let Ok(epoch) =
                    directory.renew_fenced_lease(&node.inner.id, ttl_ms, Some(&endpoint))
                {
                    node.inner.fence.grant(epoch, ttl);
                }
                std::thread::sleep(interval);
            }
        });
        LeaseKeeper { stop, handle: Some(handle) }
    }
}

/// Handle for a running lease-keeper thread; stops it on drop.
pub struct LeaseKeeper {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl LeaseKeeper {
    /// Stop renewing (simulates a partition from the registry; the
    /// node's lease then lapses within one TTL) and join the thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for LeaseKeeper {
    fn drop(&mut self) {
        self.stop();
    }
}

/// `{"source":"...","epoch":E,"records":[{"lsn":N,"command":"..."}]}` —
/// commands are the KV machine's JSON command strings, so they embed as
/// text. The epoch is the shipper's fencing epoch; receivers refuse
/// anything older than what they have already obeyed.
fn records_to_json(source: &str, epoch: u64, records: &[(Lsn, Vec<u8>)]) -> Value {
    let items: Vec<Value> = records
        .iter()
        .map(|(lsn, cmd)| {
            let mut item = Value::object();
            item.set("lsn", *lsn as i64);
            item.set("command", String::from_utf8_lossy(cmd).into_owned());
            item
        })
        .collect();
    let mut body = Value::object();
    body.set("source", source);
    body.set("epoch", epoch as i64);
    body.set("records", Value::Array(items));
    body
}

fn records_from_json(body: &Value) -> StoreResult<Vec<(Lsn, Vec<u8>)>> {
    let items = body
        .get("records")
        .and_then(Value::as_array)
        .ok_or(StoreError::Remote("replicate body missing records".into()))?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let lsn = item
            .get("lsn")
            .and_then(Value::as_i64)
            .ok_or(StoreError::Remote("record missing lsn".into()))? as Lsn;
        let cmd = item
            .get("command")
            .and_then(Value::as_str)
            .ok_or(StoreError::Remote("record missing command".into()))?;
        out.push((lsn, cmd.as_bytes().to_vec()));
    }
    Ok(out)
}

fn version_response(lsn: Lsn) -> Response {
    let mut body = Value::object();
    body.set("version", lsn as i64);
    Response::json_owned(body.to_compact())
}

/// Map store errors onto the wire: routing and staleness conditions are
/// `409` with a machine-readable body; everything else is `500`.
/// `map_version` stamps redirects so clients and gateways can tell a
/// hint from a node with a *newer* map than theirs (refetch) from one
/// that is itself stale (ignore).
fn store_error_response(e: StoreError, map_version: u64) -> Response {
    match e {
        StoreError::NotPrimary { key, primary } => {
            let mut body = Value::object();
            body.set("error", "not_primary");
            body.set("key", key.as_str());
            match primary {
                Some(p) => body.set("primary", p.as_str()),
                None => body.set("primary", Value::Null),
            }
            body.set("map_version", map_version as i64);
            Response::new(Status::CONFLICT).with_text("application/json", &body.to_compact())
        }
        StoreError::Behind { have, want } => {
            let mut body = Value::object();
            body.set("error", "behind");
            body.set("have", have as i64);
            body.set("want", want as i64);
            Response::new(Status::CONFLICT).with_text("application/json", &body.to_compact())
        }
        StoreError::Fenced { epoch } => {
            let mut body = Value::object();
            body.set("error", "fenced");
            body.set("epoch", epoch as i64);
            Response::new(Status::CONFLICT).with_text("application/json", &body.to_compact())
        }
        StoreError::StaleEpoch { have, got } => {
            let mut body = Value::object();
            body.set("error", "stale_epoch");
            body.set("have", have as i64);
            body.set("got", got as i64);
            Response::new(Status::CONFLICT).with_text("application/json", &body.to_compact())
        }
        other => Response::error(Status::INTERNAL_SERVER_ERROR, &other.to_string()),
    }
}

fn rest_to_store(e: RestError) -> StoreError {
    if let RestError::Status { status, body } = &e {
        if *status == Status::CONFLICT {
            if let Ok(v) = Value::parse(body) {
                match v.get("error").and_then(Value::as_str) {
                    Some("behind") => {
                        return StoreError::Behind {
                            have: v.get("have").and_then(Value::as_i64).unwrap_or(0) as Lsn,
                            want: v.get("want").and_then(Value::as_i64).unwrap_or(0) as Lsn,
                        }
                    }
                    Some("not_primary") => {
                        return StoreError::NotPrimary {
                            key: v
                                .get("key")
                                .and_then(Value::as_str)
                                .unwrap_or_default()
                                .to_string(),
                            primary: v.get("primary").and_then(Value::as_str).map(str::to_string),
                        }
                    }
                    Some("fenced") => {
                        return StoreError::Fenced {
                            epoch: v.get("epoch").and_then(Value::as_i64).unwrap_or(0) as u64,
                        }
                    }
                    Some("stale_epoch") => {
                        return StoreError::StaleEpoch {
                            have: v.get("have").and_then(Value::as_i64).unwrap_or(0) as u64,
                            got: v.get("got").and_then(Value::as_i64).unwrap_or(0) as u64,
                        }
                    }
                    Some("compacted") => {
                        return StoreError::Corrupt(
                            "peer log compacted past the requested suffix".into(),
                        )
                    }
                    Some("stale_map") => {
                        return StoreError::Remote(format!(
                            "map publish rejected: node holds version {}",
                            v.get("have").and_then(Value::as_i64).unwrap_or(0)
                        ))
                    }
                    _ => {}
                }
            }
        }
    }
    StoreError::Remote(e.to_string())
}

/// How many distinct endpoints a write will chase `not_primary` hints
/// through before refetching the map — a stale hint chain (or two nodes
/// pointing at each other mid-rebalance) must not spin forever.
const MAX_WRITE_HOPS: usize = 3;

/// A shard-aware store client with read-your-writes sessions.
pub struct StoreClient {
    rest: RestClient,
    map: RwLock<Arc<ShardMap>>,
    /// Per-key version floor: the LSN each of this client's writes was
    /// assigned, demanded back on every later read of the same key.
    sessions: Mutex<HashMap<String, Lsn>>,
}

impl StoreClient {
    /// Client over `transport`, with an empty map until
    /// [`StoreClient::set_map`] installs one.
    pub fn new(transport: Arc<dyn Transport>) -> StoreClient {
        StoreClient {
            rest: RestClient::new(transport),
            map: RwLock::new(Arc::new(ShardMap::build(0, Vec::new(), 1))),
            sessions: Mutex::new(HashMap::new()),
        }
    }

    /// Install the shard map the client routes by. Same version CAS as
    /// the node side: an older map never replaces a newer one. Returns
    /// whether the map was installed.
    pub fn set_map(&self, map: Arc<ShardMap>) -> bool {
        let mut slot = self.map.write();
        if map.version() < slot.version() {
            return false;
        }
        *slot = map;
        true
    }

    /// Forcibly install `map` even if older — tests use this to
    /// simulate a client with a stale routing view.
    pub fn force_map(&self, map: Arc<ShardMap>) {
        *self.map.write() = map;
    }

    /// The installed map.
    pub fn map(&self) -> Arc<ShardMap> {
        self.map.read().clone()
    }

    /// The session's version floor for `key` (0 = never written).
    pub fn session_version(&self, key: &str) -> Lsn {
        self.sessions.lock().get(key).copied().unwrap_or(0)
    }

    /// Write `value` under `key` through the key's primary.
    pub fn put(&self, key: &str, value: &Value) -> StoreResult<Lsn> {
        self.write(key, Some(value))
    }

    /// Delete `key` through its primary.
    pub fn delete(&self, key: &str) -> StoreResult<Lsn> {
        self.write(key, None)
    }

    /// Refetch the authoritative map from any node of the installed
    /// one (first answer wins) and install it. Returns whether any node
    /// answered with a usable map.
    pub fn refresh_map(&self) -> bool {
        let map = self.map();
        for node in map.nodes() {
            if let Ok(v) = self.rest.get(&format!("{}/store/map", node.endpoint)) {
                if let Ok(fresh) = ShardMap::from_json(&v) {
                    self.set_map(Arc::new(fresh));
                    return true;
                }
            }
        }
        false
    }

    fn write(&self, key: &str, value: Option<&Value>) -> StoreResult<Lsn> {
        let map = self.map();
        let mut endpoint = map
            .primary(key)
            .ok_or(StoreError::Remote("shard map has no nodes".into()))?
            .endpoint
            .clone();
        // Chase `not_primary` hints through at most MAX_WRITE_HOPS
        // distinct endpoints; a revisit (two stale nodes pointing at
        // each other) or hop exhaustion falls through to a map refetch
        // and one final attempt at the fresh primary.
        let mut visited: Vec<String> = Vec::with_capacity(MAX_WRITE_HOPS);
        for _ in 0..MAX_WRITE_HOPS {
            visited.push(endpoint.clone());
            match self.write_at(&endpoint, key, value) {
                Err(StoreError::NotPrimary { primary: Some(hint), .. }) => {
                    if visited.contains(&hint) {
                        break;
                    }
                    endpoint = hint;
                }
                other => return other,
            }
        }
        if !self.refresh_map() {
            return Err(StoreError::Remote(format!(
                "write of {key:?} chased not_primary hints through {visited:?} and no node \
                 answered a map refetch"
            )));
        }
        let fresh = self
            .map()
            .primary(key)
            .ok_or(StoreError::Remote("refetched shard map has no nodes".into()))?
            .endpoint
            .clone();
        self.write_at(&fresh, key, value)
    }

    fn write_at(&self, endpoint: &str, key: &str, value: Option<&Value>) -> StoreResult<Lsn> {
        let url = format!("{endpoint}/store/{}", percent_encode(key));
        let resp = match value {
            Some(v) => self.rest.put(&url, v),
            None => self.rest.delete(&url),
        }
        .map_err(rest_to_store)?;
        let version = resp
            .get("version")
            .and_then(Value::as_i64)
            .ok_or(StoreError::Remote("write response missing version".into()))?
            as Lsn;
        self.sessions.lock().insert(key.to_string(), version);
        Ok(version)
    }

    /// Read `key`, demanding at least this session's last written
    /// version. Owners are tried replica-first (the cheapest copy that
    /// can prove freshness wins) and the primary is the last resort —
    /// a behind or unreachable replica silently falls through.
    pub fn get(&self, key: &str) -> StoreResult<Option<(Value, Lsn)>> {
        let floor = self.session_version(key);
        let map = self.map();
        let owners = map.owners(key);
        if owners.is_empty() {
            return Err(StoreError::Remote("shard map has no nodes".into()));
        }
        let mut last_err = None;
        for owner in owners.iter().rev() {
            let url =
                format!("{}/store/{}?min_version={floor}", owner.endpoint, percent_encode(key));
            match self.rest.get(&url) {
                Ok(resp) => {
                    let value = resp.get("value").cloned().unwrap_or(Value::Null);
                    let version = resp.get("version").and_then(Value::as_i64).unwrap_or(0) as Lsn;
                    return Ok(Some((value, version)));
                }
                Err(RestError::Status { status, .. }) if status == Status::NOT_FOUND => {
                    return Ok(None)
                }
                Err(e) => last_err = Some(rest_to_store(e)),
            }
        }
        Err(last_err.unwrap_or(StoreError::Remote("no owner answered".into())))
    }

    /// Primary-first read: the strongest copy wins, falling back
    /// through replicas only when the primary is unreachable. Used by
    /// readers that must see every acknowledged write immediately
    /// (saga-journal recovery), not just their own session's.
    pub fn get_fresh(&self, key: &str) -> StoreResult<Option<(Value, Lsn)>> {
        let floor = self.session_version(key);
        let map = self.map();
        let owners = map.owners(key);
        if owners.is_empty() {
            return Err(StoreError::Remote("shard map has no nodes".into()));
        }
        let mut last_err = None;
        for owner in owners.iter() {
            let url =
                format!("{}/store/{}?min_version={floor}", owner.endpoint, percent_encode(key));
            match self.rest.get(&url) {
                Ok(resp) => {
                    let value = resp.get("value").cloned().unwrap_or(Value::Null);
                    let version = resp.get("version").and_then(Value::as_i64).unwrap_or(0) as Lsn;
                    return Ok(Some((value, version)));
                }
                Err(RestError::Status { status, .. }) if status == Status::NOT_FOUND => {
                    return Ok(None)
                }
                Err(e) => last_err = Some(rest_to_store(e)),
            }
        }
        Err(last_err.unwrap_or(StoreError::Remote("no owner answered".into())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TempDir;
    use soc_http::MemNetwork;
    use soc_json::json;

    struct Cluster {
        net: Arc<MemNetwork>,
        nodes: Vec<StoreNode>,
        _dirs: Vec<TempDir>,
    }

    /// `n` nodes hosted as `mem://s{i}` sharing one map.
    fn cluster(n: usize, replication: usize) -> Cluster {
        let net = Arc::new(MemNetwork::new());
        let shard_nodes: Vec<crate::shard::ShardNode> = (0..n)
            .map(|i| crate::shard::ShardNode {
                id: format!("s{i}"),
                endpoint: format!("mem://s{i}"),
            })
            .collect();
        let map = Arc::new(ShardMap::build(1, shard_nodes, replication));
        let mut nodes = Vec::new();
        let mut dirs = Vec::new();
        for i in 0..n {
            let dir = TempDir::new(&format!("node-{i}"));
            let node = StoreNode::open(
                StoreNodeConfig::new(&format!("s{i}")),
                dir.path(),
                net.clone() as Arc<dyn Transport>,
            )
            .unwrap();
            node.set_map(map.clone());
            net.host(&format!("s{i}"), node.router());
            nodes.push(node);
            dirs.push(dir);
        }
        Cluster { net, nodes, _dirs: dirs }
    }

    fn client(c: &Cluster) -> StoreClient {
        let client = StoreClient::new(c.net.clone() as Arc<dyn Transport>);
        client.set_map(c.nodes[0].map());
        client
    }

    #[test]
    fn writes_route_to_primary_and_replicate() {
        let c = cluster(3, 2);
        let cl = client(&c);
        for i in 0..20 {
            cl.put(&format!("key-{i}"), &json!({ "n": i })).unwrap();
        }
        // Every owner of every key holds the write — the primary in its
        // own log, replicas in the primary's shipped stream.
        let map = c.nodes[0].map();
        for i in 0..20 {
            let key = format!("key-{i}");
            for owner in map.owners(&key) {
                let idx: usize = owner.id[1..].parse().unwrap();
                let got = c.nodes[idx].get(&key, 0).unwrap();
                assert!(got.is_some(), "owner {} missing {key}", owner.id);
            }
        }
    }

    #[test]
    fn read_your_writes_falls_back_to_primary_when_replica_is_behind() {
        let c = cluster(3, 2);
        let cl = client(&c);
        let v = cl.put("wanted", &json!("fresh")).unwrap();
        // Write directly on the primary's store without replication
        // (simulates a replica that lost the push), then bump the
        // session floor past what replicas have: a replica read must
        // refuse and the client must fall back to the primary.
        let primary_id = c.nodes[0].map().primary("wanted").unwrap().id.clone();
        let primary_idx: usize = primary_id[1..].parse().unwrap();
        let cmd = KvMachine::put_command("wanted", &json!("fresher"));
        c.nodes[primary_idx].store().execute(&cmd).unwrap();
        let v2 = c.nodes[primary_idx].store().applied_lsn();
        assert!(v2 > v);
        cl.sessions.lock().insert("wanted".into(), v2);
        let (value, version) = cl.get("wanted").unwrap().expect("value");
        assert_eq!(value, json!("fresher"));
        assert_eq!(version, v2);
    }

    #[test]
    fn stale_client_map_is_corrected_by_not_primary_hint() {
        let c = cluster(3, 2);
        let cl = client(&c);
        // Find a key s0 does not own at all (else replication would
        // legitimately hand it a copy), then give the client a one-node
        // map that routes everything to s0.
        let map = c.nodes[0].map();
        let key = (0..200)
            .map(|i| format!("k-{i}"))
            .find(|k| !map.owns("s0", k))
            .expect("some key lands entirely off s0");
        cl.set_map(Arc::new(ShardMap::build(
            99,
            vec![crate::shard::ShardNode { id: "s0".into(), endpoint: "mem://s0".into() }],
            1,
        )));
        let v = cl.put(&key, &json!(1)).unwrap();
        assert!(v >= 1);
        // The hint routed the write to the true primary.
        let primary_idx: usize = map.primary(&key).unwrap().id[1..].parse().unwrap();
        assert!(c.nodes[primary_idx].get(&key, 0).unwrap().is_some());
        // s0 never stored it.
        assert!(c.nodes[0].get(&key, 0).unwrap().is_none());
    }

    #[test]
    fn late_replica_catches_up_via_log_shipping() {
        let net = Arc::new(MemNetwork::new());
        let dir_a = TempDir::new("ship-a");
        let dir_b = TempDir::new("ship-b");
        let a = StoreNode::open(
            StoreNodeConfig::new("a"),
            dir_a.path(),
            net.clone() as Arc<dyn Transport>,
        )
        .unwrap();
        net.host("a", a.router());
        for i in 0..30 {
            a.put(&format!("k{i}"), &json!(i)).unwrap();
        }
        // A replica that joins after the fact pulls the whole log.
        let b = StoreNode::open(
            StoreNodeConfig::new("b"),
            dir_b.path(),
            net.clone() as Arc<dyn Transport>,
        )
        .unwrap();
        assert_eq!(b.sync_from("mem://a").unwrap(), 30);
        assert_eq!(b.replica_applied("a"), a.store().applied_lsn());
        assert_eq!(b.get("k29", 30).unwrap().unwrap().0, json!(29));
        // Idempotent: a second sync ships nothing.
        assert_eq!(b.sync_from("mem://a").unwrap(), 0);
    }

    #[test]
    fn promotion_adopts_replicated_state_with_versions() {
        let c = cluster(2, 2);
        let cl = client(&c);
        let mut versions = HashMap::new();
        for i in 0..12 {
            let key = format!("key-{i}");
            let v = cl.put(&key, &json!(i)).unwrap();
            versions.insert(key, v);
        }
        // s0 dies; s1 promotes s0's stream and becomes sole owner.
        let survivor = c.nodes[1].clone();
        let adopted = survivor.promote("s0").unwrap();
        assert!(adopted > 0, "survivor adopts the dead primary's keys");
        let solo = Arc::new(ShardMap::build(
            2,
            vec![crate::shard::ShardNode { id: "s1".into(), endpoint: "mem://s1".into() }],
            2,
        ));
        survivor.set_map(solo.clone());
        cl.set_map(solo);
        // Every key is readable at (at least) its original version —
        // the old session floors still hold.
        for (key, v) in &versions {
            let (_, got) = cl.get(key).unwrap().expect("promoted key");
            assert!(got >= *v, "{key}: {got} < {v}");
        }
        // New writes never regress a promoted key's version.
        for (key, v) in &versions {
            let nv = cl.put(key, &json!("new")).unwrap();
            assert!(nv > *v, "{key}: new version {nv} <= old {v}");
        }
    }

    #[test]
    fn status_route_reports_progress() {
        let c = cluster(1, 1);
        let cl = client(&c);
        cl.put("x", &json!(1)).unwrap();
        let rest = RestClient::new(c.net.clone() as Arc<dyn Transport>);
        let status = rest.get("mem://s0/store/status").unwrap();
        assert_eq!(status.get("id").and_then(Value::as_str), Some("s0"));
        assert_eq!(status.get("applied").and_then(Value::as_i64), Some(1));
        assert_eq!(status.get("keys").and_then(Value::as_i64), Some(1));
    }

    #[test]
    fn node_restart_recovers_own_and_replicated_state() {
        let net = Arc::new(MemNetwork::new());
        let dir = TempDir::new("restart");
        {
            let node = StoreNode::open(
                StoreNodeConfig::new("solo"),
                dir.path(),
                net.clone() as Arc<dyn Transport>,
            )
            .unwrap();
            node.put("persist", &json!({ "v": 7 })).unwrap();
            node.put("doomed", &json!(0)).unwrap();
            node.delete("doomed").unwrap();
            // Also feed a replica stream from a fictional peer.
            node.apply_shipped("peer#1", 1, &[(1, KvMachine::put_command("shipped", &json!(9)))])
                .unwrap();
        }
        let node = StoreNode::open(
            StoreNodeConfig::new("solo"),
            dir.path(),
            net.clone() as Arc<dyn Transport>,
        )
        .unwrap();
        let (v, ver) = node.get("persist", 1).unwrap().unwrap();
        assert_eq!(v, json!({ "v": 7 }));
        assert_eq!(ver, 1);
        assert!(node.get("doomed", 0).unwrap().is_none());
        // The replica stream reopened too (percent-encoded dir name).
        assert_eq!(node.replica_applied("peer#1"), 1);
        assert_eq!(node.get("shipped", 0).unwrap().unwrap().0, json!(9));
    }
}
