//! Gateway overhead and policy throughput.
//!
//! Measures (1) the cost the gateway adds over dispatching straight to
//! an upstream on the in-memory network, (2) per-request throughput of
//! each load-balancing policy over three replicas, and (3) the
//! fully-loaded path: retries against a flaky replica set.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use soc_gateway::{Gateway, GatewayConfig, Policy};
use soc_http::mem::{FaultConfig, Transport};
use soc_http::{MemNetwork, Request, Response};

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(150))
}

fn replicated_net() -> MemNetwork {
    let net = MemNetwork::new();
    for name in ["r0", "r1", "r2"] {
        net.host(name, |_req: Request| Response::text("pong"));
    }
    net
}

fn gateway_with(net: &MemNetwork, policy: Policy) -> Gateway {
    let gw = Gateway::new(
        Arc::new(net.clone()),
        GatewayConfig {
            policy,
            base_backoff: std::time::Duration::from_micros(50),
            max_backoff: std::time::Duration::from_micros(500),
            ..GatewayConfig::default()
        },
    );
    gw.register("ping", &["mem://r0", "mem://r1", "mem://r2"]);
    gw
}

fn bench_gateway(c: &mut Criterion) {
    let mut group = c.benchmark_group("gateway");
    group.throughput(Throughput::Elements(1));

    // Baseline: the same request straight to one replica.
    let net = replicated_net();
    group.bench_function("direct_dispatch", |b| {
        b.iter(|| net.send(Request::get("mem://r0/ping")).unwrap())
    });

    // Gateway overhead per policy, healthy replicas.
    for policy in [Policy::RoundRobin, Policy::RandomTwoChoice, Policy::LeastLatency] {
        let net = replicated_net();
        let gw = gateway_with(&net, policy);
        net.host("gw", gw);
        group.bench_function(format!("via_gateway/{}", policy.as_str()), |b| {
            b.iter(|| net.send(Request::get("mem://gw/svc/ping/x")).unwrap())
        });
    }

    // The resilience path: 20% of requests to each replica fail, so the
    // measured cost includes breaker accounting, retries, and backoff.
    let net = replicated_net();
    for name in ["r0", "r1", "r2"] {
        net.set_fault(name, FaultConfig { fail_every: 5, ..Default::default() });
    }
    let gw = gateway_with(&net, Policy::RoundRobin);
    net.host("gw", gw);
    group.bench_function("via_gateway/20pct_faults_with_retries", |b| {
        b.iter(|| net.send(Request::get("mem://gw/svc/ping/x")).unwrap())
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_gateway
}
criterion_main!(benches);
